"""Tests for the GATES scheduler's priority logic."""

import pytest

from repro.core.gates import GatesScheduler
from repro.isa.instructions import fp_op, int_op, load_op, sfu_op
from repro.isa.optypes import OpClass
from repro.sim.sched.base import IssueCandidate, SchedulerView


def cand(slot, inst, ready=True):
    return IssueCandidate(slot=slot, age=slot, inst=inst, ready=ready)


def view(int_actv=0, fp_actv=0, int_blk=False, fp_blk=False):
    v = SchedulerView()
    v.actv_counts[OpClass.INT] = int_actv
    v.actv_counts[OpClass.FP] = fp_actv
    v.type_in_blackout[OpClass.INT] = int_blk
    v.type_in_blackout[OpClass.FP] = fp_blk
    return v


MIXED = [cand(0, int_op(dest=0)), cand(1, fp_op(dest=0)),
         cand(2, load_op(dest=0, line_addr=0)), cand(3, sfu_op(dest=0)),
         cand(4, int_op(dest=0)), cand(5, fp_op(dest=0))]


class TestPriorityOrdering:
    def test_int_first_by_default(self):
        sched = GatesScheduler(n_slots=8)
        ordered = sched.order(0, MIXED, view(int_actv=2, fp_actv=2))
        classes = [c.op_class for c in ordered]
        assert classes == [OpClass.INT, OpClass.INT, OpClass.LDST,
                           OpClass.SFU, OpClass.FP, OpClass.FP]

    def test_ldst_above_sfu_always(self):
        sched = GatesScheduler(n_slots=8)
        ordered = sched.order(0, MIXED, view(int_actv=2, fp_actv=2))
        ranks = {c.op_class: i for i, c in enumerate(ordered)}
        assert ranks[OpClass.LDST] < ranks[OpClass.SFU]

    def test_not_ready_filtered(self):
        sched = GatesScheduler(n_slots=8)
        cands = [cand(0, int_op(dest=0), ready=False),
                 cand(1, fp_op(dest=0))]
        ordered = sched.order(0, cands, view(int_actv=1, fp_actv=1))
        assert [c.slot for c in ordered] == [1]

    def test_round_robin_within_type(self):
        sched = GatesScheduler(n_slots=8)
        cands = [cand(s, int_op(dest=0)) for s in (1, 3, 6)]
        first = sched.order(0, cands, view(int_actv=3))
        sched.on_issue(0, first[0])  # issued slot 1
        second = sched.order(1, cands, view(int_actv=3))
        assert [c.slot for c in second] == [3, 6, 1]


class TestDynamicSwitching:
    def test_switches_when_int_drains(self):
        sched = GatesScheduler(n_slots=8)
        assert sched.highest_priority is OpClass.INT
        sched.order(0, MIXED, view(int_actv=0, fp_actv=3))
        assert sched.highest_priority is OpClass.FP
        assert sched.priority_switches == 1

    def test_no_switch_when_both_empty(self):
        sched = GatesScheduler(n_slots=8)
        sched.order(0, [], view(int_actv=0, fp_actv=0))
        assert sched.highest_priority is OpClass.INT

    def test_switches_back_when_fp_drains(self):
        sched = GatesScheduler(n_slots=8)
        sched.order(0, MIXED, view(int_actv=0, fp_actv=3))
        sched.order(1, MIXED, view(int_actv=3, fp_actv=0))
        assert sched.highest_priority is OpClass.INT
        assert sched.priority_switches == 2

    def test_fp_priority_reorders_issue(self):
        sched = GatesScheduler(n_slots=8)
        sched.order(0, MIXED, view(int_actv=0, fp_actv=3))  # switch to FP
        ordered = sched.order(1, MIXED, view(int_actv=2, fp_actv=2))
        assert ordered[0].op_class is OpClass.FP
        assert ordered[-1].op_class is OpClass.INT


class TestBlackoutAwareSwitching:
    def test_disabled_by_default(self):
        sched = GatesScheduler(n_slots=8)
        sched.order(0, MIXED, view(int_actv=2, fp_actv=2, int_blk=True))
        assert sched.highest_priority is OpClass.INT

    def test_switches_away_from_blacked_type(self):
        sched = GatesScheduler(n_slots=8, blackout_aware=True)
        sched.order(0, MIXED, view(int_actv=2, fp_actv=2, int_blk=True))
        assert sched.highest_priority is OpClass.FP

    def test_no_switch_if_both_blacked(self):
        sched = GatesScheduler(n_slots=8, blackout_aware=True)
        sched.order(0, MIXED, view(int_actv=2, fp_actv=2,
                                   int_blk=True, fp_blk=True))
        assert sched.highest_priority is OpClass.INT


class TestAntiStarvation:
    def test_forced_switch_after_threshold(self):
        sched = GatesScheduler(n_slots=8, max_priority_cycles=10)
        for cycle in range(10):
            sched.order(cycle, MIXED, view(int_actv=2, fp_actv=2))
            assert sched.highest_priority is OpClass.INT
        sched.order(10, MIXED, view(int_actv=2, fp_actv=2))
        assert sched.highest_priority is OpClass.FP

    def test_no_forced_switch_without_waiters(self):
        sched = GatesScheduler(n_slots=8, max_priority_cycles=5)
        for cycle in range(20):
            sched.order(cycle, MIXED, view(int_actv=2, fp_actv=0))
        assert sched.highest_priority is OpClass.INT

    def test_validation(self):
        with pytest.raises(ValueError):
            GatesScheduler(n_slots=0)
        with pytest.raises(ValueError):
            GatesScheduler(n_slots=8, max_priority_cycles=0)


class TestReset:
    def test_reset_restores_initial_state(self):
        sched = GatesScheduler(n_slots=8)
        sched.order(0, MIXED, view(int_actv=0, fp_actv=3))
        sched.reset()
        assert sched.highest_priority is OpClass.INT
        assert sched.priority_switches == 0
