"""Tests for the full-chip configuration layer (core/device)."""

import pytest

from repro.core.device import (
    DEVICE_PRESETS,
    GPUConfig,
    MemorySideConfig,
    device_preset,
    device_preset_names,
)
from repro.sim.config import SMConfig


class TestMemorySideConfig:
    def test_neutral_for_single_sm(self):
        # The single-SM golden digests depend on this exact identity.
        ms = MemorySideConfig()
        for base in (1, 100, 400, 999):
            assert ms.effective_dram_latency(base, 1) == base

    def test_monotonic_in_active_sms(self):
        ms = MemorySideConfig()
        latencies = [ms.effective_dram_latency(400, n)
                     for n in range(1, 16)]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]

    def test_gtx480_full_chip_factor(self):
        # 15 SMs over 6 partitions at alpha 0.15: 1 + 0.15*14/6 = 1.35.
        assert MemorySideConfig().effective_dram_latency(400, 15) == 540

    def test_exact_where_float_truncated(self):
        # 360 * (1 + 0.15/6) is exactly 369, but the float product
        # 360 * 1.025 rounds to 368.999...94 and int() truncated it to
        # 368.  The integer path must hit the exact value.
        assert MemorySideConfig().effective_dram_latency(360, 2) == 369
        assert int(360 * (1 + 0.15 * 1 / 6)) == 368  # the old bug

    def test_zero_alpha_disables_contention(self):
        ms = MemorySideConfig(queue_alpha=0.0)
        assert ms.effective_dram_latency(400, 15) == 400

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySideConfig(n_partitions=0)
        with pytest.raises(ValueError):
            MemorySideConfig(queue_alpha=-0.1)
        with pytest.raises(ValueError):
            MemorySideConfig().effective_dram_latency(400, 0)


class TestGPUConfig:
    def test_gtx480_preset_is_the_paper_chip(self):
        preset = device_preset("gtx480")
        assert preset.n_sms == 15
        assert preset.sm == SMConfig()
        assert preset.memory_side.n_partitions == 6

    def test_preset_names_sorted(self):
        names = device_preset_names()
        assert "gtx480" in names
        assert list(names) == sorted(names)
        assert set(names) == set(DEVICE_PRESETS)

    def test_unknown_preset_suggests_closest(self):
        with pytest.raises(ValueError, match="did you mean 'gtx480'"):
            device_preset("gtx48")

    def test_to_dict_shape(self):
        d = device_preset("gtx480").to_dict()
        assert d["kind"] == "device_preset"
        assert d["n_sms"] == 15
        assert d["sm"]["max_resident_warps"] == 48
        assert d["memory_side"]["n_partitions"] == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUConfig(n_sms=0)
