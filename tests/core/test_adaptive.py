"""Tests for the Adaptive idle-detect epoch controller."""

import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveIdleDetect
from repro.core.blackout import NaiveBlackoutPolicy
from repro.power.gating import GatingDomain
from repro.power.params import GatingParams

CFG = AdaptiveConfig(epoch_cycles=100, threshold=5, decay_epochs=4,
                     min_idle_detect=5, max_idle_detect=10)


def make_controller(n_domains: int = 2):
    domains = [GatingDomain(f"INT{i}", GatingParams(idle_detect=5),
                            NaiveBlackoutPolicy())
               for i in range(n_domains)]
    return AdaptiveIdleDetect(domains, CFG), domains


def run_epoch(controller: AdaptiveIdleDetect, start: int) -> int:
    """Advance the controller one full epoch; returns next start cycle."""
    for cycle in range(start, start + CFG.epoch_cycles):
        controller.on_cycle(cycle)
    return start + CFG.epoch_cycles


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(epoch_cycles=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(decay_epochs=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(min_idle_detect=8, max_idle_detect=5)
        with pytest.raises(ValueError):
            AdaptiveConfig(threshold=-1)

    def test_needs_domains(self):
        with pytest.raises(ValueError):
            AdaptiveIdleDetect([], CFG)


class TestAdaptation:
    def test_increments_on_noisy_epoch(self):
        controller, domains = make_controller()
        domains[0].stats.critical_wakeups = 4
        domains[1].stats.critical_wakeups = 2  # total 6 > threshold 5
        run_epoch(controller, 0)
        assert controller.idle_detect == 6
        assert all(d.idle_detect == 6 for d in domains)

    def test_quiet_epoch_alone_does_not_decrement(self):
        controller, _ = make_controller()
        run_epoch(controller, 0)
        assert controller.idle_detect == 5  # already at the lower bound

    def test_decay_after_four_quiet_epochs(self):
        controller, domains = make_controller()
        domains[0].stats.critical_wakeups = 10
        start = run_epoch(controller, 0)          # -> 6
        assert controller.idle_detect == 6
        for _ in range(3):
            start = run_epoch(controller, start)  # quiet x3: no change
            assert controller.idle_detect == 6
        start = run_epoch(controller, start)      # 4th quiet: decay
        assert controller.idle_detect == 5

    def test_noisy_epoch_resets_quiet_streak(self):
        controller, domains = make_controller()
        domains[0].stats.critical_wakeups = 10
        start = run_epoch(controller, 0)          # -> 6
        start = run_epoch(controller, start)      # quiet 1
        start = run_epoch(controller, start)      # quiet 2
        domains[0].stats.critical_wakeups += 10   # noisy again -> 7
        start = run_epoch(controller, start)
        assert controller.idle_detect == 7
        for _ in range(3):
            start = run_epoch(controller, start)
        assert controller.idle_detect == 7        # only 3 quiet so far
        run_epoch(controller, start)
        assert controller.idle_detect == 6

    def test_upper_bound_respected(self):
        controller, domains = make_controller()
        start = 0
        for _ in range(10):
            domains[0].stats.critical_wakeups += 100
            start = run_epoch(controller, start)
        assert controller.idle_detect == 10

    def test_lower_bound_respected(self):
        controller, _ = make_controller()
        start = 0
        for _ in range(20):
            start = run_epoch(controller, start)
        assert controller.idle_detect == 5

    def test_counts_are_per_epoch_not_cumulative(self):
        controller, domains = make_controller()
        domains[0].stats.critical_wakeups = 6
        start = run_epoch(controller, 0)          # noisy -> 6
        # No NEW critical wakeups this epoch: must be treated as quiet.
        start = run_epoch(controller, start)
        assert controller.history[-1][1] == 0

    def test_history_records_trajectory(self):
        controller, domains = make_controller()
        domains[0].stats.critical_wakeups = 7
        start = run_epoch(controller, 0)
        run_epoch(controller, start)
        assert controller.history[0] == (0, 7, 6)
        assert controller.history[1][0] == 1

    def test_initial_value_clamped_into_bounds(self):
        domain = GatingDomain("INT0", GatingParams(idle_detect=2),
                              NaiveBlackoutPolicy())
        AdaptiveIdleDetect([domain], CFG)
        assert domain.idle_detect == 5
