"""Tests for the Naive and Coordinated Blackout policies."""

import pytest

from repro.core.blackout import (
    CoordinatedBlackoutPolicy,
    NaiveBlackoutPolicy,
)
from repro.power.gating import GatingDomain
from repro.power.params import GatingParams

PARAMS = GatingParams(idle_detect=3, bet=10, wakeup_delay=2)


def gate_by_idling(domain: GatingDomain, start: int = 0) -> int:
    cycle = start
    while not domain.is_gated(cycle):
        domain.observe(cycle, pipeline_busy=False)
        cycle += 1
    return cycle


class TestNaiveBlackout:
    def test_denies_wakeup_during_blackout(self):
        domain = GatingDomain("INT0", PARAMS, NaiveBlackoutPolicy())
        gated_at = gate_by_idling(domain)
        assert domain.request_wakeup(gated_at + 5) is False
        assert domain.is_gated(gated_at + 5)       # still asleep
        assert domain.stats.denied_wakeups == 1
        assert domain.stats.wakeups == 0

    def test_grants_wakeup_after_bet(self):
        domain = GatingDomain("INT0", PARAMS, NaiveBlackoutPolicy())
        gated_at = gate_by_idling(domain)
        domain.request_wakeup(gated_at + 10)
        assert not domain.is_gated(gated_at + 10)
        assert domain.stats.wakeups == 1
        assert domain.stats.critical_wakeups == 1  # woke exactly at expiry

    def test_no_uncompensated_wakeups_ever(self):
        # The defining Blackout property: every closed window has gated
        # length >= BET, so the loss region is empty.
        domain = GatingDomain("INT0", PARAMS, NaiveBlackoutPolicy())
        gated_at = gate_by_idling(domain)
        for offset in range(10):
            domain.request_wakeup(gated_at + offset)
        domain.request_wakeup(gated_at + 15)
        assert domain.stats.wakeups_uncompensated == 0
        assert domain.stats.compensated_cycles == 5

    def test_gates_by_idle_detect(self):
        domain = GatingDomain("INT0", PARAMS, NaiveBlackoutPolicy())
        gated_at = gate_by_idling(domain)
        assert gated_at == PARAMS.idle_detect


class TestCoordinatedBlackout:
    def make_pair(self, actv):
        state = {"actv": actv}
        policy = CoordinatedBlackoutPolicy(lambda: state["actv"])
        a = GatingDomain("INT0", PARAMS, policy)
        b = GatingDomain("INT1", PARAMS, policy)
        policy.register(a)
        policy.register(b)
        return a, b, state

    def test_registration_limits(self):
        policy = CoordinatedBlackoutPolicy(lambda: 0, max_domains=2)
        a = GatingDomain("INT0", PARAMS, policy)
        policy.register(a)
        with pytest.raises(ValueError, match="twice"):
            policy.register(a)
        b = GatingDomain("INT1", PARAMS, policy)
        policy.register(b)
        with pytest.raises(ValueError, match="at most 2"):
            policy.register(GatingDomain("INT2", PARAMS, policy))
        with pytest.raises(ValueError, match="max_domains"):
            CoordinatedBlackoutPolicy(lambda: 0, max_domains=0)

    def test_n_cluster_generalisation(self):
        # Kepler-style: six clusters coordinate.  Once one gates, the
        # rest follow the occupancy rule instead of idle-detect.
        state = {"actv": 0}
        policy = CoordinatedBlackoutPolicy(lambda: state["actv"])
        domains = [GatingDomain(f"INT{i}", PARAMS, policy)
                   for i in range(6)]
        for domain in domains:
            policy.register(domain)
        gate_by_idling(domains[0])
        # With no waiters, every other cluster gates on its first idle
        # cycle.
        for domain in domains[1:]:
            domain.observe(100, pipeline_busy=True)
            domain.observe(101, pipeline_busy=False)
            assert domain.is_gated(102)

    def test_n_cluster_keeps_one_awake_with_waiters(self):
        state = {"actv": 3}
        policy = CoordinatedBlackoutPolicy(lambda: state["actv"])
        domains = [GatingDomain(f"INT{i}", PARAMS, policy)
                   for i in range(4)]
        for domain in domains:
            policy.register(domain)
        gate_by_idling(domains[0])
        for domain in domains[1:]:
            for cycle in range(100, 160):
                domain.observe(cycle, pipeline_busy=False)
            assert not domain.is_gated(160)

    def test_peer_lookup(self):
        a, b, _ = self.make_pair(actv=0)
        assert a.policy.peer_of(a) is b
        assert a.policy.peer_of(b) is a

    def test_both_on_uses_idle_detect(self):
        a, b, _ = self.make_pair(actv=5)
        gated_at = gate_by_idling(a)
        assert gated_at == PARAMS.idle_detect

    def test_second_cluster_gates_immediately_when_no_waiters(self):
        a, b, state = self.make_pair(actv=0)
        gate_by_idling(a)
        # b has been busy; it goes idle for a single cycle -> gates
        # immediately because a is gated and the subset is empty.
        b.observe(100, pipeline_busy=True)
        b.observe(101, pipeline_busy=False)
        assert b.is_gated(102)

    def test_second_cluster_never_gates_with_waiters(self):
        a, b, state = self.make_pair(actv=1)
        gate_by_idling(a)
        for cycle in range(100, 160):  # way past idle-detect
            b.observe(cycle, pipeline_busy=False)
        assert not b.is_gated(160)

    def test_waiter_arrival_flips_decision(self):
        a, b, state = self.make_pair(actv=0)
        gate_by_idling(a)
        state["actv"] = 2
        for cycle in range(100, 130):
            b.observe(cycle, pipeline_busy=False)
        assert not b.is_gated(130)
        state["actv"] = 0
        b.observe(130, pipeline_busy=False)
        assert b.is_gated(131)

    def test_blackout_wakeup_rules_apply(self):
        a, b, _ = self.make_pair(actv=5)
        gated_at = gate_by_idling(a)
        assert a.request_wakeup(gated_at + 3) is False
        assert a.is_gated(gated_at + 3)
        a.request_wakeup(gated_at + 10)
        assert not a.is_gated(gated_at + 10)

    def test_unpaired_policy_falls_back_to_idle_detect(self):
        policy = CoordinatedBlackoutPolicy(lambda: 0)
        solo = GatingDomain("INT0", PARAMS, policy)
        policy.register(solo)
        gated_at = gate_by_idling(solo)
        assert gated_at == PARAMS.idle_detect
