"""Tests for the declarative technique-spec layer.

Covers the plugin registries (duplicate/unknown names, difflib
suggestions), the derived capability flags that replaced the hidden
membership sets, JSON round-trip losslessness (property-tested), the
cross-process stability of ``spec_hash()`` that keys the persistent
cache, and the validation guards of the spec schema and the structural
config dataclasses.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import AdaptiveConfig
from repro.core.spec import (
    GATING_POLICIES,
    GatingPolicySpec,
    SCHEDULERS,
    SchedulerSpec,
    TECHNIQUES,
    TechniqueSpec,
    as_spec,
    closest_name,
    register_gating_policy,
    register_scheduler,
    register_technique,
    technique_label,
    technique_names,
    technique_spec,
    techniques_by_group,
    validate_names,
)
from repro.core.techniques import Technique, TechniqueConfig
from repro.power.params import GatingParams
from repro.sim.config import MemoryConfig, SMConfig

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def scratch_registry():
    """Track registry additions made by a test and remove them after."""
    before = (set(SCHEDULERS), set(GATING_POLICIES), set(TECHNIQUES))
    yield
    for registry, names in zip((SCHEDULERS, GATING_POLICIES, TECHNIQUES),
                               before):
        for name in set(registry) - names:
            del registry[name]


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------

class TestRegistries:
    def test_builtin_schedulers_registered(self):
        assert {"two_level", "lrr", "fetch_group", "ccws",
                "gates"} <= set(SCHEDULERS)

    def test_builtin_policies_registered(self):
        assert {"none", "conventional", "naive_blackout",
                "coordinated_blackout"} <= set(GATING_POLICIES)

    def test_duplicate_scheduler_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("two_level")(lambda n_slots: None)

    def test_duplicate_policy_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_gating_policy("conventional")(lambda context: None)

    def test_duplicate_technique_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_technique(TechniqueSpec("baseline"))

    def test_unknown_technique_suggests_closest(self):
        with pytest.raises(ValueError) as err:
            technique_spec("warped_gate")
        assert "unknown technique 'warped_gate'" in str(err.value)
        assert "'warped_gates'" in str(err.value)

    def test_unknown_scheduler_suggests_closest(self):
        with pytest.raises(ValueError, match="'two_level'"):
            TechniqueSpec("x", scheduler=SchedulerSpec("two_lvl")).validate()

    def test_groups_cover_paper_and_ablations(self):
        grouped = techniques_by_group()
        assert [s.name for s in grouped["paper"]] == [
            "baseline", "conv_pg", "gates", "naive_blackout",
            "coord_blackout", "warped_gates"]
        assert "lrr_conv_pg" in {s.name for s in grouped["ablation"]}

    def test_every_registered_technique_has_a_description(self):
        for name in technique_names():
            assert technique_spec(name).description, name

    def test_bad_group_rejected(self, scratch_registry):
        with pytest.raises(ValueError, match="group"):
            register_technique(TechniqueSpec("x"), group="nonsense")

    def test_user_registration_runs_by_name(self, scratch_registry):
        spec = register_technique(
            TechniqueSpec("my_combo", scheduler=SchedulerSpec("lrr"),
                          gating_policy=GatingPolicySpec("naive_blackout")))
        assert technique_spec("my_combo") is spec
        assert "my_combo" in technique_names("user")

    def test_enum_members_alias_registered_specs(self):
        for member in Technique:
            assert member.spec.name == member.value


class TestNameValidation:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate benchmark 'a'"):
            validate_names(["a", "b", "a"], ["a", "b"], "benchmark")

    def test_unknown_name_suggested(self):
        with pytest.raises(ValueError) as err:
            validate_names(["hotspto"], ["hotspot", "bfs"], "benchmark")
        assert "'hotspot'" in str(err.value)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_names([], ["a"], "benchmark")

    def test_closest_name_none_when_nothing_close(self):
        assert closest_name("zzzzzz", ["hotspot", "bfs"]) is None


# ----------------------------------------------------------------------
# derived capability flags (the old hidden membership sets)
# ----------------------------------------------------------------------

class TestCapabilityFlags:
    def test_ungated_specs(self):
        for name in ("baseline", "gates_no_pg"):
            spec = technique_spec(name)
            assert not spec.gated
            assert not spec.blackout_aware

    def test_warped_gates_full_system(self):
        spec = technique_spec("warped_gates")
        assert spec.gated
        assert spec.blackout_aware
        assert spec.adaptive_enabled

    def test_naive_blackout_is_not_coordinated(self):
        spec = technique_spec("naive_blackout")
        assert spec.gated
        assert not spec.blackout_aware

    def test_coordination_needs_scheduler_support(self):
        # CCWS does not track blacked-out units even under a
        # coordinated policy — coordination is a property of the pair.
        spec = TechniqueSpec(
            "ccws_coord", scheduler=SchedulerSpec("ccws"),
            gating_policy=GatingPolicySpec("coordinated_blackout"))
        assert spec.gated
        assert not spec.blackout_aware


# ----------------------------------------------------------------------
# round-trip + hash stability
# ----------------------------------------------------------------------

class TestRoundTrip:
    @pytest.mark.parametrize("name", technique_names())
    def test_registered_specs_round_trip(self, name):
        spec = technique_spec(name)
        clone = TechniqueSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_description_not_part_of_identity(self):
        spec = technique_spec("warped_gates")
        relabelled = TechniqueSpec.from_dict(
            {**spec.to_dict(), "description": "different words"})
        assert relabelled.spec_hash() == spec.spec_hash()

    @settings(max_examples=50, deadline=None)
    @given(
        scheduler=st.sampled_from(["two_level", "lrr", "gates"]),
        policy=st.sampled_from(["none", "conventional", "naive_blackout",
                                "coordinated_blackout"]),
        idle_detect=st.integers(min_value=0, max_value=10),
        bet=st.integers(min_value=1, max_value=24),
        wakeup=st.integers(min_value=0, max_value=9),
        adaptive=st.booleans(),
        gate_sfu=st.booleans(),
        mshr=st.integers(min_value=1, max_value=64),
    )
    def test_property_every_spec_round_trips(self, scheduler, policy,
                                             idle_detect, bet, wakeup,
                                             adaptive, gate_sfu, mshr):
        spec = TechniqueSpec(
            "prop_case",
            scheduler=SchedulerSpec(scheduler),
            gating_policy=GatingPolicySpec(policy),
            gating=GatingParams(idle_detect=idle_detect, bet=bet,
                                wakeup_delay=wakeup),
            adaptive=AdaptiveConfig() if adaptive else None,
            gate_sfu=gate_sfu,
            sm_overrides={"memory": {"mshr_entries": mshr}},
        ).validate()
        clone = TechniqueSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        assert clone.to_dict() == spec.to_dict()

    def test_sm_override_key_order_does_not_change_hash(self):
        a = TechniqueSpec("x", sm_overrides={"issue_width": 1,
                                             "fetch_width": 2})
        b = TechniqueSpec("x", sm_overrides={"fetch_width": 2,
                                             "issue_width": 1})
        assert a.spec_hash() == b.spec_hash()

    def test_spec_hash_stable_across_process_restart(self):
        """The hash keys .repro-cache/ — it must survive a fresh
        interpreter (no dict-order or enum-identity dependence)."""
        names = ("baseline", "warped_gates", "ccws_conv_pg")
        script = (
            "from repro.core.spec import technique_spec\n"
            "import repro.core.techniques\n"
            "print(','.join(technique_spec(n).spec_hash() "
            f"for n in {names!r}))\n")
        fresh = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": REPO_SRC, "PYTHONHASHSEED": "random"})
        assert fresh.stdout.strip() == ",".join(
            technique_spec(n).spec_hash() for n in names)


# ----------------------------------------------------------------------
# schema + config validation errors
# ----------------------------------------------------------------------

class TestSpecValidationErrors:
    def test_bad_scheduler_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            TechniqueSpec.from_dict({"name": "x", "scheduler": "gatez"})

    def test_bad_policy_name(self):
        with pytest.raises(ValueError, match="unknown gating policy"):
            TechniqueSpec.from_dict({"name": "x",
                                     "gating_policy": "blakout"})

    def test_unknown_scheduler_param(self):
        with pytest.raises(ValueError, match="does not accept"):
            TechniqueSpec.from_dict({
                "name": "x",
                "scheduler": {"name": "two_level",
                              "params": {"group_size": 4}}})

    def test_negative_bet(self):
        with pytest.raises(ValueError, match="bet must be >= 1"):
            TechniqueSpec.from_dict({"name": "x",
                                     "gating": {"bet": -1}})

    def test_out_of_range_idle_detect_bounds(self):
        with pytest.raises(ValueError,
                           match="min_idle_detect <= max_idle_detect"):
            TechniqueSpec.from_dict({
                "name": "x",
                "adaptive": {"min_idle_detect": 9, "max_idle_detect": 2}})

    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            TechniqueSpec.from_dict({"name": "x", "sched": "gates"})

    def test_missing_name(self):
        with pytest.raises(ValueError, match="missing its 'name'"):
            TechniqueSpec.from_dict({"scheduler": "gates"})

    def test_non_object_document(self):
        with pytest.raises(ValueError, match="JSON object"):
            TechniqueSpec.from_dict(["not", "a", "spec"])

    def test_bad_name_charset(self):
        with pytest.raises(ValueError, match="may only contain"):
            TechniqueSpec("no spaces allowed")

    def test_unknown_sm_override_field(self):
        with pytest.raises(ValueError, match="unknown SMConfig field"):
            TechniqueSpec.from_dict({
                "name": "x", "sm_overrides": {"warp_count": 64}})

    def test_unknown_memory_override_field(self):
        with pytest.raises(ValueError, match="unknown MemoryConfig"):
            TechniqueSpec.from_dict({
                "name": "x",
                "sm_overrides": {"memory": {"l1_size_kb": 64}}})

    def test_bad_sm_override_value_fires_config_guard(self):
        with pytest.raises(ValueError, match="issue_width"):
            TechniqueSpec.from_dict({
                "name": "x", "sm_overrides": {"issue_width": 0}})

    def test_sm_overrides_applied_on_top_of_run_config(self):
        spec = TechniqueSpec(
            "x", sm_overrides={"n_sp_clusters": 4,
                               "memory": {"mshr_entries": 8}})
        merged = spec.apply_sm_overrides(SMConfig(issue_width=1))
        assert merged.n_sp_clusters == 4
        assert merged.issue_width == 1
        assert merged.memory.mshr_entries == 8
        assert merged.memory.l1_ways == MemoryConfig().l1_ways


class TestSMConfigGuards:
    @pytest.mark.parametrize("kwargs,match", [
        ({"n_sp_clusters": 0}, "SP cluster"),
        ({"issue_width": 0}, "issue_width"),
        ({"fetch_width": 0}, "fetch_width"),
        ({"ibuffer_entries": 0}, "ibuffer_entries"),
        ({"max_resident_warps": 0}, "max_resident_warps"),
        ({"int_initiation_interval": 0}, "int_initiation_interval"),
        ({"sfu_initiation_interval": 0}, "sfu_initiation_interval"),
        ({"rf_banks": -1}, "rf_banks"),
        ({"rf_ports_per_bank": 0}, "rf_ports_per_bank"),
        ({"max_cycles": 0}, "max_cycles"),
    ])
    def test_post_init_guards(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            SMConfig(**kwargs)


class TestMemoryConfigGuards:
    @pytest.mark.parametrize("kwargs,match", [
        ({"l1_sets": 0}, "power of two"),
        ({"l1_sets": 48}, "power of two"),
        ({"l1_ways": 0}, "l1_ways"),
        ({"mshr_entries": 0}, "mshr_entries"),
        ({"dram_jitter": 1.5}, "dram_jitter"),
        ({"dram_jitter": -0.1}, "dram_jitter"),
    ])
    def test_post_init_guards(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            MemoryConfig(**kwargs)


# ----------------------------------------------------------------------
# resolution helpers
# ----------------------------------------------------------------------

class TestAsSpec:
    def test_accepts_every_technique_shape(self):
        expected = technique_spec("warped_gates")
        assert as_spec(expected) is expected
        assert as_spec("warped_gates") == expected
        assert as_spec(Technique.WARPED_GATES) == expected

    def test_technique_config_lowers_via_to_spec(self):
        config = TechniqueConfig(Technique.WARPED_GATES)
        assert as_spec(config).spec_hash() == \
            technique_spec("warped_gates").spec_hash()

    def test_config_overrides_reach_the_spec(self):
        config = TechniqueConfig(Technique.GATES,
                                 gating=GatingParams(bet=19),
                                 max_priority_cycles=512)
        spec = as_spec(config)
        assert spec.gating.bet == 19
        assert spec.scheduler.param_dict() == {"max_priority_cycles": 512}
        assert spec.spec_hash() != technique_spec("gates").spec_hash()

    def test_rejects_garbage(self):
        with pytest.raises(TypeError, match="cannot resolve"):
            as_spec(42)

    def test_labels(self):
        assert technique_label(Technique.WARPED_GATES) == "warped_gates"
        assert technique_label("warped_gates") == "warped_gates"
        assert technique_label(technique_spec("gates")) == "gates"
