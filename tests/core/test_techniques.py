"""Tests for the technique registry and SM wiring."""

import pytest

from repro.core.adaptive import AdaptiveIdleDetect
from repro.core.blackout import (
    CoordinatedBlackoutPolicy,
    NaiveBlackoutPolicy,
)
from repro.core.gates import GatesScheduler
from repro.core.techniques import (
    PAPER_TECHNIQUES,
    Technique,
    TechniqueConfig,
    build_sm,
    run_benchmark,
)
from repro.power.gating import ConventionalPolicy
from repro.sim.sched.two_level import (
    LooseRoundRobinScheduler,
    TwoLevelScheduler,
)

from tests.conftest import SMALL_SM, TEST_SCALE


class TestWiring:
    def test_baseline_has_no_domains(self, tiny_kernel):
        sm = build_sm(tiny_kernel, TechniqueConfig(Technique.BASELINE),
                      sm_config=SMALL_SM)
        assert sm.domains == {}
        assert isinstance(sm.scheduler, TwoLevelScheduler)

    def test_conv_pg_wiring(self, tiny_kernel):
        sm = build_sm(tiny_kernel, TechniqueConfig(Technique.CONV_PG),
                      sm_config=SMALL_SM)
        assert set(sm.domains) == {"INT0", "INT1", "FP0", "FP1"}
        assert all(isinstance(d.policy, ConventionalPolicy)
                   for d in sm.domains.values())
        assert isinstance(sm.scheduler, TwoLevelScheduler)

    def test_gates_uses_gates_scheduler(self, tiny_kernel):
        sm = build_sm(tiny_kernel, TechniqueConfig(Technique.GATES),
                      sm_config=SMALL_SM)
        assert isinstance(sm.scheduler, GatesScheduler)
        assert not sm.scheduler.blackout_aware
        assert all(isinstance(d.policy, ConventionalPolicy)
                   for d in sm.domains.values())

    def test_naive_blackout_policy(self, tiny_kernel):
        sm = build_sm(tiny_kernel,
                      TechniqueConfig(Technique.NAIVE_BLACKOUT),
                      sm_config=SMALL_SM)
        assert all(isinstance(d.policy, NaiveBlackoutPolicy)
                   for d in sm.domains.values())

    def test_coordinated_pairs_share_policy_per_type(self, tiny_kernel):
        sm = build_sm(tiny_kernel,
                      TechniqueConfig(Technique.COORD_BLACKOUT),
                      sm_config=SMALL_SM)
        assert sm.domains["INT0"].policy is sm.domains["INT1"].policy
        assert sm.domains["FP0"].policy is sm.domains["FP1"].policy
        assert sm.domains["INT0"].policy is not sm.domains["FP0"].policy
        assert isinstance(sm.domains["INT0"].policy,
                          CoordinatedBlackoutPolicy)
        assert sm.scheduler.blackout_aware

    def test_warped_gates_adds_adaptive_hooks(self, tiny_kernel):
        sm = build_sm(tiny_kernel,
                      TechniqueConfig(Technique.WARPED_GATES),
                      sm_config=SMALL_SM)
        adaptive = [h for h in sm.hooks
                    if isinstance(h, AdaptiveIdleDetect)]
        assert len(adaptive) == 2  # one per unit type

    def test_blackout_no_gates_keeps_baseline_scheduler(self, tiny_kernel):
        sm = build_sm(tiny_kernel,
                      TechniqueConfig(Technique.BLACKOUT_NO_GATES),
                      sm_config=SMALL_SM)
        assert isinstance(sm.scheduler, TwoLevelScheduler)
        assert all(isinstance(d.policy, NaiveBlackoutPolicy)
                   for d in sm.domains.values())

    def test_lrr_ablation(self, tiny_kernel):
        sm = build_sm(tiny_kernel, TechniqueConfig(Technique.LRR_CONV_PG),
                      sm_config=SMALL_SM)
        assert isinstance(sm.scheduler, LooseRoundRobinScheduler)

    def test_gates_no_pg_has_no_domains(self, tiny_kernel):
        sm = build_sm(tiny_kernel, TechniqueConfig(Technique.GATES_NO_PG),
                      sm_config=SMALL_SM)
        assert isinstance(sm.scheduler, GatesScheduler)
        assert sm.domains == {}

    def test_sfu_gating_optional(self, tiny_kernel):
        sm = build_sm(tiny_kernel,
                      TechniqueConfig(Technique.CONV_PG, gate_sfu=True),
                      sm_config=SMALL_SM)
        assert "SFU" in sm.domains

    def test_paper_techniques_tuple(self):
        assert PAPER_TECHNIQUES == (
            Technique.CONV_PG, Technique.GATES, Technique.NAIVE_BLACKOUT,
            Technique.COORD_BLACKOUT, Technique.WARPED_GATES)


class TestRunBenchmark:
    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            run_benchmark("nonexistent",
                          TechniqueConfig(Technique.BASELINE))

    def test_runs_and_labels(self):
        result = run_benchmark("hotspot",
                               TechniqueConfig(Technique.WARPED_GATES),
                               scale=TEST_SCALE)
        assert result.technique == "warped_gates"
        assert result.kernel_name == "hotspot"
        assert result.cycles > 0

    def test_trace_identical_across_techniques(self):
        a = run_benchmark("hotspot", TechniqueConfig(Technique.BASELINE),
                          scale=TEST_SCALE)
        b = run_benchmark("hotspot",
                          TechniqueConfig(Technique.WARPED_GATES),
                          scale=TEST_SCALE)
        assert a.stats.instructions_retired == b.stats.instructions_retired
