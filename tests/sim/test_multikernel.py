"""Tests for multi-kernel launch sequences (barriers + idle gaps)."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import int_op
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.frontend import MultiKernelLauncher
from repro.sim.sm import StreamingMultiprocessor

CONFIG = SMConfig(max_resident_warps=4,
                  memory=MemoryConfig(dram_jitter=0.0))


def make_kernel(name: str, n_warps: int = 2,
                n_insts: int = 4) -> KernelTrace:
    warps = tuple(
        WarpTrace(i, tuple(int_op(dest=j % 8, srcs=((j - 1) % 8,))
                           for j in range(n_insts)))
        for i in range(n_warps))
    return KernelTrace(name=name, warps=warps, max_resident_warps=8)


class TestLauncherUnit:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiKernelLauncher([], max_resident=4)
        with pytest.raises(ValueError, match="gap_cycles"):
            MultiKernelLauncher([make_kernel("a")], max_resident=4,
                                gap_cycles=-1)

    def test_remaining_spans_all_kernels(self):
        launcher = MultiKernelLauncher(
            [make_kernel("a", 2), make_kernel("b", 3)], max_resident=4)
        assert launcher.remaining == 5
        launcher.pop_next(0, 0)
        assert launcher.remaining == 4

    def test_barrier_blocks_next_kernel(self):
        launcher = MultiKernelLauncher(
            [make_kernel("a", 1), make_kernel("b", 1)], max_resident=4)
        assert launcher.pop_next(0, 0) is not None  # kernel a's warp
        # Kernel a fully launched but still resident: barrier holds.
        assert launcher.pop_next(1, 1) is None
        assert launcher.current_kernel_index == 0
        # Once drained (resident=0), kernel b launches.
        assert launcher.pop_next(2, 0) is not None
        assert launcher.current_kernel_index == 1

    def test_gap_delays_next_kernel(self):
        launcher = MultiKernelLauncher(
            [make_kernel("a", 1), make_kernel("b", 1)],
            max_resident=4, gap_cycles=10)
        launcher.pop_next(0, 0)
        assert launcher.pop_next(5, 0) is None    # gap starts at 5
        assert launcher.pop_next(14, 0) is None   # 5 + 10 = 15
        assert launcher.pop_next(15, 0) is not None

    def test_exhaustion(self):
        launcher = MultiKernelLauncher([make_kernel("a", 1)],
                                       max_resident=4)
        launcher.pop_next(0, 0)
        assert launcher.pop_next(1, 0) is None
        assert launcher.remaining == 0


class TestEndToEnd:
    def test_all_kernels_complete(self):
        kernels = [make_kernel("a", 3), make_kernel("b", 2)]
        sm = build_sm(kernels, TechniqueConfig(Technique.BASELINE),
                      sm_config=CONFIG)
        result = sm.run()
        total = sum(k.total_instructions for k in kernels)
        assert result.stats.instructions_retired == total
        assert result.kernel_name == "a+b"

    def test_gap_adds_idle_cycles(self):
        kernels = [make_kernel("a", 2), make_kernel("b", 2)]
        fast = build_sm([k for k in kernels],
                        TechniqueConfig(Technique.BASELINE),
                        sm_config=CONFIG).run()
        slow = build_sm([k for k in kernels],
                        TechniqueConfig(Technique.BASELINE),
                        sm_config=CONFIG, kernel_gap_cycles=100).run()
        assert slow.cycles >= fast.cycles + 100

    def test_gap_creates_sm_wide_idle_window(self):
        kernels = [make_kernel("a", 2), make_kernel("b", 2)]
        sm = build_sm(kernels, TechniqueConfig(Technique.BASELINE),
                      sm_config=CONFIG, kernel_gap_cycles=60)
        result = sm.run()
        tracker = result.stats.idle_trackers[
            StreamingMultiprocessor.SM_WIDE_TRACKER]
        # The inter-kernel gap shows up as one long whole-SM idle run.
        assert max(tracker.histogram) >= 60

    def test_gating_sleeps_through_the_gap(self):
        kernels = [make_kernel("a", 2), make_kernel("b", 2)]
        sm = build_sm(kernels,
                      TechniqueConfig(Technique.NAIVE_BLACKOUT),
                      sm_config=CONFIG, kernel_gap_cycles=200)
        result = sm.run()
        for stats in result.domain_stats.values():
            assert stats.gated_cycles >= 150

    def test_single_kernel_path_unchanged(self):
        kernel = make_kernel("solo", 2)
        a = build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                     sm_config=CONFIG).run()
        b = build_sm([kernel], TechniqueConfig(Technique.BASELINE),
                     sm_config=CONFIG).run()
        assert a.cycles == b.cycles
        assert a.kernel_name == b.kernel_name == "solo"

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            build_sm([], TechniqueConfig(Technique.BASELINE),
                     sm_config=CONFIG)
