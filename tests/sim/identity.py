"""Canonical serialization + digests pinning simulator bit-identity.

The busy-cycle hot-loop optimization (incremental ready-set scheduling,
span-based stats) must be *pinned bit-identical* to the pre-optimization
cycle loop.  This module turns a :class:`~repro.sim.sm.SimResult` (and
an instrumented run's ordered event stream) into a canonical JSON form
and a sha256 digest over it.

The reference digests in ``tests/sim/golden/identity.json`` were
generated from the pre-optimization loop; ``test_golden_identity.py``
recomputes them on every run, so any observable drift in the scheduler,
scoreboard, stats, or gating paths fails loudly with the technique and
benchmark named.

Regenerate (only when an *intentional* behaviour change lands) with::

    PYTHONPATH=src:. python tests/sim/identity.py --write
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "identity.json"

#: The grid the golden suite pins: every paper technique plus the
#: ungated baseline, over one balanced and one memory-bound benchmark.
GOLDEN_TECHNIQUES = ("baseline", "gates", "naive_blackout",
                     "coord_blackout", "warped_gates")
GOLDEN_BENCHMARKS = ("hotspot", "bfs")
GOLDEN_SCALE = 0.5

#: Device preset pinned at chip scale (the paper's 15-SM GTX480).
GOLDEN_DEVICE_PRESET = "gtx480"


def _canon(value):
    """Recursively convert a value into JSON-stable primitives."""
    if isinstance(value, dict):
        return {str(_canon(k)): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, float):
        # repr() is the shortest round-trip form — exact for identical
        # arithmetic, which is precisely what bit-identity means here.
        return repr(value)
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canon(dataclasses.asdict(value))
    if hasattr(value, "name"):  # enums (OpClass, ExecUnitKind, ...)
        return value.name
    return str(value)


def canonical_result(result) -> dict:
    """Everything observable about one run, in canonical form."""
    stats = result.stats
    return _canon({
        "kernel_name": result.kernel_name,
        "technique": result.technique,
        "cycles": result.cycles,
        "stats": {
            "cycles": stats.cycles,
            "instructions_issued": stats.instructions_issued,
            "instructions_retired": stats.instructions_retired,
            "fetched": stats.fetched,
            "issued_by_class": {cls.name: n
                                for cls, n in stats.issued_by_class.items()},
            "stalls": dataclasses.asdict(stats.stalls),
            "active_warp_sum": stats.active_warp_sum,
            "active_warp_max": stats.active_warp_max,
            "pending_warp_sum": stats.pending_warp_sum,
            "idle_trackers": {
                name: {"busy": t.busy_cycles, "idle": t.idle_cycles,
                       "histogram": {str(k): v
                                     for k, v in sorted(t.histogram.items())}}
                for name, t in sorted(stats.idle_trackers.items())},
        },
        "memory": result.memory,
        "domain_stats": {name: result.domain_stats[name]
                         for name in sorted(result.domain_stats)},
        "idle_detect_final": result.idle_detect_final,
        "pipeline_issues": result.pipeline_issues,
        "pipeline_lane_work": result.pipeline_lane_work,
        "warp_records": [dataclasses.asdict(r) for r in result.warp_records],
        "metrics": result.metrics,
    })


def result_digest(result) -> str:
    """sha256 over the canonical JSON of one run."""
    payload = json.dumps(canonical_result(result), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_events(events) -> list:
    """An instrumented run's event stream in canonical form, ordered."""
    return [[type(e).__name__, _canon(dataclasses.asdict(e))]
            for e in events]


def event_stream_digest(events) -> str:
    """sha256 over the ordered canonical event stream."""
    payload = json.dumps(canonical_events(events), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# golden grid runners (shared by the test and the regeneration entry)
# ----------------------------------------------------------------------

def run_golden_cell(benchmark: str, technique_value: str,
                    fast_forward: bool = False,
                    dense_kernel: "bool | None" = None):
    """One single-SM golden run (serial by default).

    ``fast_forward=True`` runs the same cell through the event-driven
    span core; ``dense_kernel=True`` forces it through the dense-step
    kernel (:mod:`repro.sim.kernel`).  Either flavour's digest must
    equal the serial one — those equalities are what pin the alternate
    execution paths bit-identical.
    """
    from repro.core.techniques import (Technique, TechniqueConfig,
                                       run_benchmark)
    return run_benchmark(benchmark, TechniqueConfig(Technique(technique_value)),
                         seed=0, scale=GOLDEN_SCALE,
                         fast_forward=fast_forward,
                         dense_kernel=dense_kernel)


def run_golden_device(benchmark: str, technique_value: str,
                      fast_forward: bool = False):
    """One full-chip golden run on the pinned device preset.

    Serial and fast-forward flavours must digest identically; the
    committed reference is computed from the serial core.
    """
    from repro.core.device import device_preset
    from repro.core.techniques import Technique, TechniqueConfig
    from repro.sim.gpu import GPU
    from repro.workloads.registry import build_kernel
    from repro.workloads.specs import get_profile

    kernel = build_kernel(benchmark, seed=0, scale=GOLDEN_SCALE)
    preset = device_preset(GOLDEN_DEVICE_PRESET)
    gpu = GPU(preset.n_sms,
              config=TechniqueConfig(Technique(technique_value)),
              sm_config=preset.sm,
              dram_latency=get_profile(benchmark).dram_latency,
              memory_side=preset.memory_side,
              fast_forward=fast_forward)
    return gpu.run(kernel)


def canonical_device_result(result) -> dict:
    """Everything observable about one multi-SM run, in canonical form.

    Per-SM results are canonicalised in part order (the aggregation
    order both the serial and engine paths guarantee), so the digest
    pins the whole fan-out, not just the chip-level maxima.
    """
    return _canon({
        "kernel_name": result.kernel_name,
        "technique": result.technique,
        "cycles": result.cycles,
        "total_instructions": result.total_instructions,
        "sm_results": [canonical_result(r) for r in result.sm_results],
    })


def device_result_digest(result) -> str:
    """sha256 over the canonical JSON of one multi-SM run."""
    payload = json.dumps(canonical_device_result(result), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_instrumented_golden(benchmark: str = "hotspot",
                            technique_value: str = "warped_gates"):
    """One bus-enabled golden run; returns (result, events)."""
    from repro.core.techniques import Technique, TechniqueConfig, build_sm
    from repro.obs.bus import EventBus
    from repro.workloads.registry import build_kernel
    from repro.workloads.specs import get_profile

    kernel = build_kernel(benchmark, seed=0, scale=GOLDEN_SCALE)
    bus = EventBus(enabled=True)
    sm = build_sm(kernel, TechniqueConfig(Technique(technique_value)),
                  dram_latency=get_profile(benchmark).dram_latency, bus=bus)
    events = []
    bus.subscribe(events.append)
    return sm.run(), events


def compute_goldens() -> dict:
    """Digest every golden cell plus the instrumented event stream.

    ``spec/<technique>`` entries pin each golden technique's canonical
    :meth:`~repro.core.spec.TechniqueSpec.spec_hash` — the identity
    that keys the persistent run cache and the memoising runner — so a
    serialization or registration drift fails alongside any simulated
    drift it would cause.
    """
    from repro.core.spec import technique_spec

    digests = {}
    for benchmark in GOLDEN_BENCHMARKS:
        for technique in GOLDEN_TECHNIQUES:
            result = run_golden_cell(benchmark, technique)
            digests[f"{benchmark}/{technique}"] = result_digest(result)
            device = run_golden_device(benchmark, technique)
            digests[f"device/{benchmark}/{technique}"] = \
                device_result_digest(device)
            # The dense-step kernel must reproduce the serial digest
            # exactly; the entry is recorded under its own key so a
            # kernel-only drift is named by the failing key.
            forced = run_golden_cell(benchmark, technique,
                                     dense_kernel=True)
            digests[f"kernel/{benchmark}/{technique}"] = \
                result_digest(forced)
    result, events = run_instrumented_golden()
    digests["events/hotspot/warped_gates"] = event_stream_digest(events)
    digests["events/hotspot/warped_gates/result"] = result_digest(result)
    for technique in GOLDEN_TECHNIQUES:
        digests[f"spec/{technique}"] = technique_spec(technique).spec_hash()
    return digests


def load_goldens() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


if __name__ == "__main__":
    import sys

    digests = compute_goldens()
    if "--write" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")
    else:
        print(json.dumps(digests, indent=2, sort_keys=True))
