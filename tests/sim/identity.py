"""Canonical serialization + digests pinning simulator bit-identity.

The busy-cycle hot-loop optimization (incremental ready-set scheduling,
span-based stats) must be *pinned bit-identical* to the pre-optimization
cycle loop.  This module turns a :class:`~repro.sim.sm.SimResult` (and
an instrumented run's ordered event stream) into a canonical JSON form
and a sha256 digest over it.

The reference digests in ``tests/sim/golden/identity.json`` were
generated from the pre-optimization loop; ``test_golden_identity.py``
recomputes them on every run, so any observable drift in the scheduler,
scoreboard, stats, or gating paths fails loudly with the technique and
benchmark named.

Regenerate (only when an *intentional* behaviour change lands) with::

    PYTHONPATH=src:. python tests/sim/identity.py --write
"""

from __future__ import annotations

import json
from pathlib import Path

# Canonicalisation and digests now live in the product tree (the
# simulation service serves digests over HTTP); re-exported here so the
# golden suite and its historical import path keep working unchanged.
from repro.core.digest import (  # noqa: F401 - re-exported test API
    canonical_device_result,
    canonical_events,
    canonical_result,
    device_result_digest,
    event_stream_digest,
    result_digest,
)

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "identity.json"

#: The grid the golden suite pins: every paper technique plus the
#: ungated baseline, over one balanced and one memory-bound benchmark.
GOLDEN_TECHNIQUES = ("baseline", "gates", "naive_blackout",
                     "coord_blackout", "warped_gates")
GOLDEN_BENCHMARKS = ("hotspot", "bfs")
GOLDEN_SCALE = 0.5

#: Device preset pinned at chip scale (the paper's 15-SM GTX480).
GOLDEN_DEVICE_PRESET = "gtx480"


# ----------------------------------------------------------------------
# golden grid runners (shared by the test and the regeneration entry)
# ----------------------------------------------------------------------

def run_golden_cell(benchmark: str, technique_value: str,
                    fast_forward: bool = False,
                    dense_kernel: "bool | None" = None):
    """One single-SM golden run (serial by default).

    ``fast_forward=True`` runs the same cell through the event-driven
    span core; ``dense_kernel=True`` forces it through the dense-step
    kernel (:mod:`repro.sim.kernel`).  Either flavour's digest must
    equal the serial one — those equalities are what pin the alternate
    execution paths bit-identical.
    """
    from repro.core.techniques import (Technique, TechniqueConfig,
                                       run_benchmark)
    return run_benchmark(benchmark, TechniqueConfig(Technique(technique_value)),
                         seed=0, scale=GOLDEN_SCALE,
                         fast_forward=fast_forward,
                         dense_kernel=dense_kernel)


def run_golden_device(benchmark: str, technique_value: str,
                      fast_forward: bool = False):
    """One full-chip golden run on the pinned device preset.

    Serial and fast-forward flavours must digest identically; the
    committed reference is computed from the serial core.
    """
    from repro.core.device import device_preset
    from repro.core.techniques import Technique, TechniqueConfig
    from repro.sim.gpu import GPU
    from repro.workloads.registry import build_kernel
    from repro.workloads.specs import get_profile

    kernel = build_kernel(benchmark, seed=0, scale=GOLDEN_SCALE)
    preset = device_preset(GOLDEN_DEVICE_PRESET)
    gpu = GPU(preset.n_sms,
              config=TechniqueConfig(Technique(technique_value)),
              sm_config=preset.sm,
              dram_latency=get_profile(benchmark).dram_latency,
              memory_side=preset.memory_side,
              fast_forward=fast_forward)
    return gpu.run(kernel)


def run_instrumented_golden(benchmark: str = "hotspot",
                            technique_value: str = "warped_gates"):
    """One bus-enabled golden run; returns (result, events)."""
    from repro.core.techniques import Technique, TechniqueConfig, build_sm
    from repro.obs.bus import EventBus
    from repro.workloads.registry import build_kernel
    from repro.workloads.specs import get_profile

    kernel = build_kernel(benchmark, seed=0, scale=GOLDEN_SCALE)
    bus = EventBus(enabled=True)
    sm = build_sm(kernel, TechniqueConfig(Technique(technique_value)),
                  dram_latency=get_profile(benchmark).dram_latency, bus=bus)
    events = []
    bus.subscribe(events.append)
    return sm.run(), events


def compute_goldens() -> dict:
    """Digest every golden cell plus the instrumented event stream.

    ``spec/<technique>`` entries pin each golden technique's canonical
    :meth:`~repro.core.spec.TechniqueSpec.spec_hash` — the identity
    that keys the persistent run cache and the memoising runner — so a
    serialization or registration drift fails alongside any simulated
    drift it would cause.
    """
    from repro.core.spec import technique_spec

    digests = {}
    for benchmark in GOLDEN_BENCHMARKS:
        for technique in GOLDEN_TECHNIQUES:
            result = run_golden_cell(benchmark, technique)
            digests[f"{benchmark}/{technique}"] = result_digest(result)
            device = run_golden_device(benchmark, technique)
            digests[f"device/{benchmark}/{technique}"] = \
                device_result_digest(device)
            # The dense-step kernel must reproduce the serial digest
            # exactly; the entry is recorded under its own key so a
            # kernel-only drift is named by the failing key.
            forced = run_golden_cell(benchmark, technique,
                                     dense_kernel=True)
            digests[f"kernel/{benchmark}/{technique}"] = \
                result_digest(forced)
    result, events = run_instrumented_golden()
    digests["events/hotspot/warped_gates"] = event_stream_digest(events)
    digests["events/hotspot/warped_gates/result"] = result_digest(result)
    for technique in GOLDEN_TECHNIQUES:
        digests[f"spec/{technique}"] = technique_spec(technique).spec_hash()
    return digests


def load_goldens() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


if __name__ == "__main__":
    import sys

    digests = compute_goldens()
    if "--write" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
        print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")
    else:
        print(json.dumps(digests, indent=2, sort_keys=True))
