"""Validation tests for simulator configuration objects."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.memory import MemoryStats


class TestMemoryConfig:
    def test_defaults_are_fermi_like(self):
        config = MemoryConfig()
        assert config.l1_sets * config.l1_ways == 128  # 16KB / 128B lines
        assert config.dram_latency == 400

    def test_sets_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MemoryConfig(l1_sets=12)
        with pytest.raises(ValueError):
            MemoryConfig(l1_sets=0)

    def test_ways_and_mshr_positive(self):
        with pytest.raises(ValueError):
            MemoryConfig(l1_ways=0)
        with pytest.raises(ValueError):
            MemoryConfig(mshr_entries=0)

    def test_jitter_range(self):
        with pytest.raises(ValueError):
            MemoryConfig(dram_jitter=1.0)
        with pytest.raises(ValueError):
            MemoryConfig(dram_jitter=-0.1)
        MemoryConfig(dram_jitter=0.0)  # boundary OK

    def test_frozen_and_hashable(self):
        assert hash(MemoryConfig()) == hash(MemoryConfig())


class TestSMConfig:
    def test_defaults_match_paper_setup(self):
        config = SMConfig()
        assert config.n_sp_clusters == 2
        assert config.issue_width == 2
        assert config.max_resident_warps == 48
        assert config.int_initiation_interval == 1

    @pytest.mark.parametrize("field,value", [
        ("n_sp_clusters", 0),
        ("issue_width", 0),
        ("fetch_width", 0),
        ("ibuffer_entries", 0),
        ("max_resident_warps", 0),
        ("int_initiation_interval", 0),
        ("sfu_initiation_interval", 0),
        ("ldst_initiation_interval", 0),
        ("max_cycles", 0),
        ("rf_banks", -1),
        ("rf_ports_per_bank", 0),
    ])
    def test_field_validation(self, field, value):
        with pytest.raises(ValueError):
            SMConfig(**{field: value})

    def test_rf_disabled_by_zero(self):
        assert SMConfig(rf_banks=0).rf_banks == 0


class TestTechniqueConfig:
    def test_label(self):
        assert TechniqueConfig(Technique.CONV_PG).label == "conv_pg"

    def test_defaults(self):
        config = TechniqueConfig()
        assert config.technique is Technique.WARPED_GATES
        assert config.gate_sfu is False
        assert config.max_priority_cycles is None

    def test_hashable_for_runner_cache(self):
        assert hash(TechniqueConfig()) == hash(TechniqueConfig())


class TestMemoryStats:
    def test_miss_rate_no_probes(self):
        assert MemoryStats().miss_rate == 0.0

    def test_miss_rate_counts_merges_as_misses(self):
        stats = MemoryStats(hits=6, misses=3, merged_misses=1)
        assert stats.miss_rate == pytest.approx(0.4)
