"""Tests for the banked register-file model."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import int_op
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.regfile import RegisterFileModel


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterFileModel(banks=0)
        with pytest.raises(ValueError):
            RegisterFileModel(banks=4, ports_per_bank=0)

    def test_bank_interleave_is_warp_skewed(self):
        rf = RegisterFileModel(banks=8)
        assert rf.bank_of(warp_slot=0, reg=3) == 3
        assert rf.bank_of(warp_slot=1, reg=3) == 4
        assert rf.bank_of(warp_slot=0, reg=11) == 3

    def test_no_conflict_for_distinct_banks(self):
        rf = RegisterFileModel(banks=8)
        rf.begin_cycle()
        assert rf.charge(0, int_op(dest=7, srcs=(0, 1))) == 0
        assert rf.charge(0, int_op(dest=7, srcs=(2, 3))) == 0
        assert rf.total_conflict_cycles == 0

    def test_same_bank_reads_serialise(self):
        rf = RegisterFileModel(banks=8)
        rf.begin_cycle()
        # Registers 0 and 8 share bank 0 for warp 0.
        assert rf.charge(0, int_op(dest=7, srcs=(0, 8))) == 1
        assert rf.total_conflict_cycles == 1

    def test_cross_instruction_conflicts(self):
        rf = RegisterFileModel(banks=8)
        rf.begin_cycle()
        rf.charge(0, int_op(dest=7, srcs=(0,)))
        # Second instruction from warp 8 also hits bank 0 (reg 0 + 8 = 8
        # ... bank (0+8)%8 == 0).
        assert rf.charge(8, int_op(dest=7, srcs=(0,))) == 1

    def test_begin_cycle_resets(self):
        rf = RegisterFileModel(banks=8)
        rf.begin_cycle()
        rf.charge(0, int_op(dest=7, srcs=(0,)))
        rf.begin_cycle()
        assert rf.charge(0, int_op(dest=7, srcs=(0,))) == 0

    def test_extra_ports_absorb_conflicts(self):
        rf = RegisterFileModel(banks=8, ports_per_bank=2)
        rf.begin_cycle()
        assert rf.charge(0, int_op(dest=7, srcs=(0, 8))) == 0
        assert rf.charge(0, int_op(dest=7, srcs=(16,))) == 1

    def test_conflict_rate(self):
        rf = RegisterFileModel(banks=8)
        rf.begin_cycle()
        rf.charge(0, int_op(dest=7, srcs=(0, 8)))  # 2 reads, 1 conflict
        assert rf.conflict_rate == pytest.approx(0.5)


class TestInTheSM:
    def _kernel(self):
        # One warp issuing instructions whose sources collide on bank 0.
        insts = tuple(int_op(dest=16 + i, srcs=(0, 8)) for i in range(6))
        return KernelTrace(name="rf", warps=(WarpTrace(0, insts),),
                           max_resident_warps=2)

    def test_conflicts_slow_execution(self):
        base_cfg = SMConfig(max_resident_warps=2,
                            memory=MemoryConfig(dram_jitter=0.0))
        rf_cfg = SMConfig(max_resident_warps=2, rf_banks=8,
                          memory=MemoryConfig(dram_jitter=0.0))
        fast = build_sm(self._kernel(),
                        TechniqueConfig(Technique.BASELINE),
                        sm_config=base_cfg).run()
        slow_sm = build_sm(self._kernel(),
                           TechniqueConfig(Technique.BASELINE),
                           sm_config=rf_cfg)
        slow = slow_sm.run()
        assert slow.cycles > fast.cycles
        assert slow_sm.regfile is not None
        assert slow_sm.regfile.total_conflict_cycles >= 6

    def test_disabled_by_default(self):
        sm = build_sm(self._kernel(), TechniqueConfig(Technique.BASELINE))
        assert sm.regfile is None

    def test_invariants_hold_with_rf_model(self):
        rf_cfg = SMConfig(max_resident_warps=8, rf_banks=16)
        from repro.workloads.registry import build_kernel
        kernel = build_kernel("hotspot", scale=0.15)
        result = build_sm(kernel,
                          TechniqueConfig(Technique.WARPED_GATES),
                          sm_config=rf_cfg).run()
        assert result.stats.instructions_retired == \
            kernel.total_instructions
        for tracker in result.stats.idle_trackers.values():
            assert tracker.busy_cycles + tracker.idle_cycles == \
                result.cycles
