"""Tests for execution-unit pipelines."""

import pytest

from repro.isa.instructions import int_op, sfu_op
from repro.isa.optypes import ExecUnitKind
from repro.sim.exec_units import ExecPipeline


class TestPort:
    def test_initiation_interval_holds_port(self):
        pipe = ExecPipeline(ExecUnitKind.SFU, "SFU", initiation_interval=8)
        pipe.issue(0, warp_slot=0, inst=sfu_op(dest=0))
        assert not pipe.port_available(1)
        assert not pipe.port_available(7)
        assert pipe.port_available(8)

    def test_issue_into_held_port_raises(self):
        pipe = ExecPipeline(ExecUnitKind.INT, "INT0", initiation_interval=2)
        pipe.issue(0, 0, int_op(dest=0))
        with pytest.raises(RuntimeError, match="port busy"):
            pipe.issue(1, 1, int_op(dest=0))

    def test_ii_one_allows_back_to_back(self):
        pipe = ExecPipeline(ExecUnitKind.INT, "INT0")
        pipe.issue(0, 0, int_op(dest=0))
        assert pipe.port_available(1)
        pipe.issue(1, 1, int_op(dest=0))
        assert pipe.issued_count == 2

    def test_invalid_ii_rejected(self):
        with pytest.raises(ValueError):
            ExecPipeline(ExecUnitKind.INT, "INT0", initiation_interval=0)


class TestDrain:
    def test_completion_after_latency(self):
        pipe = ExecPipeline(ExecUnitKind.INT, "INT0")
        pipe.issue(10, warp_slot=3, inst=int_op(dest=0, latency=4))
        assert pipe.drain(13) == []
        done = pipe.drain(14)
        assert len(done) == 1
        assert done[0].warp_slot == 3

    def test_drain_is_ordered_and_exhaustive(self):
        pipe = ExecPipeline(ExecUnitKind.INT, "INT0")
        pipe.issue(0, 0, int_op(dest=0, latency=8))
        pipe.issue(1, 1, int_op(dest=0, latency=2))
        done = pipe.drain(20)
        assert [c.warp_slot for c in done] == [1, 0]
        assert pipe.drain(21) == []

    def test_next_completion_cycle(self):
        pipe = ExecPipeline(ExecUnitKind.INT, "INT0")
        assert pipe.next_completion_cycle() is None
        pipe.issue(0, 0, int_op(dest=0, latency=4))
        assert pipe.next_completion_cycle() == 4


class TestBusy:
    def test_idle_when_empty(self):
        pipe = ExecPipeline(ExecUnitKind.FP, "FP0")
        assert not pipe.is_busy(0)

    def test_busy_while_in_flight(self):
        pipe = ExecPipeline(ExecUnitKind.FP, "FP0")
        pipe.issue(0, 0, int_op(dest=0, latency=4, opcode="X"))
        for cycle in range(0, 4):
            pipe.drain(cycle)
            assert pipe.is_busy(cycle)
        pipe.drain(4)
        assert not pipe.is_busy(4)

    def test_busy_from_held_port(self):
        pipe = ExecPipeline(ExecUnitKind.SFU, "SFU", initiation_interval=8)
        pipe.issue(0, 0, sfu_op(dest=0, latency=2))
        pipe.drain(3)  # result exits at 2, but port held to 8
        assert pipe.is_busy(3)
        assert not pipe.is_busy(8)

    def test_in_flight_count(self):
        pipe = ExecPipeline(ExecUnitKind.INT, "INT0")
        pipe.issue(0, 0, int_op(dest=0))
        pipe.issue(1, 1, int_op(dest=0))
        assert pipe.in_flight_count() == 2
        pipe.drain(4)
        assert pipe.in_flight_count() == 1
