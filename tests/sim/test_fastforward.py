"""Span fast-forward: bit-identical to the cycle-by-cycle loop.

The forwarder's design rule is that every cycle on which anything
interesting can happen is real-stepped — idle *and* busy quiescent
spans alike are jumped; these tests pin the observable contract —
identical cycles, identical flat metrics, identical gating counters —
across every technique, and check the forwarder actually skips where
it should and disables itself where it must.  The numpy-batched and
scalar head-status planners must agree not just on results but on the
exact spans they skip.
"""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

SCALE = 0.2


def _run(benchmark: str, technique: Technique, fast_forward: bool,
         scale: float = SCALE):
    kernel = build_kernel(benchmark, seed=0, scale=scale)
    sm = build_sm(kernel, TechniqueConfig(technique),
                  dram_latency=get_profile(benchmark).dram_latency,
                  fast_forward=fast_forward)
    return sm, sm.run()


@pytest.mark.parametrize("technique", list(Technique),
                         ids=lambda t: t.value)
@pytest.mark.parametrize("bench_name", ("hotspot", "bfs"))
def test_fast_forward_bit_identical(bench_name, technique):
    _, serial = _run(bench_name, technique, fast_forward=False)
    _, forwarded = _run(bench_name, technique, fast_forward=True)
    assert forwarded.cycles == serial.cycles
    assert forwarded.metrics == serial.metrics
    assert forwarded.domain_stats == serial.domain_stats
    assert forwarded.idle_detect_final == serial.idle_detect_final
    assert forwarded.pipeline_issues == serial.pipeline_issues
    assert forwarded.warp_records == serial.warp_records


def test_forwarder_actually_skips():
    sm, _ = _run("bfs", Technique.CONV_PG, fast_forward=True)
    assert sm._forwarder is not None
    assert sm._forwarder.supported
    assert sm._forwarder.skipped_cycles > 0
    assert sm._forwarder.skips > 0


def test_serial_run_has_no_forwarder():
    sm, _ = _run("hotspot", Technique.BASELINE, fast_forward=False)
    assert sm._forwarder is None


def test_ccws_disables_forwarding():
    """The CCWS decay hook touches every cycle: no span is skippable,
    so the forwarder turns itself off rather than paying the planner."""
    sm, _ = _run("hotspot", Technique.CCWS_CONV_PG, fast_forward=True)
    assert sm._forwarder is not None
    assert not sm._forwarder.supported
    assert sm._forwarder.skipped_cycles == 0


def test_enabled_bus_suppresses_skipping():
    """Event subscribers see every cycle, so an enabled bus forces the
    cycle-by-cycle path (identical results, no skips)."""
    from repro.obs.bus import EventBus

    kernel = build_kernel("hotspot", seed=0, scale=SCALE)
    bus = EventBus(enabled=True)
    sm = build_sm(kernel, TechniqueConfig(Technique.CONV_PG),
                  dram_latency=get_profile("hotspot").dram_latency,
                  bus=bus, fast_forward=True)
    events = []
    bus.subscribe(events.append)
    result = sm.run()
    assert sm._forwarder.skipped_cycles == 0
    _, serial = _run("hotspot", Technique.CONV_PG, fast_forward=False)
    assert result.metrics == serial.metrics


@pytest.mark.parametrize("bench_name", ("hotspot", "bfs"))
def test_scalar_and_batch_planners_agree(bench_name):
    """The numpy-batched head scan is a pure acceleration.

    Forcing the scalar and vectorized planners over the same run must
    yield identical results *and* identical skip accounting — same
    skipped cycles, same span count — because both classify from the
    same cached head summaries.
    """
    from repro.sim.fastforward import SpanFastForwarder
    from repro.sim.vectorize import numpy_available

    if not numpy_available():
        pytest.skip("numpy not available")
    outcomes = {}
    for use_numpy in (False, True):
        kernel = build_kernel(bench_name, seed=0, scale=SCALE)
        sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                      dram_latency=get_profile(bench_name).dram_latency,
                      fast_forward=False)
        sm._forwarder = SpanFastForwarder(sm, use_numpy=use_numpy)
        result = sm.run()
        outcomes[use_numpy] = (result, sm._forwarder.skipped_cycles,
                               sm._forwarder.skips)
    scalar_result, scalar_skipped, scalar_spans = outcomes[False]
    batch_result, batch_skipped, batch_spans = outcomes[True]
    assert batch_result.metrics == scalar_result.metrics
    assert batch_result.domain_stats == scalar_result.domain_stats
    assert batch_skipped == scalar_skipped
    assert batch_spans == scalar_spans
    assert scalar_skipped > 0


def test_max_cycles_overrun_raises_identically():
    from dataclasses import replace

    from repro.sim.config import SMConfig

    config = replace(SMConfig(), max_cycles=50)
    errors = []
    for fast_forward in (False, True):
        sm = build_sm(build_kernel("hotspot", seed=0, scale=SCALE),
                      TechniqueConfig(Technique.CONV_PG),
                      sm_config=config,
                      dram_latency=get_profile("hotspot").dram_latency,
                      fast_forward=fast_forward)
        with pytest.raises(RuntimeError):
            sm.run()
        errors.append(sm.stats.cycles)
    assert errors[0] == errors[1]
