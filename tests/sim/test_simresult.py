"""Tests for SimResult's derived accessors."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ExecUnitKind
from repro.sim.memory import MemoryStats
from repro.sim.sm import SimResult
from repro.sim.stats import SMStats
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

from tests.conftest import SMALL_SM


@pytest.fixture(scope="module")
def warped_result():
    kernel = build_kernel("hotspot", scale=0.25)
    sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                  sm_config=SMALL_SM,
                  dram_latency=get_profile("hotspot").dram_latency)
    return sm.run()


class TestAccessors:
    def test_pipeline_names_per_kind(self, warped_result):
        assert warped_result.pipeline_names(ExecUnitKind.INT) == \
            ("INT0", "INT1")
        assert warped_result.pipeline_names(ExecUnitKind.LDST) == ("LDST",)

    def test_unit_activity_consistency(self, warped_result):
        activity = warped_result.unit_activity(ExecUnitKind.INT)
        assert activity.cycles == 2 * warped_result.cycles
        assert activity.gated_cycles == sum(
            warped_result.domain_stats[n].gated_cycles
            for n in ("INT0", "INT1"))
        assert activity.issues == \
            warped_result.pipeline_issues["INT0"] + \
            warped_result.pipeline_issues["INT1"]
        assert 0 < activity.lane_work <= activity.issues

    def test_gating_totals_merge_all_counters(self, warped_result):
        totals = warped_result.gating_totals(ExecUnitKind.FP)
        per_domain = [warped_result.domain_stats[n]
                      for n in ("FP0", "FP1")]
        for field in ("gating_events", "wakeups", "gated_cycles",
                      "compensated_cycles", "uncompensated_cycles",
                      "critical_wakeups", "denied_wakeups",
                      "waking_cycles", "on_cycles",
                      "wakeups_uncompensated"):
            assert getattr(totals, field) == \
                sum(getattr(s, field) for s in per_domain)

    def test_gating_totals_for_ungated_kind_is_zero(self, warped_result):
        totals = warped_result.gating_totals(ExecUnitKind.LDST)
        assert totals.gated_cycles == 0
        assert totals.gating_events == 0

    def test_idle_histogram_merges_clusters(self, warped_result):
        merged = warped_result.idle_histogram(ExecUnitKind.INT)
        separate = [warped_result.stats.idle_trackers[n].histogram
                    for n in ("INT0", "INT1")]
        assert sum(merged.values()) == sum(
            sum(h.values()) for h in separate)

    def test_idle_fraction_in_unit_range(self, warped_result):
        for kind in (ExecUnitKind.INT, ExecUnitKind.FP,
                     ExecUnitKind.SFU, ExecUnitKind.LDST):
            assert 0.0 <= warped_result.idle_fraction(kind) <= 1.0

    def test_compensated_metric_definition(self, warped_result):
        totals = warped_result.gating_totals(ExecUnitKind.INT)
        expected = (totals.compensated_cycles
                    - totals.uncompensated_cycles) / (
                        2 * warped_result.cycles)
        assert warped_result.compensated_metric(ExecUnitKind.INT) == \
            pytest.approx(expected)

    def test_unknown_kind_empty(self):
        result = SimResult(
            kernel_name="x", technique="baseline", cycles=1,
            stats=SMStats(), memory=MemoryStats(), domain_stats={},
            idle_detect_final={}, pipeline_issues={},
            pipeline_lane_work={}, pipelines_by_kind={})
        assert result.pipeline_names(ExecUnitKind.INT) == ()
        assert result.idle_histogram(ExecUnitKind.INT) == {}
        activity = result.unit_activity(ExecUnitKind.INT)
        assert activity.cycles == 0 and activity.issues == 0
