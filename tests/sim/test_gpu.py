"""Tests for the multi-SM GPU wrapper."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import int_op
from repro.isa.optypes import ExecUnitKind
from repro.isa.trace import KernelTrace, WarpTrace
from repro.isa.tracegen import generate_kernel
from repro.sim.gpu import GPU, split_kernel

from tests.conftest import SMALL_SM


def make_kernel(n_warps: int) -> KernelTrace:
    warps = tuple(WarpTrace(i, (int_op(0), int_op(1, srcs=(0,))))
                  for i in range(n_warps))
    return KernelTrace(name="k", warps=warps, max_resident_warps=16)


class TestSplitKernel:
    def test_round_robin_distribution(self):
        parts = split_kernel(make_kernel(10), n_sms=3)
        assert [p.n_warps for p in parts] == [4, 3, 3]

    def test_warp_ids_renumbered(self):
        parts = split_kernel(make_kernel(6), n_sms=2)
        for part in parts:
            assert [w.warp_id for w in part.warps] == [0, 1, 2]

    def test_drops_empty_sms(self):
        parts = split_kernel(make_kernel(2), n_sms=8)
        assert len(parts) == 2

    def test_preserves_instructions(self):
        kernel = make_kernel(5)
        parts = split_kernel(kernel, n_sms=2)
        total = sum(p.total_instructions for p in parts)
        assert total == kernel.total_instructions

    def test_validation(self):
        with pytest.raises(ValueError):
            split_kernel(make_kernel(2), n_sms=0)


class TestGPU:
    def _factory(self, technique=Technique.BASELINE):
        def build(kernel):
            return build_sm(kernel, TechniqueConfig(technique),
                            sm_config=SMALL_SM)
        return build

    def test_aggregates_instructions(self, balanced_spec):
        kernel = generate_kernel(balanced_spec, seed=1)
        gpu = GPU(n_sms=3, sm_factory=self._factory())
        result = gpu.run(kernel)
        assert result.total_instructions == kernel.total_instructions

    def test_device_cycles_is_slowest_sm(self, balanced_spec):
        kernel = generate_kernel(balanced_spec, seed=1)
        result = GPU(n_sms=2, sm_factory=self._factory()).run(kernel)
        assert result.cycles == max(r.cycles for r in result.sm_results)

    def test_unit_activity_sums_over_sms(self, balanced_spec):
        kernel = generate_kernel(balanced_spec, seed=1)
        result = GPU(n_sms=2, sm_factory=self._factory()).run(kernel)
        per_sm = [r.unit_activity(ExecUnitKind.INT)
                  for r in result.sm_results]
        total = result.unit_activity(ExecUnitKind.INT)
        assert total.issues == sum(a.issues for a in per_sm)
        assert total.cycles == sum(a.cycles for a in per_sm)

    def test_idle_histogram_merges(self, balanced_spec):
        kernel = generate_kernel(balanced_spec, seed=1)
        result = GPU(n_sms=2, sm_factory=self._factory()).run(kernel)
        merged = result.idle_histogram(ExecUnitKind.INT)
        per_sm_total = sum(sum(r.idle_histogram(ExecUnitKind.INT).values())
                           for r in result.sm_results)
        assert sum(merged.values()) == per_sm_total

    def test_technique_label_propagates(self, balanced_spec):
        kernel = generate_kernel(balanced_spec, seed=1)
        gpu = GPU(n_sms=2,
                  sm_factory=self._factory(Technique.WARPED_GATES))
        assert gpu.run(kernel).technique == "warped_gates"

    def test_validation(self):
        with pytest.raises(ValueError):
            GPU(n_sms=0, sm_factory=self._factory())


class TestDeviceScale:
    """Full-chip construction: presets, memory side, energy rollup."""

    def test_from_preset_builds_the_paper_chip(self, balanced_spec):
        kernel = generate_kernel(balanced_spec, seed=1)
        gpu = GPU.from_preset("gtx480", "baseline")
        assert gpu.n_sms == 15
        assert gpu.memory_side is not None
        result = gpu.run(kernel)
        assert result.total_instructions == kernel.total_instructions

    def test_from_preset_unknown_name_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'gtx480'"):
            GPU.from_preset("gtx48", "baseline")

    def test_memory_side_requires_config_path(self):
        from repro.core.device import MemorySideConfig

        with pytest.raises(ValueError, match="config-based"):
            GPU(n_sms=2, sm_factory=lambda k: None,
                memory_side=MemorySideConfig())

    def test_contention_inflates_device_runtime(self, balanced_spec):
        from repro.core.device import MemorySideConfig

        kernel = generate_kernel(balanced_spec, seed=1)
        free = GPU(n_sms=4, config=TechniqueConfig(Technique.BASELINE),
                   sm_config=SMALL_SM, dram_latency=400).run(kernel)
        contended = GPU(n_sms=4,
                        config=TechniqueConfig(Technique.BASELINE),
                        sm_config=SMALL_SM, dram_latency=400,
                        memory_side=MemorySideConfig(
                            n_partitions=1, queue_alpha=1.0)).run(kernel)
        assert contended.cycles > free.cycles

    def test_single_sm_device_ignores_memory_side(self, balanced_spec):
        from repro.core.device import MemorySideConfig

        kernel = generate_kernel(balanced_spec, seed=1)
        base = GPU(n_sms=1, config=TechniqueConfig(Technique.BASELINE),
                   sm_config=SMALL_SM, dram_latency=400).run(kernel)
        with_side = GPU(n_sms=1,
                        config=TechniqueConfig(Technique.BASELINE),
                        sm_config=SMALL_SM, dram_latency=400,
                        memory_side=MemorySideConfig(
                            n_partitions=1, queue_alpha=1.0)).run(kernel)
        assert with_side.cycles == base.cycles

    def test_energy_breakdown_aggregates_all_sms(self, balanced_spec):
        from repro.sim.gpu import GPUResult

        kernel = generate_kernel(balanced_spec, seed=1)
        result = GPU(n_sms=3,
                     config=TechniqueConfig(Technique.WARPED_GATES),
                     sm_config=SMALL_SM, dram_latency=400).run(kernel)
        breakdown = result.energy_breakdown()
        for kind in (ExecUnitKind.INT, ExecUnitKind.FP):
            chip = breakdown[kind]
            # Chip baseline static energy is the sum over every SM's
            # domain-cycles; nothing of any SM may be dropped.
            activity = result.unit_activity(kind)
            per_sm_cycles = sum(
                r.unit_activity(kind).cycles for r in result.sm_results)
            assert activity.cycles == per_sm_cycles
            assert chip.baseline_static > 0
            # Single-SM breakdowns must sum to the chip (the model is
            # linear in activity).
            parts = [GPUResult(kernel_name="k", technique="t",
                               sm_results=(r,)).energy_breakdown()[kind]
                     for r in result.sm_results]
            assert chip.dynamic == pytest.approx(
                sum(p.dynamic for p in parts))
            assert chip.static == pytest.approx(
                sum(p.static for p in parts))
            assert chip.overhead == pytest.approx(
                sum(p.overhead for p in parts))
