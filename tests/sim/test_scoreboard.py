"""Tests for the per-warp register scoreboard."""

import pytest

from repro.isa.instructions import fp_op, int_op, load_op
from repro.sim.scoreboard import Scoreboard


class TestReadyBit:
    def test_fresh_scoreboard_everything_ready(self):
        sb = Scoreboard()
        assert sb.is_ready(int_op(dest=0, srcs=(1, 2)), cycle=0)

    def test_raw_hazard_blocks_until_latency(self):
        sb = Scoreboard()
        producer = int_op(dest=3, latency=4)
        sb.record_issue(producer, cycle=10)
        consumer = int_op(dest=4, srcs=(3,))
        assert not sb.is_ready(consumer, cycle=11)
        assert not sb.is_ready(consumer, cycle=13)
        assert sb.is_ready(consumer, cycle=14)

    def test_waw_hazard_blocks(self):
        sb = Scoreboard()
        sb.record_issue(int_op(dest=3, latency=4), cycle=0)
        assert not sb.is_ready(fp_op(dest=3), cycle=1)
        assert sb.is_ready(fp_op(dest=3), cycle=4)

    def test_independent_instruction_unaffected(self):
        sb = Scoreboard()
        sb.record_issue(int_op(dest=3, latency=4), cycle=0)
        assert sb.is_ready(int_op(dest=5, srcs=(6,)), cycle=1)

    def test_store_has_no_destination_to_track(self):
        sb = Scoreboard()
        from repro.isa.instructions import store_op
        sb.record_issue(store_op(line_addr=0, srcs=(1,)), cycle=0)
        assert sb.busy_registers() == ()


class TestMemoryProducers:
    def test_load_starts_unresolved(self):
        sb = Scoreboard()
        sb.record_issue(load_op(dest=2, line_addr=0), cycle=0)
        assert sb.outstanding_memory_registers() == (2,)
        # Unresolved producers block readiness at any cycle.
        assert not sb.is_ready(int_op(dest=9, srcs=(2,)), cycle=10_000)

    def test_blocking_memory_unresolved(self):
        sb = Scoreboard()
        sb.record_issue(load_op(dest=2, line_addr=0), cycle=0)
        dependent = int_op(dest=9, srcs=(2,))
        assert sb.blocking_memory(dependent, cycle=0, pending_threshold=28)

    def test_resolution_sets_completion(self):
        sb = Scoreboard()
        sb.record_issue(load_op(dest=2, line_addr=0), cycle=0)
        sb.resolve_memory(2, ready_cycle=50)
        dependent = int_op(dest=9, srcs=(2,))
        # More than threshold away -> still a long-latency block.
        assert sb.blocking_memory(dependent, cycle=10, pending_threshold=28)
        # Within threshold -> short wait, warp stays active.
        assert not sb.blocking_memory(dependent, cycle=30,
                                      pending_threshold=28)
        assert not sb.is_ready(dependent, cycle=49)
        assert sb.is_ready(dependent, cycle=50)

    def test_resolve_unknown_register_raises(self):
        sb = Scoreboard()
        with pytest.raises(KeyError):
            sb.resolve_memory(5, ready_cycle=10)

    def test_alu_producer_never_blocks_as_memory(self):
        sb = Scoreboard()
        sb.record_issue(int_op(dest=1, latency=400), cycle=0)
        dependent = int_op(dest=2, srcs=(1,))
        assert not sb.blocking_memory(dependent, cycle=0,
                                      pending_threshold=28)


class TestRelease:
    def test_release_completed_frees_registers(self):
        sb = Scoreboard()
        sb.record_issue(int_op(dest=1, latency=4), cycle=0)
        sb.release_completed(cycle=3)
        assert sb.busy_registers() == (1,)
        sb.release_completed(cycle=4)
        assert sb.busy_registers() == ()

    def test_release_keeps_unresolved(self):
        sb = Scoreboard()
        sb.record_issue(load_op(dest=1, line_addr=0), cycle=0)
        sb.release_completed(cycle=10_000)
        assert sb.busy_registers() == (1,)

    def test_reset_clears_everything(self):
        sb = Scoreboard()
        sb.record_issue(int_op(dest=1), cycle=0)
        sb.record_issue(load_op(dest=2, line_addr=0), cycle=0)
        sb.reset()
        assert sb.busy_registers() == ()
