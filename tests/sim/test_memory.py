"""Tests for the L1 / MSHR / DRAM memory model."""

import pytest

from repro.isa.instructions import MemorySpace, load_op, store_op, int_op
from repro.sim.config import MemoryConfig
from repro.sim.memory import L1Cache, MemorySubsystem


def make_mem(**overrides) -> MemorySubsystem:
    base = dict(l1_sets=4, l1_ways=2, mshr_entries=2, l1_hit_latency=10,
                shared_latency=6, dram_latency=100, dram_jitter=0.0)
    base.update(overrides)
    return MemorySubsystem(MemoryConfig(**base))


class TestL1Cache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            L1Cache(sets=3, ways=2)
        with pytest.raises(ValueError):
            L1Cache(sets=4, ways=0)

    def test_miss_then_hit_with_allocation(self):
        cache = L1Cache(sets=4, ways=2)
        assert not cache.lookup(5, allocate=True)
        assert cache.lookup(5, allocate=False)

    def test_no_allocate_probe_does_not_fill(self):
        cache = L1Cache(sets=4, ways=2)
        assert not cache.lookup(5, allocate=False)
        assert not cache.contains(5)

    def test_lru_eviction(self):
        cache = L1Cache(sets=1, ways=2)
        cache.lookup(0, allocate=True)
        cache.lookup(1, allocate=True)
        cache.lookup(0, allocate=False)   # touch 0 -> 1 becomes LRU
        cache.lookup(2, allocate=True)    # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_sets_partition_addresses(self):
        cache = L1Cache(sets=4, ways=1)
        cache.lookup(0, allocate=True)
        cache.lookup(1, allocate=True)  # different set, no conflict
        assert cache.contains(0) and cache.contains(1)

    def test_flush(self):
        cache = L1Cache(sets=2, ways=2)
        cache.lookup(3, allocate=True)
        cache.flush()
        assert not cache.contains(3)


class TestAccessPaths:
    def test_rejects_non_memory_instruction(self):
        mem = make_mem()
        with pytest.raises(ValueError, match="not a memory"):
            mem.access(0, 0, int_op(dest=0))

    def test_store_completes_immediately(self):
        mem = make_mem()
        assert mem.access(5, 0, store_op(line_addr=1)) == 5
        assert mem.stats.stores == 1
        assert mem.in_flight_requests() == 0

    def test_shared_access_fixed_latency(self):
        mem = make_mem()
        ready = mem.access(0, 0, load_op(dest=1, line_addr=0,
                                         mem_space=MemorySpace.SHARED))
        assert ready == 6
        assert mem.stats.shared_accesses == 1

    def test_cold_miss_pays_dram_latency(self):
        mem = make_mem()
        ready = mem.access(0, 0, load_op(dest=1, line_addr=7))
        assert ready == 100
        assert mem.stats.misses == 1

    def test_hit_after_fill(self):
        mem = make_mem()
        mem.access(0, 0, load_op(dest=1, line_addr=7))
        mem.tick(100)  # fill completes
        ready = mem.access(101, 0, load_op(dest=2, line_addr=7))
        assert ready == 111
        assert mem.stats.hits == 1

    def test_no_hit_before_fill_completes(self):
        mem = make_mem()
        mem.access(0, 0, load_op(dest=1, line_addr=7))
        mem.tick(50)  # too early; line still in flight
        # A second access to the same line merges instead of hitting.
        ready = mem.access(50, 1, load_op(dest=2, line_addr=7))
        assert ready == 100
        assert mem.stats.merged_misses == 1


class TestMSHR:
    def test_merge_shares_completion(self):
        mem = make_mem()
        r1 = mem.access(0, 0, load_op(dest=1, line_addr=3))
        r2 = mem.access(10, 1, load_op(dest=2, line_addr=3))
        assert r1 == r2 == 100
        assert mem.outstanding_misses() == 1

    def test_full_mshr_rejects(self):
        mem = make_mem(mshr_entries=2)
        mem.access(0, 0, load_op(dest=1, line_addr=1))
        mem.access(0, 1, load_op(dest=1, line_addr=2))
        assert mem.access(0, 2, load_op(dest=1, line_addr=3)) is None
        assert mem.stats.mshr_stalls == 1

    def test_mshr_frees_on_completion(self):
        mem = make_mem(mshr_entries=1)
        mem.access(0, 0, load_op(dest=1, line_addr=1))
        mem.tick(100)
        assert mem.outstanding_misses() == 0
        assert mem.access(101, 0, load_op(dest=1, line_addr=2)) is not None


class TestCompletionDelivery:
    def test_tick_delivers_in_time_order(self):
        mem = make_mem()
        mem.access(0, 0, load_op(dest=1, line_addr=1))           # @100
        mem.access(0, 1, load_op(dest=2, line_addr=1,
                                 mem_space=MemorySpace.SHARED))  # @6
        assert mem.tick(5) == []
        first = mem.tick(6)
        assert [c.warp_slot for c in first] == [1]
        later = mem.tick(100)
        assert [c.warp_slot for c in later] == [0]

    def test_completed_miss_fills_cache(self):
        mem = make_mem()
        mem.access(0, 0, load_op(dest=1, line_addr=9))
        mem.tick(100)
        assert mem.l1.contains(9)


class TestJitter:
    def test_zero_jitter_is_exact(self):
        mem = make_mem(dram_jitter=0.0)
        assert mem.access(0, 0, load_op(dest=1, line_addr=4)) == 100

    def test_jitter_bounds(self):
        mem = make_mem(dram_jitter=0.3)
        for line in range(64):
            ready = mem.access(0, 0, load_op(dest=1, line_addr=line + 100))
            latency = ready - 0
            assert 70 <= latency <= 130
            mem.tick(10_000)  # drain MSHRs

    def test_jitter_deterministic(self):
        a = make_mem(dram_jitter=0.3)
        b = make_mem(dram_jitter=0.3)
        ra = a.access(17, 0, load_op(dest=1, line_addr=42))
        rb = b.access(17, 0, load_op(dest=1, line_addr=42))
        assert ra == rb

    def test_jitter_varies_across_lines(self):
        mem = make_mem(dram_jitter=0.3)
        latencies = set()
        for line in range(32):
            ready = mem.access(0, 0, load_op(dest=1, line_addr=line))
            latencies.add(ready)
            mem.tick(10_000)
        assert len(latencies) > 5
