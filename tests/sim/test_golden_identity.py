"""Golden bit-identity suite: the optimized loop must not drift.

The busy-cycle rework (incremental ready-set scheduling, span-based
stats, the trace cache, the bus dispatch cache) is a pure-performance
change — every observable of a run must match the pre-optimization loop
bit for bit.  These tests recompute sha256 digests over the canonical
form of each golden cell (see :mod:`tests.sim.identity`) and compare
them to the committed references in ``tests/sim/golden/identity.json``.

A failure here means an optimization changed *behaviour*, not just
speed: a reordered RNG draw, a stats counter accumulated differently, a
scheduler tie broken the other way.  Fix the drift — only regenerate
the goldens (``PYTHONPATH=src:. python tests/sim/identity.py --write``)
for an intentional, reviewed behaviour change.
"""

from __future__ import annotations

import pytest

from tests.sim.identity import (GOLDEN_BENCHMARKS, GOLDEN_TECHNIQUES,
                                device_result_digest, event_stream_digest,
                                load_goldens, result_digest,
                                run_golden_cell, run_golden_device,
                                run_instrumented_golden)

GOLDENS = load_goldens()

_CELLS = [(b, t) for b in GOLDEN_BENCHMARKS for t in GOLDEN_TECHNIQUES]


@pytest.mark.parametrize("bench_name,technique", _CELLS)
def test_result_digest_matches_golden(bench_name, technique):
    """Each technique x benchmark cell reproduces its committed digest."""
    result = run_golden_cell(bench_name, technique)
    assert result_digest(result) == GOLDENS[f"{bench_name}/{technique}"], (
        f"{technique} on {bench_name} drifted from the golden digest — "
        "an optimization changed observable behaviour")


@pytest.mark.parametrize("bench_name,technique", _CELLS)
def test_fast_forward_digest_matches_golden(bench_name, technique):
    """The event-driven span core reproduces the serial digest.

    The committed references were computed from the serial (no
    fast-forward) cycle loop, so this equality is the proof that idle
    *and* busy span skipping changes nothing observable — stats,
    gating counters, idle histograms, warp records, metrics.
    """
    result = run_golden_cell(bench_name, technique, fast_forward=True)
    assert result_digest(result) == GOLDENS[f"{bench_name}/{technique}"], (
        f"fast-forward {technique} on {bench_name} diverged from the "
        "serial core — a span was skipped across a state change")


@pytest.mark.parametrize("bench_name,technique", _CELLS)
def test_dense_kernel_digest_matches_golden(bench_name, technique):
    """The dense-step kernel reproduces the serial digest.

    ``dense_kernel=True`` forces every cycle of the run through
    :class:`repro.sim.kernel.DenseStepKernel` — the committed
    ``kernel/...`` references equal the serial cell digests by
    construction, so this pins batched classify/issue/writeback
    bit-identical to ``SM._step`` for every golden technique.
    """
    result = run_golden_cell(bench_name, technique, dense_kernel=True)
    digest = result_digest(result)
    assert digest == GOLDENS[f"kernel/{bench_name}/{technique}"], (
        f"dense-kernel {technique} on {bench_name} drifted from its "
        "committed digest")
    assert digest == GOLDENS[f"{bench_name}/{technique}"], (
        f"dense-kernel {technique} on {bench_name} diverged from the "
        "serial core — the batched step changed observable behaviour")


@pytest.mark.parametrize("bench_name,technique", _CELLS)
def test_device_digest_matches_golden(bench_name, technique):
    """Each cell at full-chip scale reproduces its committed digest.

    15 SMs on the pinned gtx480 preset, per-SM results digested in
    part order — drift in the splitter, the memory-side contention
    factor, or any one SM's simulation fails here with the cell named.
    """
    result = run_golden_device(bench_name, technique)
    digest = device_result_digest(result)
    assert digest == GOLDENS[f"device/{bench_name}/{technique}"], (
        f"device-scale {technique} on {bench_name} drifted from the "
        "golden digest")


@pytest.mark.parametrize("bench_name,technique", _CELLS)
def test_device_fast_forward_matches_golden(bench_name, technique):
    """Fast-forwarded device runs equal the serial device digests.

    Device parts carry few warps each (48 warps / 15 SMs), which is
    exactly the sparse regime where busy-span skipping is most
    aggressive — the strongest exercise of the span planner's
    eligibility rules.
    """
    result = run_golden_device(bench_name, technique, fast_forward=True)
    digest = device_result_digest(result)
    assert digest == GOLDENS[f"device/{bench_name}/{technique}"], (
        f"fast-forward device-scale {technique} on {bench_name} "
        "diverged from the serial device core")


def test_event_stream_matches_golden():
    """A bus-enabled run publishes the identical ordered event stream."""
    _, events = run_instrumented_golden()
    assert events, "instrumented golden run published no events"
    assert (event_stream_digest(events)
            == GOLDENS["events/hotspot/warped_gates"]), (
        "the instrumented event stream drifted (order, payload, or "
        "count) from the golden digest")


def test_instrumented_result_equals_serial():
    """Enabling the bus must not perturb the simulation itself.

    The instrumented run's result digest is committed twice on purpose:
    ``events/hotspot/warped_gates/result`` must equal the serial
    ``hotspot/warped_gates`` digest, proving observability is read-only.
    """
    result, _ = run_instrumented_golden()
    digest = result_digest(result)
    assert digest == GOLDENS["events/hotspot/warped_gates/result"]
    assert digest == GOLDENS["hotspot/warped_gates"], (
        "bus-enabled and bus-disabled runs diverged — instrumentation "
        "is no longer zero-impact on simulation state")


@pytest.mark.parametrize("technique", GOLDEN_TECHNIQUES)
def test_spec_hash_matches_golden(technique):
    """Each golden technique's spec_hash reproduces its committed value.

    The spec hash keys the persistent run cache and the memoising
    runner, so a drift here silently orphans (or worse, mismatches)
    cached results even when the simulation itself is unchanged.
    """
    from repro.core.spec import technique_spec

    assert (technique_spec(technique).spec_hash()
            == GOLDENS[f"spec/{technique}"]), (
        f"{technique}'s canonical spec serialization drifted — cache "
        "keys and manifests no longer match prior sessions")
