"""Golden bit-identity suite: the optimized loop must not drift.

The busy-cycle rework (incremental ready-set scheduling, span-based
stats, the trace cache, the bus dispatch cache) is a pure-performance
change — every observable of a run must match the pre-optimization loop
bit for bit.  These tests recompute sha256 digests over the canonical
form of each golden cell (see :mod:`tests.sim.identity`) and compare
them to the committed references in ``tests/sim/golden/identity.json``.

A failure here means an optimization changed *behaviour*, not just
speed: a reordered RNG draw, a stats counter accumulated differently, a
scheduler tie broken the other way.  Fix the drift — only regenerate
the goldens (``PYTHONPATH=src:. python tests/sim/identity.py --write``)
for an intentional, reviewed behaviour change.
"""

from __future__ import annotations

import pytest

from tests.sim.identity import (GOLDEN_BENCHMARKS, GOLDEN_TECHNIQUES,
                                event_stream_digest, load_goldens,
                                result_digest, run_golden_cell,
                                run_instrumented_golden)

GOLDENS = load_goldens()

_CELLS = [(b, t) for b in GOLDEN_BENCHMARKS for t in GOLDEN_TECHNIQUES]


@pytest.mark.parametrize("bench_name,technique", _CELLS)
def test_result_digest_matches_golden(bench_name, technique):
    """Each technique x benchmark cell reproduces its committed digest."""
    result = run_golden_cell(bench_name, technique)
    assert result_digest(result) == GOLDENS[f"{bench_name}/{technique}"], (
        f"{technique} on {bench_name} drifted from the golden digest — "
        "an optimization changed observable behaviour")


def test_event_stream_matches_golden():
    """A bus-enabled run publishes the identical ordered event stream."""
    _, events = run_instrumented_golden()
    assert events, "instrumented golden run published no events"
    assert (event_stream_digest(events)
            == GOLDENS["events/hotspot/warped_gates"]), (
        "the instrumented event stream drifted (order, payload, or "
        "count) from the golden digest")


def test_instrumented_result_equals_serial():
    """Enabling the bus must not perturb the simulation itself.

    The instrumented run's result digest is committed twice on purpose:
    ``events/hotspot/warped_gates/result`` must equal the serial
    ``hotspot/warped_gates`` digest, proving observability is read-only.
    """
    result, _ = run_instrumented_golden()
    digest = result_digest(result)
    assert digest == GOLDENS["events/hotspot/warped_gates/result"]
    assert digest == GOLDENS["hotspot/warped_gates"], (
        "bus-enabled and bus-disabled runs diverged — instrumentation "
        "is no longer zero-impact on simulation state")


@pytest.mark.parametrize("technique", GOLDEN_TECHNIQUES)
def test_spec_hash_matches_golden(technique):
    """Each golden technique's spec_hash reproduces its committed value.

    The spec hash keys the persistent run cache and the memoising
    runner, so a drift here silently orphans (or worse, mismatches)
    cached results even when the simulation itself is unchanged.
    """
    from repro.core.spec import technique_spec

    assert (technique_spec(technique).spec_hash()
            == GOLDENS[f"spec/{technique}"]), (
        f"{technique}'s canonical spec serialization drifted — cache "
        "keys and manifests no longer match prior sessions")
