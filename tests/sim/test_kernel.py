"""Dense-step kernel: windowing, resync and equality unit tests.

The golden identity suite pins whole forced-kernel runs bit-identical;
these tests exercise the kernel's moving parts directly — window
boundaries, drain inside a window, interleaving kernel windows with
serial stepping, both seeding flavours — and the fast-forward
planner's adaptive handoff into dense mode.
"""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.sim.fastforward import PLAN_BACKOFF_CAP, SpanFastForwarder
from repro.sim.kernel import DenseStepKernel
from repro.sim.vectorize import numpy_available
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile
from tests.sim.identity import canonical_result

SCALE = 0.2


def _build(benchmark: str, technique: Technique, **kwargs):
    kernel = build_kernel(benchmark, seed=0, scale=SCALE)
    return build_sm(kernel, TechniqueConfig(technique),
                    dram_latency=get_profile(benchmark).dram_latency,
                    **kwargs)


def _serial_result(benchmark: str, technique: Technique):
    return _build(benchmark, technique).run()


def _prepared(benchmark: str, technique: Technique):
    """An SM ready to be driven by a kernel core directly."""
    sm = _build(benchmark, technique)
    sm._ran = True
    sm.scheduler.reset()
    sm._prepare()
    return sm


@pytest.mark.parametrize("technique",
                         (Technique.BASELINE, Technique.WARPED_GATES),
                         ids=lambda t: t.value)
@pytest.mark.parametrize("bench_name", ("hotspot", "bfs"))
def test_forced_kernel_bit_identical(bench_name, technique):
    serial = _serial_result(bench_name, technique)
    forced = _build(bench_name, technique, dense_kernel=True).run()
    assert forced.cycles == serial.cycles
    assert forced.metrics == serial.metrics
    assert forced.domain_stats == serial.domain_stats
    assert forced.warp_records == serial.warp_records
    assert canonical_result(forced) == canonical_result(serial)


def test_window_boundaries_are_invisible():
    """Many short windows equal one long window equal the serial run.

    Every window entry does a full resync from the live SM state, so
    chopping the run into arbitrary windows must not change anything.
    """
    serial = canonical_result(_serial_result("bfs", Technique.GATES))
    sm = _prepared("bfs", Technique.GATES)
    core = DenseStepKernel(sm)
    cycle = 0
    while not sm._drained():
        cycle = core.run_window(cycle, cycle + 97)
    assert core.windows > 1
    assert canonical_result(sm._collect(cycle)) == serial


def test_drain_stops_window_early():
    """A window past the drain point returns at the drain cycle."""
    expected = _serial_result("hotspot", Technique.BASELINE).cycles
    sm = _prepared("hotspot", Technique.BASELINE)
    core = DenseStepKernel(sm)
    end = core.run_window(0, expected + 10_000)
    assert sm._drained()
    assert end == expected
    assert core.cycles == expected


def test_kernel_windows_interleave_with_serial_stepping():
    """Kernel windows and serial steps compose to the same run.

    This is the fast-forward handoff shape: some cycles stepped by the
    serial loop, some handed to the kernel, resyncing each time.
    """
    serial = canonical_result(_serial_result("bfs", Technique.CONV_PG))
    sm = _prepared("bfs", Technique.CONV_PG)
    core = DenseStepKernel(sm)
    cycle = 0
    turn = 0
    while not sm._drained():
        if turn % 2:
            cycle = core.run_window(cycle, cycle + 64)
        else:
            for _ in range(64):
                if sm._drained():
                    break
                sm._step(cycle)
                cycle += 1
        turn += 1
    assert canonical_result(sm._collect(cycle)) == serial


def test_scalar_and_vectorized_seeding_agree():
    serial = canonical_result(_serial_result("bfs",
                                             Technique.WARPED_GATES))
    for use_numpy in ((False, True) if numpy_available()
                      else (False,)):
        sm = _prepared("bfs", Technique.WARPED_GATES)
        core = DenseStepKernel(sm, use_numpy=use_numpy)
        assert core.vectorized is use_numpy
        cycle = core.run_window(0, sm.config.max_cycles)
        assert canonical_result(sm._collect(cycle)) == serial


def test_dense_kernel_false_forbids_handoff():
    """``dense_kernel=False`` keeps the forwarder out of dense mode."""
    sm = _build("bfs", Technique.WARPED_GATES, fast_forward=True,
                dense_kernel=False)
    result = sm.run()
    assert sm._forwarder is not None
    assert sm._forwarder.kernel is None
    assert sm._forwarder.dense_windows == 0
    assert canonical_result(result) == canonical_result(
        _serial_result("bfs", Technique.WARPED_GATES))


def test_forwarder_hands_dense_regime_to_kernel():
    """On a dense workload the planner escalates backoff, then hands
    whole windows to the kernel, and still matches the serial run."""
    kernel = build_kernel("bfs", seed=0, scale=1.0)
    serial_sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                         dram_latency=get_profile("bfs").dram_latency)
    serial = canonical_result(serial_sm.run())
    ff_sm = build_sm(build_kernel("bfs", seed=0, scale=1.0),
                     TechniqueConfig(Technique.WARPED_GATES),
                     dram_latency=get_profile("bfs").dram_latency,
                     fast_forward=True)
    result = ff_sm.run()
    forwarder = ff_sm._forwarder
    assert canonical_result(result) == serial
    assert forwarder.dense_windows > 0
    assert forwarder.kernel is not None
    assert forwarder.kernel.cycles > 0
    assert result.stats.planner_overhead_cycles > 0
    # The adaptive cap escalated beyond the floor on the way there.
    assert forwarder._backoff_cap > PLAN_BACKOFF_CAP


def test_planner_overhead_not_in_metrics():
    """planner_overhead_cycles stays out of the digested metrics so
    fast-forwarded runs keep the serial digest."""
    sm = _build("bfs", Technique.CONV_PG, fast_forward=True)
    result = sm.run()
    assert not any("planner" in key for key in result.metrics)
