"""Tests for the fetch-group scheduler (Narasiman-style baseline)."""

import pytest

from repro.isa.instructions import fp_op, int_op
from repro.sim.sched.base import IssueCandidate, SchedulerView
from repro.sim.sched.fetch_group import FetchGroupScheduler


def cand(slot, inst=None, ready=True):
    return IssueCandidate(slot=slot, age=slot,
                          inst=inst or int_op(dest=0), ready=ready)


class TestGrouping:
    def test_group_count(self):
        assert FetchGroupScheduler(n_slots=48, group_size=8).n_groups == 6
        assert FetchGroupScheduler(n_slots=10, group_size=4).n_groups == 3

    def test_current_group_first(self):
        sched = FetchGroupScheduler(n_slots=16, group_size=4)
        candidates = [cand(0), cand(5), cand(12)]
        ordered = sched.order(0, candidates, SchedulerView())
        # Group 0 is current, so slot 0 leads.
        assert ordered[0].slot == 0

    def test_rotates_when_current_group_drains(self):
        sched = FetchGroupScheduler(n_slots=16, group_size=4)
        # Nothing ready in group 0; groups 1 and 3 have ready warps.
        candidates = [cand(5), cand(13)]
        ordered = sched.order(0, candidates, SchedulerView())
        assert ordered[0].slot == 5          # nearest group wins
        assert sched.group_rotations == 1

    def test_stays_on_group_while_it_has_work(self):
        sched = FetchGroupScheduler(n_slots=16, group_size=4)
        candidates = [cand(1), cand(9)]
        sched.order(0, candidates, SchedulerView())
        sched.order(1, candidates, SchedulerView())
        assert sched.group_rotations == 0

    def test_wraps_around_groups(self):
        sched = FetchGroupScheduler(n_slots=16, group_size=4)
        sched._current_group = 3
        candidates = [cand(2)]  # only group 0 ready
        ordered = sched.order(0, candidates, SchedulerView())
        assert ordered[0].slot == 2
        assert sched._current_group == 0

    def test_not_ready_filtered(self):
        sched = FetchGroupScheduler(n_slots=8, group_size=4)
        candidates = [cand(0, ready=False), cand(1)]
        ordered = sched.order(0, candidates, SchedulerView())
        assert [c.slot for c in ordered] == [1]

    def test_empty_ready_set(self):
        sched = FetchGroupScheduler(n_slots=8, group_size=4)
        assert sched.order(0, [cand(0, ready=False)],
                           SchedulerView()) == []
        assert sched.group_rotations == 0

    def test_type_blind_within_group(self):
        sched = FetchGroupScheduler(n_slots=8, group_size=8)
        candidates = [cand(0, int_op(dest=0)), cand(1, fp_op(dest=0))]
        ordered = sched.order(0, candidates, SchedulerView())
        assert [c.slot for c in ordered] == [0, 1]

    def test_reset(self):
        sched = FetchGroupScheduler(n_slots=16, group_size=4)
        sched.order(0, [cand(13)], SchedulerView())
        sched.reset()
        assert sched._current_group == 0
        assert sched.group_rotations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FetchGroupScheduler(n_slots=0)
        with pytest.raises(ValueError):
            FetchGroupScheduler(n_slots=8, group_size=0)


class TestEndToEnd:
    def test_runs_full_benchmark(self):
        from repro.core.techniques import (Technique, TechniqueConfig,
                                           run_benchmark)
        result = run_benchmark("hotspot",
                               TechniqueConfig(
                                   Technique.FETCH_GROUP_CONV_PG),
                               scale=0.25)
        assert result.stats.instructions_retired > 0
        assert result.technique == "fetch_group_conv_pg"
        # Conventional gating attached.
        assert set(result.domain_stats) == {"INT0", "INT1", "FP0", "FP1"}
