"""Unit/integration tests for the SM cycle model."""

import pytest

from repro.isa.instructions import fp_op, int_op, load_op, sfu_op, store_op
from repro.isa.optypes import ExecUnitKind, OpClass
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.sched.two_level import TwoLevelScheduler
from repro.sim.sm import StreamingMultiprocessor

from tests.conftest import SMALL_SM


def make_sm(kernel: KernelTrace, config: SMConfig = SMALL_SM,
            **kwargs) -> StreamingMultiprocessor:
    scheduler = TwoLevelScheduler(n_slots=min(config.max_resident_warps,
                                              kernel.max_resident_warps))
    return StreamingMultiprocessor(kernel, config, scheduler, **kwargs)


def single_warp_kernel(*insts) -> KernelTrace:
    return KernelTrace(name="k", warps=(WarpTrace(0, tuple(insts)),),
                       max_resident_warps=4)


class TestCompletion:
    def test_all_instructions_retire(self, tiny_kernel):
        result = make_sm(tiny_kernel).run()
        assert result.stats.instructions_retired == \
            tiny_kernel.total_instructions
        assert result.stats.instructions_issued == \
            result.stats.instructions_retired

    def test_single_dependent_chain_timing(self):
        # Three chained INT adds: issue at 0, 4, 8; last retires at 12.
        kernel = single_warp_kernel(
            int_op(0), int_op(1, srcs=(0,)), int_op(2, srcs=(1,)))
        result = make_sm(kernel).run()
        assert result.cycles == 13  # drain completes during cycle 12

    def test_loads_resolve_and_unblock(self):
        kernel = single_warp_kernel(
            load_op(0, line_addr=1), int_op(1, srcs=(0,)))
        config = SMConfig(max_resident_warps=4,
                          memory=MemoryConfig(dram_latency=50,
                                              dram_jitter=0.0))
        result = make_sm(kernel, config).run()
        # load issues ~cycle 0, exits LDST at 2, misses (50) -> dependent
        # issues at ~52, retires at ~56.
        assert 55 <= result.cycles <= 62
        assert result.memory.misses == 1

    def test_stores_do_not_block_warp(self):
        kernel = single_warp_kernel(
            store_op(line_addr=3, srcs=(1,)), int_op(0))
        result = make_sm(kernel).run()
        assert result.cycles < 15
        assert result.memory.stores == 1

    def test_sfu_instructions_execute(self):
        kernel = single_warp_kernel(sfu_op(0), sfu_op(1))
        result = make_sm(kernel).run()
        assert result.pipeline_issues["SFU"] == 2

    def test_more_warps_than_slots(self):
        warps = tuple(WarpTrace(i, (int_op(0), fp_op(1)))
                      for i in range(12))
        kernel = KernelTrace(name="k", warps=warps, max_resident_warps=4)
        result = make_sm(kernel).run()
        assert result.stats.instructions_retired == 24

    def test_sm_single_use(self, tiny_kernel):
        sm = make_sm(tiny_kernel)
        sm.run()
        with pytest.raises(RuntimeError, match="exactly one kernel"):
            sm.run()

    def test_deadlock_guard_raises(self, tiny_kernel):
        config = SMConfig(max_resident_warps=4, max_cycles=3)
        with pytest.raises(RuntimeError, match="deadlock"):
            make_sm(tiny_kernel, config).run()


class TestStructure:
    def test_pipeline_inventory_matches_config(self, tiny_kernel):
        config = SMConfig(n_sp_clusters=3, max_resident_warps=4)
        sm = make_sm(tiny_kernel, config)
        names = {p.name for p in sm.pipelines}
        assert names == {"INT0", "INT1", "INT2", "FP0", "FP1", "FP2",
                         "SFU", "LDST"}

    def test_home_cluster_binding(self):
        # Even warp slots use cluster 0, odd slots cluster 1.
        warps = tuple(WarpTrace(i, (int_op(0),)) for i in range(4))
        kernel = KernelTrace(name="k", warps=warps, max_resident_warps=4)
        result = make_sm(kernel).run()
        assert result.pipeline_issues["INT0"] == 2
        assert result.pipeline_issues["INT1"] == 2

    def test_attach_domain_validates_name(self, tiny_kernel):
        from repro.power.gating import ConventionalPolicy, GatingDomain
        from repro.power.params import GatingParams
        sm = make_sm(tiny_kernel)
        domain = GatingDomain("nope", GatingParams(), ConventionalPolicy())
        with pytest.raises(KeyError):
            sm.attach_domain("NOPE", domain)

    def test_result_pipeline_names(self, tiny_kernel):
        result = make_sm(tiny_kernel).run()
        assert result.pipeline_names(ExecUnitKind.INT) == ("INT0", "INT1")
        assert result.pipeline_names(ExecUnitKind.SFU) == ("SFU",)


class TestAccounting:
    def test_issued_by_class_matches_kernel(self, tiny_kernel):
        result = make_sm(tiny_kernel).run()
        counts = tiny_kernel.op_class_counts()
        for cls in OpClass:
            assert result.stats.issued_by_class[cls] == counts[cls]

    def test_busy_plus_idle_equals_cycles(self, tiny_kernel):
        result = make_sm(tiny_kernel).run()
        for tracker in result.stats.idle_trackers.values():
            assert tracker.busy_cycles + tracker.idle_cycles == \
                result.cycles

    def test_idle_histogram_mass_invariant(self, tiny_kernel):
        result = make_sm(tiny_kernel).run()
        for tracker in result.stats.idle_trackers.values():
            assert tracker.recorded_idle_cycles() == tracker.idle_cycles

    def test_unit_activity_without_gating(self, tiny_kernel):
        result = make_sm(tiny_kernel).run()
        activity = result.unit_activity(ExecUnitKind.INT)
        assert activity.cycles == 2 * result.cycles
        assert activity.gated_cycles == 0
        assert activity.gating_events == 0
        assert activity.issues == result.pipeline_issues["INT0"] + \
            result.pipeline_issues["INT1"]


class TestDeterminism:
    def test_same_kernel_same_result(self, balanced_spec):
        from repro.isa.tracegen import generate_kernel
        kernel = generate_kernel(balanced_spec, seed=3)
        r1 = make_sm(kernel).run()
        r2 = make_sm(kernel).run()
        assert r1.cycles == r2.cycles
        assert r1.stats.instructions_retired == \
            r2.stats.instructions_retired
        assert r1.pipeline_issues == r2.pipeline_issues
