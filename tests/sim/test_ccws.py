"""Tests for the CCWS scheduler and lost-locality monitor."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, run_benchmark
from repro.isa.instructions import int_op
from repro.sim.locality import LostLocalityMonitor
from repro.sim.memory import L1Cache
from repro.sim.sched.base import IssueCandidate, SchedulerView
from repro.sim.sched.ccws import CCWSScheduler, MonitorDecayHook


def cand(slot, age=None, ready=True):
    return IssueCandidate(slot=slot, age=age if age is not None else slot,
                          inst=int_op(dest=0), ready=ready)


class TestMonitor:
    def test_validation(self):
        with pytest.raises(ValueError):
            LostLocalityMonitor(vta_entries=0)
        with pytest.raises(ValueError):
            LostLocalityMonitor(score_per_event=0)
        with pytest.raises(ValueError):
            LostLocalityMonitor(decay_per_cycle=-1)

    def test_miss_without_prior_eviction_is_cold(self):
        monitor = LostLocalityMonitor()
        assert not monitor.record_miss(warp=0, line=5)
        assert monitor.total_score() == 0.0

    def test_lost_locality_detected(self):
        monitor = LostLocalityMonitor(score_per_event=32.0)
        monitor.record_eviction(owner_warp=0, line=5)
        assert monitor.record_miss(warp=0, line=5)
        assert monitor.score_of(0) == pytest.approx(32.0)
        assert monitor.lost_locality_events == 1

    def test_other_warps_miss_is_not_lost_locality(self):
        monitor = LostLocalityMonitor()
        monitor.record_eviction(owner_warp=0, line=5)
        assert not monitor.record_miss(warp=1, line=5)

    def test_vta_entry_consumed_on_hit(self):
        monitor = LostLocalityMonitor()
        monitor.record_eviction(0, 5)
        assert monitor.record_miss(0, 5)
        assert not monitor.record_miss(0, 5)  # tag consumed

    def test_vta_capacity_fifo(self):
        monitor = LostLocalityMonitor(vta_entries=2)
        for line in (1, 2, 3):
            monitor.record_eviction(0, line)
        assert not monitor.record_miss(0, 1)  # displaced
        assert monitor.record_miss(0, 2)
        assert monitor.record_miss(0, 3)

    def test_decay_drains_scores(self):
        monitor = LostLocalityMonitor(score_per_event=1.0,
                                      decay_per_cycle=0.5)
        monitor.record_eviction(0, 5)
        monitor.record_miss(0, 5)
        monitor.on_cycle(0)
        assert monitor.total_score() == pytest.approx(0.5)
        monitor.on_cycle(1)
        assert monitor.total_score() == 0.0

    def test_clear_warp(self):
        monitor = LostLocalityMonitor()
        monitor.record_eviction(0, 5)
        monitor.record_miss(0, 5)
        monitor.clear_warp(0)
        assert monitor.total_score() == 0.0


class TestCacheEvictionReporting:
    def test_last_evicted_set_on_overflow(self):
        cache = L1Cache(sets=1, ways=2)
        cache.lookup(1, allocate=True)
        cache.lookup(2, allocate=True)
        assert cache.last_evicted is None
        cache.lookup(3, allocate=True)
        assert cache.last_evicted == 1

    def test_last_evicted_cleared_on_hit(self):
        cache = L1Cache(sets=1, ways=1)
        cache.lookup(1, allocate=True)
        cache.lookup(2, allocate=True)
        assert cache.last_evicted == 1
        cache.lookup(2, allocate=False)
        assert cache.last_evicted is None


class TestScheduler:
    def test_no_throttle_without_score(self):
        sched = CCWSScheduler(n_slots=8)
        candidates = [cand(s) for s in range(4)]
        ordered = sched.order(0, candidates, SchedulerView())
        assert len(ordered) == 4
        assert sched.throttled_cycles == 0

    def test_throttles_youngest_warps_under_pressure(self):
        monitor = LostLocalityMonitor(score_per_event=100.0,
                                      decay_per_cycle=0.0)
        sched = CCWSScheduler(n_slots=8, monitor=monitor,
                              score_per_excluded_warp=64.0,
                              min_active_warps=2)
        monitor.record_eviction(0, 1)
        monitor.record_miss(0, 1)  # score 100 -> exclude 1 warp
        candidates = [cand(0, age=0), cand(1, age=1), cand(2, age=2)]
        ordered = sched.order(0, candidates, SchedulerView())
        slots = {c.slot for c in ordered}
        assert slots == {0, 1}  # youngest (age 2) loses privileges
        assert sched.throttled_cycles == 1

    def test_min_active_warps_floor(self):
        monitor = LostLocalityMonitor(score_per_event=1e6,
                                      decay_per_cycle=0.0)
        sched = CCWSScheduler(n_slots=8, monitor=monitor,
                              min_active_warps=2)
        monitor.record_eviction(0, 1)
        monitor.record_miss(0, 1)
        candidates = [cand(s, age=s) for s in range(6)]
        ordered = sched.order(0, candidates, SchedulerView())
        assert {c.slot for c in ordered} == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            CCWSScheduler(n_slots=0)
        with pytest.raises(ValueError):
            CCWSScheduler(n_slots=8, score_per_excluded_warp=0)
        with pytest.raises(ValueError):
            CCWSScheduler(n_slots=8, min_active_warps=0)

    def test_decay_hook(self):
        monitor = LostLocalityMonitor(score_per_event=1.0,
                                      decay_per_cycle=1.0)
        hook = MonitorDecayHook(monitor)
        monitor.record_eviction(0, 1)
        monitor.record_miss(0, 1)
        hook.on_cycle(0)
        assert monitor.total_score() == 0.0


class TestEndToEnd:
    def test_runs_thrashing_benchmark(self):
        # MUM has a large footprint and low locality: the thrash case.
        result = run_benchmark("MUM",
                               TechniqueConfig(Technique.CCWS_CONV_PG),
                               scale=0.25)
        assert result.technique == "ccws_conv_pg"
        assert result.stats.instructions_retired > 0
        # Conventional gating is attached alongside.
        assert set(result.domain_stats) == {"INT0", "INT1", "FP0", "FP1"}

    def test_monitor_sees_traffic_on_thrashing_workload(self):
        from repro.core.techniques import build_sm
        from repro.workloads.registry import build_kernel
        from repro.workloads.specs import get_profile
        kernel = build_kernel("MUM", scale=0.25)
        sm = build_sm(kernel, TechniqueConfig(Technique.CCWS_CONV_PG),
                      dram_latency=get_profile("MUM").dram_latency)
        sm.run()
        monitor = sm.scheduler.monitor
        assert monitor.evictions_recorded > 0
