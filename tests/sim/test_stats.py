"""Tests for statistics collection and the idle-period tracker."""

import pytest

from repro.isa.optypes import OpClass
from repro.sim.stats import IdlePeriodTracker, SMStats


class TestIdlePeriodTracker:
    def test_counts_busy_and_idle(self):
        tracker = IdlePeriodTracker()
        for busy in [True, False, False, True, False, True]:
            tracker.observe(busy)
        tracker.finalize()
        assert tracker.busy_cycles == 3
        assert tracker.idle_cycles == 3

    def test_records_maximal_runs(self):
        tracker = IdlePeriodTracker()
        pattern = [True, False, False, True, False, False, False, True]
        for busy in pattern:
            tracker.observe(busy)
        tracker.finalize()
        assert tracker.histogram == {2: 1, 3: 1}

    def test_trailing_run_needs_finalize(self):
        tracker = IdlePeriodTracker()
        for busy in [True, False, False]:
            tracker.observe(busy)
        assert tracker.histogram == {}
        tracker.finalize()
        assert tracker.histogram == {2: 1}

    def test_finalize_idempotent_on_flushed_state(self):
        tracker = IdlePeriodTracker()
        tracker.observe(False)
        tracker.finalize()
        tracker.finalize()
        assert tracker.histogram == {1: 1}

    def test_double_finalize_never_splits_trailing_period(self):
        # Regression: harness and timeline/analysis paths may both
        # finalize the same run; the trailing idle period must land in
        # the Figure 3 histogram exactly once, as one period.
        tracker = IdlePeriodTracker()
        for busy in [True, False, False, False]:
            tracker.observe(busy)
        tracker.finalize()
        assert tracker.finalized
        for _ in range(3):
            tracker.finalize()
        assert tracker.histogram == {3: 1}
        assert tracker.total_periods == 1
        assert tracker.recorded_idle_cycles() == tracker.idle_cycles

    def test_observe_after_finalize_raises(self):
        tracker = IdlePeriodTracker()
        tracker.observe(False)
        tracker.finalize()
        with pytest.raises(RuntimeError):
            tracker.observe(False)
        with pytest.raises(RuntimeError):
            tracker.observe(True)
        # The failed observations left the books untouched.
        assert tracker.histogram == {1: 1}
        assert tracker.idle_cycles == 1
        assert tracker.busy_cycles == 0

    def test_invariant_idle_cycles_equal_histogram_mass(self):
        tracker = IdlePeriodTracker()
        pattern = [False, False, True, False, True, True, False, False,
                   False, True, False]
        for busy in pattern:
            tracker.observe(busy)
        tracker.finalize()
        assert tracker.recorded_idle_cycles() == tracker.idle_cycles

    def test_all_busy_yields_no_periods(self):
        tracker = IdlePeriodTracker()
        for _ in range(10):
            tracker.observe(True)
        tracker.finalize()
        assert tracker.total_periods == 0
        assert tracker.idle_cycles == 0


class TestSMStats:
    def test_warp_population_sampling(self):
        stats = SMStats()
        stats.sample_warp_population(active=4, pending=2)
        stats.sample_warp_population(active=8, pending=0)
        stats.cycles = 2
        assert stats.avg_active_warps == pytest.approx(6.0)
        assert stats.avg_pending_warps == pytest.approx(1.0)
        assert stats.active_warp_max == 8

    def test_zero_cycles_safe(self):
        stats = SMStats()
        assert stats.avg_active_warps == 0.0
        assert stats.ipc == 0.0

    def test_tracker_is_lazily_created_and_cached(self):
        stats = SMStats()
        t1 = stats.tracker("INT0")
        t2 = stats.tracker("INT0")
        assert t1 is t2

    def test_idle_fraction_averages_pipelines(self):
        stats = SMStats()
        stats.cycles = 10
        a = stats.tracker("INT0")
        b = stats.tracker("INT1")
        for _ in range(4):
            a.observe(False)
        for _ in range(6):
            a.observe(True)
        for _ in range(8):
            b.observe(False)
        for _ in range(2):
            b.observe(True)
        assert stats.idle_fraction(["INT0", "INT1"]) == pytest.approx(0.6)

    def test_idle_fraction_empty_inputs(self):
        stats = SMStats()
        assert stats.idle_fraction([]) == 0.0

    def test_finalize_flushes_all_trackers(self):
        stats = SMStats()
        stats.tracker("A").observe(False)
        stats.tracker("B").observe(False)
        stats.finalize()
        assert stats.tracker("A").histogram == {1: 1}
        assert stats.tracker("B").histogram == {1: 1}

    def test_issued_by_class_initialised(self):
        stats = SMStats()
        assert set(stats.issued_by_class) == set(OpClass)
