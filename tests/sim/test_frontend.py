"""Tests for warp contexts, instruction buffers, fetch and launch."""

import pytest

from repro.isa.instructions import int_op
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.frontend import FetchEngine, WarpContext, WarpLauncher


def make_trace(warp_id: int, n: int = 4) -> WarpTrace:
    return WarpTrace(warp_id=warp_id,
                     instructions=tuple(int_op(dest=i % 8) for i in range(n)))


def make_kernel(n_warps: int, per_warp: int = 4,
                cap: int = 48) -> KernelTrace:
    return KernelTrace(name="k",
                       warps=tuple(make_trace(i, per_warp)
                                   for i in range(n_warps)),
                       max_resident_warps=cap)


class TestWarpContext:
    def test_empty_slot(self):
        ctx = WarpContext(0)
        assert not ctx.occupied
        assert ctx.head() is None

    def test_assign_and_finish_lifecycle(self):
        ctx = WarpContext(0)
        ctx.assign(make_trace(0, n=1))
        assert ctx.occupied and not ctx.finished()
        ctx.ibuffer.append(ctx.trace[0])
        ctx.fetch_pc = 1
        ctx.pop_head()
        ctx.outstanding += 1
        assert not ctx.finished()  # still one in flight
        ctx.outstanding -= 1
        assert ctx.finished()
        ctx.release()
        assert not ctx.occupied

    def test_assign_resets_state(self):
        ctx = WarpContext(0)
        ctx.assign(make_trace(0))
        ctx.fetch_pc = 3
        ctx.outstanding = 2
        ctx.assign(make_trace(1))
        assert ctx.fetch_pc == 0
        assert ctx.outstanding == 0


class TestFetchEngine:
    def test_fills_up_to_width(self):
        warps = [WarpContext(i) for i in range(4)]
        for i, w in enumerate(warps):
            w.assign(make_trace(i, n=8))
        fetch = FetchEngine(fetch_width=4, ibuffer_entries=2)
        assert fetch.tick(warps) == 4

    def test_respects_buffer_capacity(self):
        warps = [WarpContext(0)]
        warps[0].assign(make_trace(0, n=8))
        fetch = FetchEngine(fetch_width=8, ibuffer_entries=2)
        assert fetch.tick(warps) == 2
        assert len(warps[0].ibuffer) == 2

    def test_stops_at_trace_end(self):
        warps = [WarpContext(0)]
        warps[0].assign(make_trace(0, n=1))
        fetch = FetchEngine(fetch_width=4, ibuffer_entries=4)
        assert fetch.tick(warps) == 1
        assert warps[0].trace_exhausted

    def test_round_robin_rotates(self):
        warps = [WarpContext(i) for i in range(3)]
        for i, w in enumerate(warps):
            w.assign(make_trace(i, n=10))
        fetch = FetchEngine(fetch_width=1, ibuffer_entries=8)
        fetch.tick(warps)
        fetch.tick(warps)
        fetch.tick(warps)
        fed = [len(w.ibuffer) for w in warps]
        assert sum(fed) == 3
        assert max(fed) == 1  # spread across warps, not one hog

    def test_skips_empty_slots(self):
        warps = [WarpContext(0), WarpContext(1)]
        warps[1].assign(make_trace(1, n=4))
        fetch = FetchEngine(fetch_width=2, ibuffer_entries=2)
        assert fetch.tick(warps) == 2
        assert len(warps[1].ibuffer) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FetchEngine(fetch_width=0, ibuffer_entries=1)
        with pytest.raises(ValueError):
            FetchEngine(fetch_width=1, ibuffer_entries=0)


class TestWarpLauncher:
    def test_launch_into_respects_cap(self):
        kernel = make_kernel(10, cap=48)
        launcher = WarpLauncher(kernel, max_resident=4)
        warps = [WarpContext(i) for i in range(8)]
        launched = launcher.launch_into(warps)
        assert launched == 4
        assert launcher.remaining == 6

    def test_kernel_cap_wins_when_smaller(self):
        kernel = make_kernel(10, cap=2)
        launcher = WarpLauncher(kernel, max_resident=8)
        warps = [WarpContext(i) for i in range(8)]
        assert launcher.launch_into(warps) == 2

    def test_pop_next_exhausts(self):
        kernel = make_kernel(2)
        launcher = WarpLauncher(kernel, max_resident=4)
        assert launcher.pop_next() is kernel.warps[0]
        assert launcher.pop_next() is kernel.warps[1]
        assert launcher.pop_next() is None
        assert launcher.remaining == 0

    def test_refill_after_release(self):
        kernel = make_kernel(3)
        launcher = WarpLauncher(kernel, max_resident=1)
        warps = [WarpContext(0)]
        assert launcher.launch_into(warps) == 1
        warps[0].release()
        assert launcher.launch_into(warps) == 1
        assert launcher.remaining == 1
