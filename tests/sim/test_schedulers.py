"""Tests for the baseline warp schedulers."""

import pytest

from repro.isa.instructions import fp_op, int_op, load_op
from repro.sim.sched.base import IssueCandidate, SchedulerView
from repro.sim.sched.two_level import (
    LooseRoundRobinScheduler,
    TwoLevelScheduler,
)


def cand(slot: int, inst, ready: bool = True) -> IssueCandidate:
    return IssueCandidate(slot=slot, age=slot, inst=inst, ready=ready)


class TestTwoLevelScheduler:
    def test_filters_not_ready(self):
        sched = TwoLevelScheduler(n_slots=8)
        candidates = [cand(0, int_op(dest=0), ready=False),
                      cand(1, fp_op(dest=0), ready=True)]
        ordered = sched.order(0, candidates, SchedulerView())
        assert [c.slot for c in ordered] == [1]

    def test_rotates_after_last_issuer(self):
        sched = TwoLevelScheduler(n_slots=8)
        candidates = [cand(s, int_op(dest=0)) for s in (0, 3, 6)]
        first = sched.order(0, candidates, SchedulerView())
        assert [c.slot for c in first] == [0, 3, 6]
        sched.on_issue(0, first[0])     # last slot = 0
        second = sched.order(1, candidates, SchedulerView())
        assert [c.slot for c in second] == [3, 6, 0]

    def test_type_blind(self):
        # The baseline's defining flaw: types intersperse freely.
        sched = TwoLevelScheduler(n_slots=4)
        candidates = [cand(0, int_op(dest=0)), cand(1, fp_op(dest=0)),
                      cand(2, int_op(dest=0)), cand(3, fp_op(dest=0))]
        ordered = sched.order(0, candidates, SchedulerView())
        assert [c.slot for c in ordered] == [0, 1, 2, 3]

    def test_reset_restores_pointer(self):
        sched = TwoLevelScheduler(n_slots=4)
        sched.on_issue(0, cand(2, int_op(dest=0)))
        sched.reset()
        ordered = sched.order(0, [cand(s, int_op(dest=0))
                                  for s in range(4)], SchedulerView())
        assert [c.slot for c in ordered] == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelScheduler(n_slots=0)


class TestLooseRoundRobin:
    def test_pointer_advances_every_cycle(self):
        sched = LooseRoundRobinScheduler(n_slots=4)
        candidates = [cand(s, int_op(dest=0)) for s in range(4)]
        first = sched.order(0, candidates, SchedulerView())
        second = sched.order(1, candidates, SchedulerView())
        assert [c.slot for c in first] == [0, 1, 2, 3]
        assert [c.slot for c in second] == [1, 2, 3, 0]

    def test_reset(self):
        sched = LooseRoundRobinScheduler(n_slots=4)
        sched.order(0, [], SchedulerView())
        sched.reset()
        ordered = sched.order(0, [cand(s, int_op(dest=0))
                                  for s in range(2)], SchedulerView())
        assert [c.slot for c in ordered] == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            LooseRoundRobinScheduler(n_slots=-1)


class TestIssueCandidate:
    def test_op_class_passthrough(self):
        c = cand(0, load_op(dest=0, line_addr=0))
        from repro.isa.optypes import OpClass
        assert c.op_class is OpClass.LDST
