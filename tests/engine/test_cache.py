"""Persistent run-cache behaviour: round trips, corruption, atomicity."""

import pickle

import pytest

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine.cache import RunCache
from repro.engine.jobs import (
    SimJob,
    execute_job,
    load_or_build_kernel,
    trace_cache_key,
)


class TestRunCache:
    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", {"cycles": 42})
        assert cache.get("results", "key") == {"cycles": 42}
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_entry_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("results", "absent") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", [1, 2, 3])
        cache.path("results", "key").write_bytes(b"not a pickle")
        assert cache.get("results", "key") is None
        assert cache.misses == 1

    def test_truncated_entry_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", list(range(1000)))
        path = cache.path("results", "key")
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("results", "key") is None

    def test_writes_leave_no_temp_files(self, tmp_path):
        cache = RunCache(tmp_path)
        for i in range(5):
            cache.put("results", f"k{i}", i)
        names = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert names == [f"k{i}.pkl" for i in range(5)]

    def test_groups_are_disjoint(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("traces", "key", "a trace")
        assert cache.get("results", "key") is None


class TestTraceMemoisation:
    def test_trace_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        first = load_or_build_kernel("hotspot", 0, 0.2, cache=cache)
        assert cache.path("traces",
                          trace_cache_key("hotspot", 0, 0.2)).exists()
        second = load_or_build_kernel("hotspot", 0, 0.2, cache=cache)
        assert cache.hits == 1
        assert second.n_warps == first.n_warps
        assert second.total_instructions == first.total_instructions
        assert pickle.dumps(second) == pickle.dumps(first)

    def test_key_distinguishes_seed_and_scale(self):
        base = trace_cache_key("hotspot", 0, 0.2)
        assert trace_cache_key("hotspot", 1, 0.2) != base
        assert trace_cache_key("hotspot", 0, 0.25) != base
        assert trace_cache_key("bfs", 0, 0.2) != base

    def test_no_cache_builds_directly(self):
        kernel = load_or_build_kernel("hotspot", 0, 0.2, cache=None)
        assert kernel.n_warps > 0


class TestResultCache:
    JOB = SimJob(benchmark="hotspot",
                 config=TechniqueConfig(Technique.CONV_PG), scale=0.2)

    def test_execute_job_round_trip(self, tmp_path):
        cold = execute_job(self.JOB, cache_dir=str(tmp_path))
        assert not cold.manifest.cache_hit
        assert set(cold.manifest.wall_seconds) == {"build_trace",
                                                   "simulate"}
        warm = execute_job(self.JOB, cache_dir=str(tmp_path))
        assert warm.manifest.cache_hit
        assert set(warm.manifest.wall_seconds) == {"cache_load"}
        assert warm.result.cycles == cold.result.cycles
        assert warm.result.metrics == cold.result.metrics
        assert warm.manifest.cycles == cold.manifest.cycles

    def test_corrupt_result_falls_back_to_simulation(self, tmp_path):
        cold = execute_job(self.JOB, cache_dir=str(tmp_path))
        path = RunCache(tmp_path).path("results", self.JOB.cache_key())
        path.write_bytes(b"garbage")
        redo = execute_job(self.JOB, cache_dir=str(tmp_path))
        assert not redo.manifest.cache_hit
        assert redo.result.cycles == cold.result.cycles

    def test_key_isolates_fast_forward_and_config(self):
        base = self.JOB.cache_key()
        assert SimJob(benchmark="hotspot",
                      config=TechniqueConfig(Technique.CONV_PG),
                      scale=0.2, fast_forward=False).cache_key() != base
        assert SimJob(benchmark="hotspot",
                      config=TechniqueConfig(Technique.WARPED_GATES),
                      scale=0.2).cache_key() != base
        assert SimJob(benchmark="hotspot",
                      config=TechniqueConfig(Technique.CONV_PG),
                      scale=0.2, seed=7).cache_key() != base

    def test_no_cache_dir_runs_fresh(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        outcome = execute_job(self.JOB, cache_dir=None)
        assert not outcome.manifest.cache_hit
        assert list(tmp_path.iterdir()) == []  # nothing written to CWD
