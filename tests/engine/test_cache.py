"""Persistent run-cache behaviour: round trips, corruption, atomicity."""

import logging
import os
import pickle


from repro.core.techniques import Technique, TechniqueConfig
from repro.engine.cache import RunCache
from repro.obs.telemetry import (
    CacheEvicted,
    CacheHit,
    CacheMiss,
    CacheSwept,
)
from repro.engine.jobs import (
    SimJob,
    execute_job,
    load_or_build_kernel,
    trace_cache_key,
)

from tests.engine.faults import corrupt_cache_entry, plant_stale_tmp


class TestRunCache:
    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", {"cycles": 42})
        assert cache.get("results", "key") == {"cycles": 42}
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_entry_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("results", "absent") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", [1, 2, 3])
        cache.path("results", "key").write_bytes(b"not a pickle")
        assert cache.get("results", "key") is None
        assert cache.misses == 1

    def test_truncated_entry_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", list(range(1000)))
        path = cache.path("results", "key")
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("results", "key") is None

    def test_writes_leave_no_temp_files(self, tmp_path):
        cache = RunCache(tmp_path)
        for i in range(5):
            cache.put("results", f"k{i}", i)
        names = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert names == [f"k{i}.pkl" for i in range(5)]

    def test_groups_are_disjoint(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("traces", "key", "a trace")
        assert cache.get("results", "key") is None


class TestChecksums:
    def test_flipped_payload_byte_is_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", list(range(100)))
        corrupt_cache_entry(cache, "results", "key", mode="flip")
        assert cache.get("results", "key") is None
        assert cache.misses == 1

    def test_legacy_raw_pickle_is_miss(self, tmp_path):
        # Pre-checksum entries were bare pickles; they must read as
        # misses (and never be unpickled) rather than crash or poison.
        cache = RunCache(tmp_path)
        path = cache.path("results", "legacy")
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"cycles": 42}))
        assert cache.get("results", "legacy") is None

    def test_hit_survives_verification(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("results", "key", {"cycles": 42})
        assert cache.get("results", "key") == {"cycles": 42}


class TestJanitor:
    def test_stale_tmp_swept_on_open(self, tmp_path):
        RunCache(tmp_path).put("results", "live", 1)
        orphan = plant_stale_tmp(tmp_path, age_seconds=7200.0)
        cache = RunCache(tmp_path)  # opening sweeps
        assert not orphan.exists()
        assert cache.swept_tmp == 1
        assert cache.get("results", "live") == 1  # entries untouched

    def test_fresh_tmp_left_alone(self, tmp_path):
        RunCache(tmp_path).put("results", "live", 1)
        fresh = plant_stale_tmp(tmp_path, age_seconds=0.0)
        cache = RunCache(tmp_path)
        assert fresh.exists()  # may belong to a live writer
        assert cache.swept_tmp == 0

    def test_janitor_can_be_disabled(self, tmp_path):
        RunCache(tmp_path).put("results", "live", 1)
        orphan = plant_stale_tmp(tmp_path, age_seconds=7200.0)
        RunCache(tmp_path, janitor=False)
        assert orphan.exists()

    def test_execute_job_leaves_sweeping_to_the_engine(self, tmp_path):
        # Workers open their per-job caches without the janitor: a
        # per-job directory scan would grow with cache size.
        orphan = plant_stale_tmp(tmp_path, age_seconds=7200.0)
        job = SimJob(benchmark="hotspot",
                     config=TechniqueConfig(Technique.BASELINE),
                     scale=0.2)
        execute_job(job, cache_dir=str(tmp_path))
        assert orphan.exists()

    def test_engine_sweeps_once_per_batch(self, tmp_path):
        from repro.engine import ParallelEngine
        orphan = plant_stale_tmp(tmp_path, age_seconds=7200.0)
        job = SimJob(benchmark="hotspot",
                     config=TechniqueConfig(Technique.BASELINE),
                     scale=0.2)
        with ParallelEngine(jobs=1, cache_dir=str(tmp_path)) as engine:
            engine.run_sim_jobs([job])
        assert not orphan.exists()


class TestSizeCap:
    def _put(self, cache, key, stamp):
        cache.put("results", key, bytes(1000))
        os.utime(cache.path("results", key), (stamp, stamp))

    def test_lru_eviction_past_cap(self, tmp_path):
        cache = RunCache(tmp_path, max_bytes=3500)
        for i, key in enumerate(("a", "b", "c")):
            self._put(cache, key, 1000.0 + i)
        # A hit refreshes "a": it is no longer the eviction candidate.
        assert cache.get("results", "a") is not None
        os.utime(cache.path("results", "a"), (2000.0, 2000.0))
        self._put(cache, "d", 3000.0)  # pushes total past the cap
        assert cache.evictions == 1
        assert cache.get("results", "b") is None  # oldest went
        for key in ("a", "c", "d"):
            assert cache.get("results", key) is not None, key

    def test_no_cap_never_evicts(self, tmp_path):
        cache = RunCache(tmp_path)
        for i in range(5):
            cache.put("results", f"k{i}", bytes(1000))
        assert cache.evictions == 0
        assert cache.total_bytes() > 5000

    def test_puts_under_cap_do_not_rescan(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path, max_bytes=1_000_000)
        cache.put("results", "seed", bytes(1000))  # one initial scan
        scans = []
        monkeypatch.setattr(
            cache, "total_bytes",
            lambda: scans.append(1) or 0)
        for i in range(10):
            cache.put("results", f"k{i}", bytes(1000))
        assert scans == []  # size tracked incrementally, O(1) per put
        assert cache.evictions == 0


class TestCacheTelemetry:
    """The listener seam: every cache disposition becomes an event."""

    def test_hit_and_plain_miss_events(self, tmp_path):
        seen = []
        cache = RunCache(tmp_path, listener=seen.append)
        cache.put("results", "key", 1)
        cache.get("results", "key")
        cache.get("results", "absent")
        assert [type(e).__name__ for e in seen] \
            == ["CacheHit", "CacheMiss"]
        hit, miss = seen
        assert isinstance(hit, CacheHit)
        assert (hit.group, hit.key) == ("results", "key")
        assert hit.worker  # stamped with the process name
        assert isinstance(miss, CacheMiss)
        assert miss.key == "absent"
        assert not miss.corrupt

    def test_corrupt_entry_event_and_counter(self, tmp_path):
        seen = []
        cache = RunCache(tmp_path, listener=seen.append)
        cache.put("results", "key", list(range(100)))
        corrupt_cache_entry(cache, "results", "key", mode="flip")
        assert cache.get("results", "key") is None
        assert cache.corrupt_misses == 1
        assert isinstance(seen[-1], CacheMiss)
        assert seen[-1].corrupt

    def test_eviction_event_counts_entries_and_bytes(self, tmp_path):
        seen = []
        cache = RunCache(tmp_path, max_bytes=2500,
                         listener=seen.append)
        for i, key in enumerate(("a", "b", "c")):
            cache.put("results", key, bytes(1000))
            stamp = 1000.0 + i
            os.utime(cache.path("results", key), (stamp, stamp))
        evicted = [e for e in seen if isinstance(e, CacheEvicted)]
        assert evicted
        assert sum(e.entries for e in evicted) == cache.evictions >= 1
        assert all(e.bytes > 0 for e in evicted)

    def test_sweep_event_reports_removed_orphans(self, tmp_path):
        RunCache(tmp_path).put("results", "live", 1)
        plant_stale_tmp(tmp_path, age_seconds=7200.0)
        seen = []
        RunCache(tmp_path, listener=seen.append)  # opening sweeps
        swept = [e for e in seen if isinstance(e, CacheSwept)]
        assert len(swept) == 1
        assert swept[0].removed == 1

    def test_janitor_sweep_logs_a_summary(self, tmp_path, caplog):
        RunCache(tmp_path).put("results", "live", 1)
        plant_stale_tmp(tmp_path, age_seconds=7200.0)
        with caplog.at_level(logging.INFO, logger="repro.engine.cache"):
            RunCache(tmp_path)
        messages = [r.getMessage() for r in caplog.records]
        assert any("swept 1 stale tmp file(s)" in m for m in messages)

    def test_eviction_logs_a_summary(self, tmp_path, caplog):
        cache = RunCache(tmp_path, max_bytes=1500)
        with caplog.at_level(logging.INFO, logger="repro.engine.cache"):
            cache.put("results", "a", bytes(1000))
            cache.put("results", "b", bytes(1000))
        messages = [r.getMessage() for r in caplog.records]
        assert any("cache LRU cap: evicted" in m for m in messages)

    def test_raising_listener_never_breaks_the_cache(self, tmp_path):
        def explode(event):
            raise RuntimeError("subscriber bug")

        cache = RunCache(tmp_path, listener=explode)
        cache.put("results", "key", {"cycles": 42})
        assert cache.get("results", "key") == {"cycles": 42}
        assert cache.get("results", "absent") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_no_listener_is_the_default(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.listener is None  # zero-cost: one None check


class TestTraceMemoisation:
    def test_trace_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        first = load_or_build_kernel("hotspot", 0, 0.2, cache=cache)
        assert cache.path("traces",
                          trace_cache_key("hotspot", 0, 0.2)).exists()
        second = load_or_build_kernel("hotspot", 0, 0.2, cache=cache)
        assert cache.hits == 1
        assert second.n_warps == first.n_warps
        assert second.total_instructions == first.total_instructions
        assert pickle.dumps(second) == pickle.dumps(first)

    def test_key_distinguishes_seed_and_scale(self):
        base = trace_cache_key("hotspot", 0, 0.2)
        assert trace_cache_key("hotspot", 1, 0.2) != base
        assert trace_cache_key("hotspot", 0, 0.25) != base
        assert trace_cache_key("bfs", 0, 0.2) != base

    def test_no_cache_builds_directly(self):
        kernel = load_or_build_kernel("hotspot", 0, 0.2, cache=None)
        assert kernel.n_warps > 0


class TestResultCache:
    JOB = SimJob(benchmark="hotspot",
                 config=TechniqueConfig(Technique.CONV_PG), scale=0.2)

    def test_execute_job_round_trip(self, tmp_path):
        cold = execute_job(self.JOB, cache_dir=str(tmp_path))
        assert not cold.manifest.cache_hit
        assert set(cold.manifest.wall_seconds) == {"build_trace",
                                                   "simulate"}
        warm = execute_job(self.JOB, cache_dir=str(tmp_path))
        assert warm.manifest.cache_hit
        assert set(warm.manifest.wall_seconds) == {"cache_load"}
        assert warm.result.cycles == cold.result.cycles
        assert warm.result.metrics == cold.result.metrics
        assert warm.manifest.cycles == cold.manifest.cycles

    def test_corrupt_result_falls_back_to_simulation(self, tmp_path):
        cold = execute_job(self.JOB, cache_dir=str(tmp_path))
        path = RunCache(tmp_path).path("results", self.JOB.cache_key())
        path.write_bytes(b"garbage")
        redo = execute_job(self.JOB, cache_dir=str(tmp_path))
        assert not redo.manifest.cache_hit
        assert redo.result.cycles == cold.result.cycles

    def test_key_isolates_fast_forward_and_config(self):
        base = self.JOB.cache_key()
        assert SimJob(benchmark="hotspot",
                      config=TechniqueConfig(Technique.CONV_PG),
                      scale=0.2, fast_forward=False).cache_key() != base
        assert SimJob(benchmark="hotspot",
                      config=TechniqueConfig(Technique.WARPED_GATES),
                      scale=0.2).cache_key() != base
        assert SimJob(benchmark="hotspot",
                      config=TechniqueConfig(Technique.CONV_PG),
                      scale=0.2, seed=7).cache_key() != base

    def test_no_cache_dir_runs_fresh(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        outcome = execute_job(self.JOB, cache_dir=None)
        assert not outcome.manifest.cache_hit
        assert list(tmp_path.iterdir()) == []  # nothing written to CWD
