"""Fault tolerance: crash isolation, retry/timeout, partial grids.

The contract under test (the tentpole of this PR):

* one bad job never strands its siblings — the rest of the batch
  completes and every job gets a structured outcome;
* a hard worker death (``BrokenProcessPool``) and a hung worker
  (per-job timeout) are contained to the jobs that caused them;
* retries are deterministic: a retried job's result is bit-identical
  to a first-try result, and a crashed-then-retried grid matches a
  fully-serial reference run exactly;
* the harness layers (runner, sweeps, replication) complete partial
  grids around failed cells and record the failures in manifests.
"""

import pytest

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine import FaultPolicy, JobStatus, ParallelEngine, SimJob
from repro.engine.faults import JobFailedError

from tests.engine.faults import (
    FaultPlan,
    FaultyEngine,
    FaultyWorker,
    InjectedCrash,
    sim_job_key,
    square,
)

#: No-sleep retries: tests never wait out a real backoff.
FAST = dict(backoff_base=0.0)


class _SubmitCounter:
    """Executor proxy that counts this wave's submissions."""

    def __init__(self, pool, sizes):
        self._pool = pool
        self._sizes = sizes

    def submit(self, fn, *args, **kwargs):
        self._sizes[-1] += 1
        return self._pool.submit(fn, *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._pool, name)


class _WaveSpyEngine(ParallelEngine):
    """Records how many jobs each wave submitted (``_pool`` is called
    exactly once per wave)."""

    def __init__(self, sizes, **kwargs):
        super().__init__(**kwargs)
        self.wave_sizes = sizes

    def _pool(self):
        pool = super()._pool()
        self.wave_sizes.append(0)
        return _SubmitCounter(pool, self.wave_sizes)


class TestInlineOutcomes:
    def test_crash_is_contained_to_its_job(self):
        engine = ParallelEngine(jobs=1, cache_dir=None)
        worker = FaultyWorker(square, FaultPlan(crash=(2,)))
        reports = engine.map_outcomes(worker, range(5))
        assert [r.status for r in reports] == [
            JobStatus.OK, JobStatus.OK, JobStatus.FAILED,
            JobStatus.OK, JobStatus.OK]
        assert [r.value for r in reports if r.ok] == [0, 1, 9, 16]
        assert "InjectedCrash" in reports[2].error

    def test_retry_recovers_flaky_job(self, tmp_path):
        engine = ParallelEngine(jobs=1, cache_dir=None)
        worker = FaultyWorker(square, FaultPlan(
            crash_once=(3,), marker_dir=str(tmp_path)))
        reports = engine.map_outcomes(
            worker, range(5), policy=FaultPolicy(max_retries=1, **FAST))
        assert all(r.ok for r in reports)
        assert [r.attempts for r in reports] == [1, 1, 1, 2, 1]
        assert reports[3].value == 9  # bit-identical to a first try
        assert reports[3].retried

    def test_fail_fast_cancels_the_tail(self):
        engine = ParallelEngine(jobs=1, cache_dir=None)
        worker = FaultyWorker(square, FaultPlan(crash=(1,)))
        reports = engine.map_outcomes(
            worker, range(4), policy=FaultPolicy(fail_fast=True, **FAST))
        assert [r.status for r in reports] == [
            JobStatus.OK, JobStatus.FAILED, JobStatus.CANCELLED,
            JobStatus.CANCELLED]
        assert reports[2].attempts == 0  # never executed

    def test_map_raises_original_exception(self):
        engine = ParallelEngine(jobs=1, cache_dir=None)
        worker = FaultyWorker(square, FaultPlan(crash=(0,)))
        with pytest.raises(InjectedCrash):
            engine.map(worker, range(3))


class TestPooledOutcomes:
    def test_worker_exception_mid_batch_completes(self):
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            worker = FaultyWorker(square, FaultPlan(crash=(3,)))
            reports = engine.map_outcomes(worker, range(8))
        assert len(reports) == 8
        assert reports[3].status is JobStatus.FAILED
        assert "InjectedCrash" in reports[3].error
        for i in (0, 1, 2, 4, 5, 6, 7):
            assert reports[i].ok and reports[i].value == i * i

    def test_map_raises_and_engine_stays_usable(self):
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            worker = FaultyWorker(square, FaultPlan(crash=(5,)))
            with pytest.raises(InjectedCrash):
                engine.map(worker, range(8))
            # No future was left running detached: the engine can run
            # the next batch immediately on the same pool.
            assert engine.map(square, range(6)) == \
                [i * i for i in range(6)]

    def test_broken_pool_is_rebuilt_and_attributed(self):
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            worker = FaultyWorker(square, FaultPlan(exit=(2,)))
            reports = engine.map_outcomes(
                worker, range(6),
                policy=FaultPolicy(max_retries=1, **FAST))
            assert reports[2].status is JobStatus.FAILED
            assert reports[2].attempts == 2  # retried once, died again
            for i in (0, 1, 3, 4, 5):
                assert reports[i].ok and reports[i].value == i * i, i
            # The pool was rebuilt: the engine still works.
            assert engine.map(square, [7]) == [49]

    def test_parallel_waves_resume_after_culprit_charged(self):
        # An unattributable crash serialises into one-job waves only
        # until the culprit crashes alone and is charged; the rest of
        # the batch must then run in parallel again, not one per wave.
        sizes = []
        with _WaveSpyEngine(sizes, jobs=2, cache_dir=None) as engine:
            worker = FaultyWorker(square, FaultPlan(
                exit=(0,), hang=tuple(range(1, 10)), hang_seconds=0.2))
            reports = engine.map_outcomes(worker, range(10))
        assert reports[0].status is JobStatus.FAILED
        for i in range(1, 10):
            assert reports[i].ok and reports[i].value == i * i, i
        assert sizes[0] == 10          # first wave fans the whole batch
        assert 1 in sizes              # the culprit ran alone once
        assert sizes[-1] > 1           # parallelism restored afterwards

    def test_timeout_kills_hung_worker_and_charges_it(self):
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            worker = FaultyWorker(square, FaultPlan(hang=(1,)))
            reports = engine.map_outcomes(
                worker, range(4),
                policy=FaultPolicy(job_timeout=0.75, **FAST))
        assert reports[1].status is JobStatus.TIMED_OUT
        assert "timed out" in reports[1].error
        for i in (0, 2, 3):
            assert reports[i].ok and reports[i].value == i * i, i

    def test_queued_jobs_are_not_charged_by_siblings_time(self):
        # 8 x 0.4s jobs on 2 workers: the wave takes ~1.6s wall, well
        # past the 1.5s budget — but each job's own runtime is far
        # under it.  The budget is per job, anchored to when the job
        # starts running, so nothing may time out.
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            worker = FaultyWorker(square, FaultPlan(
                hang=tuple(range(8)), hang_seconds=0.4))
            reports = engine.map_outcomes(
                worker, range(8),
                policy=FaultPolicy(job_timeout=1.5, **FAST))
        assert [r.status for r in reports] == [JobStatus.OK] * 8
        assert [r.value for r in reports] == [i * i for i in range(8)]
        assert all(r.attempts == 1 for r in reports)

    def test_retried_job_is_bit_identical(self, tmp_path):
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            worker = FaultyWorker(square, FaultPlan(
                crash_once=(4,), marker_dir=str(tmp_path)))
            reports = engine.map_outcomes(
                worker, range(6),
                policy=FaultPolicy(max_retries=1, **FAST))
        assert all(r.ok for r in reports)
        assert [r.value for r in reports] == [i * i for i in range(6)]
        assert reports[4].attempts == 2
        assert sum(r.attempts for r in reports) == 7  # only job 4 retried


class TestSimJobGrid:
    """The ISSUE's acceptance scenario: a crashed worker in a >=20-job
    grid must not cost the grid — and retried cells must match a
    fully-serial reference bit for bit."""

    SCALE = 0.15
    VICTIM = "bfs/warped_gates/s0"

    def _grid(self):
        jobs = [SimJob(benchmark=name, config=TechniqueConfig(technique),
                       scale=self.SCALE)
                for name in ("hotspot", "bfs") for technique in Technique]
        assert len(jobs) >= 20
        return jobs

    def test_crashed_worker_grid_matches_serial_reference(self, tmp_path):
        jobs = self._grid()
        with ParallelEngine(jobs=1, cache_dir=None) as inline:
            reference = inline.run_sim_jobs(jobs)
        plan = FaultPlan(crash_once=(self.VICTIM,),
                         marker_dir=str(tmp_path))
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            outcomes = engine.run_sim_jobs(
                jobs, policy=FaultPolicy(max_retries=1, **FAST),
                worker=FaultyWorker(_execute_no_cache, plan,
                                    key=sim_job_key))
        assert len(outcomes) == len(jobs)
        retried = [o for o in outcomes if o.attempts > 1]
        assert [sim_job_key(j) for j, o in zip(jobs, outcomes)
                if o.attempts > 1] == [self.VICTIM]
        assert retried[0].manifest.attempts == 2
        for job, ref, got in zip(jobs, reference, outcomes):
            label = sim_job_key(job)
            assert got.ok, label
            assert got.result.cycles == ref.result.cycles, label
            assert got.result.metrics == ref.result.metrics, label

    def test_permanent_failure_leaves_survivors_intact(self):
        jobs = [SimJob(benchmark="hotspot",
                       config=TechniqueConfig(technique), scale=self.SCALE)
                for technique in (Technique.BASELINE, Technique.CONV_PG,
                                  Technique.WARPED_GATES)]
        victim = sim_job_key(jobs[1])
        with ParallelEngine(jobs=1, cache_dir=None) as inline:
            reference = inline.run_sim_jobs(jobs)
        plan = FaultPlan(crash=(victim,))
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            outcomes = engine.run_sim_jobs(
                jobs, worker=FaultyWorker(_execute_no_cache, plan,
                                          key=sim_job_key))
        assert outcomes[1].status is JobStatus.FAILED
        assert outcomes[1].result is None
        assert "InjectedCrash" in outcomes[1].error
        manifest = outcomes[1].manifest
        assert manifest.status == "failed" and not manifest.ok
        assert manifest.benchmark == "hotspot"
        assert manifest.technique == Technique.CONV_PG.value
        for i in (0, 2):
            assert outcomes[i].ok
            assert outcomes[i].result.metrics == \
                reference[i].result.metrics


def _execute_no_cache(job):
    """Top-level (picklable) cacheless sim-job worker."""
    from repro.engine.jobs import execute_job
    return execute_job(job, cache_dir=None)


class TestHarnessIntegration:
    def _settings(self):
        from repro.harness.experiment import ExperimentSettings
        return ExperimentSettings(scale=0.15,
                                  benchmarks=("hotspot", "bfs"))

    def test_runner_memoises_failures_and_raises(self):
        from repro.harness.experiment import ExperimentRunner
        plan = FaultPlan(crash=("bfs/warped_gates/s0",))
        with FaultyEngine(plan, jobs=1, cache_dir=None) as engine:
            runner = ExperimentRunner(self._settings(), engine=engine)
            runner.prefetch([("hotspot", Technique.WARPED_GATES),
                             ("bfs", Technique.WARPED_GATES)])
            # Surviving cell is served; the failed one raises on read.
            assert runner.run("hotspot",
                              Technique.WARPED_GATES).cycles > 0
            with pytest.raises(JobFailedError, match="bfs/warped_gates"):
                runner.run("bfs", Technique.WARPED_GATES)
            # Memoised: the second read raises without re-simulating.
            manifests_before = len(runner.manifests)
            with pytest.raises(JobFailedError):
                runner.run("bfs", Technique.WARPED_GATES)
            assert len(runner.manifests) == manifests_before
            assert [m.benchmark for m in runner.failures] == ["bfs"]
            assert runner.failures[0].status == "failed"

    def test_sweep_point_averages_surviving_benchmarks(self):
        from repro.harness.sweeps import bet_sweep
        from repro.harness.experiment import ExperimentRunner
        plan = FaultPlan(crash=("bfs/conv_pg/s0",))
        with FaultyEngine(plan, jobs=1, cache_dir=None) as engine:
            runner = ExperimentRunner(self._settings(), engine=engine)
            points = bet_sweep(runner, values=(14,),
                               techniques=(Technique.CONV_PG,))
        assert len(points) == 1
        assert points[0].performance > 0  # hotspot survived
        assert points[0].benchmarks == 1  # ... and is flagged as alone
        assert len(runner.failures) == 1

    def test_sweep_point_all_failed_is_nan_not_zero(self):
        import math
        from repro.harness.sweeps import bet_sweep, sweep_rows
        from repro.harness.experiment import ExperimentRunner
        plan = FaultPlan(crash=("hotspot/conv_pg/s0", "bfs/conv_pg/s0"))
        with FaultyEngine(plan, jobs=1, cache_dir=None) as engine:
            runner = ExperimentRunner(self._settings(), engine=engine)
            points = bet_sweep(runner, values=(14,),
                               techniques=(Technique.CONV_PG,))
        assert len(points) == 1
        point = points[0]
        assert point.failed and point.benchmarks == 0
        # NaN, not a measured-looking 0.0 ...
        assert math.isnan(point.int_savings)
        assert math.isnan(point.performance)
        # ... and rows render the metrics as None (CSV empty, JSON
        # null), never as numbers.
        row = sweep_rows(points)[0]
        assert row[2:5] == [None, None, None]
        assert row[5] == 0

    def test_replicate_drops_failed_benchmark_and_logs_it(self):
        from repro.harness.replication import replicate
        plan = FaultPlan(crash=("bfs/warped_gates/s0",))
        failure_log = []
        with FaultyEngine(plan, jobs=1, cache_dir=None) as engine:
            results = replicate(self._settings(), seeds=(0,),
                                techniques=(Technique.WARPED_GATES,),
                                engine=engine, failure_log=failure_log)
        assert len(results) == 1
        assert results[0].performance.n == 1  # hotspot carried the seed
        assert results[0].performance.mean > 0
        assert results[0].benchmarks == (1,)  # coverage is visible
        assert [m.benchmark for m in failure_log] == ["bfs"]
