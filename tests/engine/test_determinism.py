"""Engine determinism: ``--jobs 4`` is bit-identical to ``--jobs 1``.

The ISSUE's contract for the parallel engine: for every technique on
two benchmarks, fanning the grid over four worker processes yields
byte-identical ``SimResult.metrics`` and energy breakdowns compared to
the inline path.  The cache is disabled throughout so a stale entry
cannot mask a divergence.
"""

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine import ParallelEngine, SimJob
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.isa.optypes import ExecUnitKind
from repro.power.energy import domain_energy

BENCHMARKS = ("hotspot", "bfs")
SCALE = 0.2
SETTINGS = ExperimentSettings(scale=SCALE)


def _grid():
    return [SimJob(benchmark=name, config=TechniqueConfig(technique),
                   scale=SCALE)
            for name in BENCHMARKS for technique in Technique]


def _energy(result):
    return [domain_energy(result.unit_activity(kind),
                          SETTINGS.energy_params(kind))
            for kind in (ExecUnitKind.INT, ExecUnitKind.FP)]


class TestPoolDeterminism:
    def test_jobs4_bit_identical_to_jobs1_every_technique(self):
        jobs = _grid()
        with ParallelEngine(jobs=1, cache_dir=None) as inline:
            serial = inline.run_sim_jobs(jobs)
        with ParallelEngine(jobs=4, cache_dir=None) as pooled:
            parallel = pooled.run_sim_jobs(jobs)
        assert len(serial) == len(parallel) == len(jobs)
        for job, a, b in zip(jobs, serial, parallel):
            label = (job.benchmark, job.spec.name)
            assert b.result.cycles == a.result.cycles, label
            assert b.result.metrics == a.result.metrics, label
            assert _energy(b.result) == _energy(a.result), label

    def test_repeated_batches_are_stable(self):
        jobs = _grid()[:4]
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            first = engine.run_sim_jobs(jobs)
            second = engine.run_sim_jobs(jobs)
        for a, b in zip(first, second):
            assert a.result.metrics == b.result.metrics


class TestRunnerEngineEquivalence:
    def test_engine_runner_matches_legacy_runner(self):
        legacy = ExperimentRunner(SETTINGS)
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            fanned = ExperimentRunner(SETTINGS, engine=engine)
            fanned.prefetch([(name, technique)
                             for name in BENCHMARKS
                             for technique in (Technique.BASELINE,
                                               Technique.WARPED_GATES)])
            for name in BENCHMARKS:
                for technique in (Technique.BASELINE,
                                  Technique.WARPED_GATES):
                    a = legacy.run(name, technique)
                    b = fanned.run(name, technique)
                    assert b.cycles == a.cycles
                    assert b.metrics == a.metrics
        assert len(fanned.manifests) == 4

    def test_prefetch_skips_memoised_cells(self):
        with ParallelEngine(jobs=1, cache_dir=None) as engine:
            runner = ExperimentRunner(SETTINGS, engine=engine)
            runner.run("hotspot", Technique.BASELINE)
            runner.prefetch([("hotspot", Technique.BASELINE),
                             ("hotspot", Technique.BASELINE)])
            assert len(runner.manifests) == 1

    def test_bus_runner_ignores_engine(self):
        from repro.obs.bus import EventBus
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            runner = ExperimentRunner(SETTINGS, bus=EventBus(),
                                      engine=engine)
            assert runner.engine is None
