"""Fault-injection helpers for the engine's fault-tolerance tests.

Deliberately *not* ``test_``-prefixed: pytest imports it as a plain
module, and the callables here must be picklable (top-level, frozen
dataclasses) so a ``ProcessPoolExecutor`` can ship them to workers.

The injection seam is :meth:`ParallelEngine.run_sim_jobs`'s ``worker=``
argument (or plain ``map_outcomes``): a :class:`FaultyWorker` wraps the
real callable and consults a :class:`FaultPlan` keyed by item — crash
deterministically, crash only on the first attempt (via an on-disk
marker, so it works across worker processes), hard-exit the worker
(``BrokenProcessPool``), or hang past any timeout.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable, Tuple

from repro.engine.cache import MAGIC, RunCache
from repro.engine.jobs import execute_job
from repro.engine.pool import ParallelEngine


class InjectedCrash(RuntimeError):
    """The deterministic failure a :class:`FaultyWorker` raises."""


def square(x: int) -> int:
    """Trivial picklable payload for generic ``map`` tests."""
    return x * x


def identity_key(item: Any) -> Any:
    """Default plan key: the item itself."""
    return item


def sim_job_key(job) -> str:
    """Plan key for :class:`~repro.engine.jobs.SimJob` items."""
    return f"{job.benchmark}/{job.spec.name}/s{job.seed}"


def _slug(key: Any) -> str:
    return str(key).replace("/", "_").replace(" ", "_")


@dataclass(frozen=True)
class FaultPlan:
    """Which plan keys misbehave, and how.

    Attributes:
        crash: Keys that raise :class:`InjectedCrash` on every attempt.
        crash_once: Keys that raise only on their first attempt; the
            attempt is recorded as a marker file under ``marker_dir``
            (required for these), which makes the "first" global across
            worker processes.
        exit: Keys whose worker process hard-exits (``os._exit``) —
            the pool observes a :class:`BrokenProcessPool`.
        hang: Keys that sleep ``hang_seconds`` before returning.
        hang_seconds: How long a hanging key sleeps.
        marker_dir: Directory for ``crash_once`` markers.
    """

    crash: Tuple = ()
    crash_once: Tuple = ()
    exit: Tuple = ()
    hang: Tuple = ()
    hang_seconds: float = 600.0
    marker_dir: str = ""


@dataclass(frozen=True)
class FaultyWorker:
    """Picklable wrapper that injects a :class:`FaultPlan` around ``fn``."""

    fn: Callable
    plan: FaultPlan = field(default_factory=FaultPlan)
    key: Callable = identity_key

    def __call__(self, item: Any) -> Any:
        key = self.key(item)
        if key in self.plan.hang:
            time.sleep(self.plan.hang_seconds)
        if key in self.plan.exit:
            os._exit(23)  # skips cleanup: the pool sees a dead worker
        if key in self.plan.crash:
            raise InjectedCrash(f"injected crash on {key!r}")
        if key in self.plan.crash_once:
            marker = Path(self.plan.marker_dir) / f"{_slug(key)}.crashed"
            if not marker.exists():
                marker.touch()
                raise InjectedCrash(f"injected first-try crash on {key!r}")
        return self.fn(item)


@dataclass(frozen=True)
class CountingWorker:
    """Picklable wrapper that records every invocation on disk.

    Each call drops one uniquely-named marker file under
    ``marker_dir`` (named after the item's plan key), so execution
    counts survive process-pool boundaries — the observable proof that
    single-flight dedupe ran a cell exactly once.
    """

    fn: Callable
    marker_dir: str
    key: Callable = identity_key

    def __call__(self, item: Any) -> Any:
        import tempfile
        slug = _slug(self.key(item))
        fd, _name = tempfile.mkstemp(dir=self.marker_dir,
                                     prefix=f"{slug}.", suffix=".ran")
        os.close(fd)
        return self.fn(item)


def count_executions(marker_dir, key: Any) -> int:
    """How many times :class:`CountingWorker` ran items with ``key``."""
    slug = _slug(key)
    return sum(1 for name in os.listdir(marker_dir)
               if name.startswith(f"{slug}.") and name.endswith(".ran"))


class FaultyEngine(ParallelEngine):
    """A :class:`ParallelEngine` whose sim jobs run under a fault plan.

    Lets harness-level tests (runner, sweeps, replication) exercise the
    failure paths without reaching for the ``worker=`` seam themselves.
    """

    def __init__(self, plan: FaultPlan, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.plan = plan

    def run_sim_jobs(self, jobs, policy=None, worker=None):
        if worker is None:
            worker = FaultyWorker(
                partial(execute_job, cache_dir=self.cache_dir,
                        cache_max_bytes=self.cache_max_bytes),
                self.plan, key=sim_job_key)
        return super().run_sim_jobs(jobs, policy=policy, worker=worker)


def corrupt_cache_entry(cache: RunCache, group: str, key: str,
                        mode: str = "truncate") -> Path:
    """Damage one stored entry in place; returns its path.

    Modes: ``truncate`` (cut the blob in half), ``garbage`` (replace
    with bytes that are not even a header), ``flip`` (flip one payload
    bit, keeping the stored checksum stale).
    """
    path = cache.path(group, key)
    blob = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(blob[:max(len(blob) // 2, 1)])
    elif mode == "garbage":
        path.write_bytes(b"not a cache entry at all")
    elif mode == "flip":
        flipped = bytearray(blob)
        flipped[-1] ^= 0xFF  # last payload byte; header stays intact
        assert bytes(flipped[:len(MAGIC)]) == MAGIC
        path.write_bytes(bytes(flipped))
    else:  # pragma: no cover - helper misuse
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path


def plant_stale_tmp(root, group: str = "results",
                    age_seconds: float = 7200.0) -> Path:
    """Simulate a worker killed mid-write: an old orphaned ``.tmp``."""
    group_dir = Path(root) / group
    group_dir.mkdir(parents=True, exist_ok=True)
    orphan = group_dir / ".orphan.000000.tmp"
    orphan.write_bytes(b"partial write from a killed worker")
    stamp = time.time() - age_seconds
    os.utime(orphan, (stamp, stamp))
    return orphan
