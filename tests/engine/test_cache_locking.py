"""Cross-process cache safety: rename barrier + maintenance lock.

The write path is lock-free by design (temp file + ``os.replace`` is
the publication barrier); these tests pin that contract under real
multi-process hammering, and check that the *destructive* maintenance
passes — janitor sweep, LRU eviction — exclude each other through the
advisory ``flock`` on ``.maintenance.lock``.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.engine.cache import (
    LOCK_FILENAME,
    RunCache,
    maintenance_lock,
)

from tests.engine.faults import plant_stale_tmp


def _put_many(args):
    """Process-pool payload: hammer one key with distinct-ish values."""
    root, worker_id, rounds = args
    cache = RunCache(root, janitor=False)
    for i in range(rounds):
        cache.put("results", "contested", list(range(200)) + [worker_id])
    return worker_id


class TestRenameBarrier:
    def test_concurrent_writers_same_key_leave_one_valid_entry(
            self, tmp_path):
        with ProcessPoolExecutor(max_workers=4) as pool:
            done = list(pool.map(_put_many,
                                 [(str(tmp_path), w, 20)
                                  for w in range(4)]))
        assert sorted(done) == [0, 1, 2, 3]
        # Exactly one published entry, no leftover temp files, and the
        # survivor decodes cleanly (last writer won with a full blob).
        names = sorted(p.name for p in (tmp_path / "results").iterdir())
        assert names == ["contested.pkl"]
        value = RunCache(tmp_path, janitor=False).get("results",
                                                      "contested")
        assert value is not None and value[:3] == [0, 1, 2]

    def test_put_survives_tmp_swept_mid_write(self, tmp_path,
                                              monkeypatch):
        # Simulate another process's janitor deleting our temp file
        # between the write and the publishing rename: the first
        # os.replace sees no source and put() must retry with a fresh
        # temp file rather than fail.
        cache = RunCache(tmp_path, janitor=False)
        real_replace = os.replace
        calls = []

        def sweeping_replace(src, dst):
            if not calls:
                calls.append(src)
                os.unlink(src)
                return real_replace(src, dst)  # raises FileNotFoundError
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", sweeping_replace)
        cache.put("results", "key", {"cycles": 7})
        assert calls  # the sweep really happened
        assert cache.get("results", "key") == {"cycles": 7}
        leftovers = [p for p in (tmp_path / "results").iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []


class TestMaintenanceLock:
    def test_lock_excludes_within_and_across_holders(self, tmp_path):
        # flock is per open-file-description, so two acquisitions model
        # two processes exactly.
        with maintenance_lock(tmp_path) as held:
            assert held
            with maintenance_lock(tmp_path) as second:
                assert not second
        with maintenance_lock(tmp_path) as again:
            assert again  # released cleanly

    def test_sweep_skips_turn_while_locked(self, tmp_path):
        orphan = plant_stale_tmp(tmp_path)
        cache = RunCache(tmp_path, janitor=False)
        with maintenance_lock(tmp_path) as held:
            assert held
            assert cache.sweep_tmp() == 0  # loser skips, never blocks
            assert orphan.exists()
        assert cache.sweep_tmp() == 1
        assert not orphan.exists()

    def test_evict_skips_turn_and_resyncs_later(self, tmp_path):
        cache = RunCache(tmp_path, max_bytes=1, janitor=False)
        with maintenance_lock(tmp_path) as held:
            assert held
            cache.put("results", "a", list(range(500)))
            # The evictor lost the lock race: nothing deleted, and the
            # incremental size estimate is dropped for a later re-sync.
            assert cache.path("results", "a").exists()
            assert cache.evictions == 0
            assert cache._approx_bytes is None
        cache.put("results", "b", list(range(500)))
        assert cache.evictions >= 1  # re-synced and enforced the cap

    def test_lock_file_is_not_a_cache_entry(self, tmp_path):
        cache = RunCache(tmp_path, max_bytes=None, janitor=False)
        cache.put("results", "a", 1)
        cache.sweep_tmp()
        assert (tmp_path / LOCK_FILENAME).exists()
        # total_bytes / eviction walk only *.pkl entries in group dirs,
        # so the lock file can never be counted or evicted.
        assert cache.total_bytes() == \
            cache.path("results", "a").stat().st_size
