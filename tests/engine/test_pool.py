"""ParallelEngine mechanics: inline path, pool path, ordering, lifecycle."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine import ParallelEngine, SimJob


def _double(x: int) -> int:  # top-level so the pool can pickle it
    return 2 * x


class TestMap:
    def test_single_job_engine_runs_inline(self):
        engine = ParallelEngine(jobs=1, cache_dir=None)
        assert engine.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert engine._executor is None  # no pool was spun up

    def test_single_item_batch_stays_inline(self):
        with ParallelEngine(jobs=4, cache_dir=None) as engine:
            assert engine.map(_double, [21]) == [42]
            assert engine._executor is None

    def test_pool_preserves_submission_order(self):
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            assert engine.map(_double, range(16)) == \
                [2 * i for i in range(16)]
            assert engine._executor is not None

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelEngine(jobs=0)

    def test_close_is_idempotent(self):
        engine = ParallelEngine(jobs=2, cache_dir=None)
        engine.map(_double, [1, 2])
        engine.close()
        assert engine._executor is None
        engine.close()


class TestSimJobs:
    def test_pool_attributes_worker_processes(self):
        jobs = [SimJob(benchmark="hotspot",
                       config=TechniqueConfig(technique), scale=0.2)
                for technique in (Technique.BASELINE, Technique.CONV_PG)]
        with ParallelEngine(jobs=2, cache_dir=None) as engine:
            outcomes = engine.run_sim_jobs(jobs)
        assert len(outcomes) == 2
        for outcome in outcomes:
            assert outcome.manifest.worker != "MainProcess"
            assert not outcome.manifest.cache_hit

    def test_inline_job_named_main_process(self):
        engine = ParallelEngine(jobs=1, cache_dir=None)
        outcome = engine.run_sim_job(
            SimJob(benchmark="hotspot",
                   config=TechniqueConfig(Technique.BASELINE), scale=0.2))
        assert outcome.manifest.worker == "MainProcess"

    def test_open_cache_follows_cache_dir(self, tmp_path):
        assert ParallelEngine(cache_dir=None).open_cache() is None
        cache = ParallelEngine(cache_dir=str(tmp_path)).open_cache()
        assert cache is not None and str(cache.root) == str(tmp_path)
