"""Tests for power/gating parameter objects."""

import pytest

from repro.power.params import (
    EnergyParams,
    FP_DYN_PER_ISSUE,
    GTX480PowerModel,
    GatingParams,
    INT_DYN_PER_ISSUE,
)


class TestGatingParams:
    def test_paper_defaults(self):
        params = GatingParams()
        assert params.idle_detect == 5
        assert params.bet == 14
        assert params.wakeup_delay == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            GatingParams(idle_detect=-1)
        with pytest.raises(ValueError):
            GatingParams(bet=0)
        with pytest.raises(ValueError):
            GatingParams(wakeup_delay=-1)

    def test_frozen_and_hashable(self):
        # The experiment runner keys its cache on gating params.
        assert hash(GatingParams()) == hash(GatingParams())
        assert GatingParams() == GatingParams()


class TestEnergyParams:
    def test_canonical_overhead_is_bet_leak_cycles(self):
        params = EnergyParams.for_unit(dyn_per_issue=2.0, bet=14)
        assert params.gate_overhead == pytest.approx(14.0)

    def test_overhead_scales_with_leakage(self):
        params = EnergyParams.for_unit(dyn_per_issue=2.0, bet=10,
                                       leak_per_cycle=0.5)
        assert params.gate_overhead == pytest.approx(5.0)

    def test_calibration_constants_ordering(self):
        # INT units are busier, so their dynamic weight is larger -- the
        # Figure 1b calibration (static ~50% INT vs ~90% FP) needs it.
        assert INT_DYN_PER_ISSUE > FP_DYN_PER_ISSUE


class TestGTX480Model:
    def test_paper_constants(self):
        model = GTX480PowerModel()
        assert model.total_chip_leakage_w == pytest.approx(26.87)
        assert model.fp_units_leakage_w == pytest.approx(4.40)
        assert model.int_units_leakage_w == pytest.approx(0.00557)
        assert model.exec_unit_leakage_fraction == pytest.approx(0.1638)

    def test_chip_savings_fraction(self):
        model = GTX480PowerModel()
        frac = model.chip_savings_fraction(0.40, leakage_share_of_chip=0.33)
        assert frac == pytest.approx(0.40 * 0.1638 * 0.33)
