"""Tests for the section 7.5 hardware-overhead bookkeeping."""

import pytest

from repro.power.overhead import (
    SM_COUNTERS,
    bits_by_technique,
    overhead_report,
    total_storage_bits,
)


class TestInventory:
    def test_all_three_techniques_present(self):
        techniques = {spec.technique for spec in SM_COUNTERS}
        assert techniques == {"GATES", "Blackout", "Adaptive"}

    def test_gates_type_field_matches_warp_slots(self):
        type_bits = next(s for s in SM_COUNTERS
                         if s.name == "instruction_type_bits")
        assert type_bits.bits == 2      # two-bit decoded type
        assert type_bits.count == 48    # one per resident warp slot

    def test_rdy_counters_five_bits(self):
        # Four 5-bit counters, per the paper's Figure 7 description.
        rdy = next(s for s in SM_COUNTERS if s.name == "rdy_counters")
        assert rdy.bits == 5 and rdy.count == 4

    def test_blackout_counter_covers_bet(self):
        bet = next(s for s in SM_COUNTERS
                   if s.name == "blackout_bet_counters")
        # 5 bits hold BET values up to 24 (the largest value explored).
        assert 2 ** bet.bits > 24
        assert bet.count == 4  # two INT + two FP clusters

    def test_total_bits_consistency(self):
        assert total_storage_bits() == \
            sum(s.bits * s.count for s in SM_COUNTERS)
        assert total_storage_bits() == \
            sum(bits_by_technique().values())


class TestReport:
    def test_paper_reported_fractions(self):
        report = overhead_report()
        # 1,210.8 um^2 over 48.1 mm^2 => ~0.003% area (paper 7.5).
        assert 100.0 * report.area_fraction == pytest.approx(0.0025,
                                                             abs=0.001)
        # 1.55e-3 W over 1.92 W => ~0.08% dynamic power.
        assert 100.0 * report.dynamic_fraction == pytest.approx(0.081,
                                                                abs=0.005)
        # 1.21e-5 W over 1.61 W => ~0.0007% leakage.
        assert 100.0 * report.leakage_fraction == pytest.approx(0.00075,
                                                                abs=0.0002)

    def test_rows_shape(self):
        rows = overhead_report().rows()
        assert len(rows) == 1
        assert set(rows[0]) == {"total_bits", "area_um2", "area_pct",
                                "dynamic_pct", "leakage_pct"}
