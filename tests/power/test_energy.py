"""Tests for energy accounting."""

import pytest

from repro.power.energy import (
    DomainEnergy,
    chip_level_savings,
    combine_savings,
    domain_energy,
    static_energy_savings,
)
from repro.power.params import EnergyParams, GTX480PowerModel


PARAMS = EnergyParams.for_unit(dyn_per_issue=2.0, bet=14)


class TestDomainEnergy:
    def test_validation_negative(self):
        with pytest.raises(ValueError):
            DomainEnergy(cycles=-1, gated_cycles=0, issues=0,
                         gating_events=0)

    def test_validation_gated_exceeds_cycles(self):
        with pytest.raises(ValueError):
            DomainEnergy(cycles=10, gated_cycles=11, issues=0,
                         gating_events=0)

    def test_addition(self):
        a = DomainEnergy(100, 20, 30, 2)
        b = DomainEnergy(50, 10, 5, 1)
        c = a + b
        assert (c.cycles, c.gated_cycles, c.issues, c.gating_events) == \
            (150, 30, 35, 3)


class TestBreakdown:
    def test_components(self):
        activity = DomainEnergy(cycles=1000, gated_cycles=300, issues=200,
                                gating_events=10)
        breakdown = domain_energy(activity, PARAMS)
        assert breakdown.dynamic == pytest.approx(400.0)
        assert breakdown.static == pytest.approx(700.0)
        assert breakdown.overhead == pytest.approx(140.0)
        assert breakdown.baseline_static == pytest.approx(1000.0)

    def test_savings_definition(self):
        # savings = (gated - events * BET) / cycles for canonical overhead
        activity = DomainEnergy(cycles=1000, gated_cycles=300, issues=0,
                                gating_events=10)
        saving = static_energy_savings(activity, PARAMS)
        assert saving == pytest.approx((300 - 140) / 1000)

    def test_negative_savings_possible(self):
        activity = DomainEnergy(cycles=1000, gated_cycles=50, issues=0,
                                gating_events=10)
        assert static_energy_savings(activity, PARAMS) < 0

    def test_exact_bet_windows_are_energy_neutral(self):
        activity = DomainEnergy(cycles=1000, gated_cycles=140, issues=0,
                                gating_events=10)
        assert static_energy_savings(activity, PARAMS) == pytest.approx(0.0)

    def test_no_gating_zero_savings(self):
        activity = DomainEnergy(cycles=1000, gated_cycles=0, issues=500,
                                gating_events=0)
        assert static_energy_savings(activity, PARAMS) == 0.0

    def test_normalized_sums_to_one_without_gating(self):
        activity = DomainEnergy(cycles=1000, gated_cycles=0, issues=250,
                                gating_events=0)
        norm = domain_energy(activity, PARAMS).normalized()
        assert norm.dynamic + norm.static == pytest.approx(1.0)

    def test_normalized_degenerate(self):
        norm = domain_energy(DomainEnergy(0, 0, 0, 0), PARAMS).normalized()
        assert norm.total == 0.0

    def test_leakage_magnitude_cancels_in_savings(self):
        activity = DomainEnergy(cycles=1000, gated_cycles=400, issues=100,
                                gating_events=5)
        a = EnergyParams.for_unit(dyn_per_issue=2.0, bet=14,
                                  leak_per_cycle=1.0)
        b = EnergyParams.for_unit(dyn_per_issue=14.0, bet=14,
                                  leak_per_cycle=7.0)
        assert static_energy_savings(activity, a) == \
            pytest.approx(static_energy_savings(activity, b))


class TestSuiteAggregation:
    def test_combine_savings_mean(self):
        assert combine_savings([0.1, 0.3, 0.5]) == pytest.approx(0.3)

    def test_combine_savings_empty(self):
        assert combine_savings([]) == 0.0


class TestChipLevel:
    def test_weights_follow_unit_leakage(self):
        # FP leakage dwarfs INT on GTX480, so FP savings dominate.
        model = GTX480PowerModel()
        heavy_fp = chip_level_savings(0.0, 0.45, model)
        heavy_int = chip_level_savings(0.45, 0.0, model)
        assert heavy_fp > heavy_int * 100

    def test_paper_arithmetic_range(self):
        # Section 7.3: 30-45% exec static savings -> 1.62-2.43% of chip
        # power at 33% leakage share.
        low = chip_level_savings(0.30, 0.30)
        high = chip_level_savings(0.45, 0.45)
        assert low == pytest.approx(0.0162, abs=0.001)
        assert high == pytest.approx(0.0243, abs=0.001)

    def test_fifty_percent_leakage_projection(self):
        high = chip_level_savings(0.45, 0.45, leakage_share_of_chip=0.50)
        assert high == pytest.approx(0.0369, abs=0.001)

    def test_leakage_share_validated(self):
        with pytest.raises(ValueError):
            GTX480PowerModel().chip_savings_fraction(0.3,
                                                     leakage_share_of_chip=1.5)
