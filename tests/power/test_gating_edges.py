"""Edge-case tests for the gating state machine."""


from repro.core.blackout import NaiveBlackoutPolicy
from repro.power.gating import (
    ConventionalPolicy,
    DomainState,
    GatingDomain,
)
from repro.power.params import GatingParams


class TestZeroIdleDetect:
    def test_gates_on_first_idle_cycle(self):
        domain = GatingDomain("X", GatingParams(idle_detect=0, bet=5,
                                                wakeup_delay=1),
                              ConventionalPolicy())
        domain.observe(0, pipeline_busy=True)
        assert not domain.is_gated(1)
        domain.observe(1, pipeline_busy=False)
        assert domain.is_gated(2)

    def test_regates_immediately_after_wakeup_idle(self):
        domain = GatingDomain("X", GatingParams(idle_detect=0, bet=5,
                                                wakeup_delay=1),
                              ConventionalPolicy())
        domain.observe(0, pipeline_busy=False)
        assert domain.is_gated(1)
        domain.request_wakeup(5)
        # Awake at 6, still idle -> gates again right away.
        domain.observe(6, pipeline_busy=False)
        assert domain.is_gated(7)
        assert domain.stats.gating_events == 2


class TestWakeupRaces:
    def make(self):
        return GatingDomain("X", GatingParams(idle_detect=2, bet=6,
                                              wakeup_delay=3),
                            ConventionalPolicy())

    def idle_until_gated(self, domain):
        cycle = 0
        while not domain.is_gated(cycle):
            domain.observe(cycle, pipeline_busy=False)
            cycle += 1
        return cycle

    def test_second_request_during_waking_is_noop(self):
        domain = self.make()
        gated_at = self.idle_until_gated(domain)
        domain.request_wakeup(gated_at + 1)
        assert domain.stats.wakeups == 1
        # A second request while waking neither double-counts nor
        # shortens the wakeup.
        assert domain.request_wakeup(gated_at + 2) is False
        assert domain.stats.wakeups == 1
        assert domain.state(gated_at + 2) is DomainState.WAKING
        assert domain.available_for_issue(gated_at + 4)

    def test_request_at_gating_instant(self):
        domain = self.make()
        gated_at = self.idle_until_gated(domain)
        # Wakeup at the very first gated cycle: zero savings, full
        # overhead -- legal under conventional gating.
        domain.request_wakeup(gated_at)
        assert domain.stats.wakeups == 1
        assert domain.stats.gated_cycles == 0
        assert domain.stats.wakeups_uncompensated == 1

    def test_idle_counting_resumes_after_wake(self):
        domain = self.make()
        gated_at = self.idle_until_gated(domain)
        domain.request_wakeup(gated_at + 10)
        wake_done = gated_at + 13
        domain.observe(gated_at + 10, pipeline_busy=False)  # waking
        domain.observe(gated_at + 11, pipeline_busy=False)
        domain.observe(gated_at + 12, pipeline_busy=False)
        assert domain.idle_counter == 0  # waking cycles don't count
        domain.observe(wake_done, pipeline_busy=False)
        assert domain.idle_counter == 1


class TestBlackoutEdges:
    def test_bet_one_wakes_next_cycle(self):
        domain = GatingDomain("X", GatingParams(idle_detect=1, bet=1,
                                                wakeup_delay=0),
                              NaiveBlackoutPolicy())
        domain.observe(0, pipeline_busy=False)
        assert domain.is_gated(1)
        assert domain.request_wakeup(1) is False  # gated_len 0 < bet 1
        assert domain.is_gated(1)
        domain.request_wakeup(2)                  # gated_len 1 == bet
        assert not domain.is_gated(2)
        assert domain.stats.critical_wakeups == 1

    def test_denied_requests_counted_each_cycle(self):
        domain = GatingDomain("X", GatingParams(idle_detect=1, bet=10,
                                                wakeup_delay=1),
                              NaiveBlackoutPolicy())
        domain.observe(0, pipeline_busy=False)
        for cycle in range(2, 8):
            domain.request_wakeup(cycle)
        assert domain.stats.denied_wakeups == 6
        assert domain.stats.wakeups == 0
