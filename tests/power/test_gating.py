"""Tests for the power-gating state machine (conventional policy)."""

import pytest

from repro.power.gating import (
    ConventionalPolicy,
    DomainState,
    GatingDomain,
)
from repro.power.params import GatingParams

PARAMS = GatingParams(idle_detect=3, bet=10, wakeup_delay=2)


def make_domain(params: GatingParams = PARAMS) -> GatingDomain:
    return GatingDomain("INT0", params, ConventionalPolicy())


def idle_until_gated(domain: GatingDomain, start: int) -> int:
    """Feed idle cycles until the domain gates; returns first gated cycle."""
    cycle = start
    while not domain.is_gated(cycle):
        domain.observe(cycle, pipeline_busy=False)
        cycle += 1
    return cycle


class TestStateMachine:
    def test_starts_on(self):
        domain = make_domain()
        assert domain.state(0) is DomainState.ON
        assert domain.available_for_issue(0)

    def test_busy_resets_idle_counter(self):
        domain = make_domain()
        domain.observe(0, pipeline_busy=False)
        domain.observe(1, pipeline_busy=False)
        domain.observe(2, pipeline_busy=True)
        assert domain.idle_counter == 0
        assert not domain.is_gated(3)

    def test_gates_after_idle_detect(self):
        domain = make_domain()
        for cycle in range(3):
            domain.observe(cycle, pipeline_busy=False)
        # idle_counter reached 3 at cycle 2; gate takes effect cycle 3.
        assert domain.is_gated(3)
        assert domain.state(3) is DomainState.GATED
        assert domain.stats.gating_events == 1

    def test_wakeup_takes_wakeup_delay(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        wake_cycle = gated_at + 5
        assert domain.request_wakeup(wake_cycle) is False
        assert domain.state(wake_cycle) is DomainState.WAKING
        assert not domain.available_for_issue(wake_cycle + 1)
        assert domain.available_for_issue(wake_cycle + 2)

    def test_request_on_powered_domain_is_immediate(self):
        domain = make_domain()
        assert domain.request_wakeup(0) is True

    def test_conventional_wakes_during_uncompensated(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        domain.request_wakeup(gated_at + 2)  # well before BET=10
        assert domain.stats.wakeups == 1
        assert domain.stats.wakeups_uncompensated == 1

    def test_zero_wakeup_delay(self):
        domain = make_domain(GatingParams(idle_detect=1, bet=5,
                                          wakeup_delay=0))
        gated_at = idle_until_gated(domain, 0)
        domain.request_wakeup(gated_at + 1)
        assert domain.available_for_issue(gated_at + 1)


class TestAccounting:
    def test_gated_cycles_split_at_bet(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        domain.request_wakeup(gated_at + 25)   # 25 gated, BET=10
        assert domain.stats.gated_cycles == 25
        assert domain.stats.uncompensated_cycles == 10
        assert domain.stats.compensated_cycles == 15

    def test_short_window_all_uncompensated(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        domain.request_wakeup(gated_at + 4)
        assert domain.stats.uncompensated_cycles == 4
        assert domain.stats.compensated_cycles == 0

    def test_critical_wakeup_detection(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        domain.request_wakeup(gated_at + 10)   # exactly BET
        assert domain.stats.critical_wakeups == 1

    def test_non_critical_when_later(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        domain.request_wakeup(gated_at + 11)
        assert domain.stats.critical_wakeups == 0

    def test_finalize_closes_open_window(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        domain.finalize(gated_at + 30)
        assert domain.stats.gated_cycles == 30
        assert domain.stats.wakeups == 0  # never woke, just ended

    def test_finalize_idempotent(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        domain.finalize(gated_at + 30)
        domain.finalize(gated_at + 40)
        assert domain.stats.gated_cycles == 30

    def test_on_and_waking_cycles_counted(self):
        domain = make_domain()
        domain.observe(0, pipeline_busy=True)
        assert domain.stats.on_cycles == 1
        gated_at = idle_until_gated(domain, 1)
        domain.request_wakeup(gated_at)
        domain.observe(gated_at, pipeline_busy=False)
        assert domain.stats.waking_cycles == 1


class TestInvariants:
    def test_busy_while_gated_rejected(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        with pytest.raises(RuntimeError, match="busy while gated"):
            domain.observe(gated_at, pipeline_busy=True)

    def test_gated_length_monotonic(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        assert domain.gated_length(gated_at) == 0
        assert domain.gated_length(gated_at + 7) == 7

    def test_blackout_remaining_conventional(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        assert domain.blackout_remaining(gated_at) == 10
        assert domain.blackout_remaining(gated_at + 4) == 6
        assert domain.blackout_remaining(gated_at + 30) == 0

    def test_in_blackout_window(self):
        domain = make_domain()
        gated_at = idle_until_gated(domain, 0)
        assert domain.in_blackout(gated_at + 9)
        assert not domain.in_blackout(gated_at + 10)
