"""Shared fixtures: small, fast workloads and pre-wired simulators."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.isa.instructions import fp_op, int_op, load_op
from repro.isa.optypes import OpClass
from repro.isa.trace import KernelTrace, WarpTrace
from repro.isa.tracegen import TraceSpec
from repro.sim.config import MemoryConfig, SMConfig


#: Scale used by tests that simulate real benchmark models.
TEST_SCALE = 0.25

#: A small but non-trivial structural configuration for unit tests.
SMALL_SM = SMConfig(max_resident_warps=16, max_cycles=200_000,
                    memory=MemoryConfig(mshr_entries=8))


@pytest.fixture
def small_sm_config() -> SMConfig:
    return SMALL_SM


@pytest.fixture
def balanced_spec() -> TraceSpec:
    """A balanced synthetic workload used across simulator tests."""
    return TraceSpec(
        name="balanced",
        mix={OpClass.INT: 0.4, OpClass.FP: 0.3,
             OpClass.SFU: 0.05, OpClass.LDST: 0.25},
        n_warps=12, instructions_per_warp=30, max_resident_warps=12,
        dep_prob=0.4, dep_distance_mean=4.0,
        load_fraction=0.7, footprint_lines=256, locality=0.7,
        shared_fraction=0.3)


@pytest.fixture
def tiny_kernel() -> KernelTrace:
    """Four hand-written warps exercising INT, FP and memory paths."""
    warps = [
        WarpTrace(0, (int_op(0), int_op(1, srcs=(0,)), fp_op(2, srcs=(1,)))),
        WarpTrace(1, (fp_op(0), fp_op(1, srcs=(0,)), int_op(2, srcs=(1,)))),
        WarpTrace(2, (load_op(0, line_addr=1), int_op(1, srcs=(0,)))),
        WarpTrace(3, (int_op(0), load_op(1, line_addr=2, srcs=(0,)),
                      fp_op(2, srcs=(1,)))),
    ]
    return KernelTrace(name="tiny", warps=warps, max_resident_warps=4)


@pytest.fixture
def small_runner() -> ExperimentRunner:
    """Runner over three contrasting benchmarks at test scale."""
    settings = ExperimentSettings(
        scale=TEST_SCALE, benchmarks=("hotspot", "bfs", "sgemm"))
    return ExperimentRunner(settings)


def run_tiny(kernel: KernelTrace, technique: Technique,
             sm_config: SMConfig = SMALL_SM, **kwargs):
    """Helper: build+run an SM over a kernel under one technique."""
    sm = build_sm(kernel, TechniqueConfig(technique, **kwargs),
                  sm_config=sm_config)
    return sm.run()
