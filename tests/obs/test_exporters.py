"""Tests for the JSONL event log and Chrome trace exporter."""

import io
import json

import pytest

from repro.obs.bus import EventBus
from repro.obs.events import (
    BlackoutBlocked,
    EpochAdapt,
    GateOff,
    GateOn,
    KernelBoundary,
    PriorityFlip,
    Wakeup,
)
from repro.obs.exporters import (
    ChromeTraceExporter,
    JsonlEventLog,
    load_jsonl_events,
    validate_chrome_trace,
)


def _drive(bus):
    """A short synthetic gating story on two domains."""
    bus.publish(GateOn(10, "INT0"))
    bus.publish(BlackoutBlocked(12, "FP0", remaining=4))
    bus.publish(PriorityFlip(15, "FP", reason="drained"))
    bus.publish(GateOff(25, "INT0", gated_cycles=14, compensated=True))
    bus.publish(Wakeup(25, "INT0", critical=True, delay=3))
    bus.publish(GateOn(30, "FP0"))
    bus.publish(EpochAdapt(32, "FP", epoch=0, critical_wakeups=1,
                           idle_detect=7))
    bus.publish(GateOff(36, "FP0", gated_cycles=5, compensated=False,
                        final=True))
    bus.publish(KernelBoundary(0, "k0", 0))


class TestJsonlEventLog:
    def test_round_trips_through_file(self, tmp_path):
        bus = EventBus(enabled=True)
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path).attach(bus)
        _drive(bus)
        log.close()
        records = load_jsonl_events(path)
        assert log.events_written == 9
        assert len(records) == 9
        assert records[0] == {"event": "GateOn", "cycle": 10,
                              "domain": "INT0"}
        assert records[3]["gated_cycles"] == 14
        assert records[3]["compensated"] is True

    def test_stream_target_and_detach(self):
        bus = EventBus(enabled=True)
        stream = io.StringIO()
        log = JsonlEventLog(stream).attach(bus)
        bus.publish(GateOn(1, "INT0"))
        log.close()
        bus.publish(GateOn(2, "INT0"))  # after close: not recorded
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert [r["cycle"] for r in lines] == [1]

    def test_every_record_names_its_event(self, tmp_path):
        bus = EventBus(enabled=True)
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path).attach(bus)
        _drive(bus)
        log.close()
        assert all("event" in r and "cycle" in r
                   for r in load_jsonl_events(path))


class TestChromeTraceExporter:
    def _trace(self):
        bus = EventBus(enabled=True)
        trace = ChromeTraceExporter().attach(bus)
        _drive(bus)
        return trace

    def test_document_is_valid_chrome_trace(self):
        document = self._trace().to_document()
        validate_chrome_trace(document)  # must not raise
        json.dumps(document)  # and must be serialisable

    def test_gated_spans_reconstructed_exactly(self):
        trace = self._trace()
        spans = [e for e in trace.to_document()["traceEvents"]
                 if e.get("name") == "gated"]
        # GateOn(10) .. GateOff(25, gated_cycles=14): span is [11, 25).
        assert spans[0]["ts"] == 11 and spans[0]["dur"] == 14
        assert spans[1]["ts"] == 31 and spans[1]["dur"] == 5
        assert trace.gated_span_totals() == {"INT0": 14, "FP0": 5}

    def test_wakeup_emits_span_and_instant(self):
        events = self._trace().to_document()["traceEvents"]
        waking = [e for e in events if e.get("name") == "waking"]
        critical = [e for e in events
                    if e.get("name") == "critical_wakeup"]
        assert waking[0]["ts"] == 25 and waking[0]["dur"] == 3
        assert critical[0]["ph"] == "i"

    def test_thread_metadata_names_each_domain(self):
        events = self._trace().to_document()["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"domain INT0", "domain FP0", "scheduler",
                "repro SM"} <= names

    def test_write_records_end_cycle(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.json"
        trace.write(path, end_cycle=40)
        document = json.loads(path.read_text(encoding="utf-8"))
        validate_chrome_trace(document)
        assert document["otherData"]["end_cycle"] == 40

    def test_detach_stops_collection(self):
        bus = EventBus(enabled=True)
        trace = ChromeTraceExporter().attach(bus)
        bus.publish(GateOn(1, "INT0"))
        bus.publish(GateOff(5, "INT0", gated_cycles=3, compensated=False))
        trace.detach()
        bus.publish(GateOff(9, "INT0", gated_cycles=2, compensated=False))
        assert trace.gated_span_totals() == {"INT0": 3}


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"otherData": {}})

    def test_rejects_missing_required_field(self):
        with pytest.raises(ValueError, match="missing 'ph'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "pid": 0}]})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0,
                                  "ts": 0}]})

    def test_rejects_x_event_without_duration(self):
        with pytest.raises(ValueError, match="int dur"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 0,
                                  "ts": 0}]})
