"""Tests for the labelled metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry, metric_key


class TestCounters:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        a = registry.counter("gated_cycles", domain="INT0")
        b = registry.counter("gated_cycles", domain="INT0")
        assert a is b

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("gated_cycles", domain="INT0").inc(5)
        registry.counter("gated_cycles", domain="INT1").inc(7)
        assert registry.value("gated_cycles", domain="INT0") == 5
        assert registry.value("gated_cycles", domain="INT1") == 7
        assert registry.total("gated_cycles") == 12

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", unit="SFU", cluster=1).inc(3)
        assert registry.value("x", cluster=1, unit="SFU") == 3

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_metric_key_format(self):
        assert metric_key("cycles") == "cycles"
        counter = MetricsRegistry().counter("gated_cycles",
                                            unit="SFU", cluster=1)
        assert counter.key == 'gated_cycles{cluster="1",unit="SFU"}'


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("idle_detect", unit="INT")
        gauge.set(5)
        gauge.set(7)
        assert registry.value("idle_detect", unit="INT") == 7

    def test_histogram_accumulates_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("idle_period_length", unit="FP0")
        histogram.observe(3)
        histogram.observe(3)
        histogram.observe(14, count=2)
        assert registry.value("idle_period_length", unit="FP0") == \
            {3: 2, 14: 2}
        assert histogram.total == 4

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("nope")


class TestFlatDict:
    def test_flat_dict_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(1)
        registry.counter("a", domain="X").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(9)
        flat = registry.as_flat_dict()
        assert list(flat) == sorted(flat)
        assert flat['a{domain="X"}'] == 2
        assert flat["b"] == 1
        assert flat["g"] == 0.5
        assert flat["h"] == {9: 1}

    def test_flat_dict_is_json_serialisable(self):
        import json
        registry = MetricsRegistry()
        registry.counter("a", domain="X").inc(2)
        registry.histogram("h", unit="U").observe(3)
        json.dumps(registry.as_flat_dict())

    def test_len_and_iteration(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1)
        assert len(registry) == 3
        assert len(list(registry)) == 3
        assert registry.counter_families() == ["a"]
