"""Acceptance: a parallel grid exports as one merged, per-worker trace.

These tests pin the PR's headline contract: run a multi-job batch over
real worker processes with telemetry attached, and the *parent* ends up
holding everything — a JSONL event log containing worker-originated
records, and a single Chrome trace whose spans sit in per-worker lanes.
A crashed worker must degrade the trace (missing span), never corrupt
it.
"""

import io
import json

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine import ParallelEngine, SimJob
from repro.obs.exporters import (
    EngineTraceExporter,
    JsonlEventLog,
    validate_chrome_trace,
)
from repro.obs.telemetry import EngineTelemetry, WorkerEventSummary

from tests.engine.faults import FaultPlan, FaultyEngine


def _jobs(n=3, technique=Technique.BASELINE):
    return [SimJob(benchmark="hotspot",
                   config=TechniqueConfig(technique), scale=0.2,
                   seed=seed) for seed in range(n)]


def _span_events(document):
    return [e for e in document["traceEvents"] if e["ph"] == "X"]


class TestParallelGridExport:
    def test_worker_events_land_in_parent_jsonl(self, tmp_path):
        sink = io.StringIO()
        with EngineTelemetry() as telemetry:
            log = JsonlEventLog(sink).attach(telemetry.bus)
            with ParallelEngine(jobs=2, cache_dir=str(tmp_path),
                                telemetry=telemetry) as engine:
                outcomes = engine.run_sim_jobs(_jobs(3))
            log.close()
        assert all(o.status.value == "ok" for o in outcomes)
        records = [json.loads(line) for line
                   in sink.getvalue().splitlines()]
        by_type = {}
        for record in records:
            by_type.setdefault(record["event"], []).append(record)
        # Parent-side lifecycle plus worker-originated records, merged.
        assert len(by_type["JobQueued"]) == 3
        assert len(by_type["JobFinished"]) == 3
        assert len(by_type["WorkerEventSummary"]) == 3
        workers = {r["worker"] for r in by_type["WorkerEventSummary"]}
        assert workers  # real pool workers, not the parent
        assert "MainProcess" not in workers
        for record in by_type["WorkerEventSummary"]:
            assert sum(record["counts"].values()) > 0

    def test_single_merged_trace_with_worker_lanes(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        with EngineTelemetry() as telemetry:
            trace = EngineTraceExporter().attach(telemetry.bus)
            with ParallelEngine(jobs=2,
                                cache_dir=str(tmp_path / "cache"),
                                telemetry=telemetry) as engine:
                outcomes = engine.run_sim_jobs(_jobs(4))
            trace.write(trace_path)
        assert all(o.status.value == "ok" for o in outcomes)

        document = json.loads(trace_path.read_text(encoding="utf-8"))
        validate_chrome_trace(document)
        spans = _span_events(document)
        assert len(spans) == 4  # one box per job
        assert {s["name"] for s in spans} \
            == {f"hotspot/baseline/s{i}" for i in range(4)}
        # Per-worker lanes: every span's tid maps to a named worker
        # thread, and the lanes cover every span.
        lanes = {e["tid"]: e["args"]["name"]
                 for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        for span in spans:
            assert lanes[span["tid"]].startswith("worker ")
        assert document["otherData"]["workers"] == trace.worker_lanes
        assert trace.worker_lanes  # at least one real worker lane
        # Spans carry the digested sim activity.
        for span in spans:
            assert span["dur"] >= 1
            assert sum(span["args"]["sim_events"].values()) > 0

    def test_inline_batch_exports_the_same_way(self, tmp_path):
        # jobs=1 runs in-process; the exporter must not care.
        with EngineTelemetry() as telemetry:
            trace = EngineTraceExporter().attach(telemetry.bus)
            with ParallelEngine(jobs=1, cache_dir=str(tmp_path),
                                telemetry=telemetry) as engine:
                engine.run_sim_jobs(_jobs(2))
            document = trace.to_document()
        validate_chrome_trace(document)
        assert len(_span_events(document)) == 2
        assert trace.worker_lanes == ["MainProcess"]


class TestCrashTolerance:
    def test_crashed_worker_leaves_trace_valid(self, tmp_path):
        # One job's worker hard-exits (os._exit): its summary is never
        # shipped, the pool breaks and is rebuilt, the other jobs
        # complete.  The merged trace must stay schema-valid with the
        # dead job rendered as a missing span + a failure marker.
        plan = FaultPlan(exit=("hotspot/baseline/s1",))
        with EngineTelemetry() as telemetry:
            trace = EngineTraceExporter().attach(telemetry.bus)
            engine = FaultyEngine(plan, jobs=2,
                                  cache_dir=str(tmp_path),
                                  telemetry=telemetry)
            try:
                outcomes = engine.run_sim_jobs(_jobs(3))
            finally:
                engine.close()
            document = trace.to_document()

        statuses = [o.status.value for o in outcomes]
        assert statuses[1] == "failed"
        assert statuses[0] == "ok" and statuses[2] == "ok"

        validate_chrome_trace(document)
        spans = _span_events(document)
        span_names = {s["name"] for s in spans}
        assert "hotspot/baseline/s1" not in span_names  # no summary
        assert {"hotspot/baseline/s0",
                "hotspot/baseline/s2"} <= span_names
        markers = {e["name"] for e in document["traceEvents"]
                   if e["ph"] == "i"}
        assert "failed:hotspot/baseline/s1" in markers
        assert "pool_rebuilt" in markers

    def test_partial_summaries_never_block_flush(self, tmp_path):
        # flush() after a crash must return promptly (nothing wedges),
        # and the bus must only carry complete records.
        plan = FaultPlan(exit=("hotspot/baseline/s0",))
        with EngineTelemetry() as telemetry:
            seen = []
            telemetry.bus.subscribe(seen.append, WorkerEventSummary)
            engine = FaultyEngine(plan, jobs=2,
                                  cache_dir=str(tmp_path),
                                  telemetry=telemetry)
            try:
                engine.run_sim_jobs(_jobs(2))
            finally:
                engine.close()
            assert telemetry.flush(timeout=10.0)
        assert {s.label for s in seen} == {"hotspot/baseline/s1"}
