"""End-to-end observability tests on real simulator runs.

These pin the PR's acceptance criteria: event streams are ordered and
internally consistent, the metrics registry in ``SimResult.metrics``
exactly matches the legacy ``SMStats``/``GatingStats`` counters, and a
Chrome trace's gated spans sum (per domain) to the ``gated_cycles``
metric of the same run.
"""

import json

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.obs.bus import EventBus
from repro.obs.events import GateOff, GateOn, Wakeup
from repro.obs.exporters import (
    ChromeTraceExporter,
    JsonlEventLog,
    load_jsonl_events,
    validate_chrome_trace,
)
from repro.workloads.registry import build_kernel

from tests.conftest import SMALL_SM, TEST_SCALE


def _instrumented_run(technique=Technique.WARPED_GATES):
    """One golden run with an enabled bus; returns (sm, result, events)."""
    kernel = build_kernel("hotspot", seed=0, scale=TEST_SCALE)
    bus = EventBus(enabled=True)
    sm = build_sm(kernel, TechniqueConfig(technique),
                  sm_config=SMALL_SM, bus=bus)
    events = []
    bus.subscribe(events.append)
    result = sm.run()
    return sm, result, events


@pytest.fixture(scope="module")
def golden():
    return _instrumented_run()


class TestEventOrdering:
    def test_cycles_are_nondecreasing(self, golden):
        _, _, events = golden
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)
        assert len(events) > 0

    def test_gate_events_alternate_per_domain(self, golden):
        # Every domain's stream must read GateOn, GateOff, GateOn, ...
        # (a wakeup can only close a window that a GateOn opened).
        _, _, events = golden
        open_domains = set()
        saw_gating = False
        for event in events:
            if isinstance(event, GateOn):
                assert event.domain not in open_domains
                open_domains.add(event.domain)
                saw_gating = True
            elif isinstance(event, GateOff):
                assert event.domain in open_domains
                open_domains.discard(event.domain)
        assert saw_gating
        assert not open_domains  # finalize closed every open window

    def test_event_counts_match_gating_stats(self, golden):
        sm, _, events = golden
        gate_ons = [e for e in events if isinstance(e, GateOn)]
        wakeups = [e for e in events if isinstance(e, Wakeup)]
        total_events = sum(d.stats.gating_events
                           for d in sm.domains.values())
        total_wakeups = sum(d.stats.wakeups for d in sm.domains.values())
        total_critical = sum(d.stats.critical_wakeups
                             for d in sm.domains.values())
        assert len(gate_ons) == total_events
        assert len(wakeups) == total_wakeups
        assert sum(1 for w in wakeups if w.critical) == total_critical

    def test_gate_off_windows_sum_to_gated_cycles(self, golden):
        sm, _, events = golden
        for name, domain in sm.domains.items():
            window_sum = sum(e.gated_cycles for e in events
                             if isinstance(e, GateOff) and e.domain == name)
            assert window_sum == domain.stats.gated_cycles


class TestMetricsMatchLegacyCounters:
    def test_sm_counters(self, golden):
        _, result, _ = golden
        metrics = result.metrics
        stats = result.stats
        assert metrics["sim_cycles"] == result.cycles == stats.cycles
        assert metrics["instructions_issued"] == stats.instructions_issued
        assert metrics["instructions_retired"] == \
            stats.instructions_retired
        assert metrics["instructions_fetched"] == stats.fetched
        for cls, count in stats.issued_by_class.items():
            assert metrics[f'issued{{op_class="{cls.name}"}}'] == count
        for reason in ("no_ready_warp", "structural", "unit_gated",
                       "unit_waking", "mshr_full"):
            assert metrics[f'issue_stalls{{reason="{reason}"}}'] == \
                getattr(stats.stalls, reason)
        assert metrics["ipc"] == stats.ipc

    def test_gating_counters(self, golden):
        sm, result, _ = golden
        for name, domain in sm.domains.items():
            for field in domain.stats.METRIC_NAMES:
                key = f'{field}{{domain="{name}"}}'
                assert result.metrics[key] == getattr(domain.stats, field)

    def test_idle_trackers(self, golden):
        _, result, _ = golden
        for name, tracker in result.stats.idle_trackers.items():
            assert result.metrics[f'busy_cycles{{unit="{name}"}}'] == \
                tracker.busy_cycles
            assert result.metrics[f'idle_cycles{{unit="{name}"}}'] == \
                tracker.idle_cycles
            assert result.metrics[
                f'idle_period_length{{unit="{name}"}}'] == tracker.histogram

    def test_metrics_present_with_disabled_bus_too(self):
        # The registry is built at collection time, not from events, so
        # an uninstrumented run (the default) carries the same view.
        kernel = build_kernel("hotspot", seed=0, scale=TEST_SCALE)
        sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                      sm_config=SMALL_SM)
        result = sm.run()
        assert not sm.bus.enabled
        assert sm.bus.events_published == 0
        assert result.metrics["sim_cycles"] == result.cycles
        assert any(key.startswith("gated_cycles{")
                   for key in result.metrics)


class TestDisabledBusEquivalence:
    def test_instrumentation_does_not_perturb_the_simulation(self, golden):
        # Identical trace + config must give an identical run whether or
        # not anyone is listening: observation must stay observation.
        _, instrumented, _ = golden
        kernel = build_kernel("hotspot", seed=0, scale=TEST_SCALE)
        sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                      sm_config=SMALL_SM)
        plain = sm.run()
        assert plain.cycles == instrumented.cycles
        assert plain.metrics == instrumented.metrics


class TestChromeTraceAcceptance:
    def test_trace_valid_and_spans_sum_to_gated_cycles(self, tmp_path):
        # The PR's headline acceptance criterion, end to end: run with
        # --emit-chrome-trace semantics, load the file, validate it, and
        # check per-domain gated-span sums against SimResult metrics.
        kernel = build_kernel("hotspot", seed=0, scale=TEST_SCALE)
        bus = EventBus(enabled=True)
        sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                      sm_config=SMALL_SM, bus=bus)
        trace = ChromeTraceExporter().attach(bus)
        result = sm.run()
        path = tmp_path / "trace.json"
        trace.write(path, end_cycle=result.cycles)

        document = json.loads(path.read_text(encoding="utf-8"))
        validate_chrome_trace(document)
        assert document["otherData"]["end_cycle"] == result.cycles

        spans = {}
        for event in document["traceEvents"]:
            if event.get("name") == "gated":
                spans[event["tid"]] = \
                    spans.get(event["tid"], 0) + event["dur"]
        by_domain = trace.gated_span_totals()
        assert sum(spans.values()) == sum(by_domain.values())
        for name in sm.domains:
            key = f'gated_cycles{{domain="{name}"}}'
            assert by_domain.get(name, 0) == result.metrics[key]

    def test_jsonl_log_round_trips_a_real_run(self, tmp_path):
        kernel = build_kernel("hotspot", seed=0, scale=TEST_SCALE)
        bus = EventBus(enabled=True)
        sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                      sm_config=SMALL_SM, bus=bus)
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path).attach(bus)
        sm.run()
        log.close()
        records = load_jsonl_events(path)
        assert log.events_written == len(records) == \
            bus.events_published
        assert {r["event"] for r in records} >= {"GateOn", "GateOff",
                                                 "Wakeup"}


class TestRunnerProvenance:
    def test_manifest_written_per_uncached_run(self):
        settings = ExperimentSettings(scale=TEST_SCALE,
                                      benchmarks=("hotspot",))
        runner = ExperimentRunner(settings)
        first = runner.run("hotspot", Technique.BASELINE)
        again = runner.run("hotspot", Technique.BASELINE)  # cached
        runner.run("hotspot", Technique.WARPED_GATES)
        assert again is first
        assert len(runner.manifests) == 2
        manifest = runner.manifests[0]
        assert manifest.benchmark == "hotspot"
        assert manifest.technique == "baseline"
        assert manifest.cycles == first.cycles
        assert manifest.cycles_per_sec > 0
        assert set(manifest.wall_seconds) == {"build_trace", "simulate"}
        assert len(manifest.config_hash) == 12

    def test_runner_settings_default_is_not_shared(self):
        # Regression for the mutable-default constructor bug.
        a, b = ExperimentRunner(), ExperimentRunner()
        assert a.settings is not b.settings

    def test_runner_bus_reaches_the_sm(self):
        bus = EventBus(enabled=True)
        events = []
        bus.subscribe(events.append)
        settings = ExperimentSettings(scale=TEST_SCALE,
                                      benchmarks=("hotspot",))
        runner = ExperimentRunner(settings, bus=bus)
        runner.run("hotspot", Technique.WARPED_GATES)
        assert events
        assert runner.manifests[0].events_published == len(events)
