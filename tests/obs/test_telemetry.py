"""Engine telemetry: events, worker digests, and the cross-process relay."""

from collections import Counter

import pytest

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine import ParallelEngine, SimJob
from tests.engine.faults import square
from repro.obs.bus import EventBus
from repro.obs.events import GateOn, IssueStall
from repro.obs.telemetry import (
    ENGINE_EVENT_TYPES,
    CacheHit,
    CacheMiss,
    EngineTelemetry,
    EventDigest,
    JobFinished,
    JobQueued,
    JobRetry,
    JobStarted,
    JobTelemetry,
    TelemetrySettings,
    WorkerEventSummary,
    WorkerTelemetry,
    current_worker,
    inline_worker,
    job_label,
)


def _job(benchmark="hotspot", technique=Technique.BASELINE, seed=0):
    return SimJob(benchmark=benchmark,
                  config=TechniqueConfig(technique), scale=0.2,
                  seed=seed)


class TestEngineEvents:
    def test_now_stamps_wall_clock(self):
        event = JobStarted.now(label="a/b/s0", worker="w")
        assert event.cycle == 0
        assert event.ts > 0
        assert event.label == "a/b/s0"

    def test_to_record_is_jsonl_compatible(self):
        record = JobFinished.now(label="x", index=3, status="ok",
                                 attempts=1, seconds=0.5).to_record()
        assert record["event"] == "JobFinished"
        assert record["index"] == 3
        assert record["status"] == "ok"

    def test_every_type_constructs_via_now(self):
        for event_type in ENGINE_EVENT_TYPES:
            event = event_type.now()
            assert event.ts > 0
            assert event.to_record()["event"] == event_type.__name__

    def test_job_label_for_sim_jobs(self):
        assert job_label(_job()) == "hotspot/baseline/s0"
        assert job_label(_job("bfs", Technique.WARPED_GATES, seed=3)) \
            == "bfs/warped_gates/s3"

    def test_job_label_fallback_for_plain_items(self):
        assert job_label(17, index=4) == "item4"
        assert job_label(object()) == "object"


class TestSettings:
    def test_defaults_are_bounded(self):
        settings = TelemetrySettings()
        assert settings.sample_limit > 0
        assert settings.drain_poll > 0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TelemetrySettings(sample_limit=-1)
        with pytest.raises(ValueError):
            TelemetrySettings(drain_poll=0.0)


class TestEventDigest:
    def test_counts_are_complete_samples_bounded(self):
        digest = EventDigest(sample_limit=3)
        for cycle in range(10):
            digest(GateOn(cycle=cycle, domain="INT0"))
        digest(IssueStall(cycle=5, reason="gated"))
        assert digest.counts == {"GateOn": 10, "IssueStall": 1}
        assert digest.total == 11
        sampled = digest.sampled_records()
        assert len(sampled) == 4  # 3 GateOn + 1 IssueStall
        assert sampled[0]["event"] == "GateOn"

    def test_zero_sample_limit_keeps_counts_only(self):
        digest = EventDigest(sample_limit=0)
        digest(GateOn(cycle=1, domain="INT0"))
        assert digest.counts["GateOn"] == 1
        assert digest.sampled_records() == ()


class TestJobTelemetry:
    def test_emits_started_then_summary(self):
        sent = []
        session = JobTelemetry(sent.append, "hotspot/baseline/s0",
                               sample_limit=4)
        assert isinstance(sent[0], JobStarted)
        assert sent[0].label == "hotspot/baseline/s0"

        bus = session.sim_bus()
        assert bus.enabled
        bus.publish(GateOn(cycle=7, domain="INT0"))
        session.finish(cycles=123, cache_hit=False)
        summary = sent[-1]
        assert isinstance(summary, WorkerEventSummary)
        assert summary.cycles == 123
        assert summary.counts == {"GateOn": 1}
        assert summary.finished_at >= summary.started_at

    def test_finish_is_idempotent(self):
        sent = []
        session = JobTelemetry(sent.append, "x", sample_limit=1)
        session.finish(cycles=1)
        session.finish(cycles=2)
        summaries = [e for e in sent
                     if isinstance(e, WorkerEventSummary)]
        assert len(summaries) == 1
        assert summaries[0].cycles == 1

    def test_worker_without_send_has_no_session(self):
        worker = WorkerTelemetry(None, TelemetrySettings())
        assert worker.job_session("anything") is None


class TestInlineRelay:
    def test_inline_batch_publishes_on_parent_bus(self, tmp_path):
        with EngineTelemetry() as telemetry:
            seen = []
            telemetry.bus.subscribe(seen.append)
            engine = ParallelEngine(jobs=1, cache_dir=str(tmp_path),
                                    telemetry=telemetry)
            outcomes = engine.run_sim_jobs([_job()])
            assert outcomes[0].status.value == "ok"
            kinds = Counter(type(e).__name__ for e in seen)
        assert kinds["JobQueued"] == 1
        assert kinds["JobStarted"] == 1
        assert kinds["JobFinished"] == 1
        assert kinds["WorkerEventSummary"] == 1
        assert kinds["CacheMiss"] >= 1  # cold trace + result lookups
        summary = next(e for e in seen
                       if isinstance(e, WorkerEventSummary))
        assert summary.label == "hotspot/baseline/s0"
        assert sum(summary.counts.values()) > 0  # real sim events

    def test_inline_worker_restores_previous_state(self):
        with EngineTelemetry() as telemetry:
            assert current_worker() is None
            with inline_worker(telemetry):
                assert current_worker() is not None
            assert current_worker() is None

    def test_disabled_telemetry_installs_no_session(self):
        with EngineTelemetry(enabled=False) as telemetry:
            assert not telemetry.enabled
            assert telemetry.pool_init() is None
            with inline_worker(telemetry):
                worker = current_worker()
                assert worker is not None
                assert worker.job_session("x") is None
            telemetry.emit(JobQueued.now(label="x"))  # no-op, no crash
            assert telemetry.bus.events_published == 0


class TestPooledRelay:
    def test_generic_map_emits_parent_side_events(self):
        with EngineTelemetry() as telemetry:
            seen = []
            telemetry.bus.subscribe(seen.append)
            with ParallelEngine(jobs=2, cache_dir=None,
                                telemetry=telemetry) as engine:
                reports = engine.map_outcomes(square, [1, 2, 3])
            assert [r.value for r in reports] == [1, 4, 9]
            kinds = Counter(type(e).__name__ for e in seen)
        assert kinds["JobQueued"] == 3
        assert kinds["JobFinished"] == 3
        queued = [e for e in seen if isinstance(e, JobQueued)]
        assert [e.label for e in queued] == ["item0", "item1", "item2"]

    def test_sim_jobs_relay_worker_summaries(self, tmp_path):
        jobs = [_job(seed=0), _job(seed=1)]
        with EngineTelemetry() as telemetry:
            seen = []
            telemetry.bus.subscribe(seen.append)
            with ParallelEngine(jobs=2, cache_dir=str(tmp_path),
                                telemetry=telemetry) as engine:
                outcomes = engine.run_sim_jobs(jobs)
            # map_outcomes flushed the relay: the summaries are already
            # on the parent bus, deterministically, with no sleeping.
            summaries = [e for e in seen
                         if isinstance(e, WorkerEventSummary)]
        assert all(o.status.value == "ok" for o in outcomes)
        assert len(summaries) == 2
        for summary in summaries:
            assert summary.worker not in ("", "MainProcess")
            assert sum(summary.counts.values()) > 0  # real sim events
        labels = {s.label for s in summaries}
        assert labels == {"hotspot/baseline/s0", "hotspot/baseline/s1"}
        started = [e for e in seen if isinstance(e, JobStarted)]
        assert {s.worker for s in started} \
            == {s.worker for s in summaries}

    def test_retry_events_stream_from_failures(self, tmp_path):
        from repro.engine import FaultPolicy
        from tests.engine.faults import FaultPlan, FaultyWorker

        plan = FaultPlan(crash=("boom",))
        worker = FaultyWorker(square, plan)
        with EngineTelemetry() as telemetry:
            seen = []
            telemetry.bus.subscribe(seen.append)
            engine = ParallelEngine(
                jobs=1, cache_dir=None, telemetry=telemetry,
                policy=FaultPolicy(max_retries=1, backoff_base=0.0))
            reports = engine.map_outcomes(worker, ["boom", 5])
        assert reports[0].status.value == "failed"
        assert reports[1].value == 25
        retries = [e for e in seen if isinstance(e, JobRetry)]
        assert len(retries) == 1
        assert retries[0].reason == "failed"
        assert retries[0].attempt == 1
        finished = {e.index: e for e in seen
                    if isinstance(e, JobFinished)}
        assert finished[0].status == "failed"
        assert finished[0].attempts == 2
        assert finished[1].status == "ok"


class TestMetricsAggregation:
    def test_stream_lands_in_labelled_registry(self):
        with EngineTelemetry() as telemetry:
            telemetry.emit(JobQueued.now(label="j", index=0))
            telemetry.emit(JobStarted.now(label="j", worker="w"))
            telemetry.emit(JobFinished.now(label="j", index=0,
                                           status="ok", attempts=1,
                                           seconds=0.25))
            telemetry.emit(JobRetry.now(label="k", index=1, attempt=1,
                                        reason="timed_out"))
            telemetry.emit(CacheHit.now(group="results", key="a",
                                        worker="w"))
            telemetry.emit(CacheMiss.now(group="results", key="b",
                                         worker="w"))
            telemetry.emit(CacheMiss.now(group="results", key="c",
                                         worker="w", corrupt=True))
            metrics = telemetry.metrics
            assert metrics.counter("engine_jobs_queued").value == 1
            assert metrics.counter("engine_jobs_total",
                                   status="ok").value == 1
            assert metrics.counter("engine_retries_total",
                                   reason="timed_out").value == 1
            assert metrics.counter("engine_cache_requests_total",
                                   disposition="hit").value == 1
            assert metrics.counter("engine_cache_requests_total",
                                   disposition="corrupt").value == 1
            assert telemetry.cache_hit_ratio() == pytest.approx(1 / 3)

    def test_queue_wait_measured_per_started_job(self):
        with EngineTelemetry() as telemetry:
            telemetry.emit(JobQueued.now(label="j", index=0))
            telemetry.emit(JobStarted.now(label="j", worker="w"))
            histogram = telemetry.metrics.histogram(
                "engine_queue_wait_ms")
            assert histogram.total == 1

    def test_cache_hit_ratio_none_without_io(self):
        with EngineTelemetry() as telemetry:
            assert telemetry.cache_hit_ratio() is None

    def test_engine_batch_populates_registry(self, tmp_path):
        with EngineTelemetry() as telemetry:
            with ParallelEngine(jobs=2, cache_dir=str(tmp_path),
                                telemetry=telemetry) as engine:
                engine.run_sim_jobs([_job(seed=0), _job(seed=1)])
            flat = telemetry.metrics.as_flat_dict()
        assert flat["engine_jobs_queued"] == 2
        assert flat['engine_jobs_total{status="ok"}'] == 2
        assert flat["engine_worker_events_total"] > 0


class TestZeroCost:
    def test_engine_without_telemetry_has_no_hooks(self, tmp_path):
        engine = ParallelEngine(jobs=1, cache_dir=str(tmp_path))
        outcomes = engine.run_sim_jobs([_job()])
        assert outcomes[0].status.value == "ok"
        assert current_worker() is None  # nothing was installed

    def test_null_relay_never_creates_queue(self):
        with EngineTelemetry(enabled=False) as telemetry:
            assert telemetry.pool_init() is None
            assert telemetry._queue is None
            assert telemetry.flush()  # trivially drained

    def test_worker_bus_stays_disabled_without_session(self, tmp_path):
        # execute_job without an installed worker builds the SM on a
        # disabled bus: publications must cost one flag check, not a
        # dispatch (the overhead budget is pinned in benchmarks).
        from repro.engine.jobs import execute_job
        outcome = execute_job(_job(), cache_dir=None)
        assert outcome.result.cycles > 0


class TestRelayLifecycle:
    def test_flush_and_close_are_idempotent(self):
        telemetry = EngineTelemetry()
        queue = telemetry.ensure_relay()
        assert queue is telemetry.ensure_relay()  # one queue, reused
        assert telemetry.flush()
        telemetry.close()
        telemetry.close()
        assert telemetry._queue is None

    def test_events_drain_through_the_relay_thread(self):
        telemetry = EngineTelemetry()
        seen = []
        telemetry.bus.subscribe(seen.append, WorkerEventSummary)
        queue = telemetry.ensure_relay()
        queue.put(WorkerEventSummary.now(label="x", worker="w"))
        assert telemetry.flush(timeout=5.0)
        telemetry.close()
        assert len(seen) == 1
        assert seen[0].label == "x"


class TestWorkerProfiling:
    def test_pooled_workers_dump_and_aggregate(self, tmp_path):
        # The --profile seam: a telemetry with a profile_dir makes each
        # pool worker cProfile its job and dump a pstats file; the
        # parent merges every dump into one report.
        import pstats

        from repro.obs.profiling import (
            aggregate_profiles,
            profile_summary,
            write_profile_report,
        )

        profile_dir = tmp_path / "prof"
        jobs = [_job(seed=0), _job(seed=1)]
        with EngineTelemetry(profile_dir=str(profile_dir)) as telemetry:
            with ParallelEngine(jobs=2,
                                cache_dir=str(tmp_path / "cache"),
                                telemetry=telemetry) as engine:
                outcomes = engine.run_sim_jobs(jobs)
        assert all(o.status.value == "ok" for o in outcomes)

        dumps = sorted(profile_dir.glob("worker-*.pstats"))
        assert dumps  # real worker-side profiles landed on disk

        stats, count = aggregate_profiles(profile_dir)
        assert count == len(dumps)
        assert stats is not None
        report = write_profile_report(stats, tmp_path / "merged.pstats")
        merged = pstats.Stats(str(report))
        assert merged.total_calls > 0
        # The merged profile saw actual simulation work, and the text
        # summary renders the cumulative top functions.
        assert "run" in profile_summary(stats, top=20)

    def test_aggregate_skips_torn_dumps(self, tmp_path):
        from repro.obs.profiling import aggregate_profiles

        (tmp_path / "worker-dead.pstats").write_bytes(b"not a profile")
        stats, count = aggregate_profiles(tmp_path)
        assert stats is None
        assert count == 0
