"""The --progress renderer: counts, heartbeat discipline, TTY redraws."""

import io

from repro.obs.bus import EventBus
from repro.obs.progress import ProgressReporter
from repro.obs.telemetry import (
    CacheHit,
    CacheMiss,
    JobFinished,
    JobQueued,
    JobRetry,
    JobStarted,
)


def _batch(bus, n=3, statuses=None):
    statuses = statuses or ["ok"] * n
    for i in range(n):
        bus.publish(JobQueued.now(label=f"job{i}", index=i))
    for i, status in enumerate(statuses):
        bus.publish(JobStarted.now(label=f"job{i}", worker="w"))
        bus.publish(JobFinished.now(label=f"job{i}", index=i,
                                    status=status, attempts=1))


def _wire(**kwargs):
    bus = EventBus(enabled=True)
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream, **kwargs).attach(bus)
    return bus, stream, reporter


class TestCounts:
    def test_terminal_states_are_tallied(self):
        bus, stream, reporter = _wire(interval=3600.0, tty=False)
        _batch(bus, n=4, statuses=["ok", "failed", "timed_out",
                                   "cancelled"])
        assert reporter.total == 4
        assert reporter.done == 4
        assert reporter.ok == 1
        assert reporter.failed == 1
        assert reporter.timed_out == 1
        assert reporter.cancelled == 1
        assert reporter.running == 0
        reporter.close()
        line = stream.getvalue().splitlines()[-1]
        assert line.startswith("[4/4] ok=1 failed=1 timed_out=1 "
                               "cancelled=1")

    def test_running_derives_from_started_minus_done(self):
        bus, _, reporter = _wire(interval=3600.0, tty=False)
        bus.publish(JobQueued.now(label="a", index=0))
        bus.publish(JobQueued.now(label="b", index=1))
        bus.publish(JobStarted.now(label="a", worker="w"))
        assert reporter.running == 1
        bus.publish(JobFinished.now(label="a", index=0, status="ok"))
        assert reporter.running == 0
        reporter.close()

    def test_retries_and_cache_ratio_render(self):
        bus, stream, reporter = _wire(interval=3600.0, tty=False)
        _batch(bus, n=2)
        bus.publish(JobRetry.now(label="job0", index=0, attempt=1,
                                 reason="failed"))
        bus.publish(CacheHit.now(group="results", key="k", worker="w"))
        bus.publish(CacheHit.now(group="results", key="j", worker="w"))
        bus.publish(CacheMiss.now(group="results", key="m", worker="w"))
        reporter.close()
        final = stream.getvalue().splitlines()[-1]
        assert "retries=1" in final
        assert "cache=67%" in final


class TestHeartbeat:
    def test_non_tty_is_interval_gated(self):
        # A huge interval: the first event prints one heartbeat, every
        # later event is throttled; close() adds the final summary.
        bus, stream, reporter = _wire(interval=3600.0, tty=False)
        _batch(bus, n=5)
        reporter.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[-1].startswith("[5/5] ok=5")
        assert "\r" not in stream.getvalue()

    def test_zero_interval_prints_per_event(self):
        bus, stream, reporter = _wire(interval=0.0, tty=False)
        _batch(bus, n=2)
        reporter.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 7  # 6 events + final summary
        assert lines[-1].startswith("[2/2]")


class TestTTY:
    def test_redraws_in_place_with_erase(self):
        bus, stream, reporter = _wire(tty=True)
        _batch(bus, n=2)
        reporter.close()
        output = stream.getvalue()
        assert "\r\x1b[K" in output  # in-place redraw
        assert output.endswith("\n")  # close() terminates the line
        assert output.splitlines()[-1].lstrip("\r").startswith("[2/2]")

    def test_autodetects_non_tty_streams(self):
        reporter = ProgressReporter(stream=io.StringIO())
        assert reporter.tty is False


class TestEta:
    def test_eta_appears_mid_batch_only(self):
        bus, _, reporter = _wire(interval=3600.0, tty=False)
        for i in range(4):
            bus.publish(JobQueued.now(label=f"j{i}", index=i))
        assert reporter._eta() is None  # nothing settled yet
        bus.publish(JobFinished.now(label="j0", index=0, status="ok"))
        eta = reporter._eta()
        assert eta is not None and eta >= 0.0
        assert "eta=" in reporter._line()
        for i in range(1, 4):
            bus.publish(JobFinished.now(label=f"j{i}", index=i,
                                        status="ok"))
        assert reporter._eta() is None  # done == total
        reporter.close()


class TestDetach:
    def test_close_unsubscribes(self):
        bus, stream, reporter = _wire(interval=0.0, tty=False)
        _batch(bus, n=1)
        reporter.close()
        size = len(stream.getvalue())
        _batch(bus, n=1)  # after close: no subscriber, no output
        assert len(stream.getvalue()) == size
