"""Tests for the event bus: dispatch, ordering, disabled fast path."""

import pytest

from repro.obs.bus import NULL_BUS, EventBus
from repro.obs.events import GateOff, GateOn, IssueStall, Wakeup


class TestDispatch:
    def test_typed_subscription_receives_only_its_type(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append, GateOn)
        bus.publish(GateOn(1, "INT0"))
        bus.publish(IssueStall(2, "structural"))
        assert seen == [GateOn(1, "INT0")]

    def test_subscribe_all_receives_everything(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        bus.publish(GateOn(1, "INT0"))
        bus.publish(IssueStall(2, "structural"))
        assert [e.type_name for e in seen] == ["GateOn", "IssueStall"]

    def test_publication_order_is_preserved(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append)
        events = [GateOn(5, "FP0"),
                  GateOff(9, "FP0", gated_cycles=3, compensated=False),
                  Wakeup(9, "FP0", critical=False, delay=3)]
        for event in events:
            bus.publish(event)
        assert seen == events
        assert bus.events_published == 3

    def test_typed_handlers_run_before_all_handlers(self):
        bus = EventBus(enabled=True)
        order = []
        bus.subscribe(lambda e: order.append("all"))
        bus.subscribe(lambda e: order.append("typed"), GateOn)
        bus.publish(GateOn(0, "INT0"))
        assert order == ["typed", "all"]

    def test_one_handler_many_types(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append, GateOn, GateOff)
        bus.publish(GateOn(1, "INT0"))
        bus.publish(GateOff(4, "INT0", gated_cycles=2, compensated=False))
        bus.publish(IssueStall(5, "mshr_full"))
        assert len(seen) == 2

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus(enabled=True)
        seen = []
        bus.subscribe(seen.append, GateOn)
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.publish(GateOn(1, "INT0"))
        assert seen == []
        assert bus.subscriber_count == 0


class TestDisabled:
    def test_disabled_bus_publishes_nothing(self):
        bus = EventBus()  # disabled by default
        seen = []
        bus.subscribe(seen.append)
        bus.publish(GateOn(1, "INT0"))
        assert seen == []
        assert bus.events_published == 0

    def test_enable_disable_roundtrip(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.enable()
        bus.publish(GateOn(1, "INT0"))
        bus.disable()
        bus.publish(GateOn(2, "INT0"))
        assert [e.cycle for e in seen] == [1]

    def test_null_bus_refuses_enable(self):
        with pytest.raises(RuntimeError):
            NULL_BUS.enable()
        assert not NULL_BUS.enabled

    def test_disabled_publish_is_a_cheap_noop(self):
        # The no-op fast path: a disabled bus must not touch its
        # subscriber tables at all, however many handlers exist.
        bus = EventBus()
        calls = []
        for _ in range(100):
            bus.subscribe(calls.append, GateOn)
        event = GateOn(0, "INT0")
        for _ in range(1000):
            bus.publish(event)
        assert calls == []
        assert bus.events_published == 0
