"""Run-ledger: writer, readers, and the engine's batch flight recorder."""

import json

import pytest

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine import ParallelEngine, SimJob
from repro.obs.ledger import (
    LedgerWriter,
    ledger_dir_for,
    list_runs,
    load_run,
    new_run_id,
    summarize_run,
)

from tests.engine.faults import FaultPlan, FaultyEngine


def _job(benchmark="hotspot", technique=Technique.BASELINE, seed=0):
    return SimJob(benchmark=benchmark,
                  config=TechniqueConfig(technique), scale=0.2,
                  seed=seed)


class TestRunIds:
    def test_ids_are_sortable_and_unique(self):
        first = new_run_id(now=1_000_000.0)
        later = new_run_id(now=2_000_000.0)
        assert first < later  # lexical order == time order
        assert new_run_id() != new_run_id()  # random suffix

    def test_ledger_dir_nests_under_cache(self, tmp_path):
        assert ledger_dir_for(tmp_path) == tmp_path / "ledger"


class TestLedgerWriter:
    def test_round_trip(self, tmp_path):
        with LedgerWriter(tmp_path, "run1", jobs=2,
                          engine_jobs=4) as ledger:
            ledger.job(index=0, benchmark="hotspot", status="ok")
            ledger.job(index=1, benchmark="bfs", status="failed",
                       error="boom")
        records = load_run(tmp_path, "run1")
        kinds = [r["record"] for r in records]
        assert kinds == ["batch", "job", "job", "end"]
        assert records[0]["engine_jobs"] == 4
        assert records[-1]["counts"] == {"ok": 1, "failed": 1}

    def test_close_is_idempotent_and_takes_meta(self, tmp_path):
        ledger = LedgerWriter(tmp_path, "run2", jobs=0)
        ledger.close(profile_report="p.pstats")
        ledger.close(profile_report="ignored")
        records = load_run(tmp_path, "run2")
        footers = [r for r in records if r["record"] == "end"]
        assert len(footers) == 1
        assert footers[0]["profile_report"] == "p.pstats"

    def test_every_line_is_flushed(self, tmp_path):
        # A killed batch must still leave settled jobs readable — no
        # close() required.
        ledger = LedgerWriter(tmp_path, "run3", jobs=2)
        ledger.job(index=0, status="ok")
        records = load_run(tmp_path, "run3")
        assert [r["record"] for r in records] == ["batch", "job"]
        summary = summarize_run(records)
        assert summary["job_count"] == 1
        assert not summary["finished"]
        ledger.close()


class TestReaders:
    def _write(self, directory, run_id, statuses=("ok",)):
        with LedgerWriter(directory, run_id, jobs=len(statuses)) as lw:
            for i, status in enumerate(statuses):
                lw.job(index=i, status=status, cache_hit=(i == 0))

    def test_list_runs_is_chronological(self, tmp_path):
        self._write(tmp_path, "20260101T000000-aaaaaa")
        self._write(tmp_path, "20260102T000000-bbbbbb", ("ok", "failed"))
        summaries = list_runs(tmp_path)
        assert [s["run_id"] for s in summaries] \
            == ["20260101T000000-aaaaaa", "20260102T000000-bbbbbb"]
        assert summaries[1]["counts"] == {"ok": 1, "failed": 1}
        assert summaries[1]["cache_hits"] == 1
        assert all(s["finished"] for s in summaries)

    def test_list_runs_empty_or_missing_dir(self, tmp_path):
        assert list_runs(tmp_path) == []
        assert list_runs(tmp_path / "nope") == []

    def test_load_run_by_prefix(self, tmp_path):
        self._write(tmp_path, "20260101T000000-aaaaaa")
        self._write(tmp_path, "20260102T000000-bbbbbb")
        records = load_run(tmp_path, "20260102")
        assert records[0]["run_id"] == "20260102T000000-bbbbbb"

    def test_load_run_rejects_ambiguity_and_absence(self, tmp_path):
        self._write(tmp_path, "20260101T000000-aaaaaa")
        self._write(tmp_path, "20260101T000001-bbbbbb")
        with pytest.raises(ValueError, match="ambiguous"):
            load_run(tmp_path, "2026")
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path, "1999")

    def test_torn_final_line_is_skipped(self, tmp_path):
        self._write(tmp_path, "run9")
        path = tmp_path / "run9.jsonl"
        path.write_text(path.read_text() + '{"record": "job", "trunc',
                        encoding="utf-8")
        summary = summarize_run(load_run(tmp_path, "run9"))
        assert summary["job_count"] == 1  # the torn line never counted


class TestEngineLedger:
    """The acceptance path: ledger records mirror the outcome list."""

    def test_batch_ledger_matches_outcomes_exactly(self, tmp_path):
        jobs = [_job(seed=0), _job(seed=1),
                _job(technique=Technique.WARPED_GATES)]
        with ParallelEngine(jobs=2, cache_dir=str(tmp_path)) as engine:
            outcomes = engine.run_sim_jobs(jobs)
        run_id = engine.last_run_id
        assert run_id

        records = load_run(ledger_dir_for(tmp_path), run_id)
        ledgered = [r for r in records if r["record"] == "job"]
        assert len(ledgered) == len(outcomes)
        for job, outcome, record in zip(jobs, outcomes, ledgered):
            assert record["status"] == outcome.status.value
            assert record["spec_hash"] == job.spec.spec_hash()
            assert record["benchmark"] == job.benchmark
            assert record["seed"] == job.seed
            assert record["cycles"] == outcome.manifest.cycles
            assert record["cache_hit"] == outcome.manifest.cache_hit
            assert record["attempts"] == outcome.attempts
            # Manifests link back to the batch.
            assert outcome.manifest.run_id == run_id
            assert outcome.manifest.to_dict()["run_id"] == run_id

    def test_failures_are_recorded_with_their_error(self, tmp_path):
        plan = FaultPlan(crash=("hotspot/baseline/s0",))
        engine = FaultyEngine(plan, jobs=1, cache_dir=str(tmp_path))
        outcomes = engine.run_sim_jobs([_job(seed=0), _job(seed=1)])
        assert outcomes[0].status.value == "failed"
        assert outcomes[1].status.value == "ok"

        records = load_run(ledger_dir_for(tmp_path),
                           engine.last_run_id)
        jobs = [r for r in records if r["record"] == "job"]
        assert jobs[0]["status"] == "failed"
        assert "InjectedCrash" in jobs[0]["error"]
        assert jobs[1]["status"] == "ok"
        assert jobs[1]["error"] == ""

    def test_aborted_batch_closes_the_ledger(self, tmp_path):
        def interrupt(job):
            raise KeyboardInterrupt

        engine = ParallelEngine(jobs=1, cache_dir=str(tmp_path))
        with pytest.raises(KeyboardInterrupt):
            engine.run_sim_jobs([_job()], worker=interrupt)
        summaries = list_runs(ledger_dir_for(tmp_path))
        assert len(summaries) == 1
        assert summaries[0]["finished"]
        assert summaries[0]["aborted"] is True
        assert summaries[0]["job_count"] == 0

    def test_ledger_false_disables_recording(self, tmp_path):
        with ParallelEngine(jobs=1, cache_dir=str(tmp_path),
                            ledger=False) as engine:
            engine.run_sim_jobs([_job()])
        assert engine.last_run_id is None
        assert not ledger_dir_for(tmp_path).exists()

    def test_no_cache_dir_means_no_ledger_by_default(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        with ParallelEngine(jobs=1, cache_dir=None) as engine:
            engine.run_sim_jobs([_job()])
        assert engine.last_run_id is None
        assert list(tmp_path.iterdir()) == []

    def test_explicit_ledger_path_overrides(self, tmp_path):
        target = tmp_path / "ledgers"
        with ParallelEngine(jobs=1, cache_dir=None,
                            ledger=str(target)) as engine:
            engine.run_sim_jobs([_job()])
        assert engine.last_run_id
        summaries = list_runs(target)
        assert len(summaries) == 1
        assert summaries[0]["counts"] == {"ok": 1}

    def test_ledger_meta_lands_in_the_footer(self, tmp_path):
        with ParallelEngine(jobs=1, cache_dir=str(tmp_path)) as engine:
            engine.ledger_meta["profile_report"] = "x.pstats"
            engine.run_sim_jobs([_job()])
        records = load_run(ledger_dir_for(tmp_path),
                           engine.last_run_id)
        footer = next(r for r in records if r["record"] == "end")
        assert footer["profile_report"] == "x.pstats"

    def test_single_run_is_json_loadable_end_to_end(self, tmp_path):
        with ParallelEngine(jobs=1, cache_dir=str(tmp_path)) as engine:
            engine.run_sim_jobs([_job()])
        path = ledger_dir_for(tmp_path) / f"{engine.last_run_id}.jsonl"
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)  # every record is one valid JSON object
