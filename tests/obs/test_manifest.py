"""Tests for run provenance: config hashing and manifests."""

from repro.core.adaptive import AdaptiveConfig
from repro.obs.manifest import (
    RunManifest,
    config_hash,
    load_manifests,
    write_manifests,
)
from repro.power.params import GatingParams
from repro.sim.config import SMConfig


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_hash(GatingParams(), SMConfig()) == \
            config_hash(GatingParams(), SMConfig())

    def test_sensitive_to_any_field(self):
        base = config_hash(GatingParams())
        assert config_hash(GatingParams(idle_detect=9)) != base
        assert config_hash(GatingParams(bet=20)) != base

    def test_sensitive_to_argument_order(self):
        a, b = GatingParams(), AdaptiveConfig()
        assert config_hash(a, b) != config_hash(b, a)

    def test_short_hex(self):
        digest = config_hash(SMConfig())
        assert len(digest) == 12
        int(digest, 16)


def _manifest(**overrides):
    base = dict(benchmark="hotspot", technique="warped_gates", seed=0,
                scale=0.5, config_hash="abc123def456", cycles=10_000,
                instructions=4_000,
                wall_seconds={"build_trace": 0.5, "simulate": 2.0},
                events_published=17)
    base.update(overrides)
    return RunManifest(**base)


class TestRunManifest:
    def test_derived_throughput(self):
        manifest = _manifest()
        assert manifest.total_seconds == 2.5
        assert manifest.cycles_per_sec == 5_000.0

    def test_zero_simulate_time_is_safe(self):
        manifest = _manifest(wall_seconds={})
        assert manifest.cycles_per_sec == 0.0
        assert manifest.total_seconds == 0.0

    def test_to_dict_includes_derived_fields(self):
        record = _manifest().to_dict()
        assert record["cycles_per_sec"] == 5_000.0
        assert record["total_seconds"] == 2.5
        assert record["benchmark"] == "hotspot"

    def test_defaults_to_ok_status(self):
        manifest = _manifest()
        assert manifest.ok
        record = manifest.to_dict()
        assert record["status"] == "ok"
        assert record["error"] == ""
        assert record["attempts"] == 1

    def test_failure_record(self):
        manifest = _manifest(status="timed_out",
                             error="timed out after 5s", attempts=3,
                             cycles=0, instructions=0)
        assert not manifest.ok
        record = manifest.to_dict()
        assert record["status"] == "timed_out"
        assert record["attempts"] == 3

    def test_round_trips_through_file(self, tmp_path):
        manifests = [_manifest(), _manifest(benchmark="bfs", cycles=7)]
        path = tmp_path / "manifests.json"
        write_manifests(manifests, path)
        loaded = load_manifests(path)
        assert [m["benchmark"] for m in loaded] == ["hotspot", "bfs"]
        assert loaded[0]["events_published"] == 17
