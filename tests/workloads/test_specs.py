"""Tests for the benchmark profile table."""

import pytest

from repro.isa.optypes import ALL_OP_CLASSES, OpClass
from repro.workloads.specs import (
    BENCHMARK_NAMES,
    INTEGER_ONLY_BENCHMARKS,
    _mix,
    get_profile,
    iter_profiles,
)


class TestSuiteShape:
    def test_eighteen_benchmarks(self):
        # Section 7.1: "We selected eighteen benchmarks".
        assert len(BENCHMARK_NAMES) == 18

    def test_names_unique(self):
        assert len(set(BENCHMARK_NAMES)) == 18

    def test_paper_roster(self):
        expected = {"backprop", "bfs", "btree", "cutcp", "gaussian",
                    "heartwall", "hotspot", "kmeans", "lavaMD", "lbm",
                    "LIB", "mri", "MUM", "NN", "nw", "sgemm", "srad",
                    "WP"}
        assert set(BENCHMARK_NAMES) == expected

    def test_suites_are_the_papers(self):
        assert {p.suite for p in iter_profiles()} == \
            {"Rodinia", "Parboil", "ISPASS"}

    def test_integer_only_benchmarks(self):
        # "a couple of pure integer workloads (such as lavaMD)".
        assert set(INTEGER_ONLY_BENCHMARKS) == {"lavaMD", "nw"}
        for name in INTEGER_ONLY_BENCHMARKS:
            assert get_profile(name).spec.mix[OpClass.FP] == 0.0


class TestProfiles:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_mix_normalised(self, name):
        mix = get_profile(name).spec.mix
        assert sum(mix[cls] for cls in ALL_OP_CLASSES) == \
            pytest.approx(1.0)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_residency_within_fermi_limits(self, name):
        spec = get_profile(name).spec
        assert 1 <= spec.max_resident_warps <= 48
        assert spec.n_warps >= spec.max_resident_warps

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_dram_latency_plausible(self, name):
        assert 100 <= get_profile(name).dram_latency <= 1000

    def test_fig5b_low_occupancy_count(self):
        # Section 4: "Only 5 out of 18 benchmarks have fewer than ten
        # active warps on average" -- the reference values must agree.
        low = [p.name for p in iter_profiles()
               if p.paper_avg_active_warps < 10]
        assert len(low) == 5

    def test_fig5b_extremes(self):
        # Figure 5b orders srad highest and nw lowest.
        avgs = {p.name: p.paper_avg_active_warps for p in iter_profiles()}
        assert max(avgs, key=avgs.get) == "srad"
        assert min(avgs, key=avgs.get) == "nw"

    def test_lookup_error_is_helpful(self):
        with pytest.raises(KeyError, match="hotspot"):
            get_profile("hotspto")

    def test_is_integer_only_flag(self):
        assert get_profile("lavaMD").is_integer_only
        assert not get_profile("sgemm").is_integer_only


class TestMixBuilder:
    def test_normalises_rounding_slack(self):
        mix = _mix(0.5, 0.3, 0.1, 0.2)  # sums to 1.1
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix[OpClass.INT] == pytest.approx(0.5 / 1.1)

    def test_all_zero_fractions_rejected(self):
        # Regression: this used to be a bare ZeroDivisionError.
        with pytest.raises(ValueError,
                           match="all four fractions are zero"):
            _mix(0.0, 0.0, 0.0, 0.0)

    def test_all_zero_error_names_the_spec(self):
        with pytest.raises(ValueError, match="'mystery'"):
            _mix(0.0, 0.0, 0.0, 0.0, name="mystery")
