"""Tests for kernel building and workload scaling."""

import pytest

from repro.workloads.registry import (
    build_all_kernels,
    build_kernel,
    scaled_spec,
)
from repro.workloads.specs import BENCHMARK_NAMES, get_profile


class TestBuildKernel:
    def test_full_scale_matches_spec(self):
        kernel = build_kernel("hotspot")
        spec = get_profile("hotspot").spec
        assert kernel.n_warps == spec.n_warps
        assert len(kernel.warps[0]) == spec.instructions_per_warp

    def test_deterministic_per_seed(self):
        a = build_kernel("bfs", seed=5, scale=0.25)
        b = build_kernel("bfs", seed=5, scale=0.25)
        assert a.total_instructions == b.total_instructions
        assert tuple(a.warps[0].instructions) == \
            tuple(b.warps[0].instructions)

    def test_different_benchmarks_different_traces(self):
        a = build_kernel("bfs", scale=0.25)
        b = build_kernel("sgemm", scale=0.25)
        assert a.op_class_mix() != b.op_class_mix()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_kernel("notabench")


class TestScaling:
    def test_scale_one_is_identity(self):
        spec = get_profile("hotspot").spec
        assert scaled_spec(spec, 1.0) is spec

    def test_scale_shrinks_proportionally(self):
        spec = get_profile("hotspot").spec
        small = scaled_spec(spec, 0.5)
        assert small.n_warps == round(spec.n_warps * 0.5)
        assert small.instructions_per_warp == \
            round(spec.instructions_per_warp * 0.5)
        assert small.max_resident_warps <= small.n_warps

    def test_scale_preserves_mix(self):
        spec = get_profile("hotspot").spec
        assert scaled_spec(spec, 0.3).mix == spec.mix

    def test_tiny_scale_keeps_minimums(self):
        spec = get_profile("nw").spec
        tiny = scaled_spec(spec, 0.01)
        assert tiny.n_warps >= 2
        assert tiny.instructions_per_warp >= 8
        assert tiny.max_resident_warps >= 2

    def test_invalid_scale(self):
        spec = get_profile("hotspot").spec
        with pytest.raises(ValueError):
            scaled_spec(spec, 0.0)
        with pytest.raises(ValueError):
            scaled_spec(spec, -1.0)


class TestBuildAll:
    def test_builds_full_suite(self):
        kernels = build_all_kernels(scale=0.1)
        assert set(kernels) == set(BENCHMARK_NAMES)

    def test_subset_selection(self):
        kernels = build_all_kernels(scale=0.1, names=("hotspot", "bfs"))
        assert set(kernels) == {"hotspot", "bfs"}
