"""Suite-wide calibration conformance: generated traces match specs.

The Figure 5a reproduction is only as good as the generator's fidelity
to the per-benchmark mixes; this parametrised check covers all 18
benchmarks (trace generation only — no simulation — so it stays fast).
"""

import pytest

from repro.isa.optypes import ALL_OP_CLASSES
from repro.workloads.registry import build_kernel
from repro.workloads.specs import BENCHMARK_NAMES, get_profile


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_generated_mix_matches_spec(name):
    kernel = build_kernel(name, scale=0.5)
    measured = kernel.op_class_mix()
    spec_mix = get_profile(name).spec.mix
    for cls in ALL_OP_CLASSES:
        assert measured[cls] == pytest.approx(spec_mix[cls], abs=0.06), \
            f"{name}: {cls.name} mix drifted from its specification"


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_memory_instructions_respect_footprint(name):
    kernel = build_kernel(name, scale=0.25)
    # Scaled footprint: registry shrinks it with the workload.
    from repro.workloads.registry import scaled_spec
    footprint = scaled_spec(get_profile(name).spec, 0.25).footprint_lines
    for warp in kernel.warps:
        for inst in warp:
            if inst.is_mem:
                assert 0 <= inst.line_addr < footprint


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_divergence_masks_legal(name):
    kernel = build_kernel(name, scale=0.25)
    lanes = [i.active_lanes for w in kernel.warps for i in w]
    assert all(1 <= l <= 32 for l in lanes)
    profile = get_profile(name)
    if profile.spec.branch_prob == 0.0:
        assert all(n == 32 for n in lanes)
