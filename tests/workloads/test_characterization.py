"""Tests for workload characterisation (Figure 5 utilities)."""

import pytest

from repro.isa.optypes import OpClass
from repro.workloads.characterization import (
    active_warp_rows,
    count_low_occupancy,
    instruction_mix_table,
    static_mix_for,
)
from repro.workloads.specs import get_profile


class TestStaticMix:
    def test_measured_mix_tracks_spec(self):
        measured = static_mix_for("hotspot", scale=0.5)
        spec_mix = get_profile("hotspot").spec.mix
        for cls in OpClass:
            assert measured[cls] == pytest.approx(spec_mix[cls], abs=0.06)

    def test_integer_only_measured_as_such(self):
        assert static_mix_for("lavaMD", scale=0.5)[OpClass.FP] == 0.0


class TestMixTable:
    def test_rows_cover_selection(self):
        rows = instruction_mix_table(("hotspot", "bfs"), scale=0.25)
        assert [r["benchmark"] for r in rows] == ["hotspot", "bfs"]

    def test_rows_have_measured_and_spec_columns(self):
        row = instruction_mix_table(("hotspot",), scale=0.25)[0]
        for key in ("int", "fp", "sfu", "ldst",
                    "spec_int", "spec_fp", "spec_sfu", "spec_ldst"):
            assert key in row

    def test_fractions_sum_to_one(self):
        row = instruction_mix_table(("sgemm",), scale=0.25)[0]
        total = row["int"] + row["fp"] + row["sfu"] + row["ldst"]
        assert total == pytest.approx(1.0)


class TestActiveWarpRows:
    def test_sorted_descending_and_annotated(self):
        rows = active_warp_rows({"hotspot": (20.0, 30.0),
                                 "nw": (3.0, 8.0),
                                 "srad": (25.0, 40.0)})
        assert [r["benchmark"] for r in rows] == ["srad", "hotspot", "nw"]
        assert rows[0]["paper_avg"] == \
            get_profile("srad").paper_avg_active_warps

    def test_count_low_occupancy(self):
        rows = [{"avg_active_warps": 3.0}, {"avg_active_warps": 12.0},
                {"avg_active_warps": 9.9}]
        assert count_low_occupancy(rows) == 2
        assert count_low_occupancy(rows, threshold=5.0) == 1
