"""The HTTP front end, exercised over real sockets.

One asyncio server runs on a background loop thread per fixture; the
stdlib :class:`ServiceClient` talks to it exactly as ``repro submit``
and the CI smoke job do.  Pins the admission, dedupe, long-poll,
streaming and error surfaces — and the acceptance guarantee that a
*served* result digests identically to the classic serial runner.
"""

import asyncio
import threading

import pytest

from repro.core.digest import result_digest
from repro.engine import ParallelEngine
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.service.api import ServiceAPI
from repro.service.client import ServiceClient, ServiceError
from repro.service.core import SimulationService

SCALE = 0.1


class ServedFixture:
    """A live API server on a loop thread, plus a client aimed at it."""

    def __init__(self, service: SimulationService,
                 max_pending: int = 64) -> None:
        self.service = service
        self.api = ServiceAPI(service, port=0, max_pending=max_pending)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        port = asyncio.run_coroutine_threadsafe(
            self.api.start(), self.loop).result(10)
        self.client = ServiceClient("127.0.0.1", port, timeout=30.0)

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.api.stop(drain_timeout=30.0), self.loop).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()
        self.service.close()


@pytest.fixture
def served(tmp_path):
    engine = ParallelEngine(jobs=1, cache_dir=str(tmp_path / "cache"))
    fixture = ServedFixture(SimulationService(engine=engine))
    yield fixture
    fixture.close()


def job_doc(**overrides):
    doc = {"benchmark": "bfs", "technique": "warped_gates",
           "scale": SCALE}
    doc.update(overrides)
    return doc


class TestEndpoints:
    def test_health(self, served):
        health = served.client.health()
        assert health["ok"] is True and health["draining"] is False

    def test_submit_wait_result_roundtrip(self, served):
        accepted = served.client.submit(job_doc())
        assert accepted["state"] in ("queued", "running", "ok")
        assert accepted["deduped"] is False
        result = served.client.wait(accepted["job_id"], timeout=120)
        assert result["state"] == "ok"
        assert result["cycles"] > 0
        assert result["manifest"]["benchmark"] == "bfs"
        assert len(result["digest"]) == 64
        listed = served.client.jobs()
        assert [j["job_id"] for j in listed] == [accepted["job_id"]]

    def test_served_digest_matches_serial_runner(self, served):
        """Acceptance: HTTP-served digest == classic serial digest."""
        accepted = served.client.submit(job_doc())
        result = served.client.wait(accepted["job_id"], timeout=120)
        runner = ExperimentRunner(ExperimentSettings(
            scale=SCALE, benchmarks=("bfs",)))
        serial = runner.run("bfs", "warped_gates")
        assert result["digest"] == result_digest(serial)

    def test_duplicate_submit_dedupes_onto_same_job(self, served):
        first = served.client.submit(job_doc())
        second = served.client.submit(job_doc())
        assert second["job_id"] == first["job_id"]
        assert second["deduped"] is True
        assert second["submissions"] == 2

    def test_stream_replays_lifecycle(self, served):
        accepted = served.client.submit(job_doc())
        served.client.wait(accepted["job_id"], timeout=120)
        records = list(served.client.stream(accepted["job_id"]))
        states = [r["state"] for r in records
                  if r.get("record") == "state"]
        assert states[0] == "queued" and states[-1] == "ok"
        assert records[-1]["record"] == "done"

    def test_disconnect_mid_stream_does_not_cancel_job(self, served):
        """A lost stream consumer never perturbs the running job."""
        accepted = served.client.submit(job_doc())
        stream = served.client.stream(accepted["job_id"])
        first = next(stream)  # connected and receiving...
        assert first["record"] in ("state", "done")
        stream.close()  # ...then the client drops the connection
        result = served.client.wait(accepted["job_id"], timeout=120)
        assert result["state"] == "ok" and result["cycles"] > 0


class TestErrors:
    def test_unknown_job_is_404(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client.status("feedfacecafe")
        assert excinfo.value.status == 404

    def test_unsettled_result_without_wait_is_404_shaped(self, served):
        # An unknown id and a known-but-unsettled job both read as
        # not-ready; the client's wait() treats them alike.
        with pytest.raises(ServiceError):
            served.client.result("feedfacecafe")

    def test_invalid_document_is_400_with_reason(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client.submit({"benchmark": "bfs"})
        assert excinfo.value.status == 400
        assert "exactly one of" in excinfo.value.message
        with pytest.raises(ServiceError) as excinfo:
            served.client.submit({"benchmark": "bsf",
                                  "technique": "conv_pg"})
        assert excinfo.value.status == 400
        assert "did you mean" in excinfo.value.message

    def test_unknown_endpoint_is_404(self, served):
        with pytest.raises(ServiceError) as excinfo:
            served.client._call("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_admission_cap_returns_429(self, tmp_path):
        engine = ParallelEngine(jobs=1, cache_dir=str(tmp_path / "cache"))
        fixture = ServedFixture(SimulationService(engine=engine),
                                max_pending=0)
        try:
            with pytest.raises(ServiceError) as excinfo:
                fixture.client.submit(job_doc())
            assert excinfo.value.status == 429
        finally:
            fixture.close()
