"""SimulationService core: dedupe, lifecycle, parity, wire format.

The headline guarantees pinned here:

* **Single-flight**: N concurrent submissions of one spec-addressed
  request share one ticket and one engine execution — proven with an
  on-disk execution counter that survives the process pool.
* **Golden parity**: a service-run result digests identically to the
  classic serial :class:`ExperimentRunner` path (the same canonical
  sha256 the golden identity suite pins).
* **Lifecycle**: tickets move queued → running → terminal, feeds
  replay-then-close, failures keep the classic raising contract.
"""

import threading
from functools import partial

import pytest

from repro.core.digest import result_digest
from repro.engine import FaultPolicy, ParallelEngine
from repro.engine.faults import JobFailedError
from repro.engine.jobs import execute_job
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.service.core import JobRequest, JobState, SimulationService

from tests.engine.faults import (
    CountingWorker,
    FaultPlan,
    FaultyEngine,
    count_executions,
    sim_job_key,
)

SCALE = 0.1


def request(benchmark="bfs", technique="warped_gates", **kwargs):
    kwargs.setdefault("scale", SCALE)
    return JobRequest(benchmark=benchmark, technique=technique, **kwargs)


class TestSingleFlight:
    def test_concurrent_same_spec_submits_execute_once(self, tmp_path):
        """Four racing submitters; the pool runs the cell exactly once."""
        cache_dir = str(tmp_path / "cache")
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        engine = ParallelEngine(jobs=2, cache_dir=cache_dir)
        service = SimulationService(
            engine=engine,
            worker=CountingWorker(partial(execute_job,
                                          cache_dir=cache_dir),
                                  str(marker_dir), key=sim_job_key))
        results = [None] * 4
        barrier = threading.Barrier(4)

        def submit(i):
            barrier.wait()
            results[i] = service.run(request())

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # One execution (cross-process counter), one manifest, one
        # ticket with four recorded submissions — and every caller got
        # the *same* settled result object.
        assert count_executions(marker_dir, "bfs/warped_gates/s0") == 1
        assert len(service.manifests) == 1
        (ticket,) = service.tickets()
        assert ticket.submissions == 4
        assert ticket.snapshot()["deduped"] is True
        assert all(r is results[0] for r in results)

    def test_spec_addressing_aliases_equivalent_techniques(self):
        from repro.core.spec import technique_spec
        from repro.core.techniques import Technique

        service = SimulationService()
        a, created_a = service.submit(request(technique="warped_gates"))
        b, created_b = service.submit(
            request(technique=Technique.WARPED_GATES))
        c, created_c = service.submit(
            request(technique=technique_spec("warped_gates")))
        assert created_a and not created_b and not created_c
        assert a is b is c and a.submissions == 3

    def test_distinct_settings_never_alias(self):
        service = SimulationService()
        base, _ = service.submit(request())
        for other in (request(seed=1), request(scale=0.2),
                      request(technique="conv_pg"),
                      request(fast_forward=True)):
            ticket, created = service.submit(other)
            assert created and ticket is not base


class TestGoldenParity:
    def test_service_digest_matches_serial_runner(self, tmp_path):
        """Engine-served result == classic serial path, bit for bit."""
        engine = ParallelEngine(jobs=1, cache_dir=str(tmp_path / "cache"))
        with SimulationService(engine=engine) as service:
            served = service.run(request())
        runner = ExperimentRunner(ExperimentSettings(
            scale=SCALE, benchmarks=("bfs",)))
        serial = runner.run("bfs", "warped_gates")
        assert result_digest(served) == result_digest(serial)

    def test_inline_service_digest_matches_serial_runner(self):
        with SimulationService() as service:
            inline = service.run(request())
        runner = ExperimentRunner(ExperimentSettings(
            scale=SCALE, benchmarks=("bfs",)))
        serial = runner.run("bfs", "warped_gates")
        assert result_digest(inline) == result_digest(serial)


class TestLifecycle:
    def test_states_and_feed_replay(self):
        service = SimulationService()
        ticket, created = service.submit(request())
        assert created and ticket.state is JobState.QUEUED
        service.execute(ticket)
        assert ticket.state is JobState.OK and ticket.done
        records = []
        unsubscribe = ticket.feed.subscribe(records.append)
        unsubscribe()
        records = [r for r in records if isinstance(r, dict)]
        states = [r["state"] for r in records if r["record"] == "state"]
        assert states == ["queued", "running", "ok"]
        done = [r for r in records if r["record"] == "done"]
        assert len(done) == 1 and done[0]["cycles"] > 0

    def test_engine_failure_is_memoised_and_raises(self, tmp_path):
        plan = FaultPlan(crash=("bfs/warped_gates/s0",))
        engine = FaultyEngine(plan, jobs=1,
                              cache_dir=str(tmp_path / "cache"),
                              policy=FaultPolicy(max_retries=0))
        service = SimulationService(engine=engine)
        ticket, _ = service.submit(request())
        service.execute(ticket)
        assert ticket.state is JobState.FAILED
        with pytest.raises(JobFailedError, match="bfs/warped_gates"):
            ticket.result()
        # Memoised: resubmitting dedupes onto the failed ticket, and
        # no second execution happens.
        again, created = service.submit(request())
        assert again is ticket and not created
        assert len(service.manifests) == 1

    def test_inline_exception_is_not_memoised(self, monkeypatch):
        service = SimulationService()
        import repro.service.core as core

        def boom(*args, **kwargs):
            raise RuntimeError("injected inline failure")

        monkeypatch.setattr(core, "build_kernel", boom)
        ticket, _ = service.submit(request())
        with pytest.raises(RuntimeError, match="injected"):
            service.execute(ticket)
        assert ticket.state is JobState.FAILED
        monkeypatch.undo()
        # The key was dropped: the next submission re-attempts fresh.
        retry, created = service.submit(request())
        assert created and retry is not ticket
        assert service.run(request()).cycles > 0

    def test_prefetch_is_one_batch_and_skips_settled(self, tmp_path):
        engine = ParallelEngine(jobs=1, cache_dir=str(tmp_path / "cache"))
        service = SimulationService(engine=engine)
        service.run(request())  # settle one cell up front
        tickets = service.prefetch([
            request(), request(technique="conv_pg"),
            request(technique="baseline"), request()])  # dup collapses
        assert len(tickets) == 3
        assert all(t.done for t in tickets)
        assert len(service.manifests) == 3  # 1 direct + 2 batched
        assert service.drain(timeout=1.0)


class TestWireFormat:
    def test_round_trip(self):
        original = request(seed=3, fast_forward=False)
        parsed = JobRequest.from_dict(original.to_dict())
        assert parsed.key(False) == original.key(False)

    def test_validation_errors_name_the_offence(self):
        with pytest.raises(ValueError, match="unknown key"):
            JobRequest.from_dict({"benchmark": "bfs",
                                  "technique": "conv_pg", "bogus": 1})
        with pytest.raises(ValueError, match="exactly one of"):
            JobRequest.from_dict({"benchmark": "bfs"})
        with pytest.raises(ValueError, match="exactly one of"):
            JobRequest.from_dict({"benchmark": "bfs",
                                  "technique": "conv_pg",
                                  "spec": {"name": "x"}})
        with pytest.raises(ValueError, match="did you mean"):
            JobRequest.from_dict({"benchmark": "bsf",
                                  "technique": "conv_pg"})
        with pytest.raises(ValueError, match="'seed'"):
            JobRequest.from_dict({"benchmark": "bfs",
                                  "technique": "conv_pg", "seed": "0"})
        with pytest.raises(ValueError, match="JSON object"):
            JobRequest.from_dict(["not", "a", "dict"])
