"""Tests for the experiment runner and derived metrics."""

import math

import pytest

from repro.core.techniques import Technique
from repro.harness.experiment import (
    ExperimentRunner,
    ExperimentSettings,
    geomean,
    geomean_excluding,
    normalized_performance,
)
from repro.isa.optypes import ExecUnitKind
from repro.power.params import GatingParams

from tests.conftest import TEST_SCALE

SETTINGS = ExperimentSettings(scale=TEST_SCALE, benchmarks=("hotspot",))


class TestRunnerCaching:
    def test_memoises_identical_runs(self):
        runner = ExperimentRunner(SETTINGS)
        a = runner.run("hotspot", Technique.BASELINE)
        b = runner.run("hotspot", Technique.BASELINE)
        assert a is b

    def test_different_gating_params_not_conflated(self):
        runner = ExperimentRunner(SETTINGS)
        a = runner.run("hotspot", Technique.CONV_PG,
                       gating=GatingParams(idle_detect=5))
        b = runner.run("hotspot", Technique.CONV_PG,
                       gating=GatingParams(idle_detect=9))
        assert a is not b

    def test_suite_covers_grid(self):
        runner = ExperimentRunner(ExperimentSettings(
            scale=TEST_SCALE, benchmarks=("hotspot", "nw")))
        grid = runner.suite(techniques=(Technique.BASELINE,
                                        Technique.CONV_PG))
        assert set(grid) == {("hotspot", Technique.BASELINE),
                             ("hotspot", Technique.CONV_PG),
                             ("nw", Technique.BASELINE),
                             ("nw", Technique.CONV_PG)}


class TestMetrics:
    def test_baseline_savings_zero(self):
        runner = ExperimentRunner(SETTINGS)
        assert runner.static_savings("hotspot", Technique.BASELINE,
                                     ExecUnitKind.INT) == 0.0

    def test_savings_bounded_above_by_one(self):
        runner = ExperimentRunner(SETTINGS)
        for kind in (ExecUnitKind.INT, ExecUnitKind.FP):
            s = runner.static_savings("hotspot", Technique.WARPED_GATES,
                                      kind)
            assert s <= 1.0

    def test_breakdown_normalises(self):
        runner = ExperimentRunner(SETTINGS)
        norm = runner.energy_breakdown(
            "hotspot", Technique.BASELINE, ExecUnitKind.INT).normalized()
        assert norm.dynamic + norm.static == pytest.approx(1.0)
        assert norm.overhead == 0.0

    def test_fp_population_excludes_integer_only(self):
        runner = ExperimentRunner(ExperimentSettings(
            scale=TEST_SCALE, benchmarks=("hotspot", "lavaMD", "nw")))
        assert runner.fp_benchmarks() == ("hotspot",)

    def test_energy_params_per_kind(self):
        assert SETTINGS.energy_params(ExecUnitKind.INT).dyn_per_issue > \
            SETTINGS.energy_params(ExecUnitKind.FP).dyn_per_issue


class TestNormalizedPerformance:
    def test_identity(self):
        runner = ExperimentRunner(SETTINGS)
        base = runner.baseline("hotspot")
        assert normalized_performance(base, base) == 1.0

    def test_slower_run_below_one(self):
        runner = ExperimentRunner(SETTINGS)
        base = runner.baseline("hotspot")
        naive = runner.run("hotspot", Technique.NAIVE_BLACKOUT)
        # Blackout may cost cycles but never a large factor at this scale.
        assert 0.5 < normalized_performance(base, naive) <= 1.2


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestGeomeanExcluding:
    """The documented companion policy: strict ``geomean`` raises on
    bad input, ``geomean_excluding`` drops it and reports the count."""

    def test_clean_input_matches_strict(self):
        value, excluded = geomean_excluding([1.0, 4.0])
        assert value == pytest.approx(geomean([1.0, 4.0]))
        assert excluded == 0

    def test_drops_nonfinite_and_nonpositive(self):
        value, excluded = geomean_excluding(
            [2.0, math.nan, 8.0, 0.0, -1.0, math.inf])
        assert value == pytest.approx(4.0)
        assert excluded == 4

    def test_nothing_survives_is_nan(self):
        value, excluded = geomean_excluding([math.nan, 0.0])
        assert math.isnan(value)
        assert excluded == 2

    def test_empty_is_nan_with_zero_excluded(self):
        value, excluded = geomean_excluding([])
        assert math.isnan(value)
        assert excluded == 0
