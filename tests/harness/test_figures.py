"""Tests for the per-figure builders."""

import math

import pytest

from repro.core.techniques import Technique
from repro.harness import figures
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.isa.optypes import ExecUnitKind

from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    settings = ExperimentSettings(scale=TEST_SCALE,
                                  benchmarks=("hotspot", "nw", "sgemm"))
    return ExperimentRunner(settings)


class TestFig1b:
    def test_rows_cover_four_bars(self, runner):
        rows = figures.fig1b_rows(runner)
        labels = {(r[0], r[1]) for r in rows}
        assert labels == {("baseline", "int"), ("baseline", "fp"),
                          ("conv_pg", "int"), ("conv_pg", "fp")}

    def test_baseline_has_no_overhead(self, runner):
        for row in figures.fig1b_rows(runner):
            if row[0] == "baseline":
                assert row[3] == pytest.approx(0.0)

    def test_components_are_fractions(self, runner):
        for row in figures.fig1b_rows(runner):
            dyn, ovh, stat = row[2], row[3], row[4]
            assert 0.0 <= dyn <= 1.0
            assert 0.0 <= ovh <= 1.0
            assert 0.0 <= stat <= 1.0

    def test_fp_more_static_dominated_than_int(self, runner):
        rows = {(r[0], r[1]): r for r in figures.fig1b_rows(runner)}
        # Figure 1b: static share of FP baseline energy far exceeds INT's.
        assert rows[("baseline", "fp")][4] > rows[("baseline", "int")][4]


class TestFig3:
    def test_three_panels(self, runner):
        rows = figures.fig3_rows(runner)
        assert [r[0] for r in rows] == ["conv_pg", "gates", "blackout"]

    def test_regions_sum_to_one(self, runner):
        for row in figures.fig3_rows(runner):
            assert row[1] + row[2] + row[3] == pytest.approx(1.0)

    def test_blackout_loss_region_empty(self, runner):
        rows = {r[0]: r for r in figures.fig3_rows(runner)}
        assert rows["blackout"][2] == pytest.approx(0.0)

    def test_series_shape(self, runner):
        series = figures.fig3_series(runner, Technique.CONV_PG,
                                     max_length=25)
        assert len(series) == 25
        assert sum(f for _, f in series) == pytest.approx(1.0, abs=1e-9)


class TestFig5:
    def test_mix_rows(self, runner):
        rows = figures.fig5a_rows(runner)
        assert len(rows) == 3
        for row in rows:
            assert row[1] + row[2] + row[3] + row[4] == pytest.approx(1.0)

    def test_active_warp_rows_sorted(self, runner):
        rows = figures.fig5b_rows(runner)
        avgs = [row[1] for row in rows]
        assert avgs == sorted(avgs, reverse=True)


class TestFig8:
    def test_fig8a_normalised_to_baseline(self, runner):
        rows = figures.fig8a_rows(runner, ExecUnitKind.INT)
        assert rows[-1][0] == "geomean"
        for row in rows[:-1]:
            for value in row[1:]:
                assert value > 0.0

    def test_fig8b_signed_metric_in_range(self, runner):
        for row in figures.fig8b_rows(runner, ExecUnitKind.INT)[:-1]:
            for value in row[1:]:
                assert -1.0 <= value <= 1.0

    def test_fig8c_conv_reference_is_one(self, runner):
        # Normalising conv to conv would be 1; the figure omits it and
        # reports the three techniques relative to conv.
        rows = figures.fig8c_rows(runner, ExecUnitKind.INT)
        assert len(rows[0]) == 4  # benchmark + three techniques


class TestGeomeanRow:
    """The shared exclusion policy behind every geomean summary row."""

    def test_no_exclusions_keeps_plain_label(self):
        row = figures._geomean_row([["a", 2.0, 4.0], ["b", 8.0, 4.0]])
        assert row[0] == "geomean"
        assert row[1] == pytest.approx(4.0)
        assert row[2] == pytest.approx(4.0)

    def test_nan_cells_excluded_not_clamped(self):
        # Pre-fix behaviour clamped NaN/zero to 1e-9, dragging a
        # two-benchmark geomean down ~4.5 orders of magnitude.
        row = figures._geomean_row(
            [["a", 2.0], ["b", math.nan], ["c", 8.0]])
        assert row[0] == "geomean (1 excluded)"
        assert row[1] == pytest.approx(4.0)

    def test_label_reports_worst_column(self):
        row = figures._geomean_row(
            [["a", math.nan, 2.0], ["b", math.nan, 8.0],
             ["c", 3.0, math.nan]])
        assert row[0] == "geomean (2 excluded)"
        assert row[1] == pytest.approx(3.0)
        assert row[2] == pytest.approx(4.0)

    def test_all_excluded_column_is_nan(self):
        row = figures._geomean_row([["a", math.nan], ["b", 0.0]])
        assert row[0] == "geomean (2 excluded)"
        assert math.isnan(row[1])


class TestFig9and10:
    def test_fig9_has_average_row(self, runner):
        rows = figures.fig9_rows(runner, ExecUnitKind.INT)
        assert rows[-1][0] == "average"
        assert len(rows) == 4  # three benchmarks + average

    def test_fig9_fp_excludes_integer_only(self, runner):
        rows = figures.fig9_rows(runner, ExecUnitKind.FP)
        names = [r[0] for r in rows]
        assert "nw" not in names

    def test_fig10_geomean_positive(self, runner):
        rows = figures.fig10_rows(runner)
        assert rows[-1][0] == "geomean"
        assert all(v > 0.0 for v in rows[-1][1:])

    def test_chip_savings_keys(self, runner):
        est = figures.chip_savings_estimate(runner)
        assert est["chip_savings_at_50pct_leakage"] > \
            est["chip_savings_at_33pct_leakage"]


class TestSec75:
    def test_static_rows(self):
        rows = figures.sec75_rows()
        assert rows[0][0] == 176  # total storage bits in the inventory
        assert rows[0][2] == pytest.approx(0.0025, abs=0.001)
