"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURE_BUILDERS, _engine, _failure_exit, \
    build_parser, main
from repro.obs.manifest import RunManifest


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Commands cache under ``CWD/.repro-cache``; keep it out of the repo."""
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_technique_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "hotspot", "nope"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["--benchmarks", "hotspto", "characterize"])

    def test_figure_choices_cover_registry(self):
        args = build_parser().parse_args(["figure", "fig10"])
        assert args.name == "fig10"
        assert set(FIGURE_BUILDERS) >= {"fig1b", "fig3", "fig5a", "fig5b",
                                        "fig8a", "fig8b", "fig8c",
                                        "fig9a", "fig9b", "fig10",
                                        "sec75"}


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hotspot" in out
        assert "warped_gates" in out
        assert "fig9a" in out

    def test_run(self, capsys):
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "conv_pg"])
        assert code == 0
        out = capsys.readouterr().out
        assert "int_static_savings" in out
        assert "normalized_performance" in out

    def test_figure_with_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "f.csv"
        json_path = tmp_path / "f.json"
        code = main(["--scale", "0.2", "--benchmarks", "hotspot,nw",
                     "figure", "fig9a",
                     "--csv", str(csv_path), "--json", str(json_path)])
        assert code == 0
        assert csv_path.exists() and json_path.exists()
        document = json.loads(json_path.read_text())
        assert document["figure"] == "fig9a"
        names = [r["benchmark"] for r in document["records"]]
        assert names == ["hotspot", "nw", "average"]

    def test_sec75_figure_needs_no_simulation(self, capsys):
        assert main(["figure", "sec75"]) == 0
        assert "area_pct" in capsys.readouterr().out

    def test_characterize(self, capsys):
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "characterize"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5a" in out and "Figure 5b" in out

    def test_sweep(self, capsys):
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "sweep", "bet"])
        assert code == 0
        assert "break-even" in capsys.readouterr().out

    def test_trace_export(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["--scale", "0.15", "trace", "hotspot", str(path)])
        assert code == 0
        from repro.isa.traceio import load_kernel
        kernel = load_kernel(path)
        assert kernel.name == "hotspot"
        assert kernel.total_instructions > 0

    def test_replicate(self, capsys):
        code = main(["--scale", "0.15", "--benchmarks", "hotspot",
                     "replicate", "--seeds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 seeds" in out
        assert "warped_gates" in out

    def test_energy(self, capsys):
        code = main(["--scale", "0.15", "--benchmarks", "hotspot",
                     "energy", "hotspot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy breakdown" in out
        assert "overhead" in out
        # Baseline (no gating) totals exactly 1.0 by construction.
        baseline_rows = [line for line in out.splitlines()
                         if line.startswith("baseline")]
        assert len(baseline_rows) == 2
        for line in baseline_rows:
            assert line.rstrip().endswith("1.000")

    def test_run_with_observability_flags(self, capsys, tmp_path):
        events_path = tmp_path / "events.jsonl"
        trace_path = tmp_path / "trace.json"
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "warped_gates",
                     "--emit-events", str(events_path),
                     "--emit-chrome-trace", str(trace_path),
                     "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Run manifests" in out
        assert "cycles/s" in out

        from repro.obs.exporters import (load_jsonl_events,
                                         validate_chrome_trace)
        records = load_jsonl_events(events_path)
        assert records and all("event" in r for r in records)
        document = json.loads(trace_path.read_text())
        validate_chrome_trace(document)
        assert "end_cycle" in document["otherData"]

    def test_fig6_figure(self, capsys):
        code = main(["--scale", "0.15", "--benchmarks", "hotspot",
                     "figure", "fig6"])
        assert code == 0
        assert "pearson_r" in capsys.readouterr().out


class TestEngineFlags:
    def test_engine_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["run", "hotspot", "baseline"])
        assert args.jobs == 1
        assert not args.no_cache
        assert not args.no_fast_forward

    def test_jobs_output_matches_serial(self, capsys):
        base_args = ["--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "conv_pg"]
        assert main(["--no-cache", "--no-fast-forward"] + base_args) == 0
        serial_out = capsys.readouterr().out
        assert main(["--jobs", "2", "--no-cache"] + base_args) == 0
        assert capsys.readouterr().out == serial_out

    def test_default_run_populates_cache(self, capsys, tmp_path):
        args = ["--scale", "0.2", "--benchmarks", "hotspot",
                "run", "hotspot", "conv_pg", "--profile"]
        assert main(args) == 0
        first = capsys.readouterr().out
        cache_root = tmp_path / ".repro-cache"
        assert (cache_root / "results").is_dir()
        assert (cache_root / "traces").is_dir()
        # Second invocation serves from cache, identical metrics table.
        assert main(args) == 0
        second = capsys.readouterr().out
        cut = first.index("Run manifests")
        assert second[:cut] == first[:cut]

    def test_no_cache_leaves_no_directory(self, capsys, tmp_path):
        assert main(["--no-cache", "--scale", "0.2",
                     "--benchmarks", "hotspot",
                     "run", "hotspot", "baseline"]) == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_replicate_with_jobs(self, capsys):
        code = main(["--jobs", "2", "--no-cache", "--scale", "0.15",
                     "--benchmarks", "hotspot",
                     "replicate", "--seeds", "2"])
        assert code == 0
        assert "2 seeds" in capsys.readouterr().out


class TestFaultFlags:
    def test_fault_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["run", "hotspot", "baseline"])
        assert not args.fail_fast
        assert args.max_retries == 0
        assert args.job_timeout is None
        assert args.cache_cap_mb is None

    def test_fault_flags_reach_the_engine_policy(self):
        args = build_parser().parse_args(
            ["--fail-fast", "--max-retries", "2", "--job-timeout", "30",
             "--cache-cap-mb", "64", "--no-cache",
             "run", "hotspot", "baseline"])
        engine = _engine(args)
        assert engine.policy.fail_fast
        assert engine.policy.max_retries == 2
        assert engine.policy.job_timeout == 30.0
        assert engine.cache_max_bytes == 64 * 2 ** 20

    def test_failure_exit_silent_when_all_ok(self, capsys):
        ok = RunManifest(benchmark="hotspot", technique="baseline",
                         seed=0, scale=0.2, config_hash="abc",
                         cycles=10, instructions=5)
        assert _failure_exit([ok]) == 0
        assert capsys.readouterr().err == ""

    def test_failure_exit_reports_failed_jobs(self, capsys):
        failed = RunManifest(benchmark="bfs", technique="conv_pg",
                             seed=0, scale=0.2, config_hash="abc",
                             cycles=0, instructions=0, status="failed",
                             error="Traceback ...\nInjectedCrash: boom",
                             attempts=2)
        assert _failure_exit([failed]) == 3
        err = capsys.readouterr().err
        assert "bfs" in err and "conv_pg" in err
        assert "InjectedCrash: boom" in err
        assert "1 job(s) failed" in err
