"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURE_BUILDERS, _engine, _failure_exit, \
    build_parser, main
from repro.obs.manifest import RunManifest


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Commands cache under ``CWD/.repro-cache``; keep it out of the repo."""
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_technique_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "hotspot", "nope"])

    def test_unknown_technique_suggests_closest(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "hotspot", "warped_gate"])
        err = capsys.readouterr().err
        assert "unknown technique 'warped_gate'" in err
        assert "warped_gates" in err

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["--benchmarks", "hotspto", "characterize"])

    def test_unknown_benchmark_suggests_closest(self):
        with pytest.raises(SystemExit) as err:
            main(["--benchmarks", "hotspto", "characterize"])
        assert "unknown benchmark 'hotspto'" in str(err.value)
        assert "hotspot" in str(err.value)

    def test_duplicate_benchmark_rejected(self):
        with pytest.raises(SystemExit) as err:
            main(["--benchmarks", "hotspot,hotspot", "characterize"])
        assert "duplicate benchmark 'hotspot'" in str(err.value)

    def test_run_needs_technique_or_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "hotspot"])
        with pytest.raises(SystemExit):
            main(["run", "hotspot", "baseline", "--spec", "x.json"])

    def test_figure_choices_cover_registry(self):
        args = build_parser().parse_args(["figure", "fig10"])
        assert args.name == "fig10"
        assert set(FIGURE_BUILDERS) >= {"fig1b", "fig3", "fig5a", "fig5b",
                                        "fig8a", "fig8b", "fig8c",
                                        "fig9a", "fig9b", "fig10",
                                        "sec75"}


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hotspot" in out
        assert "warped_gates" in out
        assert "fig9a" in out

    def test_list_groups_and_describes_techniques(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "paper techniques:" in out
        assert "ablations:" in out
        # Each technique line carries its registered one-liner.
        assert "adaptive idle-detect" in out
        assert out.index("warped_gates") < out.index("gates_no_pg")

    def test_run(self, capsys):
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "conv_pg"])
        assert code == 0
        out = capsys.readouterr().out
        assert "int_static_savings" in out
        assert "normalized_performance" in out

    def test_figure_with_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "f.csv"
        json_path = tmp_path / "f.json"
        code = main(["--scale", "0.2", "--benchmarks", "hotspot,nw",
                     "figure", "fig9a",
                     "--csv", str(csv_path), "--json", str(json_path)])
        assert code == 0
        assert csv_path.exists() and json_path.exists()
        document = json.loads(json_path.read_text())
        assert document["figure"] == "fig9a"
        names = [r["benchmark"] for r in document["records"]]
        assert names == ["hotspot", "nw", "average"]

    def test_sec75_figure_needs_no_simulation(self, capsys):
        assert main(["figure", "sec75"]) == 0
        assert "area_pct" in capsys.readouterr().out

    def test_characterize(self, capsys):
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "characterize"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5a" in out and "Figure 5b" in out

    def test_sweep(self, capsys):
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "sweep", "bet"])
        assert code == 0
        assert "break-even" in capsys.readouterr().out

    def test_trace_export(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        code = main(["--scale", "0.15", "trace", "hotspot", str(path)])
        assert code == 0
        from repro.isa.traceio import load_kernel
        kernel = load_kernel(path)
        assert kernel.name == "hotspot"
        assert kernel.total_instructions > 0

    def test_replicate(self, capsys):
        code = main(["--scale", "0.15", "--benchmarks", "hotspot",
                     "replicate", "--seeds", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 seeds" in out
        assert "warped_gates" in out

    def test_energy(self, capsys):
        code = main(["--scale", "0.15", "--benchmarks", "hotspot",
                     "energy", "hotspot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy breakdown" in out
        assert "overhead" in out
        # Baseline (no gating) totals exactly 1.0 by construction.
        baseline_rows = [line for line in out.splitlines()
                         if line.startswith("baseline")]
        assert len(baseline_rows) == 2
        for line in baseline_rows:
            assert line.rstrip().endswith("1.000")

    def test_run_with_observability_flags(self, capsys, tmp_path):
        events_path = tmp_path / "events.jsonl"
        trace_path = tmp_path / "trace.json"
        code = main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "warped_gates",
                     "--emit-events", str(events_path),
                     "--emit-chrome-trace", str(trace_path),
                     "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Run manifests" in out
        assert "cycles/s" in out

        from repro.obs.exporters import (load_jsonl_events,
                                         validate_chrome_trace)
        records = load_jsonl_events(events_path)
        assert records and all("event" in r for r in records)
        document = json.loads(trace_path.read_text())
        validate_chrome_trace(document)
        assert "end_cycle" in document["otherData"]

    def test_fig6_figure(self, capsys):
        code = main(["--scale", "0.15", "--benchmarks", "hotspot",
                     "figure", "fig6"])
        assert code == 0
        assert "pearson_r" in capsys.readouterr().out


class TestFiguresCommand:
    def test_sec75_only_artifact_passes_check(self, capsys, tmp_path):
        # sec75 is closed-form (reproduces the paper's own synthesis
        # constants), so a sec75-only checked artifact is a
        # deterministic PASS and the command exits 0.
        out_dir = tmp_path / "results"
        code = main(["figures", "--out", str(out_dir),
                     "--figures", "sec75", "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and f"{out_dir / 'index.md'}" in out
        for filename in ("data.csv", "data.json", "summary.md",
                         "plot.py", "manifest.json"):
            assert (out_dir / "sec75" / filename).exists()
        document = json.loads((out_dir / "headline.json").read_text())
        assert document["verdict"] == "PASS"
        assert len(document["checks"]) == 4

    def test_unmeasurable_subset_fails_check_with_exit_3(self, capsys,
                                                         tmp_path):
        # fig5a contributes no headline metrics: an artifact that
        # measured nothing cannot be in band, so --check exits 3.
        code = main(["--scale", "0.15", "--benchmarks", "hotspot",
                     "figures", "--out", str(tmp_path / "results"),
                     "--figures", "fig5a", "--check"])
        assert code == 3
        assert "FAIL" in capsys.readouterr().out

    def test_without_check_no_headline_file(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        code = main(["figures", "--out", str(out_dir),
                     "--figures", "sec75"])
        assert code == 0
        assert (out_dir / "index.md").exists()
        assert not (out_dir / "headline.json").exists()

    def test_format_subset_controls_files(self, capsys, tmp_path):
        out_dir = tmp_path / "results"
        assert main(["figures", "--out", str(out_dir),
                     "--figures", "sec75", "--format", "csv"]) == 0
        assert (out_dir / "sec75" / "data.csv").exists()
        assert not (out_dir / "sec75" / "data.json").exists()
        assert not (out_dir / "sec75" / "summary.md").exists()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown format"):
            main(["figures", "--out", str(tmp_path / "r"),
                  "--format", "xml", "--figures", "sec75"])

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown figure 'fig9'"):
            main(["figures", "--out", str(tmp_path / "r"),
                  "--figures", "fig9"])


class TestEngineFlags:
    def test_engine_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["run", "hotspot", "baseline"])
        assert args.jobs == 1
        assert not args.no_cache
        assert not args.no_fast_forward

    def test_jobs_output_matches_serial(self, capsys):
        base_args = ["--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "conv_pg"]
        assert main(["--no-cache", "--no-fast-forward"] + base_args) == 0
        serial_out = capsys.readouterr().out
        assert main(["--jobs", "2", "--no-cache"] + base_args) == 0
        assert capsys.readouterr().out == serial_out

    def test_default_run_populates_cache(self, capsys, tmp_path):
        args = ["--scale", "0.2", "--benchmarks", "hotspot",
                "run", "hotspot", "conv_pg", "--profile"]
        assert main(args) == 0
        first = capsys.readouterr().out
        cache_root = tmp_path / ".repro-cache"
        assert (cache_root / "results").is_dir()
        assert (cache_root / "traces").is_dir()
        # Second invocation serves from cache, identical metrics table.
        assert main(args) == 0
        second = capsys.readouterr().out
        cut = first.index("Run manifests")
        assert second[:cut] == first[:cut]

    def test_no_cache_leaves_no_directory(self, capsys, tmp_path):
        assert main(["--no-cache", "--scale", "0.2",
                     "--benchmarks", "hotspot",
                     "run", "hotspot", "baseline"]) == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_replicate_with_jobs(self, capsys):
        code = main(["--jobs", "2", "--no-cache", "--scale", "0.15",
                     "--benchmarks", "hotspot",
                     "replicate", "--seeds", "2"])
        assert code == 0
        assert "2 seeds" in capsys.readouterr().out


class TestRunsCommand:
    RUN_ARGS = ["--scale", "0.2", "--benchmarks", "hotspot",
                "run", "hotspot", "baseline"]

    def test_list_with_no_ledger(self, capsys):
        assert main(["runs", "list"]) == 0
        assert "no recorded runs" in capsys.readouterr().out

    def test_show_unknown_run_exits_with_error(self):
        with pytest.raises(SystemExit, match="no run matching"):
            main(["runs", "show", "19990101"])

    def test_list_and_show_after_a_run(self, capsys, tmp_path):
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()

        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "Run ledger" in out
        rows = [line for line in out.splitlines()
                if line and line[0].isdigit()]
        assert rows  # every engine batch left a ledger
        assert all("yes" in row for row in rows)  # all finished
        run_id = rows[-1].split()[0]

        assert main(["runs", "show", run_id]) == 0
        shown = capsys.readouterr().out
        assert f"run {run_id}" in shown
        assert "hotspot" in shown and "baseline" in shown
        assert "finished=yes" in shown

        # Prefix lookup + raw JSON dump round-trip.
        assert main(["runs", "show", run_id[:10], "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        kinds = [r["record"] for r in records]
        assert kinds[0] == "batch" and kinds[-1] == "end"
        jobs = [r for r in records if r["record"] == "job"]
        assert jobs and all(r["status"] == "ok" for r in jobs)
        assert all(r["spec_hash"] for r in jobs)

    def test_show_ambiguous_prefix_exits_with_error(self, capsys):
        # Two invocations -> two ledgers sharing the "2" prefix.
        assert main(self.RUN_ARGS) == 0
        assert main(self.RUN_ARGS) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="ambiguous"):
            main(["runs", "show", "2"])


class TestTelemetryFlags:
    def test_progress_heartbeat_on_stderr(self, capsys):
        code = main(["--progress", "--scale", "0.2",
                     "--benchmarks", "hotspot",
                     "run", "hotspot", "baseline"])
        assert code == 0
        captured = capsys.readouterr()
        # The metrics table stays on stdout, untouched by progress.
        assert "normalized_performance" in captured.out
        final = captured.err.splitlines()[-1]
        assert final.startswith("[") and "ok=" in final

    def test_engine_events_and_trace_files(self, capsys, tmp_path):
        events_path = tmp_path / "engine-events.jsonl"
        trace_path = tmp_path / "engine-trace.json"
        code = main(["--jobs", "2",
                     "--engine-events", str(events_path),
                     "--engine-trace", str(trace_path),
                     "--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "warped_gates"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {events_path}" in out
        assert f"wrote {trace_path}" in out

        from repro.obs.exporters import (load_jsonl_events,
                                         validate_chrome_trace)
        records = load_jsonl_events(events_path)
        events = {r["event"] for r in records}
        assert {"JobQueued", "JobStarted", "JobFinished",
                "WorkerEventSummary"} <= events
        document = json.loads(trace_path.read_text())
        validate_chrome_trace(document)
        assert document["otherData"]["workers"]

    def test_profile_writes_aggregated_report(self, capsys, tmp_path):
        # `run` simulates its cells as 1-job inline batches, so the
        # report here merges 0 worker dumps (the parent profile still
        # captures the simulation); the pooled worker-dump path is
        # pinned by tests/obs TestWorkerProfiling.
        code = main(["--jobs", "2", "--scale", "0.2",
                     "--benchmarks", "hotspot",
                     "run", "hotspot", "conv_pg", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        # The report prints after the manifests table, names the
        # written pstats file and counts the merged worker dumps.
        assert out.index("Run manifests") < out.index("profile report:")
        report_line = next(line for line in out.splitlines()
                           if line.startswith("profile report:"))
        report_path = report_line.split()[2]
        assert (tmp_path / report_path).exists()
        assert "worker dump(s)" in report_line
        import pstats
        stats = pstats.Stats(str(tmp_path / report_path))
        assert stats.total_calls > 0

    def test_profile_report_linked_from_ledger(self, capsys, tmp_path):
        assert main(["--scale", "0.2", "--benchmarks", "hotspot",
                     "run", "hotspot", "baseline", "--profile"]) == 0
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        run_id = [line for line in capsys.readouterr().out.splitlines()
                  if line and line[0].isdigit()][0].split()[0]
        assert main(["runs", "show", run_id]) == 0
        assert "profile report:" in capsys.readouterr().out


class TestFaultFlags:
    def test_fault_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["run", "hotspot", "baseline"])
        assert not args.fail_fast
        assert args.max_retries == 0
        assert args.job_timeout is None
        assert args.cache_cap_mb is None

    def test_fault_flags_reach_the_engine_policy(self):
        args = build_parser().parse_args(
            ["--fail-fast", "--max-retries", "2", "--job-timeout", "30",
             "--cache-cap-mb", "64", "--no-cache",
             "run", "hotspot", "baseline"])
        engine = _engine(args)
        assert engine.policy.fail_fast
        assert engine.policy.max_retries == 2
        assert engine.policy.job_timeout == 30.0
        assert engine.cache_max_bytes == 64 * 2 ** 20

    def test_failure_exit_silent_when_all_ok(self, capsys):
        ok = RunManifest(benchmark="hotspot", technique="baseline",
                         seed=0, scale=0.2, config_hash="abc",
                         cycles=10, instructions=5)
        assert _failure_exit([ok]) == 0
        assert capsys.readouterr().err == ""

    def test_failure_exit_reports_failed_jobs(self, capsys):
        failed = RunManifest(benchmark="bfs", technique="conv_pg",
                             seed=0, scale=0.2, config_hash="abc",
                             cycles=0, instructions=0, status="failed",
                             error="Traceback ...\nInjectedCrash: boom",
                             attempts=2)
        assert _failure_exit([failed]) == 3
        err = capsys.readouterr().err
        assert "bfs" in err and "conv_pg" in err
        assert "InjectedCrash: boom" in err
        assert "1 job(s) failed" in err


#: A composition no enum member ever named: CCWS locality throttling
#: crossed with Coordinated Blackout and adaptive idle-detect.
CUSTOM_SPEC = {
    "name": "ccws_coord_blackout_adaptive",
    "description": "CCWS x Coordinated Blackout x adaptive idle-detect",
    "scheduler": {"name": "ccws",
                  "params": {"score_per_excluded_warp": 64.0}},
    "gating_policy": {"name": "coordinated_blackout",
                      "params": {"max_domains": 8}},
    "gating": {"idle_detect": 5, "bet": 14, "wakeup_delay": 3},
    "adaptive": {"min_idle_detect": 5, "max_idle_detect": 10,
                 "epoch_cycles": 1000, "threshold": 5,
                 "decay_epochs": 4},
}


class TestSpecCommands:
    def test_spec_show_round_trips(self, capsys):
        assert main(["spec", "show", "warped_gates"]) == 0
        from repro.core.spec import TechniqueSpec, technique_spec
        document = json.loads(capsys.readouterr().out)
        spec = TechniqueSpec.from_dict(document)
        assert spec == technique_spec("warped_gates")

    def test_spec_validate_accepts_good_file(self, capsys, tmp_path):
        path = tmp_path / "good.json"
        path.write_text(json.dumps(CUSTOM_SPEC))
        assert main(["spec", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and CUSTOM_SPEC["name"] in out

    @pytest.mark.parametrize("document,fragment", [
        ({**CUSTOM_SPEC, "scheduler": "gatez"}, "unknown scheduler"),
        ({**CUSTOM_SPEC, "gating": {"bet": -1}}, "bet must be"),
        ({**CUSTOM_SPEC, "extra_key": 1}, "unknown spec key"),
    ])
    def test_spec_validate_rejects_bad_file(self, capsys, tmp_path,
                                            document, fragment):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        with pytest.raises(SystemExit) as err:
            main(["spec", "validate", str(path)])
        assert fragment in str(err.value)

    def test_spec_validate_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["spec", "validate", str(path)])


class TestSpecFileIntegration:
    """The never-enum-named composition, end to end.

    CLI --spec file → engine (persistent cache) → manifests: the full
    acceptance path for arbitrary scheduler × gating × adaptive
    compositions.
    """

    def _write_spec(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(json.dumps(CUSTOM_SPEC))
        return path

    def test_spec_file_runs_and_hits_cache_on_rerun(self, capsys,
                                                    tmp_path):
        args = ["--scale", "0.2", "--benchmarks", "hotspot",
                "run", "hotspot", "--spec",
                str(self._write_spec(tmp_path)), "--profile"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert f"hotspot / {CUSTOM_SPEC['name']}" in first
        custom_rows = [line for line in first.splitlines()
                       if line.startswith(f"hotspot    "
                                          f"{CUSTOM_SPEC['name']}")]
        assert custom_rows and "miss" in custom_rows[0]
        # The cache entry is keyed by the custom spec's name + hash.
        results = tmp_path / ".repro-cache" / "results"
        assert any(CUSTOM_SPEC["name"] in p.name
                   for p in results.iterdir())

        assert main(args) == 0
        second = capsys.readouterr().out
        custom_rows = [line for line in second.splitlines()
                       if line.startswith(f"hotspot    "
                                          f"{CUSTOM_SPEC['name']}")]
        assert custom_rows and "hit" in custom_rows[0]
        # Identical headline metrics either way.
        cut = first.index("Run manifests")
        assert second[:cut] == first[:cut]

    def test_manifest_embeds_the_full_spec(self):
        from repro.core.spec import TechniqueSpec
        from repro.harness.experiment import (ExperimentRunner,
                                              ExperimentSettings)

        spec = TechniqueSpec.from_dict(CUSTOM_SPEC)
        runner = ExperimentRunner(ExperimentSettings(
            scale=0.15, benchmarks=("hotspot",)))
        runner.run("hotspot", spec)
        manifest = runner.manifests[-1]
        assert manifest.technique == spec.name
        # The embedded document is lossless: it rebuilds the identical
        # spec, so any manifest can be re-run byte-for-byte.
        rebuilt = TechniqueSpec.from_dict(manifest.spec)
        assert rebuilt.spec_hash() == spec.spec_hash()
        assert manifest.to_dict()["spec"] == spec.to_dict()
