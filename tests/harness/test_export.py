"""Tests for CSV/JSON/Markdown result export."""

import json
import math

import pytest

from repro.harness.export import (
    load_json_rows,
    rows_to_csv,
    rows_to_json,
    rows_to_markdown,
)

HEADERS = ("benchmark", "savings")
ROWS = [["hotspot", 0.25], ["bfs", 0.5]]
NAN_ROWS = [["hotspot", math.nan], ["bfs", 0.5]]


class TestCSV:
    def test_round_trips_headers_and_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        text = rows_to_csv(HEADERS, ROWS, path=path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "benchmark,savings"
        assert lines[1] == "hotspot,0.25"
        assert len(lines) == 3

    def test_no_path_returns_only(self):
        text = rows_to_csv(HEADERS, ROWS)
        assert "bfs,0.5" in text

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            rows_to_csv(HEADERS, [["only-one"]])


class TestJSON:
    def test_document_structure(self, tmp_path):
        path = tmp_path / "out.json"
        text = rows_to_json(HEADERS, ROWS, path=path, figure="fig9a")
        document = json.loads(text)
        assert document["figure"] == "fig9a"
        assert document["headers"] == list(HEADERS)
        assert document["records"][0] == {"benchmark": "hotspot",
                                          "savings": 0.25}

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        rows_to_json(HEADERS, ROWS, path=path)
        records = load_json_rows(path)
        assert records == [{"benchmark": "hotspot", "savings": 0.25},
                           {"benchmark": "bfs", "savings": 0.5}]

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            rows_to_json(HEADERS, [[1, 2, 3]])


class TestNaNRoundTrip:
    """NaN policy: CSV spells ``nan``, JSON goes NaN -> null -> NaN."""

    def test_csv_spells_nan(self):
        text = rows_to_csv(HEADERS, NAN_ROWS)
        cell = text.splitlines()[1].split(",")[1]
        assert cell == "nan"
        assert math.isnan(float(cell))  # reads straight back

    def test_json_serialises_nan_as_null(self):
        text = rows_to_json(HEADERS, NAN_ROWS)
        # Standard JSON: a strict parser accepts it and the
        # non-interoperable bare NaN token never appears.
        assert "NaN" not in text
        document = json.loads(text, parse_constant=pytest.fail)
        assert document["records"][0]["savings"] is None

    def test_load_restores_nan(self, tmp_path):
        path = tmp_path / "out.json"
        rows_to_json(HEADERS, NAN_ROWS, path=path)
        records = load_json_rows(path)
        assert math.isnan(records[0]["savings"])
        assert records[1]["savings"] == 0.5

    def test_infinities_also_become_null(self):
        text = rows_to_json(HEADERS, [["a", math.inf], ["b", -math.inf]])
        records = json.loads(text)["records"]
        assert [r["savings"] for r in records] == [None, None]


class TestMarkdown:
    def test_table_shape(self, tmp_path):
        path = tmp_path / "summary.md"
        text = rows_to_markdown(HEADERS, ROWS, path=path, title="Fig X")
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "## Fig X"
        assert lines[2] == "| benchmark | savings |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| hotspot | 0.25 |"

    def test_nan_renders_as_dash(self):
        text = rows_to_markdown(HEADERS, NAN_ROWS)
        assert "| hotspot | — |" in text

    def test_pipes_escaped(self):
        text = rows_to_markdown(HEADERS, [["a|b", 1.0]])
        assert "a\\|b" in text

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            rows_to_markdown(HEADERS, [["only-one"]])
