"""Tests for CSV/JSON result export."""

import json

import pytest

from repro.harness.export import load_json_rows, rows_to_csv, rows_to_json

HEADERS = ("benchmark", "savings")
ROWS = [["hotspot", 0.25], ["bfs", 0.5]]


class TestCSV:
    def test_round_trips_headers_and_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        text = rows_to_csv(HEADERS, ROWS, path=path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "benchmark,savings"
        assert lines[1] == "hotspot,0.25"
        assert len(lines) == 3

    def test_no_path_returns_only(self):
        text = rows_to_csv(HEADERS, ROWS)
        assert "bfs,0.5" in text

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            rows_to_csv(HEADERS, [["only-one"]])


class TestJSON:
    def test_document_structure(self, tmp_path):
        path = tmp_path / "out.json"
        text = rows_to_json(HEADERS, ROWS, path=path, figure="fig9a")
        document = json.loads(text)
        assert document["figure"] == "fig9a"
        assert document["headers"] == list(HEADERS)
        assert document["records"][0] == {"benchmark": "hotspot",
                                          "savings": 0.25}

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        rows_to_json(HEADERS, ROWS, path=path)
        records = load_json_rows(path)
        assert records == [{"benchmark": "hotspot", "savings": 0.25},
                           {"benchmark": "bfs", "savings": 0.5}]

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            rows_to_json(HEADERS, [[1, 2, 3]])
