"""Tests for multi-seed replication."""

import pytest

from repro.core.techniques import Technique
from repro.harness.experiment import ExperimentSettings
from repro.harness.replication import (
    REPLICATION_HEADERS,
    _estimate,
    replicate,
    replication_rows,
)

SETTINGS = ExperimentSettings(scale=0.2, benchmarks=("hotspot", "nw"))


class TestEstimate:
    def test_single_sample(self):
        est = _estimate([0.5])
        assert est.mean == 0.5
        assert est.stdev == 0.0
        assert est.n == 1

    def test_mean_and_sample_stdev(self):
        est = _estimate([1.0, 2.0, 3.0])
        assert est.mean == pytest.approx(2.0)
        assert est.stdev == pytest.approx(1.0)

    def test_empty(self):
        assert _estimate([]).n == 0


class TestReplicate:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate(SETTINGS, seeds=())

    def test_structure_and_ordering(self):
        results = replicate(SETTINGS, seeds=(0, 1),
                            techniques=(Technique.CONV_PG,
                                        Technique.WARPED_GATES))
        assert [r.technique for r in results] == \
            [Technique.CONV_PG, Technique.WARPED_GATES]
        for result in results:
            assert result.int_savings.n == 2
            assert result.performance.n == 2
            assert result.benchmarks == (2, 2)  # full population, both seeds

    def test_single_seed_zero_spread(self):
        results = replicate(SETTINGS, seeds=(0,),
                            techniques=(Technique.CONV_PG,))
        assert results[0].int_savings.stdev == 0.0

    def test_metrics_plausible(self):
        results = replicate(SETTINGS, seeds=(0, 1),
                            techniques=(Technique.WARPED_GATES,))
        result = results[0]
        assert -1.0 <= result.int_savings.mean <= 1.0
        assert 0.5 < result.performance.mean < 1.5

    def test_fp_excludes_integer_only(self):
        # With only integer-only benchmarks, FP savings stay zero.
        settings = ExperimentSettings(scale=0.2, benchmarks=("nw",))
        results = replicate(settings, seeds=(0,),
                            techniques=(Technique.WARPED_GATES,))
        assert results[0].fp_savings.mean == 0.0

    def test_rows_shape(self):
        results = replicate(SETTINGS, seeds=(0,),
                            techniques=(Technique.CONV_PG,))
        rows = replication_rows(results)
        assert len(rows[0]) == len(REPLICATION_HEADERS)
        assert rows[0][0] == "conv_pg"
