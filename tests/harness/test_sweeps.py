"""Tests for parameter sweeps (Figures 6 and 11)."""

import pytest

from repro.core.techniques import Technique
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.harness.sweeps import (
    BET_VALUES,
    IDLE_DETECT_VALUES,
    WAKEUP_VALUES,
    bet_sweep,
    idle_detect_sweep,
    sweep_rows,
    wakeup_sweep,
)

from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentSettings(
        scale=TEST_SCALE, benchmarks=("hotspot", "sgemm")))


class TestPaperSweepPoints:
    def test_values_match_paper(self):
        assert BET_VALUES == (9, 14, 19)
        assert WAKEUP_VALUES == (3, 6, 9)
        assert IDLE_DETECT_VALUES == tuple(range(0, 11))


class TestBetSweep:
    def test_grid_shape(self, runner):
        points = bet_sweep(runner, values=(9, 19))
        assert len(points) == 4  # 2 values x 2 techniques
        assert {p.value for p in points} == {9, 19}
        assert {p.technique for p in points} == \
            {Technique.CONV_PG, Technique.WARPED_GATES}

    def test_performance_positive(self, runner):
        for point in bet_sweep(runner, values=(14,)):
            assert point.performance > 0.5

    def test_rows_format(self, runner):
        points = bet_sweep(runner, values=(14,))
        rows = sweep_rows(points)
        assert len(rows[0]) == 5 + 1  # metrics + benchmark coverage
        assert all(not p.failed and p.benchmarks == 2 for p in points)


class TestWakeupSweep:
    def test_grid_shape(self, runner):
        points = wakeup_sweep(runner, values=(3, 9))
        assert {p.value for p in points} == {3, 9}

    def test_conv_perf_degrades_with_big_wakeup(self, runner):
        # The paper's headline sensitivity: conventional gating pays the
        # wakeup latency constantly, so a 9-cycle wakeup hurts it more
        # than a 3-cycle one.
        points = wakeup_sweep(runner, values=(3, 9),
                              techniques=(Technique.CONV_PG,))
        perf = {p.value: p.performance for p in points}
        assert perf[9] <= perf[3] + 0.02


class TestIdleDetectSweep:
    def test_correlation_results_cover_benchmarks(self, runner):
        results = idle_detect_sweep(runner, values=(2, 5, 8))
        assert {r.benchmark for r in results} == {"hotspot", "sgemm"}

    def test_points_align_with_values(self, runner):
        results = idle_detect_sweep(runner, values=(2, 5, 8))
        assert all(len(r.points) == 3 for r in results)

    def test_pearson_in_valid_range(self, runner):
        for result in idle_detect_sweep(runner, values=(2, 5, 8)):
            assert -1.0 <= result.pearson <= 1.0

    def test_sorted_by_correlation(self, runner):
        results = idle_detect_sweep(runner, values=(2, 5, 8))
        rs = [r.pearson for r in results]
        assert rs == sorted(rs, reverse=True)
