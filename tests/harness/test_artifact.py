"""Tests for the paper-artifact pipeline (``repro figures``)."""

import json
import math
from types import SimpleNamespace

import pytest

from repro.analysis import paper
from repro.harness import figures
from repro.harness.artifact import (
    FIGURES,
    HeadlineReference,
    collect_headlines,
    evaluate_headlines,
    figure_names,
    generate_artifact,
    headline_references,
    overall_verdict,
)
from repro.harness.experiment import ExperimentRunner, ExperimentSettings
from repro.harness.export import load_json_rows
from repro.isa.optypes import ExecUnitKind

from tests.conftest import TEST_SCALE

#: Every file each figure directory must contain.
FIGURE_FILES = ("data.csv", "data.json", "summary.md", "plot.py",
                "manifest.json")


class TestRegistry:
    def test_names_in_paper_order(self):
        assert figure_names() == (
            "fig1b", "fig3", "fig5a", "fig5b", "fig6", "fig8a", "fig8b",
            "fig8c", "fig9a", "fig9b", "fig10", "sec75")

    def test_only_sec75_is_closed_form(self):
        assert [name for name, spec in FIGURES.items()
                if not spec.simulates] == ["sec75"]

    def test_cli_builders_derive_from_registry(self):
        from repro.cli import FIGURE_BUILDERS
        assert set(FIGURE_BUILDERS) == set(FIGURES)
        for name, (headers, build) in FIGURE_BUILDERS.items():
            assert headers == FIGURES[name].headers
            assert build is FIGURES[name].build


class TestHeadlineReferences:
    def test_metrics_unique_and_complete(self):
        refs = headline_references()
        metrics = [ref.metric for ref in refs]
        assert len(metrics) == len(set(metrics))
        # 5+5+5 fig9/fig10, 3 fig8b, 2 fig8c, 9 fig3, 2 sec73, 4 sec75.
        assert len(metrics) == 35

    def test_every_group_has_a_tolerance_band(self):
        for ref in headline_references():
            assert ref.group in paper.TOLERANCES
            assert ref.tolerance is paper.TOLERANCES[ref.group]

    def test_ranges_only_for_sec73(self):
        for ref in headline_references():
            if ref.group == "sec73":
                assert ref.low < ref.high
            else:
                assert ref.low == ref.high


class TestEvaluateHeadlines:
    def _paper_perfect(self):
        return {ref.metric: (ref.low + ref.high) / 2
                for ref in headline_references()}

    def test_paper_values_all_pass(self):
        checks = evaluate_headlines(self._paper_perfect())
        assert len(checks) == 35
        assert all(c.verdict == "PASS" for c in checks)
        assert all(c.abs_error == 0.0 for c in checks)
        assert overall_verdict(checks) == "PASS"

    def test_perturbed_metric_flips_to_fail(self):
        # The negative test the golden digests can't give us: push one
        # constant past its fail band and the gate must trip.
        measured = self._paper_perfect()
        band = paper.TOLERANCES["fig9_int"]
        measured["fig9_int/warped_gates"] += band.fail + 0.01
        checks = evaluate_headlines(measured)
        by_metric = {c.metric: c for c in checks}
        assert by_metric["fig9_int/warped_gates"].verdict == "FAIL"
        assert overall_verdict(checks) == "FAIL"
        # Every other metric is untouched.
        others = [c for c in checks if c.metric != "fig9_int/warped_gates"]
        assert all(c.verdict == "PASS" for c in others)

    def test_warn_band_between_pass_and_fail(self):
        ref = HeadlineReference("m", "fig10", 0.99, 0.99, "test")
        band = paper.TOLERANCES["fig10"]
        for delta, expected in ((0.0, "PASS"),
                                (band.warn / 2, "PASS"),
                                ((band.warn + band.fail) / 2, "WARN"),
                                (band.fail * 2, "FAIL")):
            checks = evaluate_headlines({"m": 0.99 + delta},
                                        references=[ref])
            assert checks[0].verdict == expected, delta

    def test_inside_a_range_reference_is_zero_error(self):
        ref = HeadlineReference("m", "sec73", 0.0162, 0.0243, "test")
        checks = evaluate_headlines({"m": 0.020}, references=[ref])
        assert checks[0].abs_error == 0.0
        assert checks[0].verdict == "PASS"

    def test_nan_measurement_always_fails(self):
        ref = HeadlineReference("m", "fig10", 0.99, 0.99, "test")
        checks = evaluate_headlines({"m": math.nan}, references=[ref])
        assert checks[0].verdict == "FAIL"
        # to_dict keeps the document standard JSON: NaN becomes null.
        document = checks[0].to_dict()
        assert document["measured"] is None
        assert document["abs_error"] is None

    def test_missing_measurements_are_skipped(self):
        checks = evaluate_headlines({"fig10/warped_gates": 0.99})
        assert [c.metric for c in checks] == ["fig10/warped_gates"]

    def test_overall_verdict_precedence(self):
        def check(verdict):
            return SimpleNamespace(verdict=verdict)
        assert overall_verdict([]) == "FAIL"
        assert overall_verdict([check("PASS"), check("WARN")]) == "WARN"
        assert overall_verdict([check("WARN"), check("FAIL")]) == "FAIL"


class _StubResult:
    def __init__(self, frac: float) -> None:
        self._frac = frac

    def idle_fraction(self, kind) -> float:
        return self._frac


class _StubRunner:
    """Just enough runner surface for fig8a_rows: benchmarks plus
    idle fractions for baseline and every technique."""

    def __init__(self, idle) -> None:
        self._idle = idle
        self.settings = SimpleNamespace(benchmarks=tuple(idle))

    def baseline(self, name: str) -> _StubResult:
        return _StubResult(self._idle[name][0])

    def run(self, name: str, technique) -> _StubResult:
        return _StubResult(self._idle[name][1])


class TestFig8aZeroBaseline:
    """Regression test for the 1e-9 clamp bug: one benchmark whose
    baseline never idles used to drag the suite geomean down ~9 orders
    of magnitude; now it is excluded and visibly counted."""

    IDLE = {"a": (0.5, 0.4), "b": (0.25, 0.2), "c": (0.4, 0.1)}

    def test_geomean_finite_and_matches_dropped_benchmark(self):
        with_zero = dict(self.IDLE, zero=(0.0, 0.1))
        rows = figures.fig8a_rows(_StubRunner(with_zero),
                                  ExecUnitKind.INT)
        dropped = figures.fig8a_rows(_StubRunner(self.IDLE),
                                     ExecUnitKind.INT)
        assert rows[-1][0] == "geomean (1 excluded)"
        assert dropped[-1][0] == "geomean"
        for measured, reference in zip(rows[-1][1:], dropped[-1][1:]):
            assert math.isfinite(measured)
            assert measured == pytest.approx(reference, rel=0.01)

    def test_zero_baseline_cell_is_nan_not_zero(self):
        rows = figures.fig8a_rows(
            _StubRunner(dict(self.IDLE, zero=(0.0, 0.1))),
            ExecUnitKind.INT)
        zero_row = next(r for r in rows if r[0] == "zero")
        assert all(math.isnan(v) for v in zero_row[1:])


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One full artifact generation, shared across the golden tests."""
    settings = ExperimentSettings(scale=TEST_SCALE,
                                  benchmarks=("hotspot", "nw", "sgemm"))
    runner = ExperimentRunner(settings)
    out_dir = tmp_path_factory.mktemp("artifact") / "results"
    report = generate_artifact(runner, out_dir, check=True)
    return report, runner


class TestGeneratedArtifact:
    def test_every_figure_directory_complete(self, artifact):
        report, _ = artifact
        assert [a.name for a in report.figures] == list(figure_names())
        for name in figure_names():
            directory = report.out_dir / name
            for filename in FIGURE_FILES:
                assert (directory / filename).exists(), (name, filename)

    def test_index_and_headline_written(self, artifact):
        report, _ = artifact
        assert (report.out_dir / "index.md").exists()
        assert (report.out_dir / "headline.json").exists()
        index = (report.out_dir / "index.md").read_text()
        assert report.verdict in index
        for name in figure_names():
            assert f"{name}/summary.md" in index

    def test_headline_covers_every_reference_metric(self, artifact):
        report, _ = artifact
        document = json.loads(
            (report.out_dir / "headline.json").read_text())
        expected = {ref.metric for ref in headline_references()}
        checked = {c["metric"] for c in document["checks"]}
        assert checked == expected
        assert document["verdict"] == report.verdict
        assert all(c["verdict"] in ("PASS", "WARN", "FAIL")
                   for c in document["checks"])
        counts = document["counts"]
        assert sum(counts.values()) == len(document["checks"])

    def test_manifests_carry_provenance(self, artifact):
        report, runner = artifact
        for figure in report.figures:
            manifest = json.loads(
                (figure.directory / "manifest.json").read_text())
            assert manifest["figure"] == figure.name
            assert manifest["seed"] == runner.settings.seed
            assert manifest["scale"] == runner.settings.scale
            assert manifest["benchmarks"] == \
                list(runner.settings.benchmarks)
            assert manifest["run_id"] == report.run_id
            assert manifest["n_rows"] == len(figure.rows)
            if figure.name == "sec75":
                assert manifest["techniques"] == {}
            else:
                hashes = manifest["techniques"]
                assert "warped_gates" in hashes and "baseline" in hashes
                assert all(hashes.values())

    def test_data_json_round_trips(self, artifact):
        report, _ = artifact
        for figure in report.figures:
            records = load_json_rows(figure.directory / "data.json")
            assert len(records) == len(figure.rows)
            assert list(records[0]) == list(FIGURES[figure.name].headers)

    def test_plot_stub_is_valid_python(self, artifact):
        report, _ = artifact
        for figure in report.figures:
            source = (figure.directory / "plot.py").read_text()
            compile(source, f"{figure.name}/plot.py", "exec")

    def test_collect_headlines_matches_written_checks(self, artifact):
        report, _ = artifact
        measured = collect_headlines(
            {a.name: a.rows for a in report.figures})
        rechecked = evaluate_headlines(measured)
        assert [(c.metric, c.verdict) for c in rechecked] == \
            [(c.metric, c.verdict) for c in report.checks]

    def test_figure_subset_skips_unmeasured_references(self, artifact):
        # A sec75-only artifact measures only the four overhead rows;
        # those are closed-form reproductions of the paper's own
        # constants, so the subset verdict is a deterministic PASS.
        _, runner = artifact
        measured = collect_headlines(
            {"sec75": figures.sec75_rows()})
        checks = evaluate_headlines(measured)
        assert {c.metric for c in checks} == {
            "sec75/area_um2", "sec75/area_pct", "sec75/dynamic_pct",
            "sec75/leakage_pct"}
        assert overall_verdict(checks) == "PASS"
