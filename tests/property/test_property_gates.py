"""Property tests: the GATES issue-priority ordering."""

from hypothesis import given, settings, strategies as st

from repro.core.gates import GatesScheduler
from repro.isa.instructions import fp_op, int_op, load_op, sfu_op
from repro.isa.optypes import OpClass
from repro.sim.sched.base import IssueCandidate, SchedulerView

_BUILDERS = {
    OpClass.INT: lambda: int_op(dest=0),
    OpClass.FP: lambda: fp_op(dest=0),
    OpClass.SFU: lambda: sfu_op(dest=0),
    OpClass.LDST: lambda: load_op(dest=0, line_addr=0),
}

candidate_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.sampled_from(sorted(OpClass, key=lambda c: c.value)),
              st.booleans()),
    min_size=0, max_size=24, unique_by=lambda t: t[0])


def build_candidates(raw):
    return [IssueCandidate(slot=slot, age=slot,
                           inst=_BUILDERS[cls](), ready=ready)
            for slot, cls, ready in raw]


def build_view(candidates):
    view = SchedulerView()
    for candidate in candidates:
        view.actv_counts[candidate.op_class] += 1
        if candidate.ready:
            view.rdy_counts[candidate.op_class] += 1
    return view


@given(raw=candidate_lists, cycle=st.integers(min_value=0, max_value=100))
@settings(max_examples=200, deadline=None)
def test_order_is_a_permutation_of_ready_candidates(raw, cycle):
    sched = GatesScheduler(n_slots=16)
    candidates = build_candidates(raw)
    ordered = sched.order(cycle, candidates, build_view(candidates))
    ready = [c for c in candidates if c.ready]
    assert sorted(c.slot for c in ordered) == sorted(c.slot for c in ready)


@given(raw=candidate_lists)
@settings(max_examples=200, deadline=None)
def test_int_and_fp_always_at_opposite_ends(raw):
    """The ordering [hi, LDST, SFU, lo] never interleaves INT and FP."""
    sched = GatesScheduler(n_slots=16)
    candidates = build_candidates(raw)
    ordered = sched.order(0, candidates, build_view(candidates))
    classes = [c.op_class for c in ordered]
    if OpClass.INT in classes and OpClass.FP in classes:
        # Whichever CUDA-core type appears first, every one of its
        # instructions precedes every instruction of the other type.
        int_positions = [i for i, c in enumerate(classes)
                         if c is OpClass.INT]
        fp_positions = [i for i, c in enumerate(classes)
                        if c is OpClass.FP]
        assert (max(int_positions) < min(fp_positions)
                or max(fp_positions) < min(int_positions))


@given(raw=candidate_lists)
@settings(max_examples=200, deadline=None)
def test_ldst_precedes_sfu_within_the_middle(raw):
    sched = GatesScheduler(n_slots=16)
    candidates = build_candidates(raw)
    ordered = sched.order(0, candidates, build_view(candidates))
    classes = [c.op_class for c in ordered]
    if OpClass.LDST in classes and OpClass.SFU in classes:
        assert max(i for i, c in enumerate(classes)
                   if c is OpClass.LDST) < \
            min(i for i, c in enumerate(classes) if c is OpClass.SFU)


@given(raw=candidate_lists, steps=st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_priority_is_always_a_cuda_core_type(raw, steps):
    sched = GatesScheduler(n_slots=16)
    candidates = build_candidates(raw)
    view = build_view(candidates)
    for cycle in range(steps):
        sched.order(cycle, candidates, view)
        assert sched.highest_priority in (OpClass.INT, OpClass.FP)


@given(raw=candidate_lists)
@settings(max_examples=100, deadline=None)
def test_switch_only_when_high_subset_empty(raw):
    """With both ACTV counters non-zero, the priority must not move."""
    sched = GatesScheduler(n_slots=16)
    candidates = build_candidates(raw)
    view = build_view(candidates)
    if view.actv_counts[OpClass.INT] > 0 and \
            view.actv_counts[OpClass.FP] > 0:
        before = sched.highest_priority
        sched.order(0, candidates, view)
        assert sched.highest_priority is before
