"""Property tests: idle-period tracking and region analysis."""

from hypothesis import given, strategies as st

from repro.analysis.idle_periods import (
    histogram_series,
    mean_idle_length,
    region_fractions,
)
from repro.sim.stats import IdlePeriodTracker

busy_patterns = st.lists(st.booleans(), min_size=0, max_size=400)


@given(pattern=busy_patterns)
def test_histogram_mass_equals_idle_cycles(pattern):
    tracker = IdlePeriodTracker()
    for busy in pattern:
        tracker.observe(busy)
    tracker.finalize()
    assert tracker.recorded_idle_cycles() == tracker.idle_cycles
    assert tracker.busy_cycles + tracker.idle_cycles == len(pattern)


@given(pattern=busy_patterns)
def test_period_count_matches_transitions(pattern):
    tracker = IdlePeriodTracker()
    for busy in pattern:
        tracker.observe(busy)
    tracker.finalize()
    # Number of maximal idle runs computed independently.
    runs = 0
    previous_busy = True
    for busy in pattern:
        if not busy and previous_busy:
            runs += 1
        previous_busy = busy
    assert tracker.total_periods == runs


@given(pattern=busy_patterns,
       idle_detect=st.integers(min_value=0, max_value=10),
       bet=st.integers(min_value=1, max_value=30))
def test_region_fractions_partition(pattern, idle_detect, bet):
    tracker = IdlePeriodTracker()
    for busy in pattern:
        tracker.observe(busy)
    tracker.finalize()
    regions = region_fractions(tracker.histogram, idle_detect, bet)
    if tracker.total_periods:
        assert sum(regions.as_tuple()) == pytest_approx(1.0)
    else:
        assert regions.as_tuple() == (0.0, 0.0, 0.0)


@given(histogram=st.dictionaries(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=50), max_size=30),
    max_length=st.integers(min_value=1, max_value=60))
def test_series_preserves_total_frequency(histogram, max_length):
    series = histogram_series(histogram, max_length=max_length)
    total = sum(f for _, f in series)
    if histogram:
        assert abs(total - 1.0) < 1e-9
    assert len(series) == max_length


@given(histogram=st.dictionaries(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=50), min_size=1, max_size=30))
def test_mean_idle_length_within_bounds(histogram):
    mean = mean_idle_length(histogram)
    assert min(histogram) <= mean <= max(histogram)


def pytest_approx(x, tol=1e-9):
    class _Approx:
        def __eq__(self, other):
            return abs(other - x) < tol
    return _Approx()
