"""Property tests: the adaptive idle-detect controller."""

from hypothesis import given, settings, strategies as st

from repro.core.adaptive import AdaptiveConfig, AdaptiveIdleDetect
from repro.core.blackout import NaiveBlackoutPolicy
from repro.power.gating import GatingDomain
from repro.power.params import GatingParams

configs = st.builds(
    AdaptiveConfig,
    epoch_cycles=st.integers(min_value=10, max_value=200),
    threshold=st.integers(min_value=0, max_value=10),
    decay_epochs=st.integers(min_value=1, max_value=6),
    min_idle_detect=st.integers(min_value=0, max_value=5),
    max_idle_detect=st.integers(min_value=5, max_value=20))

#: Critical wakeups injected per epoch.
epoch_streams = st.lists(st.integers(min_value=0, max_value=40),
                         min_size=1, max_size=40)


def drive(config: AdaptiveConfig, epochs):
    """Run the controller through a synthetic critical-wakeup stream."""
    domains = [GatingDomain(f"D{i}", GatingParams(), NaiveBlackoutPolicy())
               for i in range(2)]
    controller = AdaptiveIdleDetect(domains, config)
    cycle = 0
    for criticals in epochs:
        domains[0].stats.critical_wakeups += criticals
        for _ in range(config.epoch_cycles):
            controller.on_cycle(cycle)
            cycle += 1
    return controller, domains


@given(config=configs, epochs=epoch_streams)
@settings(max_examples=200, deadline=None)
def test_window_always_within_bounds(config, epochs):
    controller, domains = drive(config, epochs)
    for _, _, window in controller.history:
        assert config.min_idle_detect <= window <= config.max_idle_detect
    for domain in domains:
        assert config.min_idle_detect <= domain.idle_detect \
            <= config.max_idle_detect


@given(config=configs, epochs=epoch_streams)
@settings(max_examples=200, deadline=None)
def test_one_epoch_closed_per_epoch(config, epochs):
    controller, _ = drive(config, epochs)
    assert len(controller.history) == len(epochs)
    assert [h[0] for h in controller.history] == list(range(len(epochs)))


@given(config=configs, epochs=epoch_streams)
@settings(max_examples=200, deadline=None)
def test_recorded_criticals_match_injection(config, epochs):
    controller, _ = drive(config, epochs)
    assert [h[1] for h in controller.history] == epochs


@given(config=configs, epochs=epoch_streams)
@settings(max_examples=200, deadline=None)
def test_window_moves_at_most_one_per_epoch(config, epochs):
    controller, _ = drive(config, epochs)
    previous = controller.history[0][2]
    for _, _, window in controller.history[1:]:
        assert abs(window - previous) <= 1
        previous = window


@given(config=configs, epochs=epoch_streams)
@settings(max_examples=200, deadline=None)
def test_all_domains_share_one_window(config, epochs):
    _, domains = drive(config, epochs)
    assert len({d.idle_detect for d in domains}) == 1


@given(config=configs)
@settings(max_examples=100, deadline=None)
def test_noisy_epochs_never_decrease_window(config):
    controller, _ = drive(config,
                          [config.threshold + 1] * 6)
    windows = [h[2] for h in controller.history]
    for earlier, later in zip(windows, windows[1:]):
        assert later >= earlier
