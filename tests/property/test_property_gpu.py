"""Property tests: kernel splitting invariants for the multi-SM device.

The work distributor is the one piece of the device layer that touches
every warp, so its invariants are pinned over arbitrary shapes: for any
warp count and any SM count, round-robin assignment must be a
*deterministic*, *warp-conserving* partition — no warp lost, none
duplicated, none reordered within its SM, and the same input always
yielding the same split (the device golden digests depend on it).
"""

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import int_op
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.gpu import split_kernel


def make_kernel(n_warps: int) -> KernelTrace:
    # Give warp i a trace of i+1 instructions: the instruction count
    # acts as a fingerprint that survives the splitter's warp_id
    # renumbering, so conservation checks can track each warp.
    warps = tuple(
        WarpTrace(i, tuple(int_op(j % 8) for j in range(i + 1)))
        for i in range(n_warps))
    return KernelTrace(name="k", warps=warps, max_resident_warps=48)


N_WARPS = st.integers(min_value=1, max_value=200)
N_SMS = st.integers(min_value=1, max_value=32)


@given(n_warps=N_WARPS, n_sms=N_SMS)
@settings(max_examples=60, deadline=None)
def test_split_conserves_warps(n_warps, n_sms):
    """Every warp lands in exactly one part, in round-robin order."""
    kernel = make_kernel(n_warps)
    parts = split_kernel(kernel, n_sms)
    assert sum(p.n_warps for p in parts) == n_warps
    assert sum(p.total_instructions for p in parts) \
        == kernel.total_instructions
    # Recover each original warp by its instruction-count fingerprint:
    # the multiset over all parts must be exactly {1, ..., n_warps}.
    fingerprints = sorted(len(w.instructions)
                          for p in parts for w in p.warps)
    assert fingerprints == list(range(1, n_warps + 1))


@given(n_warps=N_WARPS, n_sms=N_SMS)
@settings(max_examples=60, deadline=None)
def test_split_round_robin_assignment(n_warps, n_sms):
    """Warp i goes to SM ``i % n_sms``, keeping its launch order."""
    kernel = make_kernel(n_warps)
    parts = split_kernel(kernel, n_sms)
    by_sm = {int(p.name.rsplit("#sm", 1)[1]): p for p in parts}
    for sm_id, part in by_sm.items():
        expected = [i for i in range(n_warps) if i % n_sms == sm_id]
        assert [len(w.instructions) - 1 for w in part.warps] == expected
        # Local slots are renumbered densely from zero.
        assert [w.warp_id for w in part.warps] \
            == list(range(len(part.warps)))
    # Empty buckets are dropped, never padded.
    assert all(p.n_warps > 0 for p in parts)


@given(n_warps=N_WARPS, n_sms=N_SMS)
@settings(max_examples=60, deadline=None)
def test_split_is_deterministic(n_warps, n_sms):
    """Splitting the same kernel twice yields the identical partition."""
    kernel = make_kernel(n_warps)
    first = split_kernel(kernel, n_sms)
    second = split_kernel(kernel, n_sms)
    assert [p.name for p in first] == [p.name for p in second]
    for a, b in zip(first, second):
        assert [(w.warp_id, w.instructions) for w in a.warps] \
            == [(w.warp_id, w.instructions) for w in b.warps]
