"""Property tests: the power-gating state machine never mis-accounts.

A random but legal interaction sequence (idle/busy observations plus
wakeup requests) is replayed against a domain under each policy; the
bookkeeping invariants of the paper's controller must hold afterwards.
"""

from hypothesis import given, settings, strategies as st

from repro.core.blackout import NaiveBlackoutPolicy
from repro.power.gating import (
    ConventionalPolicy,
    DomainState,
    GatingDomain,
)
from repro.power.params import GatingParams

policies = st.sampled_from(["conventional", "naive_blackout"])
params_strategy = st.builds(
    GatingParams,
    idle_detect=st.integers(min_value=1, max_value=8),
    bet=st.integers(min_value=2, max_value=20),
    wakeup_delay=st.integers(min_value=0, max_value=5))
# Each event: (busy this cycle?, wakeup requested this cycle?)
event_lists = st.lists(st.tuples(st.booleans(), st.booleans()),
                       min_size=1, max_size=300)


def build_domain(policy_name: str, params: GatingParams) -> GatingDomain:
    policy = (ConventionalPolicy() if policy_name == "conventional"
              else NaiveBlackoutPolicy())
    return GatingDomain("X", params, policy)


def replay(domain: GatingDomain, events) -> int:
    """Drive the domain like the SM does; returns final cycle count."""
    cycle = 0
    for busy, wants_wakeup in events:
        # The SM only lets work into a powered domain.
        effective_busy = busy and domain.available_for_issue(cycle)
        if wants_wakeup and not effective_busy:
            domain.request_wakeup(cycle)
        domain.observe(cycle, effective_busy)
        cycle += 1
    domain.finalize(cycle)
    return cycle


@given(policy_name=policies, params=params_strategy, events=event_lists)
@settings(max_examples=150, deadline=None)
def test_cycle_accounting_closes(policy_name, params, events):
    domain = build_domain(policy_name, params)
    cycles = replay(domain, events)
    stats = domain.stats
    accounted = stats.on_cycles + stats.waking_cycles + stats.gated_cycles
    # A wakeup in flight at the end leaves < wakeup_delay cycles that
    # are neither ON nor gated.
    assert cycles - params.wakeup_delay <= accounted <= cycles


@given(policy_name=policies, params=params_strategy, events=event_lists)
@settings(max_examples=150, deadline=None)
def test_gated_cycles_split_exactly(policy_name, params, events):
    domain = build_domain(policy_name, params)
    replay(domain, events)
    stats = domain.stats
    assert stats.compensated_cycles + stats.uncompensated_cycles == \
        stats.gated_cycles
    assert stats.uncompensated_cycles <= \
        params.bet * max(1, stats.gating_events)


@given(params=params_strategy, events=event_lists)
@settings(max_examples=150, deadline=None)
def test_blackout_never_wakes_uncompensated(params, events):
    domain = build_domain("naive_blackout", params)
    replay(domain, events)
    assert domain.stats.wakeups_uncompensated == 0
    # Every completed (woken) window therefore contributed exactly BET
    # uncompensated cycles.
    if domain.stats.wakeups == domain.stats.gating_events:
        assert domain.stats.uncompensated_cycles == \
            params.bet * domain.stats.wakeups


@given(policy_name=policies, params=params_strategy, events=event_lists)
@settings(max_examples=150, deadline=None)
def test_wakeups_bounded_by_gating_events(policy_name, params, events):
    domain = build_domain(policy_name, params)
    replay(domain, events)
    assert domain.stats.wakeups <= domain.stats.gating_events


@given(params=params_strategy, events=event_lists)
@settings(max_examples=150, deadline=None)
def test_conventional_wakeup_always_granted_when_gated(params, events):
    domain = build_domain("conventional", params)
    replay(domain, events)
    assert domain.stats.denied_wakeups == 0


@given(policy_name=policies, params=params_strategy, events=event_lists)
@settings(max_examples=100, deadline=None)
def test_state_is_always_well_defined(policy_name, params, events):
    domain = build_domain(policy_name, params)
    cycle = 0
    for busy, wants_wakeup in events:
        state = domain.state(cycle)
        assert state in (DomainState.ON, DomainState.GATED,
                         DomainState.WAKING)
        if state is not DomainState.ON:
            assert not domain.available_for_issue(cycle)
        effective_busy = busy and domain.available_for_issue(cycle)
        if wants_wakeup and not effective_busy:
            domain.request_wakeup(cycle)
        domain.observe(cycle, effective_busy)
        cycle += 1
