"""Property tests: the L1 cache behaves like an LRU reference model."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.sim.memory import L1Cache

geometries = st.tuples(st.sampled_from([1, 2, 4, 8]),
                       st.integers(min_value=1, max_value=4))
addresses = st.lists(st.integers(min_value=0, max_value=63),
                     min_size=1, max_size=300)


class ReferenceLRU:
    """Straightforward per-set LRU model to check the cache against."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = sets
        self.ways = ways
        self.content = [OrderedDict() for _ in range(sets)]

    def lookup(self, line: int, allocate: bool) -> bool:
        cache_set = self.content[line % self.sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            return True
        if allocate:
            if len(cache_set) >= self.ways:
                cache_set.popitem(last=False)
            cache_set[line] = None
        return False


@given(geometry=geometries, stream=addresses, allocate_on_read=st.booleans())
@settings(max_examples=200, deadline=None)
def test_matches_reference_lru(geometry, stream, allocate_on_read):
    sets, ways = geometry
    cache = L1Cache(sets=sets, ways=ways)
    reference = ReferenceLRU(sets=sets, ways=ways)
    for line in stream:
        assert cache.lookup(line, allocate_on_read) == \
            reference.lookup(line, allocate_on_read)


@given(geometry=geometries, stream=addresses)
@settings(max_examples=100, deadline=None)
def test_capacity_never_exceeded(geometry, stream):
    sets, ways = geometry
    cache = L1Cache(sets=sets, ways=ways)
    for line in stream:
        cache.lookup(line, allocate=True)
    occupancy = sum(len(s) for s in cache._lines)
    assert occupancy <= sets * ways


@given(geometry=geometries, stream=addresses)
@settings(max_examples=100, deadline=None)
def test_working_set_within_one_set_hits_after_warmup(geometry, stream):
    sets, ways = geometry
    cache = L1Cache(sets=sets, ways=ways)
    # Restrict the stream to at most `ways` distinct lines of one set:
    # after each line is touched once, everything must hit.
    lines = [(line // sets) * sets for line in stream][:ways]
    for line in lines:
        cache.lookup(line, allocate=True)
    for line in lines:
        assert cache.lookup(line, allocate=False)
