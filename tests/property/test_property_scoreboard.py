"""Property tests: scoreboard dependence tracking."""

from hypothesis import given, strategies as st

from repro.isa.instructions import int_op, load_op
from repro.sim.scoreboard import Scoreboard

regs = st.integers(min_value=0, max_value=15)
cycles = st.integers(min_value=0, max_value=200)
latencies = st.integers(min_value=1, max_value=32)


@given(dest=regs, latency=latencies, issue=cycles)
def test_alu_producer_frees_exactly_at_latency(dest, latency, issue):
    sb = Scoreboard()
    sb.record_issue(int_op(dest=dest, latency=latency), cycle=issue)
    consumer = int_op(dest=(dest + 1) % 16, srcs=(dest,))
    assert not sb.is_ready(consumer, issue + latency - 1)
    assert sb.is_ready(consumer, issue + latency)


@given(st.lists(st.tuples(regs, latencies), min_size=1, max_size=20))
def test_release_never_leaves_stale_ready_producers(events):
    sb = Scoreboard()
    cycle = 0
    for dest, latency in events:
        sb.record_issue(int_op(dest=dest, latency=latency), cycle)
        cycle += 1
    horizon = cycle + 40
    sb.release_completed(horizon)
    assert sb.busy_registers() == ()


@given(dest=regs, ready=st.integers(min_value=1, max_value=500),
       threshold=st.integers(min_value=0, max_value=100))
def test_pending_classification_consistent_with_threshold(dest, ready,
                                                          threshold):
    sb = Scoreboard()
    sb.record_issue(load_op(dest=dest, line_addr=0), cycle=0)
    sb.resolve_memory(dest, ready_cycle=ready)
    consumer = int_op(dest=(dest + 1) % 16, srcs=(dest,))
    for cycle in range(0, ready + 2, max(1, ready // 7)):
        blocking = sb.blocking_memory(consumer, cycle, threshold)
        assert blocking == (ready - cycle > threshold)


@given(st.data())
def test_ready_is_monotonic_in_time(data):
    """Once ready (with no new issues), an instruction stays ready."""
    sb = Scoreboard()
    n = data.draw(st.integers(min_value=1, max_value=10))
    for i in range(n):
        dest = data.draw(regs)
        latency = data.draw(latencies)
        sb.record_issue(int_op(dest=dest, latency=latency), cycle=i)
    consumer = int_op(dest=0, srcs=(data.draw(regs),))
    became_ready_at = None
    for cycle in range(0, 60):
        if sb.is_ready(consumer, cycle):
            became_ready_at = cycle
            break
    assert became_ready_at is not None  # all latencies bounded
    for cycle in range(became_ready_at, became_ready_at + 10):
        assert sb.is_ready(consumer, cycle)
