"""Property tests: the trace generator honours its specification."""

from hypothesis import assume, given, settings, strategies as st

from repro.isa.optypes import ALL_OP_CLASSES, OpClass
from repro.isa.tracegen import REGS_PER_WARP, TraceSpec, generate_kernel


@st.composite
def trace_specs(draw):
    raw = [draw(st.floats(min_value=0.0, max_value=1.0))
           for _ in range(4)]
    assume(sum(raw) > 0.1)
    total = sum(raw)
    mix = {cls: raw[i] / total for i, cls in enumerate(ALL_OP_CLASSES)}
    return TraceSpec(
        name=draw(st.sampled_from(["a", "bench", "kernel-7"])),
        mix=mix,
        n_warps=draw(st.integers(min_value=1, max_value=8)),
        instructions_per_warp=draw(st.integers(min_value=1, max_value=80)),
        dep_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
        dep_distance_mean=draw(st.floats(min_value=1.0, max_value=8.0)),
        load_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        footprint_lines=draw(st.integers(min_value=1, max_value=512)),
        locality=draw(st.floats(min_value=0.0, max_value=1.0)),
        shared_fraction=draw(st.floats(min_value=0.0, max_value=1.0)))


@given(spec=trace_specs(), seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=100, deadline=None)
def test_generation_is_deterministic(spec, seed):
    a = generate_kernel(spec, seed=seed)
    b = generate_kernel(spec, seed=seed)
    for wa, wb in zip(a.warps, b.warps):
        assert tuple(wa.instructions) == tuple(wb.instructions)


@given(spec=trace_specs())
@settings(max_examples=100, deadline=None)
def test_every_instruction_is_well_formed(spec):
    kernel = generate_kernel(spec)
    for warp in kernel.warps:
        for inst in warp:
            assert inst.latency >= 1
            assert all(0 <= r < REGS_PER_WARP for r in inst.srcs)
            if inst.dest is not None:
                assert 0 <= inst.dest < REGS_PER_WARP
            if inst.is_mem:
                assert inst.op_class is OpClass.LDST
                assert 0 <= inst.line_addr < spec.footprint_lines
            if inst.is_load:
                assert inst.dest is not None
            if inst.is_store:
                assert inst.dest is None


@given(spec=trace_specs())
@settings(max_examples=60, deadline=None)
def test_zero_mix_classes_never_appear(spec):
    kernel = generate_kernel(spec)
    counts = kernel.op_class_counts()
    for cls in ALL_OP_CLASSES:
        if spec.mix[cls] == 0.0:
            assert counts[cls] == 0


@given(spec=trace_specs())
@settings(max_examples=60, deadline=None)
def test_kernel_dimensions(spec):
    kernel = generate_kernel(spec)
    assert kernel.n_warps == spec.n_warps
    assert kernel.total_instructions == \
        spec.n_warps * spec.instructions_per_warp
