"""Property tests: trace serialisation round-trips exactly."""

from hypothesis import given, settings, strategies as st

from repro.isa.optypes import ALL_OP_CLASSES
from repro.isa.trace import KernelTrace
from repro.isa.traceio import kernel_from_dict, kernel_to_dict
from repro.isa.tracegen import TraceSpec, generate_kernel


@st.composite
def random_specs(draw):
    raw = [draw(st.floats(min_value=0.01, max_value=1.0))
           for _ in range(4)]
    total = sum(raw)
    mix = {cls: raw[i] / total for i, cls in enumerate(ALL_OP_CLASSES)}
    return TraceSpec(
        name=draw(st.sampled_from(["k", "bench-x", "alpha_7"])),
        mix=mix,
        n_warps=draw(st.integers(min_value=1, max_value=6)),
        instructions_per_warp=draw(st.integers(min_value=1, max_value=60)),
        load_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        footprint_lines=draw(st.integers(min_value=1, max_value=128)),
        locality=draw(st.floats(min_value=0.0, max_value=1.0)),
        shared_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        branch_prob=draw(st.floats(min_value=0.0, max_value=0.4)))


@given(spec=random_specs(), seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=100, deadline=None)
def test_round_trip_preserves_every_instruction(spec, seed):
    kernel = generate_kernel(spec, seed=seed)
    restored = kernel_from_dict(kernel_to_dict(kernel))
    assert restored.name == kernel.name
    assert restored.max_resident_warps == kernel.max_resident_warps
    assert restored.n_warps == kernel.n_warps
    for a, b in zip(restored.warps, kernel.warps):
        assert a.warp_id == b.warp_id
        assert tuple(a.instructions) == tuple(b.instructions)


@given(spec=random_specs(), seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=50, deadline=None)
def test_serialised_form_is_json_safe(spec, seed):
    import json
    kernel = generate_kernel(spec, seed=seed)
    text = json.dumps(kernel_to_dict(kernel))
    restored = kernel_from_dict(json.loads(text))
    assert isinstance(restored, KernelTrace)
    assert restored.total_instructions == kernel.total_instructions
    assert restored.op_class_counts() == kernel.op_class_counts()
