"""Property tests: fetch engine and warp launchers."""

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import int_op
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.frontend import (
    FetchEngine,
    MultiKernelLauncher,
    WarpContext,
    WarpLauncher,
)


def make_kernel(name: str, lengths):
    warps = tuple(
        WarpTrace(i, tuple(int_op(dest=j % 8) for j in range(n)))
        for i, n in enumerate(lengths))
    return KernelTrace(name=name, warps=warps, max_resident_warps=48)


warp_lengths = st.lists(st.integers(min_value=1, max_value=12),
                        min_size=1, max_size=10)


@given(lengths=warp_lengths,
       fetch_width=st.integers(min_value=1, max_value=8),
       buffer_size=st.integers(min_value=1, max_value=4),
       n_slots=st.integers(min_value=1, max_value=10))
@settings(max_examples=150, deadline=None)
def test_fetch_delivers_every_instruction_exactly_once(
        lengths, fetch_width, buffer_size, n_slots):
    kernel = make_kernel("k", lengths)
    warps = [WarpContext(i) for i in range(n_slots)]
    launcher = WarpLauncher(kernel, max_resident=n_slots)
    fetch = FetchEngine(fetch_width, buffer_size)
    delivered = 0
    for _ in range(5000):
        # Consume buffered heads (simulating perfect issue) and recycle
        # finished warps.
        for warp in warps:
            while warp.ibuffer:
                warp.pop_head()
                delivered += 1
            if warp.occupied and warp.trace_exhausted:
                warp.release()
        launcher.launch_into(warps)
        fetched = fetch.tick(warps)
        if (launcher.remaining == 0 and fetched == 0
                and all(not w.ibuffer for w in warps)
                and all(not w.occupied or w.trace_exhausted
                        for w in warps)):
            for warp in warps:
                while warp.ibuffer:
                    warp.pop_head()
                    delivered += 1
            break
    assert delivered == kernel.total_instructions


@given(lengths=warp_lengths,
       fetch_width=st.integers(min_value=1, max_value=8),
       buffer_size=st.integers(min_value=1, max_value=4))
@settings(max_examples=100, deadline=None)
def test_buffers_never_exceed_capacity(lengths, fetch_width, buffer_size):
    kernel = make_kernel("k", lengths)
    warps = [WarpContext(i) for i in range(len(lengths))]
    WarpLauncher(kernel, max_resident=len(lengths)).launch_into(warps)
    fetch = FetchEngine(fetch_width, buffer_size)
    for _ in range(50):
        fetched = fetch.tick(warps)
        assert fetched <= fetch_width
        for warp in warps:
            assert len(warp.ibuffer) <= buffer_size


@given(groups=st.lists(warp_lengths, min_size=1, max_size=4),
       gap=st.integers(min_value=0, max_value=30))
@settings(max_examples=100, deadline=None)
def test_multikernel_launches_in_program_order(groups, gap):
    kernels = [make_kernel(f"k{i}", lengths)
               for i, lengths in enumerate(groups)]
    launcher = MultiKernelLauncher(kernels, max_resident=48,
                                   gap_cycles=gap)
    launched = []
    cycle = 0
    resident = 0
    for _ in range(5000):
        trace = launcher.pop_next(cycle, resident)
        if trace is not None:
            launched.append((launcher.current_kernel_index,
                             trace.warp_id))
            resident += 1
        else:
            # Model instant completion of everything resident.
            resident = 0
            cycle += 1
        if launcher.remaining == 0:
            break
    # Every warp of every kernel launched, kernels in order.
    expected = [(i, w.warp_id) for i, k in enumerate(kernels)
                for w in k.warps]
    assert launched == expected
