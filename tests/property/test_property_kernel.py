"""Property tests: the dense-step kernel is decision-identical.

Each example builds a random small workload, runs it serially, through
the forced dense kernel (``dense_kernel=True``) and through the
kernel's pure-Python seeding path, and requires the canonical result
form — every stats counter, gating counter, idle histogram, warp
record and flat metric — to match exactly.  The golden identity suite
pins the real benchmarks; this sweeps the odd corners random traces
reach (single warps, tiny traces, degenerate mixes, tiny MSHR files)
where window-resync and event-heap edge cases live.
"""

from hypothesis import given, settings, strategies as st

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ALL_OP_CLASSES
from repro.isa.tracegen import TraceSpec, generate_kernel
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.kernel import DenseStepKernel
from repro.sim.vectorize import numpy_available
from tests.sim.identity import canonical_result


@st.composite
def small_specs(draw):
    raw = [draw(st.floats(min_value=0.05, max_value=1.0))
           for _ in range(4)]
    total = sum(raw)
    mix = {cls: raw[i] / total for i, cls in enumerate(ALL_OP_CLASSES)}
    return TraceSpec(
        name="prop",
        mix=mix,
        n_warps=draw(st.integers(min_value=1, max_value=10)),
        instructions_per_warp=draw(st.integers(min_value=1, max_value=40)),
        max_resident_warps=draw(st.integers(min_value=1, max_value=10)),
        dep_prob=draw(st.floats(min_value=0.0, max_value=0.8)),
        load_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        footprint_lines=draw(st.integers(min_value=8, max_value=256)),
        locality=draw(st.floats(min_value=0.0, max_value=1.0)),
        shared_fraction=draw(st.floats(min_value=0.0, max_value=1.0)))


TECHNIQUES = st.sampled_from([
    Technique.BASELINE, Technique.CONV_PG, Technique.GATES,
    Technique.NAIVE_BLACKOUT, Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES, Technique.LRR_CONV_PG,
    Technique.CCWS_CONV_PG])

CONFIG = SMConfig(max_resident_warps=10, max_cycles=100_000,
                  memory=MemoryConfig(mshr_entries=4, dram_latency=120))


def run_one(spec, technique, seed, **kwargs):
    kernel = generate_kernel(spec, seed=seed)
    sm = build_sm(kernel, TechniqueConfig(technique), sm_config=CONFIG,
                  **kwargs)
    return sm.run()


def run_forced(spec, technique, seed, use_numpy):
    """Run entirely through a DenseStepKernel with explicit seeding.

    Drives the core directly (mirroring what ``run()`` does under
    ``dense_kernel=True``) so the ``use_numpy`` flavour can be forced
    regardless of what ``numpy_available()`` would choose.
    """
    sm = build_sm(generate_kernel(spec, seed=seed),
                  TechniqueConfig(technique), sm_config=CONFIG)
    sm._ran = True
    sm.scheduler.reset()
    sm._prepare()
    core = DenseStepKernel(sm, use_numpy=use_numpy)
    assert core.vectorized is use_numpy
    cycle = 0
    while not sm._drained():
        cycle = core.run_window(cycle, sm.config.max_cycles)
    return sm._collect(cycle)


@given(spec=small_specs(), technique=TECHNIQUES,
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=50, deadline=None)
def test_dense_kernel_equals_serial(spec, technique, seed):
    """Forced-kernel runs produce the identical canonical result."""
    serial = canonical_result(run_one(spec, technique, seed))
    forced = canonical_result(
        run_one(spec, technique, seed, dense_kernel=True))
    assert forced == serial


@given(spec=small_specs(), technique=TECHNIQUES,
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=25, deadline=None)
def test_scalar_seeding_equals_vectorized(spec, technique, seed):
    """Both window-seeding flavours decide identically to serial.

    ``DenseStepKernel(use_numpy=...)`` is normally chosen at
    construction from ``numpy_available()``; here each flavour is
    forced explicitly so the no-numpy install's behaviour is proven on
    every environment that runs the suite.
    """
    serial = canonical_result(run_one(spec, technique, seed))
    scalar = canonical_result(run_forced(spec, technique, seed,
                                         use_numpy=False))
    assert scalar == serial
    if numpy_available():
        vectorized = canonical_result(run_forced(spec, technique, seed,
                                                 use_numpy=True))
        assert vectorized == serial
