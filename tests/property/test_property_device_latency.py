"""Property tests: exact integer DRAM-latency inflation.

``MemorySideConfig.effective_dram_latency`` is the one cross-SM
coupling in the device model, and the full-GPU golden digests depend on
its exact values.  Three invariants are pinned over arbitrary
configurations: neutrality for a lone SM (the single-SM digests),
monotonicity in the number of active SMs, and exactness — the integer
path must equal the floor of the true rational ``base * (1 + alpha *
(n - 1) / partitions)``, which the float path it replaced missed by one
cycle whenever binary rounding landed just below an integer (e.g. base
360 at 2 SMs: ``360 * 1.025 == 368.999...`` truncated to 368, not 369).
"""

import math
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.core.device import MemorySideConfig

BASES = st.integers(min_value=1, max_value=5000)
N_SMS = st.integers(min_value=1, max_value=64)
PARTITIONS = st.integers(min_value=1, max_value=12)
#: Alphas as short decimals — the repr-faithful reading the
#: implementation documents (0.15 is read as 3/20).
ALPHAS = st.integers(min_value=0, max_value=1000).map(
    lambda thousandths: thousandths / 1000)


@given(base=BASES, n_partitions=PARTITIONS, alpha=ALPHAS)
@settings(max_examples=80, deadline=None)
def test_single_sm_is_neutral(base, n_partitions, alpha):
    """One active SM sees exactly the base latency, whatever the
    contention parameters — the single-SM golden digests rely on it."""
    ms = MemorySideConfig(n_partitions=n_partitions, queue_alpha=alpha)
    assert ms.effective_dram_latency(base, 1) == base


@given(base=BASES, n_partitions=PARTITIONS, alpha=ALPHAS)
@settings(max_examples=80, deadline=None)
def test_monotonic_in_active_sms(base, n_partitions, alpha):
    ms = MemorySideConfig(n_partitions=n_partitions, queue_alpha=alpha)
    latencies = [ms.effective_dram_latency(base, n)
                 for n in range(1, 33)]
    assert latencies == sorted(latencies)
    if alpha > 0:
        assert latencies[-1] > latencies[0] or \
            Fraction(str(alpha)) * 31 < n_partitions


@given(base=BASES, n_active_sms=N_SMS, n_partitions=PARTITIONS,
       alpha=ALPHAS)
@settings(max_examples=120, deadline=None)
def test_exact_floor_of_rational_reference(base, n_active_sms,
                                           n_partitions, alpha):
    """The integer path equals floor(base * (1 + a*(n-1)/p)) computed
    in exact rational arithmetic — no binary-rounding truncation."""
    ms = MemorySideConfig(n_partitions=n_partitions, queue_alpha=alpha)
    factor = 1 + Fraction(str(alpha)) * (n_active_sms - 1) / n_partitions
    expected = math.floor(base * factor)
    assert ms.effective_dram_latency(base, n_active_sms) == expected
