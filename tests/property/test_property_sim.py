"""Property tests: full-SM invariants over random small workloads.

Each example builds a random workload, runs it under a random technique,
and checks the conservation laws the simulator must satisfy regardless
of scheduling or gating policy.
"""

from hypothesis import given, settings, strategies as st

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ALL_OP_CLASSES
from repro.isa.tracegen import TraceSpec, generate_kernel
from repro.sim.config import MemoryConfig, SMConfig


@st.composite
def small_specs(draw):
    raw = [draw(st.floats(min_value=0.05, max_value=1.0))
           for _ in range(4)]
    total = sum(raw)
    mix = {cls: raw[i] / total for i, cls in enumerate(ALL_OP_CLASSES)}
    return TraceSpec(
        name="prop",
        mix=mix,
        n_warps=draw(st.integers(min_value=1, max_value=10)),
        instructions_per_warp=draw(st.integers(min_value=1, max_value=40)),
        max_resident_warps=draw(st.integers(min_value=1, max_value=10)),
        dep_prob=draw(st.floats(min_value=0.0, max_value=0.8)),
        load_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        footprint_lines=draw(st.integers(min_value=8, max_value=256)),
        locality=draw(st.floats(min_value=0.0, max_value=1.0)),
        shared_fraction=draw(st.floats(min_value=0.0, max_value=1.0)))


TECHNIQUES = st.sampled_from([
    Technique.BASELINE, Technique.CONV_PG, Technique.GATES,
    Technique.NAIVE_BLACKOUT, Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES])

CONFIG = SMConfig(max_resident_warps=10, max_cycles=100_000,
                  memory=MemoryConfig(mshr_entries=4, dram_latency=120))


def run_random(spec, technique, seed):
    kernel = generate_kernel(spec, seed=seed)
    sm = build_sm(kernel, TechniqueConfig(technique), sm_config=CONFIG)
    return kernel, sm.run()


@given(spec=small_specs(), technique=TECHNIQUES,
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=60, deadline=None)
def test_every_instruction_issues_and_retires(spec, technique, seed):
    kernel, result = run_random(spec, technique, seed)
    assert result.stats.instructions_issued == kernel.total_instructions
    assert result.stats.instructions_retired == kernel.total_instructions


@given(spec=small_specs(), technique=TECHNIQUES,
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=60, deadline=None)
def test_issue_counts_match_kernel_mix(spec, technique, seed):
    kernel, result = run_random(spec, technique, seed)
    assert result.stats.issued_by_class == kernel.op_class_counts()


@given(spec=small_specs(), technique=TECHNIQUES,
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=40, deadline=None)
def test_domain_and_tracker_invariants(spec, technique, seed):
    _, result = run_random(spec, technique, seed)
    for name, tracker in result.stats.idle_trackers.items():
        assert tracker.busy_cycles + tracker.idle_cycles == result.cycles
        assert tracker.recorded_idle_cycles() == tracker.idle_cycles
        stats = result.domain_stats.get(name)
        if stats is not None:
            assert stats.gated_cycles <= tracker.idle_cycles
            assert stats.compensated_cycles + \
                stats.uncompensated_cycles == stats.gated_cycles


@given(spec=small_specs(), seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=40, deadline=None)
def test_blackout_guarantee_holds_on_random_workloads(spec, seed):
    _, result = run_random(spec, Technique.NAIVE_BLACKOUT, seed)
    for stats in result.domain_stats.values():
        assert stats.wakeups_uncompensated == 0


@given(spec=small_specs(), technique=TECHNIQUES,
       seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_memory_requests_all_drain(spec, technique, seed):
    _, result = run_random(spec, technique, seed)
    # loads + stores == LDST issues; all accepted eventually.
    ldst_issues = result.pipeline_issues["LDST"]
    assert result.memory.loads + result.memory.stores == ldst_issues
