"""Property tests: memory-subsystem conservation laws."""

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import MemorySpace, load_op, store_op
from repro.sim.config import MemoryConfig
from repro.sim.memory import MemorySubsystem

# One access request: (delta cycles, warp slot, line, is_load, shared)
requests = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=63),
              st.booleans(),
              st.booleans()),
    min_size=1, max_size=120)

configs = st.builds(
    MemoryConfig,
    l1_sets=st.sampled_from([2, 4, 8]),
    l1_ways=st.integers(min_value=1, max_value=4),
    mshr_entries=st.integers(min_value=1, max_value=8),
    l1_hit_latency=st.integers(min_value=1, max_value=20),
    shared_latency=st.integers(min_value=1, max_value=10),
    dram_latency=st.integers(min_value=20, max_value=200),
    dram_jitter=st.floats(min_value=0.0, max_value=0.5))


def drive(config: MemoryConfig, stream):
    """Replay a request stream with retries, then drain completely."""
    mem = MemorySubsystem(config)
    cycle = 0
    expected_loads = 0
    deliveries = 0
    pending_retries = []
    for delta, slot, line, is_load, shared in stream:
        cycle += delta
        deliveries += len(mem.tick(cycle))
        # Retry anything the MSHR rejected earlier.
        still = []
        for inst_slot, inst in pending_retries:
            if mem.access(cycle, inst_slot, inst) is None:
                still.append((inst_slot, inst))
        pending_retries = still
        space = MemorySpace.SHARED if shared else MemorySpace.GLOBAL
        if is_load:
            inst = load_op(dest=1, line_addr=line, mem_space=space)
            expected_loads += 1
        else:
            inst = store_op(line_addr=line, srcs=(1,), mem_space=space)
        if mem.access(cycle, slot, inst) is None:
            pending_retries.append((slot, inst))
    # Drain: retries first, then deliveries.
    for _ in range(10_000):
        cycle += 1
        deliveries += len(mem.tick(cycle))
        still = []
        for slot, inst in pending_retries:
            if mem.access(cycle, slot, inst) is None:
                still.append((slot, inst))
        pending_retries = still
        if not pending_retries and mem.in_flight_requests() == 0:
            break
    return mem, deliveries, expected_loads


@given(config=configs, stream=requests)
@settings(max_examples=100, deadline=None)
def test_every_load_delivers_exactly_once(config, stream):
    mem, deliveries, expected_loads = drive(config, stream)
    assert deliveries == expected_loads
    assert mem.stats.loads == expected_loads


@given(config=configs, stream=requests)
@settings(max_examples=100, deadline=None)
def test_outcome_counters_partition_loads(config, stream):
    mem, _, _ = drive(config, stream)
    assert mem.stats.hits + mem.stats.misses + mem.stats.merged_misses \
        + mem.stats.shared_accesses == mem.stats.loads


@given(config=configs, stream=requests)
@settings(max_examples=100, deadline=None)
def test_mshrs_fully_released(config, stream):
    mem, _, _ = drive(config, stream)
    assert mem.outstanding_misses() == 0


@given(config=configs, stream=requests)
@settings(max_examples=100, deadline=None)
def test_mshr_occupancy_never_exceeds_capacity(config, stream):
    mem = MemorySubsystem(config)
    cycle = 0
    for delta, slot, line, is_load, shared in stream:
        cycle += delta
        mem.tick(cycle)
        space = MemorySpace.SHARED if shared else MemorySpace.GLOBAL
        inst = (load_op(dest=1, line_addr=line, mem_space=space)
                if is_load else
                store_op(line_addr=line, srcs=(1,), mem_space=space))
        mem.access(cycle, slot, inst)
        assert mem.outstanding_misses() <= config.mshr_entries
