"""Tests for operation classes and unit-kind mapping."""


from repro.isa.optypes import (
    ALL_OP_CLASSES,
    CUDA_CORE_CLASSES,
    UNIT_FOR_OP_CLASS,
    ExecUnitKind,
    OpClass,
)


class TestOpClass:
    def test_fits_in_two_bits(self):
        # GATES adds a two-bit type field per active-warp entry; the
        # encoding must actually fit.
        assert all(0 <= cls.value <= 3 for cls in OpClass)

    def test_values_unique(self):
        assert len({cls.value for cls in OpClass}) == len(OpClass)

    def test_short_names(self):
        assert OpClass.INT.short_name == "int"
        assert OpClass.FP.short_name == "fp"
        assert OpClass.SFU.short_name == "sfu"
        assert OpClass.LDST.short_name == "ldst"

    def test_all_op_classes_complete(self):
        assert set(ALL_OP_CLASSES) == set(OpClass)


class TestUnitMapping:
    def test_every_class_has_a_unit(self):
        assert set(UNIT_FOR_OP_CLASS) == set(OpClass)

    def test_cuda_core_classes(self):
        assert CUDA_CORE_CLASSES == (OpClass.INT, OpClass.FP)
        for cls in CUDA_CORE_CLASSES:
            assert UNIT_FOR_OP_CLASS[cls] in (ExecUnitKind.INT,
                                              ExecUnitKind.FP)

    def test_mapping_is_identity_on_names(self):
        for cls in OpClass:
            assert UNIT_FOR_OP_CLASS[cls].name == cls.name
