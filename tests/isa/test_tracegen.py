"""Tests for the synthetic trace generator."""

import pytest

from repro.isa.optypes import OpClass
from repro.isa.tracegen import REGS_PER_WARP, TraceSpec, generate_kernel


def spec(**overrides) -> TraceSpec:
    base = dict(
        name="t",
        mix={OpClass.INT: 0.5, OpClass.FP: 0.3,
             OpClass.SFU: 0.05, OpClass.LDST: 0.15},
        n_warps=8, instructions_per_warp=200)
    base.update(overrides)
    return TraceSpec(**base)


class TestSpecValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            spec(mix={OpClass.INT: 0.5, OpClass.FP: 0.2,
                      OpClass.SFU: 0.0, OpClass.LDST: 0.0})

    def test_negative_mix_rejected(self):
        with pytest.raises(ValueError):
            spec(mix={OpClass.INT: 1.2, OpClass.FP: -0.2,
                      OpClass.SFU: 0.0, OpClass.LDST: 0.0})

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            spec(n_warps=0)

    def test_probability_ranges(self):
        with pytest.raises(ValueError):
            spec(dep_prob=1.5)
        with pytest.raises(ValueError):
            spec(locality=-0.1)
        with pytest.raises(ValueError):
            spec(load_fraction=2.0)

    def test_footprint_positive(self):
        with pytest.raises(ValueError, match="footprint"):
            spec(footprint_lines=0)


class TestGeneration:
    def test_shape(self):
        kernel = generate_kernel(spec())
        assert kernel.n_warps == 8
        assert all(len(w) == 200 for w in kernel.warps)

    def test_determinism(self):
        a = generate_kernel(spec(), seed=7)
        b = generate_kernel(spec(), seed=7)
        for wa, wb in zip(a.warps, b.warps):
            assert tuple(wa.instructions) == tuple(wb.instructions)

    def test_seed_changes_trace(self):
        a = generate_kernel(spec(), seed=1)
        b = generate_kernel(spec(), seed=2)
        assert any(tuple(wa.instructions) != tuple(wb.instructions)
                   for wa, wb in zip(a.warps, b.warps))

    def test_mix_converges(self):
        kernel = generate_kernel(spec(n_warps=16,
                                      instructions_per_warp=500))
        mix = kernel.op_class_mix()
        assert mix[OpClass.INT] == pytest.approx(0.5, abs=0.05)
        assert mix[OpClass.FP] == pytest.approx(0.3, abs=0.05)
        assert mix[OpClass.LDST] == pytest.approx(0.15, abs=0.04)

    def test_zero_fp_mix_generates_no_fp(self):
        kernel = generate_kernel(spec(
            mix={OpClass.INT: 0.7, OpClass.FP: 0.0,
                 OpClass.SFU: 0.05, OpClass.LDST: 0.25}))
        assert kernel.op_class_counts()[OpClass.FP] == 0

    def test_registers_in_range(self):
        kernel = generate_kernel(spec())
        for warp in kernel.warps:
            for inst in warp:
                for reg in inst.srcs:
                    assert 0 <= reg < REGS_PER_WARP
                if inst.dest is not None:
                    assert 0 <= inst.dest < REGS_PER_WARP

    def test_memory_addresses_within_footprint(self):
        s = spec(footprint_lines=64)
        kernel = generate_kernel(s)
        for warp in kernel.warps:
            for inst in warp:
                if inst.is_mem:
                    assert 0 <= inst.line_addr < 64

    def test_load_store_split(self):
        s = spec(load_fraction=1.0,
                 mix={OpClass.INT: 0.2, OpClass.FP: 0.0,
                      OpClass.SFU: 0.0, OpClass.LDST: 0.8})
        kernel = generate_kernel(s)
        mem = [i for w in kernel.warps for i in w if i.is_mem]
        assert mem and all(i.is_load for i in mem)

    def test_latency_by_class_respected(self):
        s = spec(latency_by_class={OpClass.INT: 6, OpClass.FP: 8,
                                   OpClass.SFU: 20, OpClass.LDST: 3})
        kernel = generate_kernel(s)
        for warp in kernel.warps:
            for inst in warp:
                if inst.op_class is OpClass.INT:
                    assert inst.latency == 6
                elif inst.op_class is OpClass.FP:
                    assert inst.latency == 8

    def test_dependencies_reference_earlier_writes(self):
        # With dep_prob=1 every source either hits a prior destination
        # in the same warp or (before any dest exists) a random initial
        # register.
        s = spec(dep_prob=1.0, instructions_per_warp=50)
        kernel = generate_kernel(s)
        warp = kernel.warps[0]
        written = set()
        dependent_sources = 0
        for inst in warp:
            dependent_sources += sum(1 for r in inst.srcs if r in written)
            written.update(inst.registers_written())
        assert dependent_sources > 10  # plenty of real RAW edges
