"""Tests for kernel-trace serialisation."""

import json

import pytest

from repro.isa.instructions import (
    MemorySpace,
    fp_op,
    int_op,
    load_op,
    sfu_op,
    store_op,
)
from repro.isa.traceio import (
    FORMAT_VERSION,
    instruction_from_dict,
    instruction_to_dict,
    kernel_from_dict,
    kernel_to_dict,
    load_kernel,
    save_kernel,
)
from repro.workloads.registry import build_kernel


class TestInstructionRoundTrip:
    @pytest.mark.parametrize("inst", [
        int_op(dest=3, srcs=(1, 2)),
        fp_op(dest=0, latency=8),
        sfu_op(dest=5, srcs=(4,)),
        load_op(dest=2, line_addr=77, srcs=(1,)),
        load_op(dest=2, line_addr=5, mem_space=MemorySpace.SHARED),
        store_op(line_addr=9, srcs=(3,)),
    ])
    def test_round_trip_exact(self, inst):
        assert instruction_from_dict(instruction_to_dict(inst)) == inst

    def test_divergent_lanes_preserved(self):
        from dataclasses import replace
        inst = replace(int_op(dest=0), active_lanes=7)
        assert instruction_from_dict(instruction_to_dict(inst)) == inst

    def test_default_lanes_omitted(self):
        record = instruction_to_dict(int_op(dest=0))
        assert "lanes" not in record

    def test_unknown_class_rejected(self):
        record = instruction_to_dict(int_op(dest=0))
        record["cls"] = "VECTOR"
        with pytest.raises(ValueError, match="unknown op class"):
            instruction_from_dict(record)

    def test_corrupt_memory_record_rejected(self):
        record = instruction_to_dict(load_op(dest=2, line_addr=1))
        del record["dest"]
        with pytest.raises(ValueError):
            instruction_from_dict(record)


class TestKernelRoundTrip:
    def test_file_round_trip(self, tmp_path, tiny_kernel):
        path = tmp_path / "kernel.json"
        save_kernel(tiny_kernel, path)
        loaded = load_kernel(path)
        assert loaded.name == tiny_kernel.name
        assert loaded.max_resident_warps == tiny_kernel.max_resident_warps
        for a, b in zip(loaded.warps, tiny_kernel.warps):
            assert a.warp_id == b.warp_id
            assert tuple(a.instructions) == tuple(b.instructions)

    def test_generated_benchmark_round_trips(self, tmp_path):
        kernel = build_kernel("MUM", scale=0.1)  # divergent + memory
        path = tmp_path / "mum.json"
        save_kernel(kernel, path)
        loaded = load_kernel(path)
        assert loaded.total_instructions == kernel.total_instructions
        assert loaded.op_class_counts() == kernel.op_class_counts()
        for a, b in zip(loaded.warps, kernel.warps):
            assert tuple(a.instructions) == tuple(b.instructions)

    def test_version_checked(self, tiny_kernel):
        document = kernel_to_dict(tiny_kernel)
        document["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            kernel_from_dict(document)

    def test_document_is_plain_json(self, tiny_kernel):
        text = json.dumps(kernel_to_dict(tiny_kernel))
        assert json.loads(text)["name"] == "tiny"

    def test_loaded_kernel_simulates_identically(self, tmp_path):
        from repro.core.techniques import (Technique, TechniqueConfig,
                                           build_sm)
        kernel = build_kernel("hotspot", scale=0.1)
        path = tmp_path / "h.json"
        save_kernel(kernel, path)
        loaded = load_kernel(path)
        r1 = build_sm(kernel,
                      TechniqueConfig(Technique.WARPED_GATES)).run()
        r2 = build_sm(loaded,
                      TechniqueConfig(Technique.WARPED_GATES)).run()
        assert r1.cycles == r2.cycles
        assert r1.pipeline_issues == r2.pipeline_issues
