"""Tests for warp/kernel trace containers."""

import pytest

from repro.isa.instructions import fp_op, int_op
from repro.isa.optypes import OpClass
from repro.isa.trace import KernelTrace, WarpTrace, concatenate_kernels


def make_warp(warp_id: int, n_int: int = 2, n_fp: int = 1) -> WarpTrace:
    insts = tuple(int_op(dest=i) for i in range(n_int)) + \
        tuple(fp_op(dest=i) for i in range(n_fp))
    return WarpTrace(warp_id=warp_id, instructions=insts)


class TestWarpTrace:
    def test_len_and_iteration(self):
        warp = make_warp(0, n_int=3, n_fp=2)
        assert len(warp) == 5
        assert [i.op_class for i in warp].count(OpClass.INT) == 3

    def test_indexing(self):
        warp = make_warp(0)
        assert warp[0].op_class is OpClass.INT
        assert warp[2].op_class is OpClass.FP

    def test_op_class_counts(self):
        counts = make_warp(0, n_int=2, n_fp=1).op_class_counts()
        assert counts[OpClass.INT] == 2
        assert counts[OpClass.FP] == 1
        assert counts[OpClass.LDST] == 0


class TestKernelTrace:
    def test_requires_warps(self):
        with pytest.raises(ValueError, match="at least one warp"):
            KernelTrace(name="empty", warps=())

    def test_unique_warp_ids(self):
        with pytest.raises(ValueError, match="unique"):
            KernelTrace(name="dup", warps=(make_warp(0), make_warp(0)))

    def test_resident_cap_positive(self):
        with pytest.raises(ValueError, match="max_resident_warps"):
            KernelTrace(name="bad", warps=(make_warp(0),),
                        max_resident_warps=0)

    def test_totals(self):
        kernel = KernelTrace(name="k",
                             warps=(make_warp(0), make_warp(1, n_int=1)))
        assert kernel.n_warps == 2
        assert kernel.total_instructions == 5

    def test_mix_sums_to_one(self):
        kernel = KernelTrace(name="k", warps=(make_warp(0), make_warp(1)))
        assert sum(kernel.op_class_mix().values()) == pytest.approx(1.0)

    def test_mix_values(self):
        kernel = KernelTrace(name="k", warps=(make_warp(0, 2, 2),))
        mix = kernel.op_class_mix()
        assert mix[OpClass.INT] == pytest.approx(0.5)
        assert mix[OpClass.FP] == pytest.approx(0.5)


class TestConcatenate:
    def test_renumbers_warps(self):
        k1 = KernelTrace(name="a", warps=(make_warp(0), make_warp(1)))
        k2 = KernelTrace(name="b", warps=(make_warp(0),))
        merged = concatenate_kernels("ab", [k1, k2])
        assert merged.n_warps == 3
        assert [w.warp_id for w in merged.warps] == [0, 1, 2]

    def test_takes_max_residency(self):
        k1 = KernelTrace(name="a", warps=(make_warp(0),),
                         max_resident_warps=8)
        k2 = KernelTrace(name="b", warps=(make_warp(0),),
                         max_resident_warps=32)
        assert concatenate_kernels("ab", [k1, k2]).max_resident_warps == 32
