"""Tests for the SIMT divergence model."""

import numpy as np
import pytest

from repro.isa.divergence import WARP_LANES, DivergenceModel
from repro.isa.optypes import OpClass
from repro.isa.tracegen import TraceSpec, generate_kernel


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestModelValidation:
    def test_branch_prob_range(self):
        with pytest.raises(ValueError):
            DivergenceModel(branch_prob=1.5)
        with pytest.raises(ValueError):
            DivergenceModel(branch_prob=-0.1)

    def test_region_length_and_depth(self):
        with pytest.raises(ValueError):
            DivergenceModel(0.1, mean_region_length=0.5)
        with pytest.raises(ValueError):
            DivergenceModel(0.1, max_depth=0)


class TestMaskSequences:
    def test_zero_branch_prob_full_mask_forever(self):
        model = DivergenceModel(branch_prob=0.0)
        generator = rng()
        for _ in range(200):
            assert model.step(generator) == WARP_LANES
        assert model.depth == 0

    def test_masks_always_valid(self):
        model = DivergenceModel(branch_prob=0.3)
        generator = rng(1)
        for _ in range(2000):
            lanes = model.step(generator)
            assert 1 <= lanes <= WARP_LANES

    def test_divergence_actually_happens(self):
        model = DivergenceModel(branch_prob=0.3)
        generator = rng(2)
        masks = [model.step(generator) for _ in range(500)]
        assert any(m < WARP_LANES for m in masks)

    def test_depth_bounded(self):
        model = DivergenceModel(branch_prob=1.0, max_depth=3)
        generator = rng(3)
        for _ in range(2000):
            model.step(generator)
            assert model.depth <= 3

    def test_reconvergence_restores_full_mask(self):
        # With a finite region length, the stack must eventually drain
        # once branching stops.
        model = DivergenceModel(branch_prob=1.0, mean_region_length=3.0,
                                max_depth=2)
        generator = rng(4)
        for _ in range(50):
            model.step(generator)
        model.branch_prob = 0.0  # stop creating regions
        for _ in range(10_000):
            if model.step(generator) == WARP_LANES and model.depth == 0:
                break
        assert model.depth == 0
        assert model.current_lanes() == WARP_LANES

    def test_split_preserves_lanes(self):
        # On a path switch, current+other lanes always partition the
        # parent mask: with one region, they sum to 32.
        model = DivergenceModel(branch_prob=1.0, max_depth=1)
        generator = rng(5)
        for _ in range(500):
            model.step(generator)
            if model.depth == 1:
                region = model._stack[0]
                assert region.lanes_current + region.lanes_other == \
                    WARP_LANES

    def test_reset(self):
        model = DivergenceModel(branch_prob=1.0)
        generator = rng(6)
        for _ in range(20):
            model.step(generator)
        model.reset()
        assert model.depth == 0
        assert model.current_lanes() == WARP_LANES


class TestTraceIntegration:
    def spec(self, branch_prob: float) -> TraceSpec:
        return TraceSpec(
            name="div",
            mix={OpClass.INT: 0.6, OpClass.FP: 0.2,
                 OpClass.SFU: 0.0, OpClass.LDST: 0.2},
            n_warps=4, instructions_per_warp=200,
            branch_prob=branch_prob)

    def test_no_divergence_by_default(self):
        kernel = generate_kernel(self.spec(0.0))
        for warp in kernel.warps:
            assert all(i.active_lanes == WARP_LANES for i in warp)

    def test_divergent_trace_has_partial_masks(self):
        kernel = generate_kernel(self.spec(0.2))
        lanes = [i.active_lanes for w in kernel.warps for i in w]
        assert min(lanes) < WARP_LANES
        assert all(1 <= l <= WARP_LANES for l in lanes)

    def test_divergence_is_deterministic(self):
        a = generate_kernel(self.spec(0.2), seed=9)
        b = generate_kernel(self.spec(0.2), seed=9)
        for wa, wb in zip(a.warps, b.warps):
            assert [i.active_lanes for i in wa] == \
                [i.active_lanes for i in wb]

    def test_lane_fraction_property(self):
        kernel = generate_kernel(self.spec(0.2))
        for warp in kernel.warps:
            for inst in warp:
                assert inst.lane_fraction == inst.active_lanes / 32.0
