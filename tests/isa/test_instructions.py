"""Tests for the static instruction record and its constructors."""

import pytest

from repro.isa.instructions import (
    Instruction,
    MemorySpace,
    fp_op,
    int_op,
    load_op,
    sfu_op,
    store_op,
)
from repro.isa.optypes import OpClass


class TestValidation:
    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError, match="latency"):
            Instruction(opcode="IADD", op_class=OpClass.INT, dest=0,
                        latency=0)

    def test_memory_requires_ldst_class(self):
        with pytest.raises(ValueError, match="LDST"):
            Instruction(opcode="LD", op_class=OpClass.INT, dest=0,
                        is_load=True)

    def test_load_requires_destination(self):
        with pytest.raises(ValueError, match="destination"):
            Instruction(opcode="LD", op_class=OpClass.LDST, dest=None,
                        is_load=True)

    def test_load_store_exclusive(self):
        with pytest.raises(ValueError, match="both"):
            Instruction(opcode="??", op_class=OpClass.LDST, dest=0,
                        is_load=True, is_store=True)

    def test_frozen(self):
        inst = int_op(dest=3)
        with pytest.raises(AttributeError):
            inst.dest = 4  # type: ignore[misc]


class TestRegisterSets:
    def test_alu_reads_and_writes(self):
        inst = int_op(dest=5, srcs=(1, 2))
        assert inst.registers_read() == (1, 2)
        assert inst.registers_written() == (5,)

    def test_store_writes_nothing(self):
        inst = store_op(line_addr=7, srcs=(3,))
        assert inst.registers_written() == ()
        assert inst.registers_read() == (3,)
        assert inst.is_mem and inst.is_store and not inst.is_load

    def test_load_is_memory(self):
        inst = load_op(dest=2, line_addr=9)
        assert inst.is_mem and inst.is_load and not inst.is_store
        assert inst.registers_written() == (2,)


class TestConstructors:
    def test_int_op_class(self):
        assert int_op(dest=0).op_class is OpClass.INT

    def test_fp_op_class(self):
        assert fp_op(dest=0).op_class is OpClass.FP

    def test_sfu_latency_default(self):
        inst = sfu_op(dest=0)
        assert inst.op_class is OpClass.SFU
        assert inst.latency == 16

    def test_default_alu_latency_matches_fermi(self):
        # The paper quotes GPGPU-Sim's 4-cycle add latency.
        assert int_op(dest=0).latency == 4
        assert fp_op(dest=0).latency == 4

    def test_shared_space(self):
        inst = load_op(dest=0, line_addr=1, mem_space=MemorySpace.SHARED)
        assert inst.mem_space is MemorySpace.SHARED

    def test_str_smoke(self):
        assert "IADD" in str(int_op(dest=1, srcs=(2,)))
