"""Tests for idle-period region analysis."""

import pytest

from repro.analysis.idle_periods import (
    histogram_series,
    mean_idle_length,
    region_fractions,
)


class TestRegionFractions:
    def test_basic_partition(self):
        # idle_detect=5, bet=14: regions are [1,5), [5,19), [19,inf).
        histogram = {2: 4, 4: 2, 5: 1, 10: 2, 18: 1, 19: 1, 50: 1}
        regions = region_fractions(histogram, idle_detect=5, bet=14)
        assert regions.total_periods == 12
        assert regions.wasted == pytest.approx(6 / 12)
        assert regions.loss == pytest.approx(4 / 12)
        assert regions.gain == pytest.approx(2 / 12)

    def test_fractions_sum_to_one(self):
        histogram = {i: i for i in range(1, 30)}
        regions = region_fractions(histogram)
        assert sum(regions.as_tuple()) == pytest.approx(1.0)

    def test_boundaries(self):
        # Exactly idle_detect falls into the loss region; exactly
        # idle_detect + bet into the gain region.
        regions = region_fractions({5: 1, 19: 1}, idle_detect=5, bet=14)
        assert regions.loss == pytest.approx(0.5)
        assert regions.gain == pytest.approx(0.5)

    def test_empty_histogram(self):
        regions = region_fractions({})
        assert regions.as_tuple() == (0.0, 0.0, 0.0)
        assert regions.total_periods == 0

    def test_zero_idle_detect(self):
        regions = region_fractions({1: 2, 20: 1}, idle_detect=0, bet=14)
        assert regions.wasted == 0.0
        assert regions.loss == pytest.approx(2 / 3)

    def test_malformed_histogram_rejected(self):
        with pytest.raises(ValueError):
            region_fractions({0: 3})
        with pytest.raises(ValueError):
            region_fractions({3: -1})
        with pytest.raises(ValueError):
            region_fractions({3: 1}, bet=0)


class TestHistogramSeries:
    def test_frequencies(self):
        series = dict(histogram_series({1: 5, 3: 5}, max_length=5))
        assert series[1] == pytest.approx(0.5)
        assert series[3] == pytest.approx(0.5)
        assert series[2] == 0.0

    def test_tail_folding(self):
        series = dict(histogram_series({1: 1, 30: 2, 99: 1},
                                       max_length=25))
        assert series[25] == pytest.approx(3 / 4)

    def test_empty(self):
        series = histogram_series({}, max_length=10)
        assert len(series) == 10
        assert all(f == 0.0 for _, f in series)

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_series({1: 1}, max_length=0)


class TestMeanIdleLength:
    def test_mean(self):
        assert mean_idle_length({2: 2, 6: 2}) == pytest.approx(4.0)

    def test_empty(self):
        assert mean_idle_length({}) == 0.0
