"""Tests for the occupancy recorder."""

import pytest

from repro.analysis.occupancy import BUSY, IDLE, OccupancyRecorder
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import int_op
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.config import MemoryConfig, SMConfig

CONFIG = SMConfig(max_resident_warps=4,
                  memory=MemoryConfig(dram_jitter=0.0))


def single_int_kernel(n: int = 3) -> KernelTrace:
    warps = (WarpTrace(0, tuple(int_op(dest=i % 8, srcs=((i - 1) % 8,))
                                for i in range(n))),)
    return KernelTrace(name="k", warps=warps, max_resident_warps=4)


def build(kernel):
    return build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                    sm_config=CONFIG)


class TestRecorder:
    def test_records_full_run(self):
        sm = build(single_int_kernel())
        recorder = OccupancyRecorder(sm)
        result = sm.run()
        for name, strip in recorder.strips().items():
            assert len(strip) == result.cycles

    def test_strip_matches_tracker_counts(self):
        sm = build(single_int_kernel())
        recorder = OccupancyRecorder(sm, names=("INT0",))
        result = sm.run()
        tracker = result.stats.idle_trackers["INT0"]
        assert recorder.busy_cycles("INT0") == tracker.busy_cycles
        assert recorder.strip("INT0").count(IDLE) == tracker.idle_cycles

    def test_longest_idle_run(self):
        sm = build(single_int_kernel())
        recorder = OccupancyRecorder(sm, names=("FP0",))
        sm.run()
        # No FP work at all: the whole run is one idle window.
        assert recorder.longest_idle_run("FP0") == \
            len(recorder.strip("FP0"))

    def test_unknown_pipeline_rejected(self):
        sm = build(single_int_kernel())
        with pytest.raises(KeyError, match="unknown pipelines"):
            OccupancyRecorder(sm, names=("NOPE",))

    def test_max_cycles_cap(self):
        sm = build(single_int_kernel(8))
        recorder = OccupancyRecorder(sm, names=("INT0",), max_cycles=5)
        sm.run()
        assert len(recorder.strip("INT0")) == 5
        assert recorder.truncated

    def test_to_text_layout(self):
        sm = build(single_int_kernel())
        recorder = OccupancyRecorder(sm, names=("INT0", "FP0"))
        sm.run()
        text = recorder.to_text()
        lines = text.splitlines()
        assert lines[0].startswith("cycle")
        assert any(line.startswith("INT0") for line in lines)
        assert BUSY in text and IDLE in text

    def test_validation(self):
        sm = build(single_int_kernel())
        with pytest.raises(ValueError):
            OccupancyRecorder(sm, max_cycles=0)
