"""Sanity checks on the paper-reference constants module."""

import pytest

from repro.analysis import paper
from repro.core.techniques import PAPER_TECHNIQUES


class TestInternalConsistency:
    def test_savings_cover_all_paper_techniques(self):
        names = {t.value for t in PAPER_TECHNIQUES}
        assert set(paper.FIG9_INT_SAVINGS) == names
        assert set(paper.FIG9_FP_SAVINGS) == names
        assert set(paper.FIG10_PERFORMANCE) == names

    def test_fp_savings_exceed_int_savings(self):
        for technique, int_saving in paper.FIG9_INT_SAVINGS.items():
            assert paper.FIG9_FP_SAVINGS[technique] > int_saving

    def test_savings_monotone_conv_to_warped(self):
        order = ["conv_pg", "gates", "naive_blackout", "coord_blackout",
                 "warped_gates"]
        for table in (paper.FIG9_INT_SAVINGS, paper.FIG9_FP_SAVINGS):
            values = [table[t] for t in order]
            assert values == sorted(values)

    def test_headline_matches_fig9(self):
        assert paper.HEADLINE.int_savings == \
            paper.FIG9_INT_SAVINGS["warped_gates"]
        assert paper.HEADLINE.fp_savings == \
            paper.FIG9_FP_SAVINGS["warped_gates"]

    def test_headline_ratio_is_consistent(self):
        ratio = paper.FIG9_INT_SAVINGS["warped_gates"] / \
            paper.FIG9_INT_SAVINGS["conv_pg"]
        assert ratio == pytest.approx(
            paper.HEADLINE.savings_ratio_vs_conventional, abs=0.1)

    def test_fig3_regions_sum_to_one(self):
        for regions in paper.FIG3_REGIONS.values():
            assert sum(regions) == pytest.approx(1.0, abs=0.001)

    def test_fig3_blackout_loss_region_empty(self):
        assert paper.FIG3_REGIONS["blackout"][1] == 0.0

    def test_chip_ranges_ordered(self):
        low33, high33 = paper.CHIP_SAVINGS_AT_33PCT
        low50, high50 = paper.CHIP_SAVINGS_AT_50PCT
        assert low33 < high33 and low50 < high50
        assert low50 > low33 and high50 > high33

    def test_defaults_match_our_gating_params(self):
        from repro.power.params import GatingParams
        params = GatingParams()
        assert params.idle_detect == paper.DEFAULT_IDLE_DETECT
        assert params.bet == paper.DEFAULT_BET
        assert params.wakeup_delay == paper.DEFAULT_WAKEUP
        assert params.bet in paper.BET_RANGE_EXPLORED

    def test_adaptive_defaults_match(self):
        from repro.core.adaptive import AdaptiveConfig
        config = AdaptiveConfig()
        assert config.epoch_cycles == paper.ADAPTIVE_EPOCH_CYCLES
        assert config.threshold == paper.ADAPTIVE_THRESHOLD
        assert (config.min_idle_detect, config.max_idle_detect) == \
            paper.ADAPTIVE_BOUNDS

    def test_suite_size_matches_workloads(self):
        from repro.workloads.specs import BENCHMARK_NAMES
        assert len(BENCHMARK_NAMES) == paper.N_BENCHMARKS


class TestTolerances:
    def test_bands_are_ordered(self):
        for group, band in paper.TOLERANCES.items():
            assert 0 <= band.warn <= band.fail, group

    def test_validation(self):
        with pytest.raises(ValueError, match="must not exceed"):
            paper.Tolerance(warn=0.2, fail=0.1)
        with pytest.raises(ValueError, match=">= 0"):
            paper.Tolerance(warn=-0.1, fail=0.1)

    def test_every_headline_group_is_covered(self):
        # Every artifact headline resolves to a band, and no band is
        # dead weight.
        from repro.harness.artifact import headline_references
        groups = {ref.group for ref in headline_references()}
        assert groups == set(paper.TOLERANCES)
