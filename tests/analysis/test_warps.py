"""Tests for warp-lifetime analysis and the SM's warp records."""

import pytest

from repro.analysis.warps import (
    lifetime_histogram,
    occupancy_tail_fraction,
    summarize_warps,
)
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.sim.sm import WarpRecord
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

from tests.conftest import SMALL_SM


@pytest.fixture(scope="module")
def hotspot_result():
    kernel = build_kernel("hotspot", scale=0.25)
    sm = build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                  sm_config=SMALL_SM,
                  dram_latency=get_profile("hotspot").dram_latency)
    return kernel, sm.run()


class TestWarpRecords:
    def test_every_launched_warp_recorded(self, hotspot_result):
        kernel, result = hotspot_result
        assert len(result.warp_records) == kernel.n_warps
        assert sorted(r.warp_id for r in result.warp_records) == \
            sorted(w.warp_id for w in kernel.warps)

    def test_instruction_counts_match_traces(self, hotspot_result):
        kernel, result = hotspot_result
        by_id = {w.warp_id: len(w) for w in kernel.warps}
        for record in result.warp_records:
            assert record.instructions == by_id[record.warp_id]

    def test_lifetimes_positive_and_within_run(self, hotspot_result):
        _, result = hotspot_result
        for record in result.warp_records:
            assert 0 <= record.launch_cycle < record.finish_cycle
            assert record.finish_cycle <= result.cycles
            assert record.lifetime > 0

    def test_records_deterministic(self):
        kernel = build_kernel("nw", scale=0.5)
        runs = []
        for _ in range(2):
            sm = build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                          sm_config=SMALL_SM)
            runs.append(sm.run().warp_records)
        assert runs[0] == runs[1]


class TestSummary:
    def test_summary_consistency(self, hotspot_result):
        _, result = hotspot_result
        summary = summarize_warps(result)
        assert summary.n_warps == len(result.warp_records)
        assert summary.min_lifetime <= summary.mean_lifetime \
            <= summary.max_lifetime
        assert summary.imbalance >= 1.0
        assert summary.drain_tail >= 0

    def test_empty_records_rejected(self, hotspot_result):
        from dataclasses import replace
        _, result = hotspot_result
        with pytest.raises(ValueError, match="no warps"):
            summarize_warps(replace(result, warp_records=()))

    def test_hand_built_records(self):
        from dataclasses import replace
        _, result = None, None
        records = (WarpRecord(0, 0, 100, 10),
                   WarpRecord(1, 0, 300, 10))
        from repro.sim.sm import SimResult
        from repro.sim.stats import SMStats
        from repro.sim.memory import MemoryStats
        result = SimResult(
            kernel_name="x", technique="baseline", cycles=300,
            stats=SMStats(), memory=MemoryStats(), domain_stats={},
            idle_detect_final={}, pipeline_issues={},
            pipeline_lane_work={}, pipelines_by_kind={},
            warp_records=records)
        summary = summarize_warps(result)
        assert summary.mean_lifetime == pytest.approx(200.0)
        assert summary.imbalance == pytest.approx(1.5)
        assert summary.drain_tail == 200


class TestHistogramAndTail:
    def test_histogram_buckets(self):
        records = (WarpRecord(0, 0, 50, 1), WarpRecord(1, 0, 60, 1),
                   WarpRecord(2, 0, 250, 1))
        rows = lifetime_histogram(records, bucket=100)
        assert rows[0][0] == 0 and rows[0][2] == 2
        assert rows[1][0] == 200 and rows[1][2] == 1

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            lifetime_histogram((), bucket=0)

    def test_tail_fraction_bounds(self, hotspot_result):
        _, result = hotspot_result
        tail = occupancy_tail_fraction(result)
        assert 0.0 <= tail <= 1.0

    def test_tail_fraction_tiny_kernel_is_one(self):
        kernel = build_kernel("nw", scale=0.1)
        sm = build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                      sm_config=SMALL_SM)
        result = sm.run()
        if len(result.warp_records) <= 4:
            assert occupancy_tail_fraction(result) == 1.0
