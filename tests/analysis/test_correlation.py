"""Tests for Pearson correlation (cross-checked against scipy)."""

import numpy as np
import pytest
import scipy.stats

from repro.analysis.correlation import (
    critical_wakeups_per_kilocycle,
    pearson_r,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_scipy_on_random_data(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            xs = rng.normal(size=20)
            ys = 0.4 * xs + rng.normal(scale=0.5, size=20)
            expected = scipy.stats.pearsonr(xs, ys).statistic
            assert pearson_r(list(xs), list(ys)) == \
                pytest.approx(expected, abs=1e-12)

    def test_degenerate_cases_return_zero(self):
        assert pearson_r([], []) == 0.0
        assert pearson_r([1.0], [2.0]) == 0.0
        assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0  # zero variance

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1, 2, 3])


class TestKilocycleMetric:
    def test_scaling(self):
        assert critical_wakeups_per_kilocycle(10, 2000) == \
            pytest.approx(5.0)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            critical_wakeups_per_kilocycle(1, 0)
