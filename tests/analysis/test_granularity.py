"""Tests for the gating-granularity analysis."""

import pytest

from repro.analysis.granularity import (
    gating_opportunity,
    granularity_comparison,
)
from repro.power.params import GatingParams

PARAMS = GatingParams(idle_detect=5, bet=14, wakeup_delay=3)


class TestGatingOpportunity:
    def test_short_periods_contribute_nothing(self):
        result = gating_opportunity({1: 10, 4: 10}, total_cycles=100,
                                    params=PARAMS)
        assert result.gating_events == 0
        assert result.gated_cycles == 0
        assert result.net_saved_cycles == 0.0
        assert result.idle_cycles == 50

    def test_loss_region_period_is_net_negative(self):
        # Length 10: gated 5 cycles, overhead worth 14 -> net -9.
        result = gating_opportunity({10: 1}, total_cycles=100,
                                    params=PARAMS)
        assert result.gating_events == 1
        assert result.gated_cycles == 5
        assert result.net_saved_cycles == pytest.approx(-9.0)

    def test_long_period_pays_off(self):
        # Length 50: gated 45, net 45 - 14 = 31.
        result = gating_opportunity({50: 2}, total_cycles=200,
                                    params=PARAMS)
        assert result.gated_cycles == 90
        assert result.net_saved_cycles == pytest.approx(62.0)
        assert result.savings_fraction == pytest.approx(0.31)

    def test_break_even_length_is_neutral(self):
        # Length idle_detect + bet = 19: gated 14 == overhead.
        result = gating_opportunity({19: 3}, total_cycles=100,
                                    params=PARAMS)
        assert result.net_saved_cycles == pytest.approx(0.0)

    def test_mixed_histogram_sums(self):
        result = gating_opportunity({3: 5, 10: 1, 50: 1},
                                    total_cycles=500, params=PARAMS)
        assert result.net_saved_cycles == pytest.approx(-9.0 + 31.0)
        assert result.idle_cycles == 15 + 10 + 50

    def test_validation(self):
        with pytest.raises(ValueError):
            gating_opportunity({0: 1}, total_cycles=10)
        with pytest.raises(ValueError):
            gating_opportunity({5: -1}, total_cycles=10)
        with pytest.raises(ValueError):
            gating_opportunity({}, total_cycles=-1)

    def test_empty_histogram(self):
        result = gating_opportunity({}, total_cycles=100)
        assert result.savings_fraction == 0.0
        assert result.idle_fraction == 0.0


class TestGranularityComparison:
    def test_unit_level_dominates_inside_busy_sm(self):
        # The paper's motivating case: units idle in long windows while
        # the SM as a whole never goes fully idle.
        sm_wide = {2: 20}                  # only idle slivers SM-wide
        unit = {40: 30}                    # long per-unit windows
        comparison = granularity_comparison(sm_wide, unit,
                                            total_cycles=2000,
                                            n_unit_domains=2,
                                            params=PARAMS)
        assert comparison["unit_level_savings"] > \
            comparison["sm_level_savings"]
        assert comparison["sm_level_savings"] == 0.0

    def test_fully_idle_sm_equalises(self):
        # If the whole SM idles in one huge window, SM-level gating is
        # as good per leakage unit as unit-level gating.
        histogram = {1000: 1}
        comparison = granularity_comparison(histogram, histogram,
                                            total_cycles=1000,
                                            n_unit_domains=1,
                                            params=PARAMS)
        assert comparison["sm_level_savings"] == pytest.approx(
            comparison["unit_level_savings"])

    def test_validation(self):
        with pytest.raises(ValueError):
            granularity_comparison({}, {}, total_cycles=10,
                                   n_unit_domains=0)


class TestOnSimulatorOutput:
    def test_sm_wide_tracker_collected(self, tiny_kernel,
                                       small_sm_config):
        from repro.core.techniques import (Technique, TechniqueConfig,
                                           build_sm)
        from repro.sim.sm import StreamingMultiprocessor
        sm = build_sm(tiny_kernel, TechniqueConfig(Technique.BASELINE),
                      sm_config=small_sm_config)
        result = sm.run()
        tracker = result.stats.idle_trackers[
            StreamingMultiprocessor.SM_WIDE_TRACKER]
        assert tracker.busy_cycles + tracker.idle_cycles == result.cycles

    def test_sm_wide_idleness_below_per_unit_idleness(self):
        # SM-wide idle requires EVERY pipeline idle, so its idle count
        # can never exceed any single pipeline's.
        from repro.core.techniques import (Technique, TechniqueConfig,
                                           build_sm)
        from repro.sim.sm import StreamingMultiprocessor
        from repro.workloads.registry import build_kernel
        kernel = build_kernel("hotspot", scale=0.25)
        sm = build_sm(kernel, TechniqueConfig(Technique.BASELINE))
        result = sm.run()
        sm_idle = result.stats.idle_trackers[
            StreamingMultiprocessor.SM_WIDE_TRACKER].idle_cycles
        for name in ("INT0", "INT1", "FP0", "FP1", "SFU", "LDST"):
            assert sm_idle <= result.stats.idle_trackers[name].idle_cycles
