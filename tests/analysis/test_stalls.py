"""Tests for the issue-stall breakdown analysis."""

import pytest

from repro.analysis.stalls import (
    STALL_FIELDS,
    STALL_HEADERS,
    stall_counts,
    stall_profile,
    stall_rows,
    stalls_per_kilocycle,
)
from repro.core.techniques import Technique, TechniqueConfig, run_benchmark

from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def runs():
    return {
        technique.value: run_benchmark(
            "hotspot", TechniqueConfig(technique), scale=TEST_SCALE)
        for technique in (Technique.BASELINE, Technique.CONV_PG,
                          Technique.NAIVE_BLACKOUT)
    }


class TestCounts:
    def test_counts_cover_all_fields(self, runs):
        counts = stall_counts(runs["baseline"])
        assert set(counts) == set(STALL_FIELDS)
        assert all(v >= 0 for v in counts.values())

    def test_baseline_has_no_gating_stalls(self, runs):
        counts = stall_counts(runs["baseline"])
        assert counts["unit_gated"] == 0
        assert counts["unit_waking"] == 0

    def test_blackout_produces_denials(self, runs):
        counts = stall_counts(runs["naive_blackout"])
        assert counts["unit_gated"] > 0

    def test_conventional_never_denied(self, runs):
        counts = stall_counts(runs["conv_pg"])
        assert counts["unit_gated"] == 0


class TestDerived:
    def test_profile_sums_to_one(self, runs):
        profile = stall_profile(runs["conv_pg"])
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_profile_of_stall_free_run(self):
        from repro.sim.sm import SimResult
        from repro.sim.stats import SMStats
        from repro.sim.memory import MemoryStats
        result = SimResult(
            kernel_name="x", technique="baseline", cycles=10,
            stats=SMStats(), memory=MemoryStats(), domain_stats={},
            idle_detect_final={}, pipeline_issues={},
            pipeline_lane_work={}, pipelines_by_kind={})
        assert sum(stall_profile(result).values()) == 0.0

    def test_per_kilocycle_scaling(self, runs):
        result = runs["baseline"]
        per_kcyc = stalls_per_kilocycle(result)
        counts = stall_counts(result)
        for field in STALL_FIELDS:
            assert per_kcyc[field] == pytest.approx(
                1000.0 * counts[field] / result.cycles)

    def test_rows_shape(self, runs):
        rows = stall_rows(runs)
        assert len(rows) == len(runs)
        assert all(len(r) == len(STALL_HEADERS) for r in rows)
