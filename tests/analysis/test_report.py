"""Tests for table rendering."""

import pytest

from repro.analysis.report import (
    format_fraction,
    format_mapping_table,
    format_table,
)


class TestFormatFraction:
    def test_positive(self):
        assert format_fraction(0.316) == "+31.6%"

    def test_negative(self):
        assert format_fraction(-0.052) == "-5.2%"

    def test_digits(self):
        assert format_fraction(0.12345, digits=2) == "+12.35%"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(("name", "value"),
                            [("a", 1.0), ("bb", 22.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.000" in text and "22.500" in text

    def test_title_rendering(self):
        text = format_table(("x",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_numeric_columns_right_aligned(self):
        text = format_table(("n",), [(1,), (100,)])
        rows = text.splitlines()[-2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_text_columns_left_aligned(self):
        text = format_table(("name",), [("a",), ("long",)])
        rows = text.splitlines()[-2:]
        assert rows[0].startswith("a")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        text = format_table(("a", "b"), [])
        assert "a" in text and "b" in text


class TestMappingTable:
    def test_round_trip(self):
        text = format_mapping_table("Summary", {"ipc": 1.5, "cycles": 10})
        assert "Summary" in text
        assert "ipc" in text and "1.500" in text
