"""Tests for the power timeline recorder."""

import pytest

from repro.analysis.timeline import TIMELINE_HEADERS, PowerTimeline
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

from tests.conftest import SMALL_SM


def run_with_timeline(technique=Technique.WARPED_GATES, epoch=100,
                      names=None):
    kernel = build_kernel("hotspot", scale=0.2)
    sm = build_sm(kernel, TechniqueConfig(technique), sm_config=SMALL_SM,
                  dram_latency=get_profile("hotspot").dram_latency)
    timeline = PowerTimeline(sm, epoch_cycles=epoch, names=names)
    result = sm.run()
    return timeline, result


class TestRecording:
    def test_epoch_cycle_accounting_closes(self):
        timeline, result = run_with_timeline()
        for name in timeline.domains():
            total = sum(s.cycles for s in timeline.samples(name))
            assert total == result.cycles

    def test_epoch_lengths(self):
        timeline, result = run_with_timeline(epoch=100)
        for name in timeline.domains():
            samples = timeline.samples(name)
            for sample in samples[:-1]:
                assert sample.cycles == 100
            assert 1 <= samples[-1].cycles <= 100
            assert [s.epoch for s in samples] == list(range(len(samples)))

    def test_issue_totals_match_pipeline_counts(self):
        timeline, result = run_with_timeline()
        for name in timeline.domains():
            total = sum(s.issues for s in timeline.samples(name))
            assert total == result.pipeline_issues[name]

    def test_gated_totals_match_domain_stats(self):
        timeline, result = run_with_timeline()
        for name, stats in result.domain_stats.items():
            recorded = sum(s.gated for s in timeline.samples(name))
            # finalize() books the trailing window at end-of-run; the
            # timeline saw those cycles live, so they match exactly.
            assert recorded == stats.gated_cycles

    def test_ungated_pipeline_never_gates(self):
        timeline, _ = run_with_timeline(names=("LDST",))
        assert all(s.gated == 0 and s.waking == 0
                   for s in timeline.samples("LDST"))

    def test_baseline_has_no_gated_cycles(self):
        timeline, _ = run_with_timeline(technique=Technique.BASELINE)
        for name in timeline.domains():
            assert all(s.gated == 0 for s in timeline.samples(name))


class TestDerived:
    def test_gated_fraction_bounds(self):
        timeline, _ = run_with_timeline()
        for name in timeline.domains():
            for fraction in timeline.gated_fraction_series(name):
                assert 0.0 <= fraction <= 1.0

    def test_leakage_fraction_complements_gated(self):
        timeline, _ = run_with_timeline()
        sample = timeline.samples("INT0")[0]
        assert sample.leakage_fraction() == pytest.approx(
            1.0 - sample.gated / sample.cycles)

    def test_rows_shape(self):
        timeline, _ = run_with_timeline(names=("INT0",))
        rows = timeline.to_rows("INT0")
        assert rows and len(rows[0]) == len(TIMELINE_HEADERS)


class TestValidation:
    def test_epoch_must_be_positive(self):
        kernel = build_kernel("hotspot", scale=0.1)
        sm = build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                      sm_config=SMALL_SM)
        with pytest.raises(ValueError):
            PowerTimeline(sm, epoch_cycles=0)

    def test_unknown_pipeline(self):
        kernel = build_kernel("hotspot", scale=0.1)
        sm = build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                      sm_config=SMALL_SM)
        with pytest.raises(KeyError):
            PowerTimeline(sm, names=("XYZ",))
