"""Golden-value regression tests.

These pin the exact outcomes of a few (benchmark, technique) runs at a
fixed seed and scale.  Unlike the invariant and shape tests, a failure
here does not necessarily mean a bug — it means simulator *semantics*
changed (issue order, latency accounting, gating timing, trace
generation).  If the change is intentional, re-record the constants
(the commented command below), regenerate the full-scale artifact
(`python -m repro figures`, written under `results/`) and update
EXPERIMENTS.md, which is calibrated against the same semantics.

Trace generation uses numpy's PCG64 generator, whose stream is stable
across numpy versions (NEP 19), so these values are portable.

Re-record with::

    python - <<'PY'
    from repro.core.techniques import Technique, TechniqueConfig, \
        run_benchmark
    for name in ("hotspot", "bfs", "nw"):
        for tech in (Technique.BASELINE, Technique.CONV_PG,
                     Technique.WARPED_GATES):
            r = run_benchmark(name, TechniqueConfig(tech), scale=0.25)
            gated = sum(s.gated_cycles for s in r.domain_stats.values())
            print(name, tech.value, r.cycles,
                  r.stats.instructions_retired, gated)
    PY
"""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, run_benchmark

#: (benchmark, technique) -> (cycles, instructions retired, total gated
#: cycles across domains), at seed 0 / scale 0.25.
GOLDEN = {
    ("hotspot", Technique.BASELINE): (1003, 384, 0),
    ("hotspot", Technique.CONV_PG): (997, 384, 2852),
    ("hotspot", Technique.WARPED_GATES): (894, 384, 2572),
    ("bfs", Technique.BASELINE): (2391, 336, 0),
    ("bfs", Technique.CONV_PG): (2439, 336, 8691),
    ("bfs", Technique.WARPED_GATES): (2623, 336, 9485),
    ("nw", Technique.BASELINE): (776, 48, 0),
    ("nw", Technique.CONV_PG): (699, 48, 2630),
    ("nw", Technique.WARPED_GATES): (682, 48, 2562),
}


@pytest.mark.parametrize("key", sorted(GOLDEN, key=str))
def test_golden_run(key):
    name, technique = key
    expected_cycles, expected_insts, expected_gated = GOLDEN[key]
    result = run_benchmark(name, TechniqueConfig(technique), scale=0.25)
    gated = sum(s.gated_cycles for s in result.domain_stats.values())
    assert (result.cycles, result.stats.instructions_retired, gated) == \
        (expected_cycles, expected_insts, expected_gated), (
            "simulator semantics changed; if intentional, re-record the "
            "golden constants and regenerate EXPERIMENTS.md")
