"""Analytic cross-validation: hand-computable workloads vs the simulator.

Each test constructs a workload whose cycle-level behaviour can be
worked out on paper, then checks the simulator's counters against the
closed-form numbers.  These pin the exact semantics of idle-detect,
break-even accounting and wakeup timing — a regression here means the
timing conventions in docs/architecture.md changed.
"""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import fp_op, int_op
from repro.isa.optypes import ExecUnitKind
from repro.isa.trace import KernelTrace, WarpTrace
from repro.power.params import GatingParams
from repro.sim.config import MemoryConfig, SMConfig

CONFIG = SMConfig(max_resident_warps=2, fetch_width=8,
                  memory=MemoryConfig(dram_jitter=0.0))
GATING = GatingParams(idle_detect=3, bet=6, wakeup_delay=2)


def run(kernel, technique, **kwargs):
    sm = build_sm(kernel, TechniqueConfig(technique, gating=GATING,
                                          **kwargs), sm_config=CONFIG)
    return sm.run()


def chain(op, n, latency=4):
    """n chained single-dest ops: issues exactly every `latency` cycles."""
    insts = [op(dest=0)]
    insts += [op(dest=(i % 8) + 1, srcs=((i - 1) % 8 + 1 if i else 0,))
              for i in range(1, n)]
    # Make it a strict chain: each reads the previous dest.
    insts = [op(dest=i % 8, srcs=(((i - 1) % 8),) if i else ())
             for i in range(n)]
    return insts


class TestPureComputeTiming:
    def test_dependent_chain_cycle_count(self):
        # 5 chained INT adds, latency 4: issue at 0,4,8,12,16; the last
        # drains at 20; the run ends during cycle 20 -> 21 cycles.
        kernel = KernelTrace(
            name="chain", warps=(WarpTrace(0, tuple(chain(int_op, 5))),),
            max_resident_warps=2)
        result = run(kernel, Technique.BASELINE)
        assert result.cycles == 21

    def test_int_unit_busy_cycles_exact(self):
        # The chain keeps INT0 busy for exactly 5 x 4 = 20 cycles.
        kernel = KernelTrace(
            name="chain", warps=(WarpTrace(0, tuple(chain(int_op, 5))),),
            max_resident_warps=2)
        result = run(kernel, Technique.BASELINE)
        assert result.stats.idle_trackers["INT0"].busy_cycles == 20


class TestConventionalGatingArithmetic:
    def test_single_idle_window_accounting(self):
        # Warp 0: one INT op (busy cycles 0-3), then warp 0's FP ops
        # keep the run alive while INT0 idles.  idle_detect=3: INT0 is
        # idle from cycle 4; counter hits 3 during cycle 6's update, so
        # the gate closes at cycle 7 and stays closed to the end.
        insts = tuple(chain(int_op, 1)) + tuple(
            fp_op(dest=(i % 8), srcs=((i - 1) % 8,) if i else ())
            for i in range(8))
        kernel = KernelTrace(name="k", warps=(WarpTrace(0, insts),),
                             max_resident_warps=2)
        result = run(kernel, Technique.CONV_PG)
        stats = result.domain_stats["INT0"]
        assert stats.gating_events == 1
        assert stats.wakeups == 0  # nothing ever wants INT0 again
        # Gated from cycle 7 until the final cycle.
        assert stats.gated_cycles == result.cycles - 7

    def test_wakeup_delay_costs_cycles(self):
        # INT op, long FP phase, then an INT op depending on the FP
        # chain.  TWO wakeups land on the critical path: FP0 gated
        # during the initial INT work (its first FP instruction must
        # wake it), and INT0 gated during the FP phase (the final INT
        # instruction must wake it).  Serialised, they cost exactly
        # 2 x wakeup_delay versus the no-gating run.
        insts = [int_op(dest=0)]
        insts += [fp_op(dest=(i % 4) + 1, srcs=((i - 1) % 4 + 1,)
                        if i else (0,)) for i in range(10)]
        insts += [int_op(dest=6, srcs=((9 % 4) + 1,))]
        kernel = KernelTrace(name="k",
                             warps=(WarpTrace(0, tuple(insts)),),
                             max_resident_warps=2)
        base = run(kernel, Technique.BASELINE)
        conv = run(kernel, Technique.CONV_PG)
        assert conv.cycles == base.cycles + 2 * GATING.wakeup_delay
        assert conv.domain_stats["INT0"].wakeups == 1
        assert conv.domain_stats["FP0"].wakeups == 1


class TestBlackoutArithmetic:
    def test_blackout_holds_exactly_bet(self):
        # FP0 gates while the opening INT op runs (it idles from cycle
        # 0; idle_detect=3 closes the gate at cycle 3).  Its first FP
        # instruction becomes ready at cycle 4 — deep inside the
        # blackout — so the wakeup is denied until gated_length == BET,
        # which makes it *critical* by definition.
        insts = [int_op(dest=0)]
        insts += [fp_op(dest=(i % 4) + 1, srcs=((i - 1) % 4 + 1,)
                        if i else (0,)) for i in range(3)]
        insts += [int_op(dest=6, srcs=(3,))]
        kernel = KernelTrace(name="k",
                             warps=(WarpTrace(0, tuple(insts)),),
                             max_resident_warps=2)
        result = run(kernel, Technique.NAIVE_BLACKOUT)
        fp0 = result.domain_stats["FP0"]
        assert fp0.wakeups == 1
        assert fp0.critical_wakeups == 1
        assert fp0.denied_wakeups > 0
        # Every woken blackout window contributes exactly BET
        # uncompensated cycles — on the INT cluster too, whose wakeup
        # (the trailing INT dependant) lands well past break-even.
        int0 = result.domain_stats["INT0"]
        assert int0.wakeups == 1
        assert int0.critical_wakeups == 0
        assert int0.uncompensated_cycles == GATING.bet

    def test_blackout_slower_than_conventional_here(self):
        insts = [int_op(dest=0)]
        insts += [fp_op(dest=(i % 4) + 1, srcs=((i - 1) % 4 + 1,)
                        if i else (0,)) for i in range(3)]
        insts += [int_op(dest=6, srcs=(3,))]
        kernel = KernelTrace(name="k",
                             warps=(WarpTrace(0, tuple(insts)),),
                             max_resident_warps=2)
        conv = run(kernel, Technique.CONV_PG)
        blackout = run(kernel, Technique.NAIVE_BLACKOUT)
        # Blackout forces the dependant to wait out the BET window.
        assert blackout.cycles > conv.cycles


class TestSavingsFormula:
    def test_fig9_metric_matches_counters(self):
        # For any run: savings == (gated - events*BET) / domain-cycles.
        from repro.power.energy import domain_energy
        from repro.power.params import EnergyParams
        insts = tuple(chain(int_op, 1)) + tuple(
            fp_op(dest=(i % 8), srcs=((i - 1) % 8,) if i else ())
            for i in range(8))
        kernel = KernelTrace(name="k", warps=(WarpTrace(0, insts),),
                             max_resident_warps=2)
        result = run(kernel, Technique.CONV_PG)
        activity = result.unit_activity(ExecUnitKind.INT)
        params = EnergyParams.for_unit(dyn_per_issue=2.0, bet=GATING.bet)
        expected = (activity.gated_cycles
                    - activity.gating_events * GATING.bet) / activity.cycles
        assert domain_energy(activity, params).static_savings == \
            pytest.approx(expected)
