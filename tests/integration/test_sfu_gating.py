"""SFU gating coverage (paper section 3).

The paper leaves SFUs to conventional power gating: "SFU instructions
are relatively rare and hence, conventional power gating scheme will be
sufficient to recover most of the wasted leakage energy in SFUs" (they
are 2.5% of execution-unit static power).  The `gate_sfu` flag enables
exactly that; these tests check it behaves as the paper expects.
"""


from repro.core.techniques import Technique, TechniqueConfig, run_benchmark
from repro.isa.optypes import ExecUnitKind

from tests.conftest import TEST_SCALE


def run(technique, gate_sfu, benchmark="hotspot", scale=TEST_SCALE):
    return run_benchmark(benchmark,
                         TechniqueConfig(technique, gate_sfu=gate_sfu),
                         scale=scale)


class TestSFUGating:
    def test_sfu_domain_attached_and_active(self):
        result = run(Technique.CONV_PG, gate_sfu=True)
        assert "SFU" in result.domain_stats
        # SFU instructions are rare -> the unit gates a lot.
        stats = result.domain_stats["SFU"]
        assert stats.gating_events > 0
        assert stats.gated_cycles > 0

    def test_sfu_not_gated_by_default(self):
        result = run(Technique.CONV_PG, gate_sfu=False)
        assert "SFU" not in result.domain_stats

    def test_sfu_recovers_most_leakage_conventionally(self):
        # The paper's claim: conventional gating is *sufficient* for
        # SFUs.  With long SFU idle stretches, most static energy is
        # recoverable without Blackout.
        result = run(Technique.CONV_PG, gate_sfu=True)
        activity = result.unit_activity(ExecUnitKind.SFU)
        bet = 14
        savings = (activity.gated_cycles
                   - activity.gating_events * bet) / activity.cycles
        sfu_busy = result.stats.idle_trackers["SFU"].busy_cycles
        idle_frac = 1.0 - sfu_busy / result.cycles
        # Most of the idle time converts to net savings.
        assert savings > 0.5 * idle_frac

    def test_sfu_gating_keeps_results_for_other_units(self):
        with_sfu = run(Technique.WARPED_GATES, gate_sfu=True)
        without = run(Technique.WARPED_GATES, gate_sfu=False)
        # CUDA-core gating statistics are driven by the same scheduler
        # stream; SFU gating may shift timing slightly but must not
        # change what work executed.
        assert with_sfu.stats.instructions_retired == \
            without.stats.instructions_retired
        assert with_sfu.stats.issued_by_class == \
            without.stats.issued_by_class

    def test_sfu_gating_small_performance_effect(self):
        base = run_benchmark("hotspot",
                             TechniqueConfig(Technique.BASELINE),
                             scale=TEST_SCALE)
        gated = run(Technique.CONV_PG, gate_sfu=True)
        assert base.cycles / gated.cycles > 0.9

    def test_blackout_never_applied_to_sfu(self):
        # Even under full Warped Gates, the SFU uses the conventional
        # policy (wakeups always granted).
        result = run(Technique.WARPED_GATES, gate_sfu=True)
        assert result.domain_stats["SFU"].denied_wakeups == 0
