"""Smoke tests: every example script runs end to end.

Examples are part of the public deliverable; these tests execute them
as subprocesses (tiny scale where supported) and check their headline
output appears.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert names >= {"quickstart.py", "figure4_walkthrough.py",
                     "characterize_workloads.py", "sensitivity_sweep.py",
                     "adaptive_dynamics.py", "multi_sm_device.py",
                     "custom_workload.py", "power_timeline.py",
                     "stall_analysis.py", "service_client.py"}


def test_quickstart():
    out = run_example("quickstart.py", "hotspot", "--scale", "0.25")
    assert "Warped Gates quickstart" in out
    assert "warped_gates" in out


def test_figure4_walkthrough():
    out = run_example("figure4_walkthrough.py")
    assert "Two-level scheduler" in out
    assert "GATES" in out
    assert "#" in out and "." in out


def test_characterize_workloads():
    out = run_example("characterize_workloads.py", "--scale", "0.15")
    assert "Figure 5a" in out
    assert "Figure 5b" in out
    assert "lavaMD" in out


def test_sensitivity_sweep():
    out = run_example("sensitivity_sweep.py", "--scale", "0.15",
                      "--benchmarks", "hotspot", "sgemm")
    assert "Figure 11a" in out
    assert "Figure 11b" in out


def test_adaptive_dynamics():
    out = run_example("adaptive_dynamics.py", "cutcp", "--scale", "0.5")
    assert "final idle-detect per domain" in out


def test_multi_sm_device():
    out = run_example("multi_sm_device.py", "srad", "--sms", "3",
                      "--scale", "0.2")
    assert "Device summary" in out
    assert "Per-SM breakdown" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "Custom FP-light workload" in out
    assert "handwritten kernel" in out


def test_power_timeline():
    out = run_example("power_timeline.py", "mri", "--scale", "0.25",
                      "--epoch", "200")
    assert "gated fraction per epoch" in out
    assert "FP0 epoch detail" in out


def test_stall_analysis():
    out = run_example("stall_analysis.py", "cutcp", "--scale", "0.2")
    assert "Stall events per kilocycle" in out
    assert "unit_gated" in out


def test_service_client():
    out = run_example("service_client.py", "bfs", "--scale", "0.1")
    assert "deduped=True" in out
    assert "digest parity with in-process run: OK" in out
