"""Documentation quality gates.

Every public module, class and function in the library must carry a
docstring (deliverable (e): doc comments on every public item), and the
repository-level documents must exist and reference each other
consistently.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
REPO = SRC.parents[1]

MODULES = sorted(SRC.rglob("*.py"))

#: Interface methods documented once on their base class / protocol
#: (WarpScheduler, GatingPolicy, CycleHook); implementations inherit the
#: contract and need not repeat it.
OVERRIDE_EXEMPT = {"order", "on_issue", "reset", "want_gate", "may_wake",
                   "on_cycle", "idle_cycles_until_gate", "idle_next_event",
                   "skip_idle_cycles"}


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_public_items_have_docstrings(path):
    tree = ast.parse(path.read_text())
    missing = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            if not ast.get_docstring(node):
                missing.append(node.name)
            if isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)) \
                            and not member.name.startswith("_") \
                            and member.name not in OVERRIDE_EXEMPT \
                            and not ast.get_docstring(member):
                        missing.append(f"{node.name}.{member.name}")
    assert not missing, (f"{path.relative_to(SRC)}: public items without "
                         f"docstrings: {missing}")


class TestRepositoryDocuments:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).exists(), f"missing {name}"
        for name in ("architecture.md", "power_model.md",
                     "scheduling.md", "workloads.md", "testing.md"):
            assert (REPO / "docs" / name).exists(), f"missing docs/{name}"

    def test_design_indexes_every_figure(self):
        text = (REPO / "DESIGN.md").read_text()
        for figure in ("Fig. 1b", "Fig. 3a", "Fig. 4", "Fig. 5a",
                       "Fig. 5b", "Fig. 6", "Fig. 8a", "Fig. 8b",
                       "Fig. 8c", "Fig. 9a", "Fig. 10", "Fig. 11a",
                       "Fig. 11b", "§7.5", "§7.3"):
            assert figure in text, f"DESIGN.md lost the {figure} index row"

    def test_experiments_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for section in ("Figure 1b", "Figure 3", "Figure 4", "Figure 5",
                        "Figure 6", "Figure 8", "Figure 10", "Figure 11",
                        "Section 7.3", "Section 7.5",
                        "Known deviations"):
            assert section in text, f"EXPERIMENTS.md lost {section}"

    def test_readme_points_at_the_benches(self):
        text = (REPO / "README.md").read_text()
        assert "pytest benchmarks/ --benchmark-only" in text
        assert "python -m repro" in text

    def test_every_bench_file_indexed_or_housekeeping(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            # Figure benches must be in the DESIGN index; housekeeping
            # benches (simulator/engine/core-loop speed) are exempt.
            if bench.name in ("bench_simulator_speed.py",
                              "bench_engine.py",
                              "bench_core.py"):
                continue
            assert bench.name in design, \
                f"{bench.name} missing from DESIGN.md's experiment index"
