"""End-to-end invariants that must hold for every technique."""

import pytest

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ExecUnitKind
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

from tests.conftest import SMALL_SM, TEST_SCALE

ALL_TECHNIQUES = list(Technique)


def run(technique: Technique, benchmark: str = "hotspot"):
    kernel = build_kernel(benchmark, scale=TEST_SCALE)
    sm = build_sm(kernel, TechniqueConfig(technique), sm_config=SMALL_SM,
                  dram_latency=get_profile(benchmark).dram_latency)
    return kernel, sm.run()


@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
class TestUniversalInvariants:
    def test_all_work_completes(self, technique):
        kernel, result = run(technique)
        assert result.stats.instructions_retired == \
            kernel.total_instructions
        assert result.stats.instructions_issued == \
            kernel.total_instructions

    def test_domain_cycle_accounting_closes(self, technique):
        _, result = run(technique)
        for name, stats in result.domain_stats.items():
            total = stats.on_cycles + stats.waking_cycles + \
                stats.gated_cycles
            # A wakeup in progress at end-of-run leaves up to
            # wakeup_delay cycles unaccounted.
            assert result.cycles - 3 <= total <= result.cycles

    def test_gated_split_matches_total(self, technique):
        _, result = run(technique)
        for stats in result.domain_stats.values():
            assert stats.compensated_cycles + stats.uncompensated_cycles \
                == stats.gated_cycles

    def test_wakeups_never_exceed_gating_events(self, technique):
        _, result = run(technique)
        for stats in result.domain_stats.values():
            assert stats.wakeups <= stats.gating_events

    def test_idle_accounting_per_pipeline(self, technique):
        _, result = run(technique)
        for tracker in result.stats.idle_trackers.values():
            assert tracker.busy_cycles + tracker.idle_cycles == \
                result.cycles
            assert tracker.recorded_idle_cycles() == tracker.idle_cycles

    def test_gated_cycles_bounded_by_idle_cycles(self, technique):
        # A domain can only be gated while its pipeline is idle.
        _, result = run(technique)
        for name, stats in result.domain_stats.items():
            tracker = result.stats.idle_trackers[name]
            assert stats.gated_cycles <= tracker.idle_cycles


BLACKOUT_TECHNIQUES = [Technique.NAIVE_BLACKOUT, Technique.COORD_BLACKOUT,
                       Technique.WARPED_GATES, Technique.BLACKOUT_NO_GATES]


@pytest.mark.parametrize("technique", BLACKOUT_TECHNIQUES)
class TestBlackoutInvariants:
    def test_no_uncompensated_wakeups(self, technique):
        # Blackout's defining guarantee: no window ends before BET.
        _, result = run(technique)
        for stats in result.domain_stats.values():
            assert stats.wakeups_uncompensated == 0

    def test_uncompensated_cycles_only_from_bet_window(self, technique):
        # Every woken window contributes exactly BET uncompensated
        # cycles; only the final (never-woken) window may contribute
        # fewer.
        _, result = run(technique)
        for stats in result.domain_stats.values():
            if stats.wakeups:
                assert stats.uncompensated_cycles >= 14 * stats.wakeups


class TestConventionalBehaviour:
    def test_conv_pg_can_wake_early(self):
        _, result = run(Technique.CONV_PG)
        total_uncomp = sum(s.wakeups_uncompensated
                           for s in result.domain_stats.values())
        # hotspot's fragmented idleness makes early wakeups common.
        assert total_uncomp > 0

    def test_conv_denied_wakeups_never_happen(self):
        _, result = run(Technique.CONV_PG)
        for stats in result.domain_stats.values():
            assert stats.denied_wakeups == 0


class TestCrossTechnique:
    def test_instructions_identical_across_techniques(self):
        counts = set()
        for technique in (Technique.BASELINE, Technique.CONV_PG,
                          Technique.WARPED_GATES):
            _, result = run(technique)
            counts.add(result.stats.instructions_retired)
        assert len(counts) == 1

    def test_baseline_fastest_or_close(self):
        _, base = run(Technique.BASELINE)
        for technique in (Technique.CONV_PG, Technique.NAIVE_BLACKOUT,
                          Technique.WARPED_GATES):
            _, result = run(technique)
            # Gating can cost cycles but must stay within a sane band.
            assert result.cycles <= base.cycles * 1.5

    def test_integer_only_benchmark_never_wakes_fp(self):
        kernel = build_kernel("lavaMD", scale=TEST_SCALE)
        sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                      sm_config=SMALL_SM)
        result = sm.run()
        fp = result.gating_totals(ExecUnitKind.FP)
        assert fp.wakeups == 0
        # Both FP clusters gate once and sleep through the whole run.
        assert fp.gating_events == 2
        assert result.unit_activity(ExecUnitKind.FP).issues == 0
