"""Shape assertions: the qualitative claims of the paper must hold.

These tests run a moderate-scale subset of the suite and assert the
*direction* of every headline result — who wins, and roughly how — not
absolute numbers (our substrate is a synthetic trace model, not the
authors' GPGPU-Sim testbed; see DESIGN.md section 2).
"""

import pytest

from repro.analysis.idle_periods import region_fractions
from repro.core.techniques import Technique
from repro.harness.experiment import (
    ExperimentRunner,
    ExperimentSettings,
    geomean,
    normalized_performance,
)
from repro.isa.optypes import ExecUnitKind

#: Mid-size scale: big enough for stable statistics, small enough for CI.
SHAPE_SCALE = 0.5
SHAPE_BENCHMARKS = ("hotspot", "sgemm", "mri", "bfs", "srad", "cutcp")


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(ExperimentSettings(
        scale=SHAPE_SCALE, benchmarks=SHAPE_BENCHMARKS))


@pytest.fixture(scope="module")
def full_scale_runner() -> ExperimentRunner:
    """Full-scale runs for the distribution tests that need the real
    idle statistics (small workloads change the idle-length regime)."""
    return ExperimentRunner(ExperimentSettings(
        scale=1.0, benchmarks=("hotspot", "sgemm", "cutcp")))


def mean_savings(runner, technique, kind):
    values = [runner.static_savings(name, technique, kind)
              for name in runner.settings.benchmarks]
    return sum(values) / len(values)


def perf_geomean(runner, technique):
    values = []
    for name in runner.settings.benchmarks:
        values.append(normalized_performance(
            runner.baseline(name), runner.run(name, technique)))
    return geomean(values)


class TestSavingsOrdering:
    """Figure 9's qualitative ordering across techniques."""

    def test_blackout_beats_conventional(self, runner):
        for kind in (ExecUnitKind.INT, ExecUnitKind.FP):
            conv = mean_savings(runner, Technique.CONV_PG, kind)
            naive = mean_savings(runner, Technique.NAIVE_BLACKOUT, kind)
            assert naive > conv

    def test_warped_gates_beats_conventional_clearly(self, runner):
        conv = mean_savings(runner, Technique.CONV_PG, ExecUnitKind.INT)
        warped = mean_savings(runner, Technique.WARPED_GATES,
                              ExecUnitKind.INT)
        assert warped > conv * 1.1
        # FP margin is thinner on this compute-heavy subset; require a
        # strict win (the full suite shows ~1.2x, see EXPERIMENTS.md).
        conv_fp = mean_savings(runner, Technique.CONV_PG, ExecUnitKind.FP)
        warped_fp = mean_savings(runner, Technique.WARPED_GATES,
                                 ExecUnitKind.FP)
        assert warped_fp > conv_fp

    def test_fp_savings_exceed_int_savings(self, runner):
        # FP units are less utilised, so more of their time is gateable
        # (the paper reports 46.5% FP vs 31.6% INT for Warped Gates).
        warped_int = mean_savings(runner, Technique.WARPED_GATES,
                                  ExecUnitKind.INT)
        warped_fp = mean_savings(runner, Technique.WARPED_GATES,
                                 ExecUnitKind.FP)
        assert warped_fp > warped_int

    def test_all_gating_techniques_net_positive_on_suite(self, runner):
        for technique in (Technique.CONV_PG, Technique.GATES,
                          Technique.NAIVE_BLACKOUT,
                          Technique.COORD_BLACKOUT,
                          Technique.WARPED_GATES):
            assert mean_savings(runner, technique, ExecUnitKind.INT) > 0


class TestPerformanceOrdering:
    """Figure 10's qualitative ordering."""

    def test_naive_blackout_is_worst(self, runner):
        naive = perf_geomean(runner, Technique.NAIVE_BLACKOUT)
        warped = perf_geomean(runner, Technique.WARPED_GATES)
        assert warped >= naive

    def test_all_techniques_within_reasonable_band(self, runner):
        for technique in (Technique.CONV_PG, Technique.GATES,
                          Technique.NAIVE_BLACKOUT,
                          Technique.COORD_BLACKOUT,
                          Technique.WARPED_GATES):
            perf = perf_geomean(runner, technique)
            assert perf > 0.9, f"{technique.value} lost >10% performance"

    def test_conv_pg_near_baseline(self, runner):
        # Scaled-down workloads exaggerate per-wakeup costs; the full
        # 18-benchmark suite measures ~0.99 (EXPERIMENTS.md).
        assert perf_geomean(runner, Technique.CONV_PG) > 0.94


class TestIdleDistributionShape:
    """Figure 3's distribution shifts (full-scale hotspot, as the paper)."""

    def test_baseline_dominated_by_short_periods(self, full_scale_runner):
        result = full_scale_runner.run("hotspot", Technique.CONV_PG)
        regions = region_fractions(result.idle_histogram(ExecUnitKind.INT))
        # Paper: 83.4% below idle-detect for hotspot; we measure ~0.83.
        assert regions.wasted > 0.7

    def test_gates_grows_the_gain_region(self, full_scale_runner):
        conv = region_fractions(
            full_scale_runner.run("hotspot", Technique.CONV_PG)
            .idle_histogram(ExecUnitKind.INT))
        gates = region_fractions(
            full_scale_runner.run("hotspot", Technique.GATES)
            .idle_histogram(ExecUnitKind.INT))
        assert gates.gain > conv.gain
        assert gates.wasted < conv.wasted

    def test_blackout_empties_loss_region(self, full_scale_runner):
        result = full_scale_runner.run("hotspot",
                                       Technique.NAIVE_BLACKOUT)
        regions = region_fractions(result.idle_histogram(ExecUnitKind.INT))
        assert regions.loss == pytest.approx(0.0)
        assert regions.gain > 0.2


class TestWakeupReduction:
    """Figure 8c: Warped Gates gates less often than conventional PG."""

    def test_warped_gates_fewer_events_than_conv(self, full_scale_runner):
        ratios = []
        for name in full_scale_runner.settings.benchmarks:
            conv = full_scale_runner.run(name, Technique.CONV_PG) \
                .gating_totals(ExecUnitKind.INT).gating_events
            warped = full_scale_runner.run(name, Technique.WARPED_GATES) \
                .gating_totals(ExecUnitKind.INT).gating_events
            if conv:
                ratios.append(warped / conv)
        # Paper reports a 46% reduction; we measure ~15-50% depending on
        # benchmark, and require a clear net reduction here.
        assert sum(ratios) / len(ratios) < 0.9


class TestAdaptiveBehaviour:
    """Section 5.1: the adaptive window stays within bounds and reacts."""

    def test_final_idle_detect_bounded(self, runner):
        for name in runner.settings.benchmarks:
            result = runner.run(name, Technique.WARPED_GATES)
            for value in result.idle_detect_final.values():
                assert 5 <= value <= 10

    def test_adaptive_reduces_critical_wakeups(self, runner):
        # Versus plain Coordinated Blackout, adapting the window must
        # not increase critical wakeups on the pressured benchmarks.
        worse = 0
        for name in runner.settings.benchmarks:
            coord = runner.run(name, Technique.COORD_BLACKOUT)
            warped = runner.run(name, Technique.WARPED_GATES)
            c = coord.gating_totals(ExecUnitKind.INT).critical_wakeups
            w = warped.gating_totals(ExecUnitKind.INT).critical_wakeups
            if w > c:
                worse += 1
        assert worse <= len(runner.settings.benchmarks) // 2


class TestSensitivityShape:
    """Figure 11: Warped Gates dominates at harsher PG parameters."""

    def test_warped_gates_beats_conv_at_bet_19(self, runner):
        from repro.power.params import GatingParams
        gating = GatingParams(bet=19)
        conv = [runner.static_savings(n, Technique.CONV_PG,
                                      ExecUnitKind.INT, gating=gating)
                for n in runner.settings.benchmarks]
        warped = [runner.static_savings(n, Technique.WARPED_GATES,
                                        ExecUnitKind.INT, gating=gating)
                  for n in runner.settings.benchmarks]
        assert sum(warped) > sum(conv)

    def test_gap_widens_with_bet(self, runner):
        from repro.power.params import GatingParams
        gaps = {}
        for bet in (9, 19):
            gating = GatingParams(bet=bet)
            conv = sum(runner.static_savings(
                n, Technique.CONV_PG, ExecUnitKind.INT, gating=gating)
                for n in runner.settings.benchmarks)
            warped = sum(runner.static_savings(
                n, Technique.WARPED_GATES, ExecUnitKind.INT,
                gating=gating) for n in runner.settings.benchmarks)
            gaps[bet] = warped - conv
        assert gaps[19] > gaps[9]
