"""Issue-rule tests: the dual-issue filler ordering of section 4.1.

"If the highest priority is INT but INT_RDY shows only one ready warp,
then the second issue slot will be filled with either LDST, SFU or FP
instruction, in that order."  These tests drive crafted kernels through
the real SM under GATES and check who actually issues each cycle.
"""


from repro.core.gates import GatesScheduler
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.instructions import fp_op, int_op, load_op, sfu_op
from repro.isa.optypes import OpClass
from repro.isa.trace import KernelTrace, WarpTrace
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.sched.base import IssueCandidate, SchedulerView

CONFIG = SMConfig(max_resident_warps=8,
                  memory=MemoryConfig(dram_jitter=0.0))


def cand(slot, inst):
    return IssueCandidate(slot=slot, age=slot, inst=inst, ready=True)


def view(int_actv=2, fp_actv=2):
    v = SchedulerView()
    v.actv_counts[OpClass.INT] = int_actv
    v.actv_counts[OpClass.FP] = fp_actv
    return v


class TestFillerOrdering:
    """Direct scheduler-order checks for the section 4.1 rule."""

    def test_one_int_then_ldst(self):
        sched = GatesScheduler(n_slots=8)
        ordered = sched.order(0, [cand(0, int_op(dest=0)),
                                  cand(1, load_op(dest=0, line_addr=0)),
                                  cand(2, fp_op(dest=0))], view())
        assert [c.op_class for c in ordered[:2]] == \
            [OpClass.INT, OpClass.LDST]

    def test_one_int_then_sfu_when_no_ldst(self):
        sched = GatesScheduler(n_slots=8)
        ordered = sched.order(0, [cand(0, int_op(dest=0)),
                                  cand(1, sfu_op(dest=0)),
                                  cand(2, fp_op(dest=0))], view())
        assert [c.op_class for c in ordered[:2]] == \
            [OpClass.INT, OpClass.SFU]

    def test_one_int_then_fp_as_last_resort(self):
        sched = GatesScheduler(n_slots=8)
        ordered = sched.order(0, [cand(0, int_op(dest=0)),
                                  cand(2, fp_op(dest=0))], view())
        assert [c.op_class for c in ordered] == [OpClass.INT, OpClass.FP]

    def test_two_ready_ints_fill_both_slots(self):
        sched = GatesScheduler(n_slots=8)
        ordered = sched.order(0, [cand(0, int_op(dest=0)),
                                  cand(1, fp_op(dest=0)),
                                  cand(2, int_op(dest=0))], view())
        assert [c.op_class for c in ordered[:2]] == \
            [OpClass.INT, OpClass.INT]


class TestDualIssueInTheSM:
    """End-to-end: both issue slots used when two INT warps are ready."""

    def test_parallel_int_issue_across_clusters(self):
        # Two independent INT-only warps in different home clusters can
        # retire 2 instructions per cycle.
        warps = tuple(
            WarpTrace(i, tuple(int_op(dest=j % 8) for j in range(16)))
            for i in range(2))
        kernel = KernelTrace(name="k", warps=warps, max_resident_warps=2)
        sm = build_sm(kernel, TechniqueConfig(Technique.GATES_NO_PG),
                      sm_config=CONFIG)
        result = sm.run()
        # 32 instructions; near-perfect dual issue after warm-up.
        assert result.cycles <= 16 + 8
        assert result.pipeline_issues["INT0"] == 16
        assert result.pipeline_issues["INT1"] == 16

    def test_same_cluster_warps_serialise_structurally(self):
        # Two warps with the same home cluster (slots 0 and 2) share one
        # INT port; with II=1 that still dual-decodes but issues one
        # INT per cycle into the shared pipe.
        warps = (
            WarpTrace(0, tuple(int_op(dest=j % 8) for j in range(8))),
            WarpTrace(1, ()),  # placeholder to occupy slot 1
            WarpTrace(2, tuple(int_op(dest=j % 8) for j in range(8))),
        )
        # Empty traces are invalid; give slot 1 a single FP instruction.
        warps = (warps[0],
                 WarpTrace(1, (fp_op(dest=0),)),
                 warps[2])
        kernel = KernelTrace(name="k", warps=warps, max_resident_warps=3)
        sm = build_sm(kernel, TechniqueConfig(Technique.GATES_NO_PG),
                      sm_config=CONFIG)
        result = sm.run()
        assert result.pipeline_issues["INT0"] == 16
        assert result.pipeline_issues["INT1"] == 0
        assert result.stats.stalls.structural > 0
