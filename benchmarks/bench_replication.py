"""Multi-seed replication of the headline table.

The synthetic traces are random draws from statistical models, so the
headline numbers carry sampling noise.  This bench reruns the Figure
9/10 summary over several seeds and reports mean +/- sample standard
deviation, verifying that the paper's qualitative orderings are stable
properties of the models rather than one lucky draw.
"""

from repro.analysis.report import format_table
from repro.core.techniques import Technique
from repro.harness.experiment import ExperimentSettings
from repro.harness.replication import (
    REPLICATION_HEADERS,
    replicate,
    replication_rows,
)

from conftest import print_figure

SEEDS = (0, 1, 2)


def regenerate(figure_scale):
    settings = ExperimentSettings(
        scale=min(figure_scale, 0.5),
        benchmarks=("hotspot", "sgemm", "cutcp", "srad", "bfs", "mri"))
    return replicate(settings, seeds=SEEDS)


def test_replicated_headline(benchmark, figure_scale):
    results = benchmark.pedantic(regenerate, args=(figure_scale,),
                                 rounds=1, iterations=1)
    rows = replication_rows(results)
    text = format_table(REPLICATION_HEADERS, rows,
                        title=f"Headline metrics over {len(SEEDS)} "
                              f"seeds (6-benchmark subset)")
    print_figure("REPLICATION", text + "\n\nthe qualitative orderings "
                 "(blackout > conventional savings; warped gates "
                 "recovers performance) must hold at every seed")

    by_name = {r.technique: r for r in results}
    conv = by_name[Technique.CONV_PG]
    warped = by_name[Technique.WARPED_GATES]
    naive = by_name[Technique.NAIVE_BLACKOUT]
    # Mean orderings across seeds.
    assert warped.int_savings.mean > conv.int_savings.mean
    assert naive.int_savings.mean > conv.int_savings.mean
    assert warped.performance.mean >= naive.performance.mean - 0.01
    # Sampling noise stays small relative to the effects.
    assert warped.int_savings.stdev < 0.1
    assert warped.performance.stdev < 0.05
