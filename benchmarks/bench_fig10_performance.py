"""Figure 10: performance impact of the gating techniques.

Regenerates normalised performance (baseline cycles / technique cycles)
per benchmark and the geomean summary.  The paper's shape: ConvPG and
GATES cost ~1%, Naive Blackout is the worst (~5%), Coordinated Blackout
recovers to ~2% and Warped Gates lands back near ConvPG.
"""

from repro.analysis.report import format_table
from repro.harness import figures

from conftest import print_figure


def test_fig10_normalized_performance(benchmark, runner):
    rows = benchmark.pedantic(figures.fig10_rows, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(figures.FIG10_HEADERS, rows,
                        title="Figure 10: normalised performance")
    print_figure("FIG 10", text + "\n\npaper geomeans: conv 0.99, gates "
                 "0.99, naive 0.95, coord 0.98, warped 0.99")

    geo = rows[-1]
    assert geo[0] == "geomean"
    conv, gates, naive, coord, warped = geo[1:]
    # Every technique stays within a ~10% band of the baseline.
    for value in (conv, gates, naive, coord, warped):
        assert value > 0.9
    # Warped Gates recovers the Blackout losses: best of the three
    # blackout variants, and close to conventional gating.
    assert warped >= naive
    assert warped >= coord - 0.01
    assert warped > 0.95
