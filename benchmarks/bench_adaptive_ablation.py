"""Adaptive idle-detect ablation: bounded vs unbounded window.

Section 5.1: "To prevent run away idle-detect values we bound the value
to be between 5-10 cycles.  We also explored unbounded idle-detect
values and found that bounded idle-detect yields better tradeoff between
performance and energy savings."  This bench reruns Warped Gates with
the bound removed (window free to climb to 64) and compares the
energy/performance trade against the paper's bounded configuration.
"""

from repro.analysis.report import format_table
from repro.core.adaptive import AdaptiveConfig
from repro.core.techniques import Technique
from repro.harness.experiment import geomean, normalized_performance
from repro.isa.optypes import ExecUnitKind

from conftest import print_figure

BOUNDED = AdaptiveConfig()  # the paper's [5, 10]
UNBOUNDED = AdaptiveConfig(min_idle_detect=0, max_idle_detect=64)


def regenerate(runner):
    rows = []
    for label, config in (("bounded_5_10", BOUNDED),
                          ("unbounded_0_64", UNBOUNDED)):
        int_savings, perf, final_windows = [], [], []
        for name in runner.settings.benchmarks:
            base = runner.baseline(name)
            result = runner.run(name, Technique.WARPED_GATES,
                                adaptive=config)
            activity = result.unit_activity(ExecUnitKind.INT)
            bet = runner.settings.gating.bet
            int_savings.append(
                (activity.gated_cycles - activity.gating_events * bet)
                / activity.cycles if activity.cycles else 0.0)
            perf.append(normalized_performance(base, result))
            final_windows.extend(result.idle_detect_final.values())
        rows.append([label,
                     sum(int_savings) / len(int_savings),
                     geomean(perf),
                     max(final_windows)])
    return rows


def test_adaptive_bound_ablation(benchmark, sweep_runner):
    rows = benchmark.pedantic(regenerate, args=(sweep_runner,),
                              rounds=1, iterations=1)
    text = format_table(("config", "int_savings", "geomean_perf",
                         "max_final_window"), rows,
                        title="Adaptive idle-detect: bounded vs "
                              "unbounded window")
    print_figure("ADAPTIVE ABLATION", text + "\n\npaper: the bounded "
                 "window gives the better savings/performance tradeoff")

    by_label = {r[0]: r for r in rows}
    bounded = by_label["bounded_5_10"]
    unbounded = by_label["unbounded_0_64"]
    # The bound holds where configured.
    assert bounded[3] <= 10
    # Unbounded adaptation may climb far higher (giving up savings) or
    # crash to zero; either way bounded must not lose on the combined
    # tradeoff (savings + performance).
    bounded_score = bounded[1] + bounded[2]
    unbounded_score = unbounded[1] + unbounded[2]
    assert bounded_score >= unbounded_score - 0.02
