"""Shared fixtures for the figure-regeneration benchmarks.

Every ``bench_fig*.py`` file regenerates one of the paper's tables or
figures: it runs the experiment grid, prints the same rows/series the
paper reports (next to the paper's values where the paper states them),
and records the regeneration time via pytest-benchmark.

Simulation results are memoised in a session-scoped runner, so the grid
is built incrementally across benches: the first figure touching a
(benchmark, technique) cell pays for its simulation, later figures reuse
it.  Timings therefore measure *incremental* regeneration work.

The default scale (0.5) keeps the full bench suite to a few minutes
while preserving every qualitative result; pass ``--figure-scale=1.0``
for full-fidelity runs (as recorded in EXPERIMENTS.md).
"""

import pytest

from repro.harness.experiment import ExperimentRunner, ExperimentSettings


def pytest_addoption(parser):
    parser.addoption("--figure-scale", action="store", type=float,
                     default=0.5,
                     help="workload scale for figure regeneration")
    parser.addoption("--engine-jobs", action="store", type=int,
                     default=2,
                     help="worker processes for the engine benchmark")


@pytest.fixture(scope="session")
def figure_scale(request) -> float:
    return request.config.getoption("--figure-scale")


@pytest.fixture(scope="session")
def engine_jobs(request) -> int:
    return request.config.getoption("--engine-jobs")


@pytest.fixture(scope="session")
def runner(figure_scale) -> ExperimentRunner:
    """Session-wide memoising runner over the full 18-benchmark suite."""
    return ExperimentRunner(ExperimentSettings(scale=figure_scale))


@pytest.fixture(scope="session")
def sweep_runner(figure_scale) -> ExperimentRunner:
    """Smaller-suite runner for the parameter sweeps (Figs. 6 and 11).

    The sweeps multiply the grid by up to 11 parameter values, so they
    run on a representative 6-benchmark subset covering compute-bound
    (sgemm, cutcp), balanced (hotspot, srad) and memory-bound (bfs, mri)
    behaviour.
    """
    benchmarks = ("hotspot", "sgemm", "cutcp", "srad", "bfs", "mri")
    return ExperimentRunner(ExperimentSettings(
        scale=min(figure_scale, 0.5), benchmarks=benchmarks))


def print_figure(title: str, text: str) -> None:
    """Uniform banner so bench output is easy to scan with -s."""
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)
    print(text)
