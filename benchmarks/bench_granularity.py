"""Granularity ablation: per-unit gating vs SM-level gating.

The paper's related-work positioning (section 8): prior GPU power gating
(Wang et al. [22]) works at SM granularity, "which works well when an
entire SM is idle.  But this work shows that there are plenty of
opportunities to power gate execution units within an SM, even when an
SM is not idle."  This bench quantifies that claim on our substrate by
applying the conventional gating state machine analytically to (a) the
SM-wide "all pipelines idle" histogram and (b) the per-unit INT
histograms of the same baseline runs.
"""

from repro.analysis.granularity import granularity_comparison
from repro.analysis.report import format_table
from repro.isa.optypes import ExecUnitKind
from repro.sim.sm import StreamingMultiprocessor

from conftest import print_figure


def regenerate(runner):
    rows = []
    for name in runner.settings.benchmarks:
        result = runner.baseline(name)
        sm_wide = result.stats.idle_trackers[
            StreamingMultiprocessor.SM_WIDE_TRACKER].histogram
        unit = result.idle_histogram(ExecUnitKind.INT)
        comparison = granularity_comparison(
            sm_wide, unit, total_cycles=result.cycles,
            n_unit_domains=len(result.pipeline_names(ExecUnitKind.INT)),
            params=runner.settings.gating)
        rows.append([name,
                     comparison["sm_level_idle_fraction"],
                     comparison["sm_level_savings"],
                     comparison["unit_level_idle_fraction"],
                     comparison["unit_level_savings"]])
    return rows


def test_granularity_comparison(benchmark, runner):
    rows = benchmark.pedantic(regenerate, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(
        ("benchmark", "sm_idle_frac", "sm_savings",
         "unit_idle_frac", "unit_savings"), rows,
        title="Gating granularity: whole-SM vs per-unit (INT), "
              "analytic conventional gating")
    print_figure("GRANULARITY", text + "\n\npaper section 8: SM-level "
                 "gating only pays when an entire SM idles; per-unit "
                 "gating finds opportunity inside busy SMs")

    # Per-unit gating must find at least as much opportunity as
    # SM-level gating on every benchmark, and strictly more in total.
    total_sm = sum(r[2] for r in rows)
    total_unit = sum(r[4] for r in rows)
    assert total_unit > total_sm
    for row in rows:
        assert row[3] >= row[1] - 1e-9  # unit idleness >= SM-wide


def regenerate_with_gaps(figure_scale):
    """The complementary regime: inter-kernel gaps.

    SM-granular gating (Wang et al.) earns its keep *between* kernels,
    when the whole SM drains.  Run the same benchmark as a sequence of
    three kernel launches with host-side gaps and show the SM-level
    opportunity catching up.
    """
    from repro.core.techniques import Technique, TechniqueConfig, build_sm
    from repro.workloads.registry import build_kernel
    from repro.workloads.specs import get_profile

    scale = min(figure_scale, 0.5) / 3
    rows = []
    for gap in (0, 200, 1000):
        kernels = [build_kernel("hotspot", seed=s, scale=scale)
                   for s in range(3)]
        sm = build_sm(kernels, TechniqueConfig(Technique.BASELINE),
                      dram_latency=get_profile("hotspot").dram_latency,
                      kernel_gap_cycles=gap)
        result = sm.run()
        sm_wide = result.stats.idle_trackers[
            StreamingMultiprocessor.SM_WIDE_TRACKER].histogram
        unit = result.idle_histogram(ExecUnitKind.INT)
        comparison = granularity_comparison(
            sm_wide, unit, total_cycles=result.cycles,
            n_unit_domains=len(result.pipeline_names(ExecUnitKind.INT)))
        rows.append([gap, result.cycles,
                     comparison["sm_level_savings"],
                     comparison["unit_level_savings"]])
    return rows


def test_granularity_with_kernel_gaps(benchmark, figure_scale):
    rows = benchmark.pedantic(regenerate_with_gaps,
                              args=(figure_scale,),
                              rounds=1, iterations=1)
    text = format_table(
        ("gap_cycles", "total_cycles", "sm_savings", "unit_savings"),
        rows, title="Granularity vs inter-kernel gaps "
                    "(hotspot x3 launches)")
    print_figure("GRANULARITY/GAPS", text + "\n\nlonger host-side gaps "
                 "between kernels grow the whole-SM opportunity — the "
                 "regime where SM-granular gating (Wang et al.) works; "
                 "per-unit gating covers both regimes")

    by_gap = {r[0]: r for r in rows}
    # SM-level savings grow monotonically with the gap length...
    assert by_gap[200][2] > by_gap[0][2]
    assert by_gap[1000][2] > by_gap[200][2]
    # ...and per-unit gating never does worse than SM-level gating.
    for row in rows:
        assert row[3] >= row[2] - 1e-9
