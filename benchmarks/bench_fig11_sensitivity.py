"""Figure 11: sensitivity to break-even time and wakeup delay.

Regenerates both panels: suite-average INT/FP static savings and
geomean performance for conventional power gating vs Warped Gates,
across BET in {9, 14, 19} (11a) and wakeup delay in {3, 6, 9} (11b).
The paper's shape: Warped Gates always wins, the gap widens at harsher
parameters, and conventional gating's performance collapses with a
nine-cycle wakeup while Warped Gates stays flat.
"""

from repro.analysis.report import format_table
from repro.core.techniques import Technique
from repro.harness.sweeps import (
    SWEEP_HEADERS,
    bet_sweep,
    sweep_rows,
    wakeup_sweep,
)

from conftest import print_figure


def by_cell(points):
    return {(p.value, p.technique): p for p in points}


def test_fig11a_bet_sensitivity(benchmark, sweep_runner):
    points = benchmark.pedantic(bet_sweep, args=(sweep_runner,),
                                rounds=1, iterations=1)
    text = format_table(SWEEP_HEADERS, sweep_rows(points),
                        title="Figure 11a: break-even time sensitivity")
    print_figure("FIG 11a", text + "\n\npaper: at BET 19, conv saves "
                 "only ~17% INT static while warped gates saves ~33% "
                 "(nearly 2x)")

    cells = by_cell(points)
    for bet in (9, 14, 19):
        conv = cells[(bet, Technique.CONV_PG)]
        warped = cells[(bet, Technique.WARPED_GATES)]
        # Warped Gates outperforms conventional gating at every BET.
        assert warped.int_savings > conv.int_savings
    # The savings gap widens as BET grows.
    gap = {bet: cells[(bet, Technique.WARPED_GATES)].int_savings
           - cells[(bet, Technique.CONV_PG)].int_savings
           for bet in (9, 19)}
    assert gap[19] > gap[9]


def test_fig11b_wakeup_sensitivity(benchmark, sweep_runner):
    points = benchmark.pedantic(wakeup_sweep, args=(sweep_runner,),
                                rounds=1, iterations=1)
    text = format_table(SWEEP_HEADERS, sweep_rows(points),
                        title="Figure 11b: wakeup delay sensitivity")
    print_figure("FIG 11b", text + "\n\npaper: at 9-cycle wakeup, conv "
                 "drops to 6%/10% INT/FP savings and ~10% perf loss; "
                 "warped gates sustains 33%/48% with ~3% loss")

    cells = by_cell(points)
    for wakeup in (3, 6, 9):
        conv = cells[(wakeup, Technique.CONV_PG)]
        warped = cells[(wakeup, Technique.WARPED_GATES)]
        assert warped.int_savings > conv.int_savings
        assert warped.fp_savings > conv.fp_savings
    # Warped Gates' savings stay nearly flat across wakeup delays while
    # conventional gating degrades.
    warped_drop = cells[(3, Technique.WARPED_GATES)].int_savings - \
        cells[(9, Technique.WARPED_GATES)].int_savings
    conv_drop = cells[(3, Technique.CONV_PG)].int_savings - \
        cells[(9, Technique.CONV_PG)].int_savings
    assert conv_drop >= warped_drop - 0.02
