"""Cluster-count scaling: Fermi (2 SPs) to Kepler/GCN-style layouts.

Section 5 of the paper motivates Coordinated Blackout with the trend
toward more execution clusters per core: "the more recent Kepler
architecture uses six clusters of INT and FP organised as six SPs;
AMD's GCN architecture currently has four clusters".  This bench runs
the generalised N-cluster Coordinated Blackout across 1/2/4/6-cluster
SMs (issue width scaled with the cluster count so per-cluster pressure
stays comparable) and reports how gating opportunity scales with
granularity.
"""

from repro.analysis.report import format_table
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ExecUnitKind
from repro.sim.config import SMConfig
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

from conftest import print_figure

CLUSTER_COUNTS = (1, 2, 4, 6)
BENCHMARKS = ("hotspot", "srad")


def regenerate(figure_scale):
    scale = min(figure_scale, 0.5)
    rows = []
    for n_clusters in CLUSTER_COUNTS:
        sm_config = SMConfig(n_sp_clusters=n_clusters,
                             issue_width=max(2, n_clusters))
        int_savings, perf = [], []
        for name in BENCHMARKS:
            kernel = build_kernel(name, scale=scale)
            dram = get_profile(name).dram_latency
            base = build_sm(kernel, TechniqueConfig(Technique.BASELINE),
                            sm_config=sm_config, dram_latency=dram).run()
            wg = build_sm(kernel,
                          TechniqueConfig(Technique.COORD_BLACKOUT),
                          sm_config=sm_config, dram_latency=dram).run()
            activity = wg.unit_activity(ExecUnitKind.INT)
            int_savings.append(
                (activity.gated_cycles - activity.gating_events * 14)
                / activity.cycles if activity.cycles else 0.0)
            perf.append(base.cycles / wg.cycles)
        rows.append([n_clusters, max(2, n_clusters),
                     sum(int_savings) / len(int_savings),
                     sum(perf) / len(perf)])
    return rows


def test_cluster_scaling(benchmark, figure_scale):
    rows = benchmark.pedantic(regenerate, args=(figure_scale,),
                              rounds=1, iterations=1)
    text = format_table(
        ("sp_clusters", "issue_width", "int_savings", "mean_perf"),
        rows, title="Coordinated Blackout vs SP cluster count")
    print_figure("CLUSTER SCALING", text + "\n\nthe paper's motivation: "
                 "finer cluster granularity gives the coordinated "
                 "policy more independent gating domains to park")

    by_clusters = {r[0]: r for r in rows}
    # The coordinated policy must function at every cluster count (the
    # generalisation beyond the paper's two-cluster description)...
    for row in rows:
        assert row[3] > 0.8
    # ...and multi-cluster layouts gate at least as profitably as the
    # single-cluster machine, where coordination cannot help at all.
    assert by_clusters[6][2] >= by_clusters[1][2] - 0.02
    assert by_clusters[4][2] >= by_clusters[1][2] - 0.02
