"""Figure 4: the scheduler's effect on idle cycles (illustration).

Replays the paper's scripted 12-entry active-warp set (eight INT and
four FP single-instruction warps; 4-cycle latency, II = 1) through the
real simulator on the figure's simplified single-cluster, single-issue
machine, and checks that GATES coalesces each unit's idleness.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "examples"))

from figure4_walkthrough import (  # noqa: E402
    FIG4_CONFIG,
    build_fig4_kernel,
    occupancy_chart,
)
from repro.core.techniques import (  # noqa: E402
    Technique,
    TechniqueConfig,
    build_sm,
)

from conftest import print_figure  # noqa: E402


def longest_idle_run(strip: str) -> int:
    return max((len(run) for run in strip.split("#")), default=0)


def regenerate():
    charts = {}
    for technique in (Technique.BASELINE, Technique.GATES_NO_PG):
        sm = build_sm(build_fig4_kernel(), TechniqueConfig(technique),
                      sm_config=FIG4_CONFIG)
        charts[technique] = occupancy_chart(sm)
    return charts


def test_fig04_schedule_illustration(benchmark):
    charts = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    lines = []
    for technique, strips in charts.items():
        lines.append(f"{technique.value}:")
        lines.append(f"  INT {strips['INT0']}")
        lines.append(f"  FP  {strips['FP0']}")
    lines.append("")
    lines.append("paper: baseline chops FP idleness into 1-2 cycle "
                 "slivers; GATES gives INT four and FP eight "
                 "consecutive idle cycles")
    print_figure("FIG 4", "\n".join(lines))

    base = charts[Technique.BASELINE]
    gates = charts[Technique.GATES_NO_PG]
    # GATES strictly lengthens the longest idle window of each unit.
    assert longest_idle_run(gates["FP0"]) > longest_idle_run(base["FP0"])
    assert longest_idle_run(gates["FP0"]) >= 8
    # All twelve instructions execute under both schedules.
    assert base["INT0"].count("#") >= 8
    assert gates["INT0"].count("#") >= 8
