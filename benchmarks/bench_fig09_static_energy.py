"""Figure 9: static energy savings per technique (INT and FP units).

Regenerates the paper's headline figure: per-benchmark net static
energy savings (gated leakage minus gating overhead, relative to a
no-gating baseline) under all five techniques, plus the suite average
and the section 7.3 chip-level estimate.
"""

from repro.analysis.paper import FIG9_FP_SAVINGS, FIG9_INT_SAVINGS
from repro.analysis.report import format_table
from repro.harness import figures
from repro.isa.optypes import ExecUnitKind

from conftest import print_figure

PAPER_AVERAGES = {"int": FIG9_INT_SAVINGS, "fp": FIG9_FP_SAVINGS}


def check_shape(rows):
    avg = rows[-1]
    assert avg[0] == "average"
    conv, gates, naive, coord, warped = avg[1:]
    # Ordering shape of Figure 9: Blackout variants beat conventional
    # gating, and the full system keeps (approximately) the best savings.
    assert naive > conv
    assert coord > conv
    assert warped > conv
    assert warped >= naive * 0.9
    # Everything saves net energy at suite level.
    assert conv > 0


def test_fig09a_int_static_energy(benchmark, runner):
    rows = benchmark.pedantic(figures.fig9_rows,
                              args=(runner, ExecUnitKind.INT),
                              rounds=1, iterations=1)
    paper = PAPER_AVERAGES["int"]
    text = format_table(figures.FIG9_HEADERS, rows,
                        title="Figure 9a: INT static energy savings")
    print_figure("FIG 9a", text + "\n\npaper averages: " + ", ".join(
        f"{k}={v:.3f}" for k, v in paper.items()))
    check_shape(rows)


def test_fig09b_fp_static_energy(benchmark, runner):
    rows = benchmark.pedantic(figures.fig9_rows,
                              args=(runner, ExecUnitKind.FP),
                              rounds=1, iterations=1)
    paper = PAPER_AVERAGES["fp"]
    text = format_table(figures.FIG9_HEADERS, rows,
                        title="Figure 9b: FP static energy savings "
                              "(integer-only benchmarks excluded)")
    print_figure("FIG 9b", text + "\n\npaper averages: " + ", ".join(
        f"{k}={v:.3f}" for k, v in paper.items()))
    check_shape(rows)
    assert len(rows) == 17  # 16 FP benchmarks + average row


def test_sec73_chip_level_estimate(benchmark, runner):
    estimate = benchmark.pedantic(figures.chip_savings_estimate,
                                  args=(runner,), rounds=1, iterations=1)
    lines = [f"{key}: {value:.4f}" for key, value in estimate.items()]
    print_figure("SEC 7.3", "\n".join(lines) +
                 "\n\npaper: 1.62-2.43% of on-chip power at 33% leakage "
                 "share, 2.46-3.69% at 50%")
    assert 0.0 < estimate["chip_savings_at_33pct_leakage"] < 0.05
    assert estimate["chip_savings_at_50pct_leakage"] > \
        estimate["chip_savings_at_33pct_leakage"]
