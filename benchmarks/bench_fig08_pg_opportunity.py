"""Figure 8: how the techniques increase power-gating opportunity.

Three panels over the integer unit (FP trends match, per the paper):

* 8a — fraction of idle cycles, normalised to the baseline two-level
  scheduler (GATES extracts ~3% more, Coordinated Blackout ~10%).
* 8b — signed compensated-state residency: cycles in the compensated
  gating state minus uncompensated, over total cycles (negative bars =
  gating mostly lost energy).
* 8c — gating events (wakeups) normalised to conventional gating
  (Warped Gates roughly halves them in the paper).
"""

from repro.analysis.report import format_table
from repro.harness import figures

from conftest import print_figure


def test_fig08a_idle_cycles(benchmark, runner):
    rows = benchmark.pedantic(figures.fig8a_rows, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(figures.FIG8A_HEADERS, rows,
                        title="Figure 8a: idle-cycle fraction vs "
                              "baseline scheduler (INT unit)")
    print_figure("FIG 8a", text + "\n\npaper: GATES ~1.03x, Coordinated "
                 "Blackout ~1.10x on average")
    geo = rows[-1]
    assert geo[0] == "geomean"
    # All techniques keep idle fractions in the same ballpark as the
    # baseline (no technique halves or doubles idleness).
    for value in geo[1:]:
        assert 0.7 < value < 1.5


def test_fig08b_compensated_cycles(benchmark, runner):
    rows = benchmark.pedantic(figures.fig8b_rows, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(figures.FIG8B_HEADERS, rows,
                        title="Figure 8b: compensated-state residency "
                              "(INT unit, signed)")
    print_figure("FIG 8b", text + "\n\npaper (geomean of %): ConvPG "
                 "20.9, GATES 22.6, Warped Gates 33.5; cutcp/mri are "
                 "negative under ConvPG/GATES.  Full-scale measured "
                 "means: 0.221 / 0.218 / 0.137 (our Warped Gates gates "
                 "less often but wastes less of it -- see "
                 "EXPERIMENTS.md)")
    mean = rows[-1]
    assert mean[0] == "mean"
    # Compensated residency dominates uncompensated for every technique
    # at suite level.
    for value in mean[1:]:
        assert value > 0.0
    # Some benchmarks sit net-uncompensated under ConvPG/GATES (the
    # paper's cutcp/mri bars); Blackout keeps the overhang bounded.
    for row in rows[:-1]:
        assert row[3] > -0.35


def test_fig08c_wakeups(benchmark, runner):
    rows = benchmark.pedantic(figures.fig8c_rows, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(figures.FIG8C_HEADERS, rows,
                        title="Figure 8c: gating events normalised to "
                              "ConvPG (INT unit)")
    print_figure("FIG 8c", text + "\n\npaper: Coordinated Blackout "
                 "-26%, Warped Gates -46% events vs ConvPG.  Full-scale "
                 "measured geomeans: GATES 1.18, coord 0.97, warped "
                 "0.89 (GATES alone increases wakeups, as the paper "
                 "notes; run with --figure-scale=1.0 to see the "
                 "reduction)")
    geo = rows[-1]
    # Adaptation cuts events relative to plain GATES + conv gating, and
    # no technique blows the event count up.
    assert geo[3] <= geo[1] + 0.02
    for value in geo[1:]:
        assert 0.3 < value < 1.6
