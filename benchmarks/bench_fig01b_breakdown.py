"""Figure 1b: execution-unit energy breakdown, baseline vs ConvPG.

Regenerates the four stacked bars of Figure 1b: normalised dynamic /
gating-overhead / static energy for the INT and FP units, without power
gating and under conventional power gating.  The paper's headline reads
off the first two bars (static is ~50% of INT energy and >90% of FP
energy) and the last two (after ConvPG, static+overhead still dominate).
"""

from repro.analysis.report import format_table
from repro.harness import figures

from conftest import print_figure


def test_fig01b_energy_breakdown(benchmark, runner):
    rows = benchmark.pedantic(figures.fig1b_rows, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(figures.FIG1B_HEADERS, rows,
                        title="Figure 1b: normalised energy breakdown "
                              "(suite average)")
    print_figure("FIG 1b", text + "\n\npaper: baseline static share is "
                 "~0.5 of INT and >0.9 of FP unit energy; ConvPG leaves "
                 "~0.31 (INT) and ~0.61 (FP) static plus 0.11/0.29 "
                 "overhead")

    by_key = {(r[0], r[1]): r for r in rows}
    base_int = by_key[("baseline", "int")]
    base_fp = by_key[("baseline", "fp")]
    # Shape assertions: FP more static-dominated than INT; ConvPG
    # converts some static into savings + overhead.
    assert base_fp[4] > base_int[4]
    assert by_key[("conv_pg", "int")][4] < base_int[4]
    assert by_key[("conv_pg", "fp")][4] < base_fp[4]
    assert by_key[("conv_pg", "int")][3] > 0.0  # overhead appears
