"""Wall-clock benchmark of the ``repro figures`` artifact pipeline.

Times one full artifact generation (every registered figure plus the
tolerance-gated headline checks) twice over the same runner:

* **cold** — empty memo cache: the number a user sees on first
  ``repro figures`` invocation, dominated by the shared
  benchmark x technique simulation grid;
* **warm** — same runner, fresh output directory: pure figure-building
  and serialisation over cached results, the incremental cost of
  regenerating the artifact after one more code change.

The cold rate is appended to ``BENCH_history.jsonl`` as the
``figures_pipeline`` row (suite ``figures``) and gated warn-don't-die
against the previous recorded entry, same policy as the core and
engine benches.
"""

import time

from repro.harness.artifact import figure_names, generate_artifact
from repro.harness.experiment import ExperimentRunner, ExperimentSettings

import history
from conftest import print_figure

#: Representative subset: compute-bound, memory-bound and balanced.
BENCHMARKS = ("hotspot", "bfs", "sgemm")


def _fresh_runner(figure_scale: float) -> ExperimentRunner:
    return ExperimentRunner(ExperimentSettings(
        scale=min(figure_scale, 0.5), benchmarks=BENCHMARKS))


def _generate(runner: ExperimentRunner, out_dir) -> float:
    start = time.perf_counter()
    report = generate_artifact(runner, out_dir, check=True)
    elapsed = time.perf_counter() - start
    assert [a.name for a in report.figures] == list(figure_names())
    assert report.verdict in ("PASS", "WARN", "FAIL")
    return elapsed


def test_figures_pipeline(benchmark, figure_scale, tmp_path):
    runner = _fresh_runner(figure_scale)
    cold = _generate(runner, tmp_path / "cold")
    # pytest-benchmark times the warm path (stable enough to compare
    # across runs); the cold figure is a single measurement by nature.
    benchmark.pedantic(
        lambda: _generate(runner, tmp_path / "warm"),
        rounds=3, iterations=1)
    warm = _generate(runner, tmp_path / "warm")
    n_figures = len(figure_names())
    cold_rate = n_figures / cold
    print_figure(
        "FIGURES/figures_pipeline",
        f"{n_figures} figures: cold {cold:.1f}s "
        f"({cold_rate:.2f} figures/s), warm {warm:.2f}s "
        f"({n_figures / warm:.2f} figures/s) over "
        f"{len(BENCHMARKS)} benchmarks at scale "
        f"{runner.settings.scale}")
    previous = history.record_rates(
        "figures", "figures_pipeline",
        rates={"cold_figures_per_sec": round(cold_rate, 3),
               "warm_figures_per_sec": round(n_figures / warm, 3)},
        config={"benchmarks": list(BENCHMARKS),
                "scale": runner.settings.scale,
                "n_figures": n_figures,
                "cold_seconds": round(cold, 2),
                "warm_seconds": round(warm, 2)})
    # The warm pass reuses every simulation; it must be decisively
    # cheaper than the cold pass or the runner cache has regressed.
    assert warm < cold
    ok, message = history.check_against_previous(
        previous, "cold_figures_per_sec", cold_rate)
    assert ok, f"figures_pipeline vs history: {message}"
