"""Parallel-engine throughput: serial vs fast-forward vs process pool.

Measures the same mixed experiment grid (four benchmarks under baseline
and Warped Gates) three ways:

* ``serial``        — in-process, cycle-by-cycle (the pre-engine path);
* ``fast_forward``  — in-process with the idle-cycle fast-forward;
* ``parallel``      — fast-forward jobs fanned over a
  :class:`~repro.engine.pool.ParallelEngine` process pool
  (``--engine-jobs``, default 2 — what CI runs).

All three produce bit-identical results (asserted here on total cycles;
the exhaustive metric-level check lives in ``tests/engine/``), so the
rows isolate pure execution-engine speed.  The persistent cache is
disabled throughout — a cache hit would measure pickle loading, not
simulation.

Rates land in ``BENCH_engine.json`` at the repo root (latest snapshot)
and are appended to ``BENCH_history.jsonl`` (full trajectory, one JSONL
record per measurement with git sha and config — see
:mod:`history`).  The serial row doubles as CI's throughput-regression
gate: it must stay within 15% of the committed baseline below AND
within the history tolerance of the last recorded run.
"""

import json
from pathlib import Path

from repro.core.techniques import Technique, TechniqueConfig
from repro.engine import ParallelEngine, SimJob

import history
from conftest import print_figure

SCALE = 0.5
#: Mixed compute/memory-bound grid so both engine paths are exercised.
GRID = [(name, technique)
        for name in ("hotspot", "bfs", "sgemm", "srad")
        for technique in (Technique.BASELINE, Technique.WARPED_GATES)]

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: CI regression gate for the serial row, in simulated cycles/second.
#: Set conservatively (roughly half a warm local 4-core box) so shared
#: CI runners have headroom; the assert below allows a further 15% dip.
SERIAL_BASELINE_CYCLES_PER_SEC = 5_000.0


def _jobs(fast_forward: bool):
    return [SimJob(benchmark=name, config=TechniqueConfig(technique),
                   scale=SCALE, fast_forward=fast_forward)
            for name, technique in GRID]


def run_grid(engine_jobs: int, fast_forward: bool) -> int:
    """Run the grid and return total simulated cycles."""
    with ParallelEngine(jobs=engine_jobs, cache_dir=None,
                        fast_forward=fast_forward) as engine:
        outcomes = engine.run_sim_jobs(_jobs(fast_forward))
    return sum(outcome.result.cycles for outcome in outcomes)


def record_rate(name: str, jobs: int, cycles: int, rate: float):
    """Merge one rate into BENCH_engine.json and append it to history.

    Returns the *previous* history entry for this row (None on first
    run) so callers can gate against the last recorded measurement.
    """
    document = {}
    if RESULTS_PATH.exists():
        try:
            document = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            document = {}
    document[name] = {"grid": len(GRID), "scale": SCALE, "jobs": jobs,
                      "cycles": cycles, "cycles_per_sec": round(rate, 1)}
    RESULTS_PATH.write_text(json.dumps(document, indent=2, sort_keys=True),
                            encoding="utf-8")
    return history.record_rates(
        "engine", name,
        rates={"cycles_per_sec": round(rate, 1)},
        config={"grid": len(GRID), "scale": SCALE, "jobs": jobs,
                "cycles": cycles})


def _measure(benchmark, name: str, jobs: int, fast_forward: bool):
    cycles = benchmark.pedantic(run_grid, args=(jobs, fast_forward),
                                rounds=3, iterations=1, warmup_rounds=1)
    rate = cycles / benchmark.stats.stats.min
    print_figure(f"ENGINE/{name}",
                 f"{cycles} simulated cycles over {len(GRID)} runs "
                 f"at {rate:,.0f} cycles/s (jobs={jobs})")
    previous = record_rate(name, jobs, cycles, rate)
    return rate, previous


def test_engine_serial(benchmark):
    """Cycle-by-cycle in-process grid — the regression-gated row."""
    rate, previous = _measure(benchmark, "serial", jobs=1,
                              fast_forward=False)
    assert rate > SERIAL_BASELINE_CYCLES_PER_SEC * 0.85, (
        f"serial throughput regressed >15%: {rate:,.0f} cycles/s vs "
        f"baseline {SERIAL_BASELINE_CYCLES_PER_SEC:,.0f}")
    ok, message = history.check_against_previous(
        previous, "cycles_per_sec", rate)
    assert ok, f"serial throughput vs history: {message}"


def test_engine_fast_forward(benchmark):
    """Idle-cycle fast-forward, still in-process and single-job."""
    _measure(benchmark, "fast_forward", jobs=1, fast_forward=True)


def test_engine_parallel(benchmark, engine_jobs):
    """Fast-forward jobs fanned over the worker pool."""
    _measure(benchmark, "parallel", jobs=engine_jobs, fast_forward=True)


def test_engine_paths_agree():
    """All three engine paths simulate the identical grid."""
    serial = run_grid(1, fast_forward=False)
    assert run_grid(1, fast_forward=True) == serial
    assert run_grid(2, fast_forward=True) == serial
