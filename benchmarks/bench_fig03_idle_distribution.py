"""Figure 3: idle-period length distributions for hotspot.

Regenerates the three-panel histogram summary: the fraction of idle
periods that are (a) too short to gate, (b) gated but woken before
break-even (net loss), and (c) long enough to pay off, under the
baseline scheduler + conventional gating, GATES, and GATES + Blackout.
"""

import pytest

from repro.analysis.report import format_table
from repro.harness import figures
from repro.harness.experiment import ExperimentRunner, ExperimentSettings

from conftest import print_figure


@pytest.fixture(scope="module")
def hotspot_runner() -> ExperimentRunner:
    """Figure 3 is defined on the full-scale hotspot run (the paper's
    representative benchmark); scaled-down traces shift the idle-length
    regime, so this figure always regenerates at scale 1.0."""
    return ExperimentRunner(ExperimentSettings(scale=1.0,
                                               benchmarks=("hotspot",)))


def regenerate(runner):
    rows = figures.fig3_rows(runner, benchmark="hotspot")
    series = {label: figures.fig3_series(runner, technique, "hotspot")
              for label, technique in figures.FIG3_CONFIGS}
    return rows, series


def test_fig03_idle_period_distribution(benchmark, hotspot_runner):
    rows, series = benchmark.pedantic(regenerate, args=(hotspot_runner,),
                                      rounds=1, iterations=1)
    text = format_table(figures.FIG3_HEADERS, rows,
                        title="Figure 3: idle-period regions, hotspot "
                              "(idle-detect 5, BET 14)")
    lines = [text, "", "paper: conv (0.834, 0.101, 0.065) | gates "
             "(0.590, 0.221, 0.189) | blackout (0.543, 0.000, 0.457)",
             "", "length-frequency series (1..25+, per technique):"]
    for label, points in series.items():
        compact = " ".join(f"{f:.2f}" for _, f in points)
        lines.append(f"  {label:9s} {compact}")
    print_figure("FIG 3", "\n".join(lines))

    by_label = {r[0]: r for r in rows}
    # Panel (a): short periods dominate under the baseline scheduler.
    assert by_label["conv_pg"][1] > 0.5
    # Panel (b): GATES moves mass out of the wasted region rightward.
    assert by_label["gates"][1] < by_label["conv_pg"][1]
    assert by_label["gates"][3] > by_label["conv_pg"][3]
    # Panel (c): Blackout empties the loss region entirely.
    assert by_label["blackout"][2] == 0.0
    assert by_label["blackout"][3] > by_label["gates"][3]
