"""Single-run busy-loop throughput: the hot-loop regression gate.

PR 2's engine made the *grid* fast (fan-out, fast-forward, caching);
this bench pins the orthogonal number that multiplies every sweep — how
many cycles/second ONE busy SM simulates, serially, with no
fast-forward and no cache.  Three rows:

* ``serial_baseline`` / ``serial_warped_gates`` — full
  ``run_benchmark`` wall time (trace build + cycle loop) on hotspot at
  scale 0.5, exactly how the pre-optimisation baselines below were
  measured, so the recorded ``speedup_vs_pre_pr`` is like-for-like;
* ``instrumented`` — the pure cycle loop (``sm.run`` only) with the
  event bus off vs on, isolating observability overhead from workload
  construction.

Rates land in ``BENCH_core.json`` at the repo root (latest snapshot)
and are appended to ``BENCH_history.jsonl`` (full trajectory with git
sha — see :mod:`history`); each gate also compares against the last
recorded history entry.  The gates are CI's single-run throughput
regression net (warn-don't-die: the workflow step tolerates a failure
and surfaces a ``::warning``).  On a gate failure a cProfile summary of
the warped-gates loop is written to ``bench_core_profile.txt`` so the
regression's hot spots travel with the CI artifact.
"""

import cProfile
import io
import json
import pstats
import time
from pathlib import Path

from repro.core.techniques import (Technique, TechniqueConfig, build_sm,
                                   run_benchmark)
from repro.obs.bus import EventBus
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

import history
from conftest import print_figure

SCALE = 0.5
BENCHMARK = "hotspot"
SEED = 0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_core.json"
PROFILE_PATH = REPO_ROOT / "bench_core_profile.txt"

#: Pre-optimisation serial rates (cycles/sec, best-of-5 ``run_benchmark``
#: wall time on the reference dev container, hotspot at scale 0.5) —
#: the denominators for the recorded speedups.  The hot-loop rework
#: targets >= 2x against these.
PRE_PR_CYCLES_PER_SEC = {
    "baseline": 16322.0,
    "warped_gates": 12570.0,
}

#: CI regression gates.  Shared runners differ from the reference
#: container, so the speedup gate keeps a 15% noise allowance and the
#: workflow treats a failure as a warning, not a hard stop.
MIN_SPEEDUP = 2.0
SPEEDUP_TOLERANCE = 0.85

#: Dense-regime row (``dense_single_sm``): bfs at full scale issues
#: nearly every cycle, so span skipping finds almost nothing — the
#: regime the dense-step kernel (:mod:`repro.sim.kernel`) exists for.
DENSE_BENCHMARK = "bfs"
DENSE_SCALE = 1.0
#: Serial rate of this PR's seed on the dense workload (best-of-5 on
#: the reference container) — the kernel targets >= 1.5x against it.
PRE_PR_DENSE_CYCLES_PER_SEC = 25_510.0
MIN_DENSE_SPEEDUP = 1.5
#: The pure-Python floor: with numpy and the compiled build both
#: unavailable the fast-forward path must still beat the rate the
#: serial loop reached before this PR's kernel work.
PRE_PR_DENSE_FF_CYCLES_PER_SEC = 28_543.0
#: Bus-enabled loop overhead target (fraction of the plain-loop rate).
MAX_INSTRUMENTED_OVERHEAD = 0.10
OVERHEAD_TOLERANCE = 0.05


def _serial_rate(technique: Technique, rounds: int = 5) -> tuple:
    """Best-of-N full-run rate (trace build + loop), pre-PR-comparable."""
    best = 0.0
    cycles = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_benchmark(BENCHMARK, TechniqueConfig(technique),
                               seed=SEED, scale=SCALE)
        elapsed = time.perf_counter() - start
        cycles = result.cycles
        rate = cycles / elapsed
        if rate > best:
            best = rate
    return best, cycles


def _build_loop_sm(instrumented: bool):
    kernel = build_kernel(BENCHMARK, seed=SEED, scale=SCALE)
    bus = EventBus(enabled=True) if instrumented else None
    sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                  dram_latency=get_profile(BENCHMARK).dram_latency,
                  bus=bus)
    if instrumented:
        sink = []
        bus.subscribe(sink.append)
    return sm


def _loop_rate(instrumented: bool, rounds: int = 7) -> float:
    """Best-of-N pure cycle-loop rate (``sm.run`` only)."""
    best = 0.0
    for _ in range(rounds):
        sm = _build_loop_sm(instrumented)
        start = time.perf_counter()
        result = sm.run()
        elapsed = time.perf_counter() - start
        rate = result.cycles / elapsed
        if rate > best:
            best = rate
    return best


def _record(name: str, row: dict):
    """Snapshot into BENCH_core.json and append to the history file.

    Returns the *previous* history entry for this row (None on first
    run) so callers can gate against the last recorded measurement.
    """
    document = {}
    if RESULTS_PATH.exists():
        try:
            document = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            document = {}
    document[name] = row
    RESULTS_PATH.write_text(json.dumps(document, indent=2, sort_keys=True),
                            encoding="utf-8")
    rates = {key: value for key, value in row.items()
             if key.endswith("_per_sec") and not key.startswith("pre_pr")}
    config = {key: value for key, value in row.items()
              if key not in rates}
    return history.record_rates("core", name, rates=rates, config=config)


def _write_profile() -> None:
    """Dump the warped-gates loop's cProfile top-20 for the CI artifact."""
    sm = _build_loop_sm(instrumented=False)
    profiler = cProfile.Profile()
    profiler.enable()
    sm.run()
    profiler.disable()
    sink = io.StringIO()
    pstats.Stats(profiler, stream=sink).sort_stats("cumulative") \
        .print_stats(20)
    PROFILE_PATH.write_text(sink.getvalue(), encoding="utf-8")


def _gate(name: str, ok: bool, message: str) -> None:
    if ok:
        return
    _write_profile()
    raise AssertionError(f"{name}: {message} "
                         f"(profile written to {PROFILE_PATH.name})")


def _serial_row(benchmark, technique: Technique, key: str) -> None:
    rate, cycles = _serial_rate(technique)
    # pytest-benchmark records the official timing; the gate uses the
    # in-process best-of-N above so both appear in the bench output.
    benchmark.pedantic(run_benchmark,
                       args=(BENCHMARK, TechniqueConfig(technique)),
                       kwargs={"seed": SEED, "scale": SCALE},
                       rounds=3, iterations=1, warmup_rounds=1)
    speedup = rate / PRE_PR_CYCLES_PER_SEC[key]
    print_figure(f"CORE/serial_{key}",
                 f"{cycles} cycles at {rate:,.0f} cycles/s "
                 f"({speedup:.2f}x vs pre-PR "
                 f"{PRE_PR_CYCLES_PER_SEC[key]:,.0f})")
    previous = _record(f"serial_{key}", {
        "benchmark": BENCHMARK, "scale": SCALE, "cycles": cycles,
        "cycles_per_sec": round(rate, 1),
        "pre_pr_cycles_per_sec": PRE_PR_CYCLES_PER_SEC[key],
        "speedup_vs_pre_pr": round(speedup, 2),
    })
    _gate(f"serial_{key}",
          speedup >= MIN_SPEEDUP * SPEEDUP_TOLERANCE,
          f"single-run throughput {rate:,.0f} cycles/s is "
          f"{speedup:.2f}x the pre-PR rate; gate is "
          f">= {MIN_SPEEDUP}x (with {SPEEDUP_TOLERANCE:.0%} tolerance)")
    history_ok, message = history.check_against_previous(
        previous, "cycles_per_sec", rate)
    _gate(f"serial_{key}", history_ok, f"vs history: {message}")


def test_core_serial_baseline(benchmark):
    """Ungated busy loop — the cheapest configuration's ceiling."""
    _serial_row(benchmark, Technique.BASELINE, "baseline")


def test_core_serial_warped_gates(benchmark):
    """Fully gated + adaptive configuration — the paper's main subject."""
    _serial_row(benchmark, Technique.WARPED_GATES, "warped_gates")


def _dense_rate(rounds: int = 5, **run_kwargs) -> tuple:
    """Best-of-N full-run rate on the dense workload."""
    best = 0.0
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_benchmark(DENSE_BENCHMARK,
                               TechniqueConfig(Technique.WARPED_GATES),
                               seed=SEED, scale=DENSE_SCALE, **run_kwargs)
        elapsed = time.perf_counter() - start
        rate = result.cycles / elapsed
        if rate > best:
            best = rate
    return best, result


def test_core_dense_single_sm(benchmark):
    """Dense-regime throughput: the SoA step kernel's gate.

    Three rates on the same workload: the forced dense kernel (the
    headline), the fast-forward auto path (planner hands dense windows
    to the kernel), and the pure-Python fallback (``REPRO_PURE_PYTHON``
    forces the no-numpy seeding; the compiled build, when installed,
    shows up here too).
    """
    import os

    from repro.sim.vectorize import PURE_PYTHON_ENV

    benchmark.pedantic(
        run_benchmark,
        args=(DENSE_BENCHMARK, TechniqueConfig(Technique.WARPED_GATES)),
        kwargs={"seed": SEED, "scale": DENSE_SCALE, "dense_kernel": True},
        rounds=3, iterations=1, warmup_rounds=1)
    kernel_rate, kernel_result = _dense_rate(dense_kernel=True)
    auto_rate, auto_result = _dense_rate(fast_forward=True)
    saved = os.environ.get(PURE_PYTHON_ENV)
    os.environ[PURE_PYTHON_ENV] = "1"
    try:
        pure_rate, _ = _dense_rate(fast_forward=True)
    finally:
        if saved is None:
            del os.environ[PURE_PYTHON_ENV]
        else:
            os.environ[PURE_PYTHON_ENV] = saved
    kernel_speedup = kernel_rate / PRE_PR_DENSE_CYCLES_PER_SEC
    print_figure(
        "CORE/dense_single_sm",
        f"{kernel_result.cycles} cycles: forced kernel "
        f"{kernel_rate:,.0f} cycles/s ({kernel_speedup:.2f}x vs pre-PR "
        f"{PRE_PR_DENSE_CYCLES_PER_SEC:,.0f}), auto {auto_rate:,.0f} "
        f"(planner_overhead="
        f"{auto_result.stats.planner_overhead_cycles}), "
        f"pure-python {pure_rate:,.0f}")
    previous = _record("dense_single_sm", {
        "benchmark": DENSE_BENCHMARK, "scale": DENSE_SCALE,
        "technique": "warped_gates", "best_of": 5,
        "cycles": kernel_result.cycles,
        "kernel_cycles_per_sec": round(kernel_rate, 1),
        "auto_cycles_per_sec": round(auto_rate, 1),
        "pure_python_cycles_per_sec": round(pure_rate, 1),
        "planner_overhead_cycles":
            auto_result.stats.planner_overhead_cycles,
        "pre_pr_cycles_per_sec": PRE_PR_DENSE_CYCLES_PER_SEC,
        "speedup_vs_pre_pr": round(kernel_speedup, 2),
    })
    _gate("dense_single_sm",
          kernel_speedup >= MIN_DENSE_SPEEDUP * SPEEDUP_TOLERANCE,
          f"dense-kernel throughput {kernel_rate:,.0f} cycles/s is "
          f"{kernel_speedup:.2f}x the pre-PR dense rate; gate is "
          f">= {MIN_DENSE_SPEEDUP}x "
          f"(with {SPEEDUP_TOLERANCE:.0%} tolerance)")
    _gate("dense_single_sm",
          pure_rate >= PRE_PR_DENSE_FF_CYCLES_PER_SEC
          * SPEEDUP_TOLERANCE,
          f"pure-Python dense rate {pure_rate:,.0f} cycles/s fell "
          f"below the pre-PR fast-forward rate "
          f"{PRE_PR_DENSE_FF_CYCLES_PER_SEC:,.0f} "
          f"(with {SPEEDUP_TOLERANCE:.0%} tolerance)")
    history_ok, message = history.check_against_previous(
        previous, "kernel_cycles_per_sec", kernel_rate)
    _gate("dense_single_sm", history_ok, f"vs history: {message}")


def test_core_instrumented_overhead(benchmark):
    """Event-bus-enabled loop must stay within the overhead budget."""
    # pytest-benchmark records the bus-enabled loop as the tracked row
    # (setup builds the SM outside the timer); the gate below compares
    # in-process best-of-N rates so both sides see identical noise.
    benchmark.pedantic(lambda sm: sm.run(),
                       setup=lambda: ((_build_loop_sm(True),), {}),
                       rounds=3, iterations=1)
    plain = _loop_rate(instrumented=False)
    instrumented = _loop_rate(instrumented=True)
    overhead = 1.0 - instrumented / plain
    print_figure("CORE/instrumented",
                 f"plain {plain:,.0f} cycles/s, bus-enabled "
                 f"{instrumented:,.0f} cycles/s "
                 f"({overhead:.1%} overhead)")
    previous = _record("instrumented", {
        "benchmark": BENCHMARK, "scale": SCALE,
        "plain_cycles_per_sec": round(plain, 1),
        "instrumented_cycles_per_sec": round(instrumented, 1),
        "overhead_pct": round(100 * overhead, 1),
    })
    _gate("instrumented",
          overhead <= MAX_INSTRUMENTED_OVERHEAD + OVERHEAD_TOLERANCE,
          f"bus-enabled overhead {overhead:.1%} exceeds the "
          f"{MAX_INSTRUMENTED_OVERHEAD:.0%} target "
          f"(+{OVERHEAD_TOLERANCE:.0%} noise allowance)")
    history_ok, message = history.check_against_previous(
        previous, "instrumented_cycles_per_sec", instrumented)
    _gate("instrumented", history_ok, f"vs history: {message}")
