"""Single-run busy-loop throughput: the hot-loop regression gate.

PR 2's engine made the *grid* fast (fan-out, fast-forward, caching);
this bench pins the orthogonal number that multiplies every sweep — how
many cycles/second ONE busy SM simulates, serially, with no
fast-forward and no cache.  Three rows:

* ``serial_baseline`` / ``serial_warped_gates`` — full
  ``run_benchmark`` wall time (trace build + cycle loop) on hotspot at
  scale 0.5, exactly how the pre-optimisation baselines below were
  measured, so the recorded ``speedup_vs_pre_pr`` is like-for-like;
* ``instrumented`` — the pure cycle loop (``sm.run`` only) with the
  event bus off vs on, isolating observability overhead from workload
  construction.

Rates land in ``BENCH_core.json`` at the repo root (latest snapshot)
and are appended to ``BENCH_history.jsonl`` (full trajectory with git
sha — see :mod:`history`); each gate also compares against the last
recorded history entry.  The gates are CI's single-run throughput
regression net (warn-don't-die: the workflow step tolerates a failure
and surfaces a ``::warning``).  On a gate failure a cProfile summary of
the warped-gates loop is written to ``bench_core_profile.txt`` so the
regression's hot spots travel with the CI artifact.
"""

import cProfile
import io
import json
import pstats
import time
from pathlib import Path

from repro.core.techniques import (Technique, TechniqueConfig, build_sm,
                                   run_benchmark)
from repro.obs.bus import EventBus
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

import history
from conftest import print_figure

SCALE = 0.5
BENCHMARK = "hotspot"
SEED = 0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_core.json"
PROFILE_PATH = REPO_ROOT / "bench_core_profile.txt"

#: Pre-optimisation serial rates (cycles/sec, best-of-5 ``run_benchmark``
#: wall time on the reference dev container, hotspot at scale 0.5) —
#: the denominators for the recorded speedups.  The hot-loop rework
#: targets >= 2x against these.
PRE_PR_CYCLES_PER_SEC = {
    "baseline": 16322.0,
    "warped_gates": 12570.0,
}

#: CI regression gates.  Shared runners differ from the reference
#: container, so the speedup gate keeps a 15% noise allowance and the
#: workflow treats a failure as a warning, not a hard stop.
MIN_SPEEDUP = 2.0
SPEEDUP_TOLERANCE = 0.85
#: Bus-enabled loop overhead target (fraction of the plain-loop rate).
MAX_INSTRUMENTED_OVERHEAD = 0.10
OVERHEAD_TOLERANCE = 0.05


def _serial_rate(technique: Technique, rounds: int = 5) -> tuple:
    """Best-of-N full-run rate (trace build + loop), pre-PR-comparable."""
    best = 0.0
    cycles = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_benchmark(BENCHMARK, TechniqueConfig(technique),
                               seed=SEED, scale=SCALE)
        elapsed = time.perf_counter() - start
        cycles = result.cycles
        rate = cycles / elapsed
        if rate > best:
            best = rate
    return best, cycles


def _build_loop_sm(instrumented: bool):
    kernel = build_kernel(BENCHMARK, seed=SEED, scale=SCALE)
    bus = EventBus(enabled=True) if instrumented else None
    sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                  dram_latency=get_profile(BENCHMARK).dram_latency,
                  bus=bus)
    if instrumented:
        sink = []
        bus.subscribe(sink.append)
    return sm


def _loop_rate(instrumented: bool, rounds: int = 7) -> float:
    """Best-of-N pure cycle-loop rate (``sm.run`` only)."""
    best = 0.0
    for _ in range(rounds):
        sm = _build_loop_sm(instrumented)
        start = time.perf_counter()
        result = sm.run()
        elapsed = time.perf_counter() - start
        rate = result.cycles / elapsed
        if rate > best:
            best = rate
    return best


def _record(name: str, row: dict):
    """Snapshot into BENCH_core.json and append to the history file.

    Returns the *previous* history entry for this row (None on first
    run) so callers can gate against the last recorded measurement.
    """
    document = {}
    if RESULTS_PATH.exists():
        try:
            document = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            document = {}
    document[name] = row
    RESULTS_PATH.write_text(json.dumps(document, indent=2, sort_keys=True),
                            encoding="utf-8")
    rates = {key: value for key, value in row.items()
             if key.endswith("_per_sec") and not key.startswith("pre_pr")}
    config = {key: value for key, value in row.items()
              if key not in rates}
    return history.record_rates("core", name, rates=rates, config=config)


def _write_profile() -> None:
    """Dump the warped-gates loop's cProfile top-20 for the CI artifact."""
    sm = _build_loop_sm(instrumented=False)
    profiler = cProfile.Profile()
    profiler.enable()
    sm.run()
    profiler.disable()
    sink = io.StringIO()
    pstats.Stats(profiler, stream=sink).sort_stats("cumulative") \
        .print_stats(20)
    PROFILE_PATH.write_text(sink.getvalue(), encoding="utf-8")


def _gate(name: str, ok: bool, message: str) -> None:
    if ok:
        return
    _write_profile()
    raise AssertionError(f"{name}: {message} "
                         f"(profile written to {PROFILE_PATH.name})")


def _serial_row(benchmark, technique: Technique, key: str) -> None:
    rate, cycles = _serial_rate(technique)
    # pytest-benchmark records the official timing; the gate uses the
    # in-process best-of-N above so both appear in the bench output.
    benchmark.pedantic(run_benchmark,
                       args=(BENCHMARK, TechniqueConfig(technique)),
                       kwargs={"seed": SEED, "scale": SCALE},
                       rounds=3, iterations=1, warmup_rounds=1)
    speedup = rate / PRE_PR_CYCLES_PER_SEC[key]
    print_figure(f"CORE/serial_{key}",
                 f"{cycles} cycles at {rate:,.0f} cycles/s "
                 f"({speedup:.2f}x vs pre-PR "
                 f"{PRE_PR_CYCLES_PER_SEC[key]:,.0f})")
    previous = _record(f"serial_{key}", {
        "benchmark": BENCHMARK, "scale": SCALE, "cycles": cycles,
        "cycles_per_sec": round(rate, 1),
        "pre_pr_cycles_per_sec": PRE_PR_CYCLES_PER_SEC[key],
        "speedup_vs_pre_pr": round(speedup, 2),
    })
    _gate(f"serial_{key}",
          speedup >= MIN_SPEEDUP * SPEEDUP_TOLERANCE,
          f"single-run throughput {rate:,.0f} cycles/s is "
          f"{speedup:.2f}x the pre-PR rate; gate is "
          f">= {MIN_SPEEDUP}x (with {SPEEDUP_TOLERANCE:.0%} tolerance)")
    history_ok, message = history.check_against_previous(
        previous, "cycles_per_sec", rate)
    _gate(f"serial_{key}", history_ok, f"vs history: {message}")


def test_core_serial_baseline(benchmark):
    """Ungated busy loop — the cheapest configuration's ceiling."""
    _serial_row(benchmark, Technique.BASELINE, "baseline")


def test_core_serial_warped_gates(benchmark):
    """Fully gated + adaptive configuration — the paper's main subject."""
    _serial_row(benchmark, Technique.WARPED_GATES, "warped_gates")


def test_core_instrumented_overhead(benchmark):
    """Event-bus-enabled loop must stay within the overhead budget."""
    # pytest-benchmark records the bus-enabled loop as the tracked row
    # (setup builds the SM outside the timer); the gate below compares
    # in-process best-of-N rates so both sides see identical noise.
    benchmark.pedantic(lambda sm: sm.run(),
                       setup=lambda: ((_build_loop_sm(True),), {}),
                       rounds=3, iterations=1)
    plain = _loop_rate(instrumented=False)
    instrumented = _loop_rate(instrumented=True)
    overhead = 1.0 - instrumented / plain
    print_figure("CORE/instrumented",
                 f"plain {plain:,.0f} cycles/s, bus-enabled "
                 f"{instrumented:,.0f} cycles/s "
                 f"({overhead:.1%} overhead)")
    previous = _record("instrumented", {
        "benchmark": BENCHMARK, "scale": SCALE,
        "plain_cycles_per_sec": round(plain, 1),
        "instrumented_cycles_per_sec": round(instrumented, 1),
        "overhead_pct": round(100 * overhead, 1),
    })
    _gate("instrumented",
          overhead <= MAX_INSTRUMENTED_OVERHEAD + OVERHEAD_TOLERANCE,
          f"bus-enabled overhead {overhead:.1%} exceeds the "
          f"{MAX_INSTRUMENTED_OVERHEAD:.0%} target "
          f"(+{OVERHEAD_TOLERANCE:.0%} noise allowance)")
    history_ok, message = history.check_against_previous(
        previous, "instrumented_cycles_per_sec", instrumented)
    _gate("instrumented", history_ok, f"vs history: {message}")
