"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but the decompositions its design sections
argue for:

* How much of Blackout's win needs GATES' coalescing?
  (``blackout_no_gates`` vs ``naive_blackout``)
* What does GATES scheduling alone cost/do, without any gating?
  (``gates_no_pg`` vs ``baseline``)
* Does the two-level baseline matter, or would single-level
  round-robin behave the same under conventional gating?
  (``lrr_conv_pg`` vs ``conv_pg``)
* Is *any* warp clustering enough, or does GATES' type clustering
  specifically matter?  (``fetch_group_conv_pg`` — a Narasiman-style
  fetch-group scheduler — vs ``gates``-family results)
"""

from repro.analysis.report import format_table
from repro.core.techniques import Technique
from repro.harness.experiment import geomean, normalized_performance
from repro.isa.optypes import ExecUnitKind

from conftest import print_figure

ABLATION_TECHNIQUES = (
    Technique.CONV_PG,
    Technique.LRR_CONV_PG,
    Technique.FETCH_GROUP_CONV_PG,
    Technique.CCWS_CONV_PG,
    Technique.GATES_NO_PG,
    Technique.NAIVE_BLACKOUT,
    Technique.BLACKOUT_NO_GATES,
    Technique.WARPED_GATES,
)


def regenerate(runner):
    rows = []
    for technique in ABLATION_TECHNIQUES:
        int_savings, fp_savings, perf = [], [], []
        for name in runner.settings.benchmarks:
            base = runner.baseline(name)
            result = runner.run(name, technique)
            int_savings.append(runner.static_savings(
                name, technique, ExecUnitKind.INT))
            if name in runner.fp_benchmarks():
                fp_savings.append(runner.static_savings(
                    name, technique, ExecUnitKind.FP))
            perf.append(normalized_performance(base, result))
        rows.append([technique.value,
                     sum(int_savings) / len(int_savings),
                     sum(fp_savings) / len(fp_savings),
                     geomean(perf)])
    return rows


def test_ablations(benchmark, sweep_runner):
    rows = benchmark.pedantic(regenerate, args=(sweep_runner,),
                              rounds=1, iterations=1)
    text = format_table(("technique", "int_savings", "fp_savings",
                         "geomean_perf"), rows,
                        title="Ablations: isolating each mechanism")
    print_figure("ABLATIONS", text)

    by_name = {r[0]: r for r in rows}
    # GATES alone (no PG) saves nothing -- it only shapes idleness.
    assert by_name["gates_no_pg"][1] == 0.0
    assert by_name["gates_no_pg"][2] == 0.0
    # Blackout without GATES still works (the state machine alone pays),
    # demonstrating the two mechanisms are separable.
    assert by_name["blackout_no_gates"][1] > 0.0
    # The full system beats conventional gating on savings.
    assert by_name["warped_gates"][1] > by_name["conv_pg"][1]
    # Every configuration stays within a sane performance band.
    for row in rows:
        assert row[3] > 0.85
