"""Figure 6: critical wakeups vs performance-loss correlation.

Sweeps the static idle-detect window over 0..10 under GATES + Blackout
and correlates critical wakeups per kilocycle against normalised
runtime, per benchmark — the evidence behind Adaptive idle-detect's
design (eleven benchmarks correlate above r = 0.9 in the paper; the
benchmarks that never slow down show weak correlation).
"""

from repro.analysis.report import format_table
from repro.harness.sweeps import idle_detect_sweep

from conftest import print_figure


def test_fig06_critical_wakeup_correlation(benchmark, sweep_runner):
    results = benchmark.pedantic(
        idle_detect_sweep, args=(sweep_runner,),
        kwargs={"values": tuple(range(0, 11))}, rounds=1, iterations=1)

    rows = []
    for result in results:
        min_x = min(x for x, _ in result.points)
        max_x = max(x for x, _ in result.points)
        max_slowdown = max(y for _, y in result.points)
        rows.append([result.benchmark, result.pearson, min_x, max_x,
                     max_slowdown])
    text = format_table(
        ("benchmark", "pearson_r", "min_cw_per_kcyc", "max_cw_per_kcyc",
         "worst_norm_runtime"), rows,
        title="Figure 6: critical wakeups vs runtime across "
              "idle-detect 0..10 (GATES + Blackout)")
    print_figure("FIG 6", text + "\n\npaper: 11 of 18 benchmarks show "
                 "r > 0.9; weakly correlated benchmarks are those with "
                 "no Blackout slowdown to begin with")

    # Shape: correlations are well-defined and some benchmarks show a
    # strong positive link between critical wakeups and slowdown.
    assert all(-1.0 <= r[1] <= 1.0 for r in rows)
    assert max(r[1] for r in rows) > 0.5
    # Raising idle-detect suppresses critical wakeups (the controller's
    # actuation direction): the sweep must span a non-trivial range.
    assert any(r[3] > r[2] for r in rows)
