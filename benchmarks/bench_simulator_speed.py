"""Simulator throughput: simulated cycles per wall-clock second.

Not a paper figure — the standard housekeeping number any simulator
release reports.  Measures the cycle model's speed on a standard
workload under the cheapest (baseline) and most instrumented (Warped
Gates) configurations, with real multi-round statistics (this is the
one bench where pytest-benchmark's repetition machinery earns its keep,
since the measured function is fast and deterministic).
"""

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

from conftest import print_figure

BENCH = "hotspot"
SCALE = 0.5


def run_once(technique: Technique) -> int:
    kernel = build_kernel(BENCH, scale=SCALE)
    sm = build_sm(kernel, TechniqueConfig(technique),
                  dram_latency=get_profile(BENCH).dram_latency)
    return sm.run().cycles


def test_speed_baseline(benchmark):
    cycles = benchmark.pedantic(run_once, args=(Technique.BASELINE,),
                                rounds=3, iterations=1, warmup_rounds=1)
    rate = cycles / benchmark.stats.stats.mean
    print_figure("SPEED/baseline",
                 f"{cycles} simulated cycles at {rate:,.0f} cycles/s")
    assert rate > 1_000  # sanity floor: a regression to <1k cyc/s is a bug


def test_speed_warped_gates(benchmark):
    cycles = benchmark.pedantic(run_once, args=(Technique.WARPED_GATES,),
                                rounds=3, iterations=1, warmup_rounds=1)
    rate = cycles / benchmark.stats.stats.mean
    print_figure("SPEED/warped_gates",
                 f"{cycles} simulated cycles at {rate:,.0f} cycles/s")
    assert rate > 1_000
