"""Simulator throughput: simulated cycles per wall-clock second.

Not a paper figure — the standard housekeeping number any simulator
release reports.  Measures the cycle model's speed on a standard
workload under the cheapest (baseline) and most instrumented (Warped
Gates) configurations, with real multi-round statistics (this is the
one bench where pytest-benchmark's repetition machinery earns its keep,
since the measured function is fast and deterministic).

The observability layer adds two more rows: the same Warped Gates run
with an *enabled* event bus feeding a subscriber (what ``--emit-events``
costs) — the default rows run with the bus disabled, so comparing them
against historical numbers checks the no-op fast path stays free.

Each measured rate is also appended to ``BENCH_obs.json`` at the repo
root, giving CI and future performance PRs a machine-readable
cycles/sec record instead of scraping the pytest-benchmark banner.
"""

import json
from pathlib import Path

from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.obs.bus import EventBus
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

from conftest import print_figure

BENCH = "hotspot"
SCALE = 0.5

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def run_once(technique: Technique, instrumented: bool = False) -> int:
    kernel = build_kernel(BENCH, scale=SCALE)
    bus = EventBus(enabled=True) if instrumented else None
    sm = build_sm(kernel, TechniqueConfig(technique),
                  dram_latency=get_profile(BENCH).dram_latency, bus=bus)
    if instrumented:
        events = []
        sm.bus.subscribe(events.append)
    return sm.run().cycles


def record_rate(name: str, cycles: int, rate: float) -> None:
    """Merge one measured rate into BENCH_obs.json."""
    document = {}
    if RESULTS_PATH.exists():
        try:
            document = json.loads(RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            document = {}
    document[name] = {"benchmark": BENCH, "scale": SCALE,
                      "cycles": cycles, "cycles_per_sec": round(rate, 1)}
    RESULTS_PATH.write_text(json.dumps(document, indent=2, sort_keys=True),
                            encoding="utf-8")


def _measure(benchmark, name: str, technique: Technique,
             instrumented: bool = False) -> None:
    # Best-of-N over >=5 rounds: the mean of 3 rounds was noisy enough
    # for the instrumented row to occasionally beat the uninstrumented
    # one; the minimum is the standard low-noise estimator for a
    # deterministic workload (least OS/GC interference).
    cycles = benchmark.pedantic(run_once, args=(technique, instrumented),
                                rounds=5, iterations=1, warmup_rounds=1)
    rate = cycles / benchmark.stats.stats.min
    print_figure(f"SPEED/{name}",
                 f"{cycles} simulated cycles at {rate:,.0f} cycles/s")
    record_rate(name, cycles, rate)
    assert rate > 1_000  # sanity floor: a regression to <1k cyc/s is a bug


def test_speed_baseline(benchmark):
    _measure(benchmark, "baseline", Technique.BASELINE)


def test_speed_warped_gates(benchmark):
    _measure(benchmark, "warped_gates", Technique.WARPED_GATES)


def test_speed_warped_gates_instrumented(benchmark):
    """Warped Gates with the event bus enabled and one subscriber."""
    _measure(benchmark, "warped_gates_instrumented",
             Technique.WARPED_GATES, instrumented=True)
