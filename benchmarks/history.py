"""Append-only performance trajectory for the benchmark suite.

``BENCH_core.json`` / ``BENCH_engine.json`` are *snapshots* — each bench
run overwrites them in place, so the repo never accumulates a
performance history.  This module adds the missing axis: every recorded
rate is also appended as one JSONL line to ``BENCH_history.jsonl`` at
the repo root, stamped with the git sha, timestamp and the bench's
config, so ``git log`` + the history file together give a
machine-readable throughput trajectory.

The CI regression gates use :func:`previous_entry` /
:func:`check_against_previous` to compare a fresh rate against the last
*recorded* run (not just the hard-coded floor baked into each bench):
a large drop versus the previous entry fails the gate even when the
absolute floor still passes.  Fetch the previous entry *before*
appending the new one — the helpers in the bench scripts do this for
you via :func:`record_rates`.

Torn or hand-mangled lines are skipped on read; the history file is
append-only and safe to truncate if it ever grows unwieldy.
"""

import json
import subprocess
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"

#: Default drop tolerance versus the previous recorded entry.  History
#: entries come from heterogeneous machines (laptops, CI runners), so
#: the gate is deliberately loose — it catches step-function
#: regressions, not noise.
DEFAULT_TOLERANCE = 0.30


def git_sha(root: Union[str, Path] = REPO_ROOT) -> str:
    """The current short commit sha, or "" outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=str(root), capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return ""
    if proc.returncode != 0:
        return ""
    return proc.stdout.strip()


def read_history(path: Union[str, Path] = HISTORY_PATH,
                 ) -> Iterator[Dict]:
    """Yield history records oldest-first, skipping torn lines."""
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def previous_entry(suite: str, name: str,
                   path: Union[str, Path] = HISTORY_PATH,
                   ) -> Optional[Dict]:
    """The most recent history record for ``(suite, name)``, if any."""
    latest = None
    for record in read_history(path):
        if record.get("suite") == suite and record.get("name") == name:
            latest = record
    return latest


def append_entry(suite: str, name: str, rates: Dict,
                 config: Optional[Dict] = None,
                 path: Union[str, Path] = HISTORY_PATH) -> Dict:
    """Append one timestamped record and return it."""
    record = {
        "suite": suite,
        "name": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
        "git_sha": git_sha(),
        "config": dict(config or {}),
        "rates": dict(rates),
    }
    path = Path(path)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def record_rates(suite: str, name: str, rates: Dict,
                 config: Optional[Dict] = None,
                 path: Union[str, Path] = HISTORY_PATH,
                 ) -> Optional[Dict]:
    """Append a record; return the *previous* entry for gating.

    The previous entry is captured before the append so callers can gate
    the fresh rates against the last recorded run in one call.
    """
    previous = previous_entry(suite, name, path)
    append_entry(suite, name, rates, config, path)
    return previous


def check_against_previous(previous: Optional[Dict], rate_key: str,
                           rate: float,
                           tolerance: float = DEFAULT_TOLERANCE,
                           ) -> Tuple[bool, str]:
    """Gate a fresh rate against the previous history entry.

    Returns ``(ok, message)``.  Passes trivially when there is no
    previous entry or it lacks ``rate_key`` (first run, new metric).
    """
    if previous is None:
        return True, f"{rate_key}: no history yet, gate passes"
    old = previous.get("rates", {}).get(rate_key)
    if not isinstance(old, (int, float)) or old <= 0:
        return True, f"{rate_key}: no comparable previous rate"
    floor = old * (1.0 - tolerance)
    sha = previous.get("git_sha", "?")
    if rate >= floor:
        return True, (f"{rate_key}: {rate:,.0f} vs previous "
                      f"{old:,.0f} ({sha}) — within {tolerance:.0%}")
    return False, (f"{rate_key}: {rate:,.0f} dropped more than "
                   f"{tolerance:.0%} below the previous entry "
                   f"{old:,.0f} (recorded at "
                   f"{previous.get('recorded_at', '?')}, {sha})")


__all__ = [
    "DEFAULT_TOLERANCE", "HISTORY_PATH", "append_entry",
    "check_against_previous", "git_sha", "previous_entry",
    "read_history", "record_rates",
]
