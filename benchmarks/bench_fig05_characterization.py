"""Figure 5: workload characterisation (instruction mix, active warps).

Regenerates 5a (instruction-type mix per benchmark, from the generated
traces) and 5b (average / maximum active-warp population, from baseline
simulator runs, next to the values read off the paper's figure).
"""

from repro.analysis.report import format_table
from repro.harness import figures
from repro.workloads.characterization import count_low_occupancy
from repro.workloads.specs import INTEGER_ONLY_BENCHMARKS

from conftest import print_figure


def test_fig05a_instruction_mix(benchmark, runner):
    rows = benchmark.pedantic(figures.fig5a_rows, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(figures.FIG5A_HEADERS, rows,
                        title="Figure 5a: instruction mix")
    print_figure("FIG 5a", text)

    by_name = {r[0]: r for r in rows}
    assert len(rows) == 18
    # Integer-only benchmarks show zero FP, everything else has a mix.
    for name in INTEGER_ONLY_BENCHMARKS:
        assert by_name[name][2] == 0.0
    mixed = [r for r in rows if r[0] not in INTEGER_ONLY_BENCHMARKS]
    assert all(r[2] > 0.05 for r in mixed)
    # Fractions sum to one per benchmark.
    for row in rows:
        assert abs(sum(row[1:5]) - 1.0) < 1e-9


def test_fig05b_active_warps(benchmark, runner):
    rows = benchmark.pedantic(figures.fig5b_rows, args=(runner,),
                              rounds=1, iterations=1)
    text = format_table(figures.FIG5B_HEADERS, rows,
                        title="Figure 5b: active warp population "
                              "(sorted by measured average)")
    low = count_low_occupancy([{"avg_active_warps": r[1]} for r in rows])
    print_figure("FIG 5b", text + f"\n\nbenchmarks under 10 average "
                 f"active warps: {low} (paper: 5 of 18)")

    assert len(rows) == 18
    for row in rows:
        assert 0.0 < row[1] <= 48.0
        assert row[1] <= row[2]  # avg <= max
    # A meaningful spread between occupancy-rich and occupancy-poor
    # benchmarks must exist (the paper's low-occupancy group).
    assert low >= 3
