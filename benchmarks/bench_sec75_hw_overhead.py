"""Section 7.5: hardware overhead of the added counters.

Regenerates the paper's overhead arithmetic from the counter inventory
(the GATES type bits, ACTV/RDY counters and priority register; the
Blackout BET countdowns; the adaptive critical-wakeup and idle-detect
registers) and the quoted 45 nm synthesis constants.
"""

from repro.analysis.report import format_table
from repro.harness import figures
from repro.power.overhead import bits_by_technique, overhead_report

from conftest import print_figure


def test_sec75_hardware_overhead(benchmark):
    rows = benchmark.pedantic(figures.sec75_rows, rounds=1, iterations=1)
    text = format_table(figures.SEC75_HEADERS, rows,
                        title="Section 7.5: per-SM counter overhead")
    inventory = bits_by_technique()
    inv_text = "\n".join(f"  {tech}: {bits} bits"
                         for tech, bits in sorted(inventory.items()))
    print_figure("SEC 7.5", text + "\n\nstorage inventory per SM:\n"
                 + inv_text + "\n\npaper: 1,210.8 um^2 (0.003% of a "
                 "48.1 mm^2 SM), 0.08% dynamic and 0.0007% leakage "
                 "power overhead")

    report = overhead_report()
    # The paper's reported overhead magnitudes must fall out of the
    # inventory + constants.
    assert report.area_fraction < 1e-4          # "0.003%" area
    assert report.dynamic_fraction < 1e-3       # "0.08%" dynamic
    assert report.leakage_fraction < 1e-4       # "0.0007%" leakage
    assert inventory["GATES"] > inventory["Blackout"]
