"""Device-level run: 15 SMs under Warped Gates.

Not a paper figure, but the natural integration check: the GTX480 has
15 SMs; distribute a kernel over the full device, run every SM under
baseline and Warped Gates, and verify that device-level savings and
runtime track the per-SM story (the paper's statistics are all per-SM).
"""

from repro.analysis.report import format_table
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ExecUnitKind
from repro.sim.gpu import GPU
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

N_SMS = 15
BENCHMARKS = ("srad", "lbm", "hotspot")


def run_device(name: str, technique: Technique, scale: float):
    profile = get_profile(name)

    def factory(kernel):
        return build_sm(kernel, TechniqueConfig(technique),
                        dram_latency=profile.dram_latency)

    kernel = build_kernel(name, scale=scale)
    return GPU(n_sms=N_SMS, sm_factory=factory).run(kernel)


def regenerate(figure_scale):
    # Always full-scale kernels: splitting a scaled-down kernel over 15
    # SMs starves each SM of warps and measures occupancy, not gating.
    del figure_scale
    rows = []
    for name in BENCHMARKS:
        base = run_device(name, Technique.BASELINE, 1.0)
        wg = run_device(name, Technique.WARPED_GATES, 1.0)
        activity = wg.unit_activity(ExecUnitKind.INT)
        savings = (activity.gated_cycles - activity.gating_events * 14) \
            / activity.cycles if activity.cycles else 0.0
        rows.append([name, len(wg.sm_results), wg.cycles,
                     base.cycles / wg.cycles, savings])
    return rows


def test_device_level_run(benchmark, figure_scale):
    rows = benchmark.pedantic(regenerate, args=(figure_scale,),
                              rounds=1, iterations=1)
    text = format_table(
        ("benchmark", "sms_used", "device_cycles", "norm_perf",
         "device_int_savings"), rows,
        title=f"Device-level Warped Gates ({N_SMS} SMs)")
    print_figure = __import__("conftest").print_figure
    print_figure("DEVICE", text)

    for row in rows:
        assert row[1] >= 2                # work actually spread out
        assert row[3] > 0.85              # no pathological slowdown
        assert row[4] > 0.0               # device-level net savings
