"""Device-scale throughput and integration checks (15-SM GTX480).

Two jobs:

* ``device_scale`` row — the event-driven span core's headline number
  at full-chip configuration: aggregate simulated cycles/second over
  all 15 SMs of the ``gtx480`` preset (bfs at scale 1.0, warped gates,
  fast-forward on), the fraction of cycles real-stepped vs skipped as
  provably-quiescent spans, and the same pair for a single full SM.
  Recorded into ``BENCH_core.json`` + ``BENCH_history.jsonl`` next to
  the single-SM hot-loop rows; gated warn-don't-die in CI.  The gate
  passes when the device run either doubles the pre-change aggregate
  rate or skips at least half of all cycles — sparse per-SM occupancy
  (48 warps / 15 SMs) is exactly the regime busy-span skipping was
  built for, so the skip fraction is the primary signal.  On failure a
  cProfile top-20 lands in ``bench_device_profile.txt``.

* The device-level integration table (baseline vs warped gates over
  three benchmarks) — the sanity net that device savings and runtime
  track the per-SM story.
"""

import cProfile
import io
import pstats
import time
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.device import device_preset
from repro.core.techniques import Technique, TechniqueConfig, build_sm
from repro.isa.optypes import ExecUnitKind
from repro.sim.gpu import GPU, split_kernel
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile

import history
from conftest import print_figure
from bench_core import _record

N_SMS = 15
BENCHMARKS = ("srad", "lbm", "hotspot")

DEVICE_BENCHMARK = "bfs"
DEVICE_SCALE = 1.0
SEED = 0

REPO_ROOT = Path(__file__).resolve().parent.parent
PROFILE_PATH = REPO_ROOT / "bench_device_profile.txt"

#: Pre-change rates (idle-only fast-forward core, best-of-N on the
#: reference dev container; matches the seeded ``device_scale`` history
#: entry).  The aggregate device rate sums simulated cycles across all
#: 15 SM parts; ``real_stepped`` is the fraction of those cycles the
#: cycle loop actually executed (the rest were skipped spans).
PRE_CHANGE_DEVICE_CYCLES_PER_SEC = 116_409.0
PRE_CHANGE_SINGLE_SM_CYCLES_PER_SEC = 28_543.0

#: Acceptance gate: the span core must either double the pre-change
#: aggregate rate (15% runner-noise allowance) or prove at least half
#: of all device cycles quiescent and skip them.
MIN_DEVICE_SPEEDUP = 2.0
SPEEDUP_TOLERANCE = 0.85
MIN_SKIPPED_FRACTION = 0.5


def _build_device_sms():
    """The 15 per-part SMs of one gtx480 warped-gates launch."""
    preset = device_preset("gtx480")
    kernel = build_kernel(DEVICE_BENCHMARK, seed=SEED, scale=DEVICE_SCALE)
    parts = split_kernel(kernel, preset.n_sms)
    dram = preset.memory_side.effective_dram_latency(
        get_profile(DEVICE_BENCHMARK).dram_latency, len(parts))
    return [build_sm(part, TechniqueConfig(Technique.WARPED_GATES),
                     sm_config=preset.sm, dram_latency=dram,
                     fast_forward=True)
            for part in parts]


def _build_single_sm():
    kernel = build_kernel(DEVICE_BENCHMARK, seed=SEED, scale=DEVICE_SCALE)
    return build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES),
                    dram_latency=get_profile(DEVICE_BENCHMARK).dram_latency,
                    fast_forward=True)


def _run_sms(sms):
    """Run the SMs serially; return (agg rate, total, real-stepped)."""
    start = time.perf_counter()
    results = [sm.run() for sm in sms]
    elapsed = time.perf_counter() - start
    total_cycles = sum(r.stats.cycles for r in results)
    skipped = sum(sm._forwarder.skipped_cycles for sm in sms
                  if sm._forwarder is not None)
    real_stepped = (total_cycles - skipped) / total_cycles \
        if total_cycles else 1.0
    return total_cycles / elapsed, total_cycles, real_stepped


#: Timing rounds per measurement — the recorded rate is the best of
#: these, which filters scheduler noise on shared CI runners.
BEST_OF_ROUNDS = 5


def _best_of(build, rounds: int = BEST_OF_ROUNDS):
    best_rate, total, real_stepped = 0.0, 0, 1.0
    for _ in range(rounds):
        rate, cycles, stepped = _run_sms(build())
        if rate > best_rate:
            best_rate, total, real_stepped = rate, cycles, stepped
    return best_rate, total, real_stepped


def _write_profile() -> None:
    """cProfile top-20 of one full device launch, for the CI artifact."""
    sms = _build_device_sms()
    profiler = cProfile.Profile()
    profiler.enable()
    for sm in sms:
        sm.run()
    profiler.disable()
    sink = io.StringIO()
    pstats.Stats(profiler, stream=sink).sort_stats("cumulative") \
        .print_stats(20)
    PROFILE_PATH.write_text(sink.getvalue(), encoding="utf-8")


def _gate(name: str, ok: bool, message: str) -> None:
    if ok:
        return
    _write_profile()
    raise AssertionError(f"{name}: {message} "
                         f"(profile written to {PROFILE_PATH.name})")


def test_device_scale_rate(benchmark):
    """Aggregate device throughput + skip coverage of the span core."""
    benchmark.pedantic(lambda sms: [sm.run() for sm in sms],
                       setup=lambda: ((_build_device_sms(),), {}),
                       rounds=3, iterations=1)
    device_rate, device_total, device_stepped = \
        _best_of(_build_device_sms)
    single_rate, _, single_stepped = \
        _best_of(lambda: [_build_single_sm()])
    device_speedup = device_rate / PRE_CHANGE_DEVICE_CYCLES_PER_SEC
    skipped_fraction = 1.0 - device_stepped
    print_figure(
        "DEVICE/device_scale",
        f"{N_SMS} SMs: {device_rate:,.0f} agg cycles/s over "
        f"{device_total} cycles ({skipped_fraction:.1%} skipped, "
        f"{device_speedup:.2f}x vs pre-change "
        f"{PRE_CHANGE_DEVICE_CYCLES_PER_SEC:,.0f}); single SM "
        f"{single_rate:,.0f} cycles/s "
        f"({1.0 - single_stepped:.1%} skipped)")
    previous = _record("device_scale", {
        "benchmark": DEVICE_BENCHMARK, "scale": DEVICE_SCALE,
        "n_sms": N_SMS, "technique": "warped_gates",
        "best_of": BEST_OF_ROUNDS,
        "device_cycles_per_sec": round(device_rate, 1),
        "single_sm_cycles_per_sec": round(single_rate, 1),
        "real_stepped_fraction": round(device_stepped, 3),
        "single_sm_real_stepped_fraction": round(single_stepped, 3),
        "pre_pr_device_cycles_per_sec": PRE_CHANGE_DEVICE_CYCLES_PER_SEC,
        "pre_pr_single_sm_cycles_per_sec":
            PRE_CHANGE_SINGLE_SM_CYCLES_PER_SEC,
        "speedup_vs_pre_pr": round(device_speedup, 2),
    })
    _gate("device_scale",
          skipped_fraction >= MIN_SKIPPED_FRACTION
          or device_speedup >= MIN_DEVICE_SPEEDUP * SPEEDUP_TOLERANCE,
          f"device run skipped only {skipped_fraction:.1%} of cycles "
          f"and ran {device_speedup:.2f}x the pre-change rate; gate "
          f"needs >= {MIN_SKIPPED_FRACTION:.0%} skipped or "
          f">= {MIN_DEVICE_SPEEDUP}x "
          f"(with {SPEEDUP_TOLERANCE:.0%} tolerance)")
    history_ok, message = history.check_against_previous(
        previous, "device_cycles_per_sec", device_rate)
    _gate("device_scale", history_ok, f"vs history: {message}")


# ----------------------------------------------------------------------
# device-level integration table (baseline vs warped gates)
# ----------------------------------------------------------------------

def run_device(name: str, technique: Technique, scale: float):
    profile = get_profile(name)

    def factory(kernel):
        return build_sm(kernel, TechniqueConfig(technique),
                        dram_latency=profile.dram_latency)

    kernel = build_kernel(name, scale=scale)
    return GPU(n_sms=N_SMS, sm_factory=factory).run(kernel)


def regenerate(figure_scale):
    # Always full-scale kernels: splitting a scaled-down kernel over 15
    # SMs starves each SM of warps and measures occupancy, not gating.
    del figure_scale
    rows = []
    for name in BENCHMARKS:
        base = run_device(name, Technique.BASELINE, 1.0)
        wg = run_device(name, Technique.WARPED_GATES, 1.0)
        activity = wg.unit_activity(ExecUnitKind.INT)
        savings = (activity.gated_cycles - activity.gating_events * 14) \
            / activity.cycles if activity.cycles else 0.0
        rows.append([name, len(wg.sm_results), wg.cycles,
                     base.cycles / wg.cycles, savings])
    return rows


def test_device_level_run(benchmark, figure_scale):
    rows = benchmark.pedantic(regenerate, args=(figure_scale,),
                              rounds=1, iterations=1)
    text = format_table(
        ("benchmark", "sms_used", "device_cycles", "norm_perf",
         "device_int_savings"), rows,
        title=f"Device-level Warped Gates ({N_SMS} SMs)")
    print_figure("DEVICE", text)

    for row in rows:
        assert row[1] >= 2                # work actually spread out
        assert row[3] > 0.85              # no pathological slowdown
        assert row[4] > 0.0               # device-level net savings
