"""Blocking HTTP client for the simulation service.

Stdlib-only (``http.client``), mirroring the API surface in
:mod:`repro.service.api`: submit, status, settled result, and the JSONL
event stream.  This is what ``repro submit`` and the CI smoke job use;
``examples/service_client.py`` shows the same calls end to end.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One service endpoint, addressed as ``host:port``.

    Connections are per-call (the service closes after each response),
    so a client object is cheap and holds no sockets between calls.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8352,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # one request/response exchange
    # ------------------------------------------------------------------

    def _call(self, method: str, path: str,
              payload: Optional[dict] = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            try:
                doc = json.loads(text) if text else {}
            except ValueError:
                doc = {"error": text}
            if response.status >= 400:
                raise ServiceError(response.status,
                                   str(doc.get("error", text)))
            return doc
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """GET ``/healthz``: liveness plus job/engine counters."""
        return self._call("GET", "/healthz")

    def submit(self, request: dict) -> dict:
        """POST one job request document; returns the status document.

        ``request`` is the wire form
        :meth:`repro.service.core.JobRequest.from_dict` accepts:
        ``benchmark`` plus either ``technique`` (a registered name) or
        ``spec`` (a full technique-spec object), and optional ``seed``,
        ``scale``, ``fast_forward``.
        """
        return self._call("POST", "/v1/jobs", payload=request)

    def jobs(self) -> List[dict]:
        """GET ``/v1/jobs``: status documents for every known job."""
        return self._call("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        """GET one job's status document (404 -> :class:`ServiceError`)."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str, wait: float = 0.0) -> dict:
        """GET the result document, long-polling up to ``wait`` seconds."""
        path = f"/v1/jobs/{job_id}/result"
        if wait > 0:
            path += f"?wait={wait}"
        return self._call("GET", path)

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job settles; returns the result document.

        Uses the server-side ``?wait`` long-poll per round, falling
        back to client-side polling between rounds, so it works with
        short per-request timeouts too.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} did not settle within "
                                   f"{timeout:.1f}s")
            try:
                return self.result(job_id,
                                   wait=min(remaining, self.timeout / 2))
            except ServiceError as exc:
                if exc.status not in (404, 408):
                    raise
            time.sleep(poll)

    def stream(self, job_id: str) -> Iterator[Dict[str, object]]:
        """Yield the job's feed records (JSONL) until the stream ends.

        Closing the generator mid-stream just drops the connection —
        the server keeps the job running.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/stream")
            response = connection.getresponse()
            if response.status >= 400:
                text = response.read().decode("utf-8")
                try:
                    doc = json.loads(text)
                except ValueError:
                    doc = {"error": text}
                raise ServiceError(response.status,
                                   str(doc.get("error", text)))
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()


__all__ = ["ServiceClient", "ServiceError"]
