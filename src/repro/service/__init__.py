"""Simulation-as-a-service: one run path behind one core object.

* :mod:`repro.service.core` — the synchronous
  :class:`SimulationService`: spec-addressed :class:`JobRequest`\\ s,
  single-flight dedupe onto :class:`JobTicket`\\ s, structured
  :class:`JobState` lifecycle, engine-or-inline execution, replayable
  per-job event feeds.  The experiment runner, the sweeps, the
  replication harness and the CLI all run through it.
* :mod:`repro.service.api` — the thin asyncio JSON-over-HTTP front end
  (``repro serve``).
* :mod:`repro.service.client` — the stdlib blocking client
  (``repro submit``, CI smoke, examples).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.core import (
    JobRequest,
    JobState,
    JobTicket,
    SimulationService,
    raise_for_outcome,
)

__all__ = [
    "JobRequest",
    "JobState",
    "JobTicket",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "raise_for_outcome",
]
