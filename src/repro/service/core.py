"""The synchronous simulation-service core.

One object — :class:`SimulationService` — owns the whole run path that
was previously duplicated across the experiment runner, the sweeps, the
replication harness and the CLI:

* **requests, not call sites**: a :class:`JobRequest` is the frozen,
  wire-serialisable identity of one simulation (benchmark, resolved
  technique spec, SM config, seed, scale, fast-forward choice);
* **single-flight dedupe**: concurrent or repeated submissions of the
  same request share one :class:`JobTicket` — one engine execution, N
  responses — keyed on the spec's canonical
  :meth:`~repro.core.spec.TechniqueSpec.spec_hash` so an enum member,
  its name string and an equal hand-built spec all land on one ticket;
* **structured lifecycle**: tickets move ``queued`` → ``running`` →
  a terminal :class:`JobState` mapped from the engine's
  :class:`~repro.engine.faults.JobStatus`, with a replayable per-job
  :class:`~repro.obs.subscribe.Feed` any number of consumers can
  stream (a consumer disconnecting never perturbs the job);
* **both execution paths**: with an engine, jobs go through
  :meth:`~repro.engine.pool.ParallelEngine.run_sim_jobs` (persistent
  cache, retries, ledger); without one, the inline path reproduces the
  classic serial runner byte-for-byte, including event-bus wiring.

The service is synchronous and thread-safe; the asyncio front end in
:mod:`repro.service.api` is a thin shell over it.  The engine itself is
*not* thread-safe (per-batch telemetry state), so all engine access is
serialised behind one lock — concurrency buys dedupe and admission, not
parallel batches; the engine's own worker pool provides the fan-out.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.digest import result_digest
from repro.core.spec import TechniqueSpec, as_spec
from repro.core.techniques import build_sm
from repro.engine.faults import JobFailedError, JobStatus, last_error_line
from repro.engine.jobs import JobOutcome, SimJob
from repro.obs.bus import EventBus
from repro.obs.manifest import RunManifest, config_hash
from repro.obs.subscribe import Feed
from repro.obs.telemetry import (
    EngineEvent,
    ServiceJobAccepted,
    ServiceJobStateChanged,
    job_label,
)
from repro.sim.config import SMConfig
from repro.sim.sm import SimResult
from repro.workloads.registry import build_kernel
from repro.workloads.specs import BENCHMARK_NAMES, get_profile


class JobState(str, Enum):
    """Lifecycle of one service job.

    The terminal states mirror :class:`~repro.engine.faults.JobStatus`
    value-for-value, so ``JobState(outcome.status.value)`` is the whole
    mapping.
    """

    QUEUED = "queued"
    RUNNING = "running"
    OK = "ok"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """True for settled states (anything but queued/running)."""
        return self not in (JobState.QUEUED, JobState.RUNNING)


@dataclass(frozen=True)
class JobRequest:
    """The frozen identity of one requested simulation.

    ``technique`` is anything :func:`repro.core.spec.as_spec` resolves
    (spec, registered name, enum member); it is kept exactly as given,
    and :attr:`spec` is the resolved identity every key uses — the same
    convention as :class:`~repro.engine.jobs.SimJob`.

    ``fast_forward=None`` (the default) defers to the executing path:
    the engine's configured default when one is attached, plain serial
    simulation inline — exactly what the pre-service runner did.
    """

    benchmark: str
    technique: object
    sm_config: SMConfig = field(default_factory=SMConfig)
    seed: int = 0
    scale: float = 1.0
    fast_forward: Optional[bool] = None

    @property
    def spec(self) -> TechniqueSpec:
        """The resolved technique spec this request runs."""
        return as_spec(self.technique)

    def label(self) -> str:
        """Telemetry label, matching the engine's ``job_label`` form."""
        return f"{self.benchmark}/{self.spec.name}/s{self.seed}"

    def key(self, fast_forward: bool) -> Tuple:
        """The single-flight dedupe key, with fast-forward resolved.

        Finer than the old runner memo key — it also pins the SM config
        and the resolved fast-forward flag, so one service shared by
        differently-configured callers can never alias their cells.
        """
        return (self.benchmark, self.spec.spec_hash(), self.seed,
                self.scale, config_hash(self.sm_config), fast_forward)

    def to_sim_job(self, fast_forward: bool) -> SimJob:
        """The engine-level :class:`SimJob` this request resolves to."""
        return SimJob(benchmark=self.benchmark, config=self.spec,
                      sm_config=self.sm_config, seed=self.seed,
                      scale=self.scale, fast_forward=fast_forward)

    # -- wire format ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON form for the HTTP API (SM config stays server-side)."""
        doc: Dict[str, object] = {
            "benchmark": self.benchmark,
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "scale": self.scale,
        }
        if self.fast_forward is not None:
            doc["fast_forward"] = self.fast_forward
        return doc

    @classmethod
    def from_dict(cls, doc: object) -> "JobRequest":
        """Parse and fully validate the JSON form.

        ``technique`` (a registered name) and ``spec`` (a full
        :meth:`TechniqueSpec.to_dict` document) are alternatives —
        exactly one must be present.  Every schema violation raises
        ValueError with the offending key named, never a KeyError.
        """
        if not isinstance(doc, dict):
            raise ValueError("job request must be a JSON object, got "
                             f"{type(doc).__name__}")
        allowed = {"benchmark", "technique", "spec", "seed", "scale",
                   "fast_forward"}
        unknown = sorted(set(doc) - allowed)
        if unknown:
            raise ValueError(f"job request has unknown key(s) {unknown}; "
                             f"allowed: {sorted(allowed)}")
        benchmark = doc.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            raise ValueError("'benchmark' must be a non-empty string")
        if benchmark not in BENCHMARK_NAMES:
            from repro.core.spec import unknown_name_error
            raise unknown_name_error("benchmark", benchmark,
                                     BENCHMARK_NAMES)
        has_name = "technique" in doc
        has_spec = "spec" in doc
        if has_name == has_spec:
            raise ValueError("job request needs exactly one of "
                             "'technique' (a registered name) or 'spec' "
                             "(a full technique-spec object)")
        if has_name:
            name = doc["technique"]
            if not isinstance(name, str):
                raise ValueError("'technique' must be a string name")
            technique: object = as_spec(name)
        else:
            technique = TechniqueSpec.from_dict(doc["spec"])
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError("'seed' must be an integer")
        scale = doc.get("scale", 1.0)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            raise ValueError("'scale' must be a number")
        fast_forward = doc.get("fast_forward")
        if fast_forward is not None and not isinstance(fast_forward, bool):
            raise ValueError("'fast_forward' must be a boolean or absent")
        return cls(benchmark=benchmark, technique=technique,
                   seed=seed, scale=float(scale),
                   fast_forward=fast_forward)


class JobTicket:
    """One deduped unit of work and everything observable about it.

    Tickets are created by :meth:`SimulationService.submit` and shared
    by every submission of the same request.  ``submissions`` counts
    how many times the ticket was (re-)submitted — the observable proof
    of single-flight dedupe.  ``feed`` carries the job's event stream
    (state changes, forwarded engine telemetry, the final summary) and
    closes when the ticket settles.
    """

    def __init__(self, job_id: str, request: JobRequest, key: Tuple,
                 fast_forward: bool) -> None:
        self.job_id = job_id
        self.request = request
        self.key = key
        self.fast_forward = fast_forward
        self.label = request.label()
        self.state = JobState.QUEUED
        self.outcome: Optional[JobOutcome] = None
        self.submissions = 1
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.feed = Feed()
        self._done = threading.Event()
        self._run_lock = threading.Lock()
        self._exception: Optional[BaseException] = None
        self._digest: Optional[str] = None
        self._digest_lock = threading.Lock()

    @property
    def done(self) -> bool:
        """True once the ticket has settled (without blocking)."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket settles; False on timeout."""
        return self._done.wait(timeout)

    def result(self) -> SimResult:
        """The settled result; raises like the classic runner.

        A terminally failed engine job raises
        :class:`~repro.engine.faults.JobFailedError`; an inline-path
        exception is re-raised as itself.  Call only on a done ticket
        (use :meth:`wait` first).
        """
        if not self._done.is_set():
            raise RuntimeError(f"job {self.job_id} has not settled yet")
        if self._exception is not None:
            raise self._exception
        assert self.outcome is not None
        if not self.outcome.ok:
            raise_for_outcome(self.request.benchmark,
                              self.request.spec, self.outcome)
        return self.outcome.result

    def digest(self) -> Optional[str]:
        """sha256 result digest (lazy — canonicalisation isn't free)."""
        outcome = self.outcome
        if outcome is None or outcome.result is None:
            return None
        with self._digest_lock:
            if self._digest is None:
                self._digest = result_digest(outcome.result)
            return self._digest

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable status view (the HTTP status document)."""
        return {
            "job_id": self.job_id,
            "label": self.label,
            "state": self.state.value,
            "benchmark": self.request.benchmark,
            "technique": self.request.spec.name,
            "spec_hash": self.request.spec.spec_hash(),
            "seed": self.request.seed,
            "scale": self.request.scale,
            "fast_forward": self.fast_forward,
            "submissions": self.submissions,
            "deduped": self.submissions > 1,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": (self.outcome.attempts
                         if self.outcome is not None else 0),
            "error": (last_error_line(self.outcome.error)
                      if self.outcome is not None else ""),
        }


def raise_for_outcome(benchmark: str, spec: TechniqueSpec,
                      outcome: JobOutcome) -> None:
    """Raise the canonical :class:`JobFailedError` for a failed cell.

    Moved verbatim from ``ExperimentRunner._raise_failure`` so the
    runner, the service and the CLI all phrase failures identically.
    """
    reason = last_error_line(outcome.error) or outcome.status.value
    raise JobFailedError(
        f"{benchmark}/{spec.name} {outcome.status.value} "
        f"after {outcome.attempts} attempt(s): {reason}",
        status=outcome.status, error=outcome.error)


class SimulationService:
    """Spec-addressed, single-flight simulation execution.

    Args:
        engine: Optional :class:`~repro.engine.pool.ParallelEngine`.
            With one, jobs gain the persistent cache, retries and the
            run ledger; without one, the inline serial path runs.
        bus: Optional :class:`~repro.obs.bus.EventBus` wired into every
            inline-built SM.  A service with a bus ignores the engine —
            event streams are inherently in-process — preserving the
            runner's long-standing rule.
        worker: Optional override for the engine-side executing
            callable, passed through to
            :meth:`~repro.engine.pool.ParallelEngine.run_sim_jobs` —
            the fault-injection seam the test-suite uses.

    Thread-safety: the ticket table has its own lock; all engine access
    is serialised behind ``_exec_lock`` (the engine keeps per-batch
    telemetry state and must never see two batches at once).  Inline
    execution is serialised the same way — the bus, when present, is a
    single in-process stream.
    """

    def __init__(self, engine=None, bus: Optional[EventBus] = None,
                 worker: Optional[Callable[[SimJob], JobOutcome]] = None):
        self.bus = bus
        self.engine = engine if bus is None else None
        self.worker = worker
        self._lock = threading.Lock()
        self._exec_lock = threading.Lock()
        self._tickets: Dict[str, JobTicket] = {}
        self._by_key: Dict[Tuple, JobTicket] = {}
        self._live_labels: Dict[str, JobTicket] = {}
        #: Provenance records, one per actual execution (not per
        #: submission), in settle order.
        self.manifests: List[RunManifest] = []
        self._telemetry_bus = self._find_telemetry_bus()
        if self._telemetry_bus is not None:
            self._telemetry_bus.subscribe(self._on_engine_event)

    # ------------------------------------------------------------------
    # submission and lookup
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> Tuple[JobTicket, bool]:
        """Register one request; returns ``(ticket, created)``.

        ``created`` is True when this submission created the ticket
        (the caller is then responsible for driving :meth:`execute`);
        False marks a deduped submission sharing an existing ticket.
        """
        fast_forward = self._resolve_fast_forward(request)
        key = request.key(fast_forward)
        with self._lock:
            ticket = self._by_key.get(key)
            if ticket is not None:
                ticket.submissions += 1
                created = False
            else:
                ticket = JobTicket(uuid.uuid4().hex[:12], request, key,
                                   fast_forward)
                self._tickets[ticket.job_id] = ticket
                self._by_key[key] = ticket
                self._live_labels[ticket.label] = ticket
                created = True
        self._publish(ServiceJobAccepted.now(
            job_id=ticket.job_id, label=ticket.label,
            spec_hash=request.spec.spec_hash(), deduped=not created))
        if created:
            ticket.feed.append(self._state_record(ticket))
        return ticket, created

    def get(self, job_id: str) -> Optional[JobTicket]:
        """The ticket for one job id, or None."""
        with self._lock:
            return self._tickets.get(job_id)

    def tickets(self) -> List[JobTicket]:
        """Every known ticket, oldest first."""
        with self._lock:
            return sorted(self._tickets.values(),
                          key=lambda t: t.created_at)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self, ticket: JobTicket) -> JobOutcome:
        """Drive one ticket to a terminal state (idempotent).

        The first caller in executes; concurrent callers block on the
        per-ticket lock and return the shared settled outcome.  Engine
        failures settle the ticket (and are memoised — re-reading a
        failed cell never silently re-simulates); inline exceptions
        settle the ticket for waiters but *drop it from the dedupe
        table*, preserving the classic runner's non-memoising inline
        behaviour.
        """
        if ticket._done.is_set():
            return self._settled(ticket)
        with ticket._run_lock:
            if ticket._done.is_set():
                return self._settled(ticket)
            self._set_state(ticket, JobState.RUNNING)
            ticket.started_at = time.time()
            try:
                if self.engine is not None:
                    outcome = self._execute_engine(ticket)
                else:
                    outcome = self._execute_inline(ticket)
            except BaseException as exc:
                self._settle_exception(ticket, exc)
                raise
            self._settle(ticket, outcome)
            return outcome

    def run(self, request: JobRequest) -> SimResult:
        """Submit + execute + unwrap: the whole classic run() contract.

        Deduped against every other submission; raises
        :class:`JobFailedError` for terminally failed engine cells and
        re-raises inline exceptions as themselves.
        """
        ticket, _ = self.submit(request)
        self.execute(ticket)
        return ticket.result()

    def prefetch(self, requests: Sequence[JobRequest]) -> List[JobTicket]:
        """Fan a batch through the engine as *one* ledgered batch.

        Already-settled and in-flight cells are skipped (their tickets
        are still returned, in request order, duplicates collapsed).
        Without an engine this is a no-op beyond ticket registration —
        the inline path computes lazily, as the serial runner always
        has.
        """
        tickets: List[JobTicket] = []
        owned: List[JobTicket] = []
        seen = set()
        for request in requests:
            ticket, created = self.submit(request)
            if ticket.job_id in seen:
                continue
            seen.add(ticket.job_id)
            tickets.append(ticket)
            if created:
                owned.append(ticket)
        if self.engine is None or not owned:
            return tickets
        with self._exec_lock:
            # Re-check under the lock: a concurrent execute() may have
            # settled (or be about to settle) some of our tickets.
            batch = [t for t in owned
                     if not t.done and t._run_lock.acquire(blocking=False)]
            try:
                if not batch:
                    return tickets
                for ticket in batch:
                    self._set_state(ticket, JobState.RUNNING)
                    ticket.started_at = time.time()
                jobs = [t.request.to_sim_job(t.fast_forward)
                        for t in batch]
                outcomes = self._run_engine_batch(jobs)
                for ticket, outcome in zip(batch, outcomes):
                    self._settle(ticket, outcome)
            finally:
                for ticket in batch:
                    ticket._run_lock.release()
        return tickets

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every known ticket to settle; False on timeout."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        for ticket in self.tickets():
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                return False
            if not ticket.wait(remaining):
                return False
        return True

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------

    def _execute_engine(self, ticket: JobTicket) -> JobOutcome:
        with self._exec_lock:
            job = ticket.request.to_sim_job(ticket.fast_forward)
            return self._run_engine_batch([job])[0]

    def _run_engine_batch(self, jobs: List[SimJob]) -> List[JobOutcome]:
        """One engine batch; must be called under ``_exec_lock``."""
        if self.worker is not None:
            return self.engine.run_sim_jobs(jobs, worker=self.worker)
        return self.engine.run_sim_jobs(jobs)

    def _execute_inline(self, ticket: JobTicket) -> JobOutcome:
        """The classic serial path, byte-for-byte, as a JobOutcome.

        Mirrors the pre-service ``ExperimentRunner._run_uncached``: the
        service bus is wired into the SM, the manifest carries the
        ``build_trace`` / ``simulate`` wall phases and the SM bus's
        publication count.  Serialised behind ``_exec_lock`` so a
        shared bus only ever sees one run at a time.
        """
        request = ticket.request
        spec = request.spec
        with self._exec_lock:
            t0 = time.perf_counter()
            kernel = build_kernel(request.benchmark, seed=request.seed,
                                  scale=request.scale)
            t1 = time.perf_counter()
            sm = build_sm(kernel, spec, sm_config=request.sm_config,
                          dram_latency=get_profile(
                              request.benchmark).dram_latency,
                          bus=self.bus,
                          fast_forward=ticket.fast_forward)
            result = sm.run()
            t2 = time.perf_counter()
        manifest = RunManifest(
            benchmark=request.benchmark,
            technique=spec.name,
            seed=request.seed,
            scale=request.scale,
            config_hash=config_hash(spec.spec_hash(), request.sm_config),
            cycles=result.cycles,
            instructions=result.stats.instructions_retired,
            wall_seconds={"build_trace": t1 - t0, "simulate": t2 - t1},
            events_published=sm.bus.events_published,
            spec=spec.to_dict())
        return JobOutcome(result=result, manifest=manifest)

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------

    def _settle(self, ticket: JobTicket, outcome: JobOutcome) -> None:
        ticket.outcome = outcome
        ticket.finished_at = time.time()
        with self._lock:
            self.manifests.append(outcome.manifest)
            self._live_labels.pop(ticket.label, None)
        self._set_state(ticket, JobState(outcome.status.value))
        ticket.feed.append({
            "record": "done",
            "job_id": ticket.job_id,
            "state": ticket.state.value,
            "attempts": outcome.attempts,
            "cycles": outcome.manifest.cycles,
            "cache_hit": outcome.manifest.cache_hit,
            "error": last_error_line(outcome.error),
        })
        ticket.feed.close()
        ticket._done.set()

    def _settle_exception(self, ticket: JobTicket,
                          exc: BaseException) -> None:
        """Settle an inline-path exception without memoising it.

        Waiters blocked on the ticket re-raise the stored exception;
        the key is dropped from the dedupe table so the next submission
        re-attempts — exactly the classic runner, where an inline raise
        left nothing in the memo.
        """
        ticket._exception = exc
        ticket.finished_at = time.time()
        with self._lock:
            self._by_key.pop(ticket.key, None)
            self._tickets.pop(ticket.job_id, None)
            self._live_labels.pop(ticket.label, None)
        self._set_state(ticket, JobState.FAILED)
        ticket.feed.append({
            "record": "done",
            "job_id": ticket.job_id,
            "state": JobState.FAILED.value,
            "error": f"{type(exc).__name__}: {exc}",
        })
        ticket.feed.close()
        ticket._done.set()

    def _settled(self, ticket: JobTicket) -> JobOutcome:
        if ticket._exception is not None:
            raise ticket._exception
        assert ticket.outcome is not None
        return ticket.outcome

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def _state_record(self, ticket: JobTicket) -> Dict[str, object]:
        return {"record": "state", "job_id": ticket.job_id,
                "label": ticket.label, "state": ticket.state.value,
                "ts": time.time()}

    def _set_state(self, ticket: JobTicket, state: JobState) -> None:
        ticket.state = state
        if not ticket.feed.closed:
            ticket.feed.append(self._state_record(ticket))
        self._publish(ServiceJobStateChanged.now(
            job_id=ticket.job_id, label=ticket.label,
            state=state.value))

    def _find_telemetry_bus(self) -> Optional[EventBus]:
        telemetry = getattr(self.engine, "telemetry", None)
        bus = getattr(telemetry, "bus", None)
        return bus if getattr(bus, "enabled", False) else None

    def _publish(self, event: EngineEvent) -> None:
        if self._telemetry_bus is not None:
            self._telemetry_bus.publish(event)

    def _on_engine_event(self, event: object) -> None:
        """Forward one engine-telemetry event into its ticket's feed.

        Engine events carry the ``benchmark/technique/sSEED`` label
        (see :func:`~repro.obs.telemetry.job_label`); the in-flight
        ticket with that label gets the event appended to its feed in
        JSON-friendly form.  Service-originated events are skipped —
        they are already feed records.
        """
        if isinstance(event, (ServiceJobAccepted, ServiceJobStateChanged)):
            return
        label = getattr(event, "label", None)
        if not label:
            return
        with self._lock:
            ticket = self._live_labels.get(label)
        if ticket is None or ticket.feed.closed:
            return
        try:
            payload = dataclasses.asdict(event)
        except TypeError:  # pragma: no cover - non-dataclass event
            payload = {"repr": repr(event)}
        payload.pop("cycle", None)
        try:
            ticket.feed.append({"record": "engine_event",
                                "event": type(event).__name__, **payload})
        except ValueError:  # feed raced closed; the job has settled
            pass

    def close(self) -> None:
        """Detach from the engine telemetry bus (idempotent)."""
        if self._telemetry_bus is not None:
            self._telemetry_bus.unsubscribe(self._on_engine_event)
            self._telemetry_bus = None

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _resolve_fast_forward(self, request: JobRequest) -> bool:
        if request.fast_forward is not None:
            return request.fast_forward
        if self.engine is not None:
            return self.engine.fast_forward
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            n = len(self._tickets)
        return (f"SimulationService(engine={self.engine!r}, "
                f"tickets={n})")


__all__ = [
    "JobRequest",
    "JobState",
    "JobTicket",
    "SimulationService",
    "job_label",
    "raise_for_outcome",
]
