"""JSON-over-HTTP front end for the simulation service.

A deliberately small, dependency-free asyncio HTTP/1.1 server (the
container bakes in no web framework) exposing the synchronous
:class:`~repro.service.core.SimulationService` core:

========  ==========================  ====================================
method    path                        semantics
========  ==========================  ====================================
GET       /healthz                    liveness + job-table counts
POST      /v1/jobs                    submit one job request (202;
                                      deduped submissions return the
                                      existing job id)
GET       /v1/jobs                    every known job's status document
GET       /v1/jobs/{id}               one job's status document
GET       /v1/jobs/{id}/result        settled result: digest, manifest,
                                      metrics (``?wait=SECONDS`` blocks)
GET       /v1/jobs/{id}/stream        the job's event feed as JSONL,
                                      replay then live, until settled
========  ==========================  ====================================

Execution runs on a small thread pool driving the synchronous core —
the service serialises engine access internally, so extra threads buy
admission and streaming concurrency, not parallel engine batches.
Admission is bounded: more than ``max_pending`` unsettled jobs returns
429 rather than queueing without limit.  A client disconnecting from
``/stream`` merely unsubscribes from the job's feed; the job itself
keeps running (single-flight tickets may have other consumers).
Shutdown is graceful: the listener closes first, then in-flight jobs
drain up to a timeout.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional, Tuple

from repro.obs.subscribe import FEED_CLOSED
from repro.service.core import JobRequest, JobTicket, SimulationService

#: Upper bound on request head + body sizes (a spec document is small).
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            408: "Request Timeout", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            504: "Gateway Timeout"}


class ApiError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def result_document(ticket: JobTicket) -> Dict[str, object]:
    """The settled-result payload: status + digest + provenance.

    The digest is the same canonical sha256 the golden identity suite
    pins (:mod:`repro.core.digest`), so a client can compare a served
    result against a local ``repro run`` without shipping the pickle.
    """
    doc = ticket.snapshot()
    doc["digest"] = ticket.digest()
    outcome = ticket.outcome
    if outcome is not None:
        doc["manifest"] = dataclasses.asdict(outcome.manifest)
        if outcome.result is not None:
            doc["cycles"] = outcome.result.cycles
            doc["metrics"] = outcome.result.metrics
    return doc


class ServiceAPI:
    """One HTTP listener over one :class:`SimulationService`.

    Args:
        service: The synchronous core to expose.
        host/port: Bind address; port 0 picks a free port (read the
            resolved one from :attr:`port` after :meth:`start`).
        max_pending: Admission bound — submissions past this many
            unsettled jobs get 429.
        workers: Executor threads driving the synchronous core.
    """

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 0,
                 max_pending: int = 64, workers: int = 4) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service")
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> int:
        """Bind and start serving; returns the resolved port."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        """Accept connections until cancelled (``start()`` first)."""
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 30.0) -> bool:
        """Graceful shutdown: stop accepting, then drain in-flight jobs.

        Returns False when the drain timed out (jobs may still settle
        afterwards; their tickets remain readable until process exit).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, lambda: self.service.drain(drain_timeout))
        self._executor.shutdown(wait=False, cancel_futures=True)
        return drained

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
                await self._route(method, path, query, body, writer)
            except ApiError as exc:
                await self._respond(writer, exc.status,
                                    {"error": exc.message})
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            except Exception as exc:  # pragma: no cover - defensive
                try:
                    await self._respond(writer, 500,
                                        {"error": f"{type(exc).__name__}: "
                                                  f"{exc}"})
                except Exception:
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> Tuple[str, str, Dict[str, str], bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEAD_BYTES:
            raise ApiError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise ApiError(400, f"malformed request line {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        path, _, query_string = target.partition("?")
        query: Dict[str, str] = {}
        for pair in query_string.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                query[key] = value
        return method.upper(), path, query, body

    async def _route(self, method: str, path: str,
                     query: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, self._health())
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._submit(body, writer)
                return
            if method == "GET":
                await self._respond(writer, 200, {
                    "jobs": [t.snapshot()
                             for t in self.service.tickets()]})
                return
            raise ApiError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            job_id, _, sub = rest.partition("/")
            ticket = self.service.get(job_id)
            if ticket is None:
                raise ApiError(404, f"unknown job {job_id!r}")
            if sub == "":
                await self._respond(writer, 200, ticket.snapshot())
            elif sub == "result":
                await self._result(ticket, query, writer)
            elif sub == "stream":
                await self._stream(ticket, writer)
            else:
                raise ApiError(404, f"unknown endpoint {path!r}")
            return
        raise ApiError(404, f"unknown endpoint {path!r}")

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def _health(self) -> Dict[str, object]:
        tickets = self.service.tickets()
        pending = sum(1 for t in tickets if not t.done)
        return {"ok": True, "draining": self._draining,
                "jobs": len(tickets), "pending": pending}

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        if self._draining:
            raise ApiError(429, "server is draining")
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except ValueError:
            raise ApiError(400, "request body is not valid JSON")
        try:
            request = JobRequest.from_dict(doc)
        except ValueError as exc:
            raise ApiError(400, str(exc))
        pending = sum(1 for t in self.service.tickets() if not t.done)
        if pending >= self.max_pending:
            raise ApiError(429,
                           f"{pending} jobs pending (cap "
                           f"{self.max_pending}); retry later")
        ticket, created = self.service.submit(request)
        if created:
            # Drive the synchronous core off-loop; errors settle the
            # ticket (the HTTP response for them is the job state).
            self._executor.submit(self._execute_quietly, ticket)
        doc = ticket.snapshot()
        doc["deduped"] = not created
        await self._respond(writer, 202, doc)

    def _execute_quietly(self, ticket: JobTicket) -> None:
        try:
            self.service.execute(ticket)
        except Exception:
            # Inline-path exceptions already settled the ticket (state
            # "failed", error in the feed); nothing to re-raise into.
            pass

    async def _result(self, ticket: JobTicket, query: Dict[str, str],
                      writer: asyncio.StreamWriter) -> None:
        wait = float(query.get("wait", "0") or "0")
        if not ticket.done and wait > 0:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None,
                                       lambda: ticket.wait(wait))
        if not ticket.done:
            raise ApiError(408 if wait > 0 else 404,
                           f"job {ticket.job_id} has not settled "
                           f"(state {ticket.state.value})")
        loop = asyncio.get_running_loop()
        # Digesting a large result is CPU work; keep it off the loop.
        doc = await loop.run_in_executor(None, result_document, ticket)
        await self._respond(writer, 200, doc)

    async def _stream(self, ticket: JobTicket,
                      writer: asyncio.StreamWriter) -> None:
        """Serve the ticket feed as a JSONL stream, replay then live.

        The feed delivers on producer threads; items hop onto the loop
        via ``call_soon_threadsafe``.  Disconnects only unsubscribe —
        the producing job is never cancelled by a lost consumer.
        """
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[object]" = asyncio.Queue()

        def relay(item: object) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, item)

        unsubscribe = ticket.feed.subscribe(relay)
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/jsonl\r\n"
                     b"Cache-Control: no-store\r\n"
                     b"Connection: close\r\n\r\n")
        try:
            while True:
                item = await queue.get()
                if item is FEED_CLOSED:
                    return
                writer.write(json.dumps(item, default=str).encode("utf-8")
                             + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            return  # client went away; the job keeps running
        finally:
            unsubscribe()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, object]) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def serve(service: SimulationService, host: str = "127.0.0.1",
                port: int = 0, max_pending: int = 64,
                ready: Optional[Callable[[int], None]] = None) -> None:
    """Run one API server until cancelled (the ``repro serve`` body).

    ``ready`` is called with the resolved port once the listener is
    bound — the CLI prints it, tests grab it.
    """
    api = ServiceAPI(service, host=host, port=port,
                     max_pending=max_pending)
    resolved = await api.start()
    if ready is not None:
        ready(resolved)
    try:
        await api.serve_forever()
    except asyncio.CancelledError:
        await api.stop()
        raise


__all__ = ["ApiError", "ServiceAPI", "result_document", "serve"]
