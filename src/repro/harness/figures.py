"""One builder per paper figure.

Each function returns printable rows (lists matching a header tuple) or
series so that ``benchmarks/`` targets and examples can render exactly
the rows/series the paper's figure reports.  All builders take an
:class:`repro.harness.experiment.ExperimentRunner`, so results are
shared across figures through its cache.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import math

from repro.analysis.idle_periods import region_fractions, histogram_series
from repro.core.techniques import Technique
from repro.harness.experiment import (
    ExperimentRunner,
    geomean_excluding,
    normalized_performance,
)
from repro.isa.optypes import ExecUnitKind
from repro.power.energy import chip_level_savings
from repro.power.overhead import overhead_report, total_storage_bits
from repro.workloads.characterization import instruction_mix_table

Row = List[object]

#: Figure legend order for the savings/performance figures.
FIG9_TECHNIQUES: Tuple[Technique, ...] = (
    Technique.CONV_PG,
    Technique.GATES,
    Technique.NAIVE_BLACKOUT,
    Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES,
)

FIG8_TECHNIQUES: Tuple[Technique, ...] = (
    Technique.GATES,
    Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES,
)


# ---------------------------------------------------------------------------
# Figure 1b: baseline vs conventional-PG energy breakdown
# ---------------------------------------------------------------------------

FIG1B_HEADERS = ("config", "unit", "dynamic", "overhead", "static")


def fig1b_rows(runner: ExperimentRunner) -> List[Row]:
    """Suite-average normalised energy breakdown (Figure 1b's bars)."""
    rows: List[Row] = []
    for technique, label in ((Technique.BASELINE, "baseline"),
                             (Technique.CONV_PG, "conv_pg")):
        for kind, unit in ((ExecUnitKind.INT, "int"),
                           (ExecUnitKind.FP, "fp")):
            benchmarks = (runner.settings.benchmarks
                          if kind is ExecUnitKind.INT
                          else runner.fp_benchmarks())
            dyn = ovh = stat = 0.0
            count = 0
            for name in benchmarks:
                norm = runner.energy_breakdown(name, technique,
                                               kind).normalized()
                if norm.baseline_total == 0:
                    continue
                dyn += norm.dynamic
                ovh += norm.overhead
                stat += norm.static
                count += 1
            if count:
                rows.append([label, unit, dyn / count, ovh / count,
                             stat / count])
    return rows


# ---------------------------------------------------------------------------
# Figure 3: idle-period length distributions (hotspot)
# ---------------------------------------------------------------------------

FIG3_HEADERS = ("config", "lt_idle_detect", "loss_region", "gain_region",
                "periods")

#: (sub-figure label, technique) in the paper's panel order.  Panel (c)
#: uses Naive Blackout: with every >= idle-detect window gated and every
#: gated window held past break-even, the loss region is exactly empty,
#: which is the property Figure 3c illustrates.
FIG3_CONFIGS: Tuple[Tuple[str, Technique], ...] = (
    ("conv_pg", Technique.CONV_PG),
    ("gates", Technique.GATES),
    ("blackout", Technique.NAIVE_BLACKOUT),
)


def fig3_rows(runner: ExperimentRunner, benchmark: str = "hotspot",
              kind: ExecUnitKind = ExecUnitKind.INT) -> List[Row]:
    """Three-region idle-period split per technique (Figure 3a-3c)."""
    gating = runner.settings.gating
    rows: List[Row] = []
    for label, technique in FIG3_CONFIGS:
        result = runner.run(benchmark, technique)
        regions = region_fractions(result.idle_histogram(kind),
                                   idle_detect=gating.idle_detect,
                                   bet=gating.bet)
        rows.append([label, regions.wasted, regions.loss, regions.gain,
                     regions.total_periods])
    return rows


def fig3_series(runner: ExperimentRunner, technique: Technique,
                benchmark: str = "hotspot",
                kind: ExecUnitKind = ExecUnitKind.INT,
                max_length: int = 25) -> List[Tuple[int, float]]:
    """Per-length frequency series (the plotted curve of Figure 3)."""
    result = runner.run(benchmark, technique)
    return histogram_series(result.idle_histogram(kind),
                            max_length=max_length)


# ---------------------------------------------------------------------------
# Figure 5: workload characterisation
# ---------------------------------------------------------------------------

FIG5A_HEADERS = ("benchmark", "int", "fp", "sfu", "ldst")
FIG5B_HEADERS = ("benchmark", "avg_active", "max_active",
                 "paper_avg", "paper_max")


def fig5a_rows(runner: ExperimentRunner) -> List[Row]:
    """Instruction mix per benchmark (measured from generated traces)."""
    rows: List[Row] = []
    for entry in instruction_mix_table(runner.settings.benchmarks,
                                       seed=runner.settings.seed,
                                       scale=runner.settings.scale):
        rows.append([entry["benchmark"], entry["int"], entry["fp"],
                     entry["sfu"], entry["ldst"]])
    return rows


def fig5b_rows(runner: ExperimentRunner) -> List[Row]:
    """Active-warp population per benchmark, from baseline runs."""
    from repro.workloads.specs import get_profile
    rows: List[Row] = []
    for name in runner.settings.benchmarks:
        result = runner.baseline(name)
        profile = get_profile(name)
        rows.append([name, result.stats.avg_active_warps,
                     result.stats.active_warp_max,
                     profile.paper_avg_active_warps,
                     profile.paper_max_active_warps])
    rows.sort(key=lambda r: -float(r[1]))
    return rows


# ---------------------------------------------------------------------------
# Figure 6: critical wakeups vs runtime correlation
# ---------------------------------------------------------------------------

FIG6_HEADERS = ("benchmark", "pearson_r", "max_cw_per_kcyc",
                "worst_norm_runtime")


def fig6_rows(runner: ExperimentRunner) -> List[Row]:
    """Per-benchmark critical-wakeup correlation summary (Figure 6)."""
    from repro.harness.sweeps import idle_detect_sweep
    rows: List[Row] = []
    for result in idle_detect_sweep(runner):
        rows.append([result.benchmark, result.pearson,
                     max(x for x, _ in result.points),
                     max(y for _, y in result.points)])
    return rows


# ---------------------------------------------------------------------------
# Figure 8: power-gating opportunity
# ---------------------------------------------------------------------------

FIG8A_HEADERS = ("benchmark", "gates", "coord_blackout", "warped_gates")
FIG8B_HEADERS = ("benchmark", "conv_pg", "gates", "warped_gates")
FIG8C_HEADERS = ("benchmark", "gates", "coord_blackout", "warped_gates")


def fig8a_rows(runner: ExperimentRunner,
               kind: ExecUnitKind = ExecUnitKind.INT) -> List[Row]:
    """Idle-cycle fraction normalised to the baseline scheduler."""
    rows: List[Row] = []
    for name in runner.settings.benchmarks:
        base = runner.baseline(name).idle_fraction(kind)
        row: Row = [name]
        for technique in FIG8_TECHNIQUES:
            frac = runner.run(name, technique).idle_fraction(kind)
            # A benchmark whose baseline never idles has no defined
            # ratio: NaN, which the geomean row excludes (a 0.0 here
            # used to collapse the suite geomean through the clamp).
            row.append(frac / base if base else math.nan)
        rows.append(row)
    rows.append(_geomean_row(rows))
    return rows


def fig8b_rows(runner: ExperimentRunner,
               kind: ExecUnitKind = ExecUnitKind.INT) -> List[Row]:
    """Signed compensated-state residency (Figure 8b)."""
    techniques = (Technique.CONV_PG, Technique.GATES,
                  Technique.WARPED_GATES)
    rows: List[Row] = []
    for name in runner.settings.benchmarks:
        row: Row = [name]
        for technique in techniques:
            row.append(runner.run(name, technique).compensated_metric(kind))
        rows.append(row)
    means: Row = ["mean"]
    for col in range(1, len(techniques) + 1):
        means.append(sum(float(r[col]) for r in rows) / len(rows))
    rows.append(means)
    return rows


def fig8c_rows(runner: ExperimentRunner,
               kind: ExecUnitKind = ExecUnitKind.INT) -> List[Row]:
    """Gating events (wakeups) normalised to conventional gating."""
    rows: List[Row] = []
    for name in runner.settings.benchmarks:
        conv = runner.run(name, Technique.CONV_PG)
        conv_events = conv.gating_totals(kind).gating_events
        row: Row = [name]
        for technique in FIG8_TECHNIQUES:
            events = runner.run(name, technique) \
                .gating_totals(kind).gating_events
            row.append(events / conv_events if conv_events else math.nan)
        rows.append(row)
    rows.append(_geomean_row(rows))
    return rows


def _geomean_row(rows: Sequence[Row]) -> Row:
    """Summary row under the shared exclusion policy.

    Non-finite and non-positive cells are excluded per column (the
    :func:`repro.harness.experiment.geomean_excluding` policy) instead
    of clamped — one degenerate benchmark used to drag a suite geomean
    down ~9 orders of magnitude through a 1e-9 floor.  When any column
    excluded values, the label cell reports the worst-case count so the
    reduced population is visible in every rendered table.
    """
    excluded_max = 0
    values_by_col: List[float] = []
    for col in range(1, len(rows[0])):
        value, excluded = geomean_excluding(float(r[col]) for r in rows)
        values_by_col.append(value)
        excluded_max = max(excluded_max, excluded)
    label = ("geomean" if not excluded_max
             else f"geomean ({excluded_max} excluded)")
    return [label] + values_by_col


# ---------------------------------------------------------------------------
# Figure 9: static energy savings
# ---------------------------------------------------------------------------

FIG9_HEADERS = ("benchmark", "conv_pg", "gates", "naive_blackout",
                "coord_blackout", "warped_gates")


def fig9_rows(runner: ExperimentRunner,
              kind: ExecUnitKind) -> List[Row]:
    """Per-benchmark static savings + suite average (Figures 9a / 9b)."""
    benchmarks = (runner.settings.benchmarks if kind is ExecUnitKind.INT
                  else runner.fp_benchmarks())
    rows: List[Row] = []
    for name in benchmarks:
        row: Row = [name]
        for technique in FIG9_TECHNIQUES:
            row.append(runner.static_savings(name, technique, kind))
        rows.append(row)
    means: Row = ["average"]
    for col in range(1, len(FIG9_TECHNIQUES) + 1):
        means.append(sum(float(r[col]) for r in rows) / len(rows))
    rows.append(means)
    return rows


def chip_savings_estimate(runner: ExperimentRunner) -> Dict[str, float]:
    """Section 7.3 arithmetic from the measured Figure 9 averages."""
    int_avg = fig9_rows(runner, ExecUnitKind.INT)[-1][-1]
    fp_avg = fig9_rows(runner, ExecUnitKind.FP)[-1][-1]
    return {
        "int_static_savings": float(int_avg),
        "fp_static_savings": float(fp_avg),
        "chip_savings_at_33pct_leakage": chip_level_savings(
            float(int_avg), float(fp_avg), leakage_share_of_chip=0.33),
        "chip_savings_at_50pct_leakage": chip_level_savings(
            float(int_avg), float(fp_avg), leakage_share_of_chip=0.50),
    }


# ---------------------------------------------------------------------------
# Figure 10: performance impact
# ---------------------------------------------------------------------------

FIG10_HEADERS = ("benchmark", "conv_pg", "gates", "naive_blackout",
                 "coord_blackout", "warped_gates")


def fig10_rows(runner: ExperimentRunner) -> List[Row]:
    """Normalised performance per benchmark + geomean (Figure 10)."""
    rows: List[Row] = []
    for name in runner.settings.benchmarks:
        base = runner.baseline(name)
        row: Row = [name]
        for technique in FIG9_TECHNIQUES:
            row.append(normalized_performance(
                base, runner.run(name, technique)))
        rows.append(row)
    rows.append(_geomean_row(rows))
    return rows


# ---------------------------------------------------------------------------
# Section 7.5: hardware overhead
# ---------------------------------------------------------------------------

SEC75_HEADERS = ("total_bits", "area_um2", "area_pct", "dynamic_pct",
                 "leakage_pct")


def sec75_rows() -> List[Row]:
    """Counter inventory overhead summary (section 7.5)."""
    report = overhead_report()
    return [[total_storage_bits(), report.area_um2,
             100.0 * report.area_fraction,
             100.0 * report.dynamic_fraction,
             100.0 * report.leakage_fraction]]
