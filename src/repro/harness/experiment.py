"""Memoising experiment runner and the figures' normalised metrics.

Every paper figure compares *the same trace* replayed under different
techniques, so the runner keys its cache on (benchmark, resolved
technique-spec hash, seed, scale) and reuses results across figure
builders — a full figure set touches the same ~110 runs many times.
Because the key is the :meth:`~repro.core.spec.TechniqueSpec.spec_hash`
of the *resolved* spec, an enum member, its name string, and an equal
hand-built spec all land on the same memo cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.adaptive import AdaptiveConfig
from repro.core.spec import TechniqueSpec, as_spec
from repro.core.techniques import (
    PAPER_TECHNIQUES,
    Technique,
)
from repro.isa.optypes import ExecUnitKind
from repro.obs.bus import EventBus
from repro.obs.manifest import RunManifest
from repro.power.energy import domain_energy, EnergyBreakdown
from repro.power.params import (
    EnergyParams,
    FP_DYN_PER_ISSUE,
    GatingParams,
    INT_DYN_PER_ISSUE,
)
from repro.service.core import JobRequest, JobTicket, SimulationService
from repro.sim.config import SMConfig
from repro.sim.sm import SimResult
from repro.workloads.specs import (
    BENCHMARK_NAMES,
    INTEGER_ONLY_BENCHMARKS,
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Global knobs shared by all runs of one experiment campaign.

    Attributes:
        seed: Trace-generation seed (identical across techniques).
        scale: Workload scale factor; 1.0 reproduces the full models,
            smaller values keep unit tests and pytest-benchmark runs
            fast while preserving workload character.
        gating: Power-gating parameters (idle-detect 5 / BET 14 /
            wakeup 3 by default, the paper's configuration).
        sm_config: Structural SM parameters.
        benchmarks: Benchmarks in scope (default: the full suite).
    """

    seed: int = 0
    scale: float = 1.0
    gating: GatingParams = field(default_factory=GatingParams)
    sm_config: SMConfig = field(default_factory=SMConfig)
    benchmarks: Tuple[str, ...] = BENCHMARK_NAMES

    def energy_params(self, kind: ExecUnitKind) -> EnergyParams:
        """Energy model for one unit kind under these gating params."""
        dyn = INT_DYN_PER_ISSUE if kind is ExecUnitKind.INT \
            else FP_DYN_PER_ISSUE
        return EnergyParams.for_unit(dyn_per_issue=dyn, bet=self.gating.bet)


class ExperimentRunner:
    """Runs and caches (benchmark, technique) simulations.

    The runner is a thin, figure-oriented veneer over the
    :class:`~repro.service.core.SimulationService` — since the service
    refactor it resolves techniques against the campaign's settings,
    builds :class:`~repro.service.core.JobRequest`\\ s, and lets the
    service dedupe, execute and memoise.  ``settings`` defaults to a
    fresh :class:`ExperimentSettings` built *per runner* (never a
    shared module-level instance).  ``bus``, when given, is wired into
    every SM the service builds inline — enable it and attach exporters
    to stream events from the runs.

    ``engine``, when given, routes uncached simulations through the
    parallel engine (:class:`repro.engine.pool.ParallelEngine`): they
    gain the persistent result cache, the idle fast-forward, and —
    via :meth:`prefetch` — process-pool fan-out.  Results are
    bit-identical to the in-process path.  A runner with a ``bus``
    ignores the engine: event streams are inherently in-process.
    (Engine batches *are* observable the cross-process way — give the
    engine an :class:`~repro.obs.telemetry.EngineTelemetry` and its
    workers relay digested events to the parent bus; each
    :meth:`prefetch` grid also lands in the run ledger.)

    ``service``, when given, shares an existing
    :class:`SimulationService` (and its single-flight memo) with other
    runners — the replication harness hands one service to every
    per-seed runner; ``bus``/``engine`` are then taken from it.

    Every simulation appends a :class:`RunManifest` to
    ``self.manifests``: the run's exact configuration (hashed), its
    wall-clock cost per phase and its simulated-cycles/second
    throughput — the provenance record the CLI's ``--profile`` flag
    surfaces.  Manifests are per-runner (each runner records the cells
    *it* read, once each), while results are memoised service-wide.
    """

    def __init__(self, settings: Optional[ExperimentSettings] = None,
                 bus: Optional[EventBus] = None,
                 engine=None,
                 service: Optional[SimulationService] = None):
        self.settings = settings if settings is not None \
            else ExperimentSettings()
        self.service = service if service is not None \
            else SimulationService(engine=engine, bus=bus)
        self.bus = self.service.bus
        self.engine = self.service.engine
        #: Tickets whose manifests this runner has recorded already.
        self._recorded: Set[str] = set()
        #: Provenance records, one per simulation read through this
        #: runner (cells are recorded once per runner), in run order.
        self.manifests: List[RunManifest] = []

    def _resolve(self, technique,
                 gating: Optional[GatingParams] = None,
                 adaptive: Optional[AdaptiveConfig] = None) -> TechniqueSpec:
        """Resolve a technique (enum / name / spec) plus overrides.

        An explicit ``gating`` override always wins; otherwise enum and
        name references inherit the campaign's ``settings.gating``,
        while a hand-built spec keeps its own parameters.  An
        ``adaptive`` override only applies to adaptive-capable specs —
        the others ignore it, exactly as the pre-spec wiring did.
        """
        spec = as_spec(technique)
        if gating is not None:
            spec = replace(spec, gating=gating)
        elif not isinstance(technique, TechniqueSpec):
            spec = replace(spec, gating=self.settings.gating)
        if adaptive is not None and spec.adaptive is not None:
            spec = replace(spec, adaptive=adaptive)
        return spec

    def _request(self, benchmark: str,
                 spec: TechniqueSpec) -> JobRequest:
        """One service request under this campaign's settings.

        ``fast_forward=None`` defers to the executing path (the
        engine's configured default, plain serial inline) — exactly
        the pre-service behaviour.
        """
        return JobRequest(benchmark=benchmark, technique=spec,
                          sm_config=self.settings.sm_config,
                          seed=self.settings.seed,
                          scale=self.settings.scale)

    def _record(self, ticket: JobTicket) -> None:
        """Append the ticket's manifest once per runner."""
        if ticket.outcome is None or ticket.job_id in self._recorded:
            return
        self._recorded.add(ticket.job_id)
        self.manifests.append(ticket.outcome.manifest)

    def run(self, benchmark: str, technique,
            gating: Optional[GatingParams] = None,
            adaptive: Optional[AdaptiveConfig] = None) -> SimResult:
        """Run one configuration (memoised service-wide).

        ``technique`` is anything :func:`repro.core.spec.as_spec`
        resolves: a :class:`Technique` member, a registered name, or a
        :class:`~repro.core.spec.TechniqueSpec`.  A cell whose engine
        job terminally failed (exception, timeout, fail-fast
        cancellation — after any retries) raises
        :class:`~repro.engine.faults.JobFailedError`; the failure is
        memoised too, so the cell is never silently re-simulated.
        """
        spec = self._resolve(technique, gating, adaptive)
        ticket, _ = self.service.submit(self._request(benchmark, spec))
        try:
            self.service.execute(ticket)
        finally:
            self._record(ticket)
        return ticket.result()

    @property
    def failures(self) -> List[RunManifest]:
        """Manifests of the cells that terminally failed, in run order."""
        return [m for m in self.manifests if not m.ok]

    def prefetch(self, requests: Sequence[Tuple]) -> None:
        """Run many configurations at once through the engine.

        ``requests`` are ``(benchmark, technique)`` or
        ``(benchmark, technique, gating)`` or
        ``(benchmark, technique, gating, adaptive)`` tuples.  Already-
        memoised cells are skipped (service-wide single-flight); the
        rest fan out over the engine's worker pool as one ledgered
        batch, so subsequent :meth:`run` calls (and every derived
        metric) are pure lookups.  Without an engine this is a no-op —
        the serial path computes lazily as before.
        """
        if self.engine is None:
            return
        job_requests = []
        for request in requests:
            benchmark, technique = request[0], request[1]
            gating = request[2] if len(request) > 2 else None
            adaptive = request[3] if len(request) > 3 else None
            spec = self._resolve(technique, gating, adaptive)
            job_requests.append(self._request(benchmark, spec))
        for ticket in self.service.prefetch(job_requests):
            # Partial grids complete: failed cells are memoised by the
            # service and surface as JobFailedError when read.
            self._record(ticket)

    def baseline(self, benchmark: str) -> SimResult:
        """The no-gating two-level reference run for one benchmark."""
        return self.run(benchmark, Technique.BASELINE)

    def suite(self, techniques: Sequence = PAPER_TECHNIQUES,
              ) -> Dict[Tuple[str, object], SimResult]:
        """Run every benchmark under every requested technique."""
        self.prefetch([(name, technique)
                       for name in self.settings.benchmarks
                       for technique in techniques])
        out: Dict[Tuple[str, object], SimResult] = {}
        for name in self.settings.benchmarks:
            for technique in techniques:
                out[(name, technique)] = self.run(name, technique)
        return out

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    def static_savings(self, benchmark: str, technique,
                       kind: ExecUnitKind,
                       gating: Optional[GatingParams] = None) -> float:
        """Figure 9 metric: net static energy saved vs no gating."""
        gating = gating or self.settings.gating
        result = self.run(benchmark, technique, gating=gating)
        params = EnergyParams.for_unit(
            dyn_per_issue=(INT_DYN_PER_ISSUE if kind is ExecUnitKind.INT
                           else FP_DYN_PER_ISSUE),
            bet=gating.bet)
        return domain_energy(result.unit_activity(kind),
                             params).static_savings

    def energy_breakdown(self, benchmark: str, technique: Technique,
                         kind: ExecUnitKind) -> EnergyBreakdown:
        """Figure 1b metric: dynamic / overhead / static components."""
        result = self.run(benchmark, technique)
        return domain_energy(result.unit_activity(kind),
                             self.settings.energy_params(kind))

    def fp_benchmarks(self) -> Tuple[str, ...]:
        """Benchmarks with FP activity (Figure 9b's population)."""
        return tuple(b for b in self.settings.benchmarks
                     if b not in INTEGER_ONLY_BENCHMARKS)


def normalized_performance(baseline: SimResult, result: SimResult) -> float:
    """Figure 10 metric: baseline cycles / technique cycles (1.0 = no
    slowdown, below 1.0 = the technique lost performance)."""
    if result.cycles == 0:
        raise ValueError("degenerate run with zero cycles")
    return baseline.cycles / result.cycles


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (Figure 10's summary statistic).

    Strict flavour: raises on non-positive input so silent zeros in a
    ratio column can't corrupt a summary.  Figure tables that must stay
    total in the presence of degenerate benchmarks (a zero-baseline
    denominator emits NaN) summarise with :func:`geomean_excluding`
    instead — both share one exclusion policy, so a figure table and a
    headline check can never disagree about the same column.
    """
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_excluding(values: Iterable[float]) -> Tuple[float, int]:
    """Geometric mean with the documented exclusion policy.

    The one policy both the figure geomean rows and the artifact
    headline checks apply: non-finite (NaN, +/-inf) and non-positive
    values are *excluded* — never clamped — and the exclusion count is
    returned so tables can report it.  Returns ``(nan, len(values))``
    when nothing survives; excluding a degenerate value is therefore
    exactly equivalent to dropping that benchmark from the column.
    """
    values = list(values)
    kept = [v for v in values if math.isfinite(v) and v > 0]
    excluded = len(values) - len(kept)
    if not kept:
        return math.nan, excluded
    return geomean(kept), excluded
