"""Memoising experiment runner and the figures' normalised metrics.

Every paper figure compares *the same trace* replayed under different
techniques, so the runner keys its cache on (benchmark, technique,
parameter overrides) and reuses results across figure builders — a full
figure set touches the same ~110 runs many times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core.adaptive import AdaptiveConfig
from repro.core.techniques import (
    PAPER_TECHNIQUES,
    Technique,
    TechniqueConfig,
    run_benchmark,
)
from repro.isa.optypes import ExecUnitKind
from repro.power.energy import domain_energy, EnergyBreakdown
from repro.power.params import (
    EnergyParams,
    FP_DYN_PER_ISSUE,
    GatingParams,
    INT_DYN_PER_ISSUE,
)
from repro.sim.config import SMConfig
from repro.sim.sm import SimResult
from repro.workloads.specs import BENCHMARK_NAMES, INTEGER_ONLY_BENCHMARKS


@dataclass(frozen=True)
class ExperimentSettings:
    """Global knobs shared by all runs of one experiment campaign.

    Attributes:
        seed: Trace-generation seed (identical across techniques).
        scale: Workload scale factor; 1.0 reproduces the full models,
            smaller values keep unit tests and pytest-benchmark runs
            fast while preserving workload character.
        gating: Power-gating parameters (idle-detect 5 / BET 14 /
            wakeup 3 by default, the paper's configuration).
        sm_config: Structural SM parameters.
        benchmarks: Benchmarks in scope (default: the full suite).
    """

    seed: int = 0
    scale: float = 1.0
    gating: GatingParams = field(default_factory=GatingParams)
    sm_config: SMConfig = field(default_factory=SMConfig)
    benchmarks: Tuple[str, ...] = BENCHMARK_NAMES

    def energy_params(self, kind: ExecUnitKind) -> EnergyParams:
        """Energy model for one unit kind under these gating params."""
        dyn = INT_DYN_PER_ISSUE if kind is ExecUnitKind.INT \
            else FP_DYN_PER_ISSUE
        return EnergyParams.for_unit(dyn_per_issue=dyn, bet=self.gating.bet)


class ExperimentRunner:
    """Runs and caches (benchmark, technique) simulations."""

    def __init__(self, settings: ExperimentSettings = ExperimentSettings()):
        self.settings = settings
        self._cache: Dict[Tuple, SimResult] = {}

    def run(self, benchmark: str, technique: Technique,
            gating: Optional[GatingParams] = None,
            adaptive: Optional[AdaptiveConfig] = None) -> SimResult:
        """Run one configuration (memoised)."""
        gating = gating or self.settings.gating
        adaptive = adaptive or AdaptiveConfig()
        key = (benchmark, technique, gating, adaptive,
               self.settings.seed, self.settings.scale)
        if key not in self._cache:
            config = TechniqueConfig(technique=technique, gating=gating,
                                     adaptive=adaptive)
            self._cache[key] = run_benchmark(
                benchmark, config, sm_config=self.settings.sm_config,
                seed=self.settings.seed, scale=self.settings.scale)
        return self._cache[key]

    def baseline(self, benchmark: str) -> SimResult:
        """The no-gating two-level reference run for one benchmark."""
        return self.run(benchmark, Technique.BASELINE)

    def suite(self, techniques: Sequence[Technique] = PAPER_TECHNIQUES,
              ) -> Dict[Tuple[str, Technique], SimResult]:
        """Run every benchmark under every requested technique."""
        out: Dict[Tuple[str, Technique], SimResult] = {}
        for name in self.settings.benchmarks:
            for technique in techniques:
                out[(name, technique)] = self.run(name, technique)
        return out

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    def static_savings(self, benchmark: str, technique: Technique,
                       kind: ExecUnitKind,
                       gating: Optional[GatingParams] = None) -> float:
        """Figure 9 metric: net static energy saved vs no gating."""
        gating = gating or self.settings.gating
        result = self.run(benchmark, technique, gating=gating)
        params = EnergyParams.for_unit(
            dyn_per_issue=(INT_DYN_PER_ISSUE if kind is ExecUnitKind.INT
                           else FP_DYN_PER_ISSUE),
            bet=gating.bet)
        return domain_energy(result.unit_activity(kind),
                             params).static_savings

    def energy_breakdown(self, benchmark: str, technique: Technique,
                         kind: ExecUnitKind) -> EnergyBreakdown:
        """Figure 1b metric: dynamic / overhead / static components."""
        result = self.run(benchmark, technique)
        return domain_energy(result.unit_activity(kind),
                             self.settings.energy_params(kind))

    def fp_benchmarks(self) -> Tuple[str, ...]:
        """Benchmarks with FP activity (Figure 9b's population)."""
        return tuple(b for b in self.settings.benchmarks
                     if b not in INTEGER_ONLY_BENCHMARKS)


def normalized_performance(baseline: SimResult, result: SimResult) -> float:
    """Figure 10 metric: baseline cycles / technique cycles (1.0 = no
    slowdown, below 1.0 = the technique lost performance)."""
    if result.cycles == 0:
        raise ValueError("degenerate run with zero cycles")
    return baseline.cycles / result.cycles


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (Figure 10's summary statistic)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
