"""One-command paper-artifact pipeline with tolerance-gated checks.

``repro figures`` drives every figure builder in
:mod:`repro.harness.figures` through one shared
:class:`~repro.harness.experiment.ExperimentRunner` (engine-cached, so
warm reruns are near-instant) and writes one directory per figure::

    results/
      index.md            — artifact overview + headline verdicts
      headline.json       — per-metric PASS/WARN/FAIL vs the paper
      fig9a/
        data.csv          — the figure's rows
        data.json         — same rows, standard JSON (NaN -> null)
        summary.md        — rendered Markdown table + paper reference
        plot.py           — standalone matplotlib stub over data.csv
        manifest.json     — provenance: spec hashes, seed, scale,
                            git sha, run id

The headline check is the scientific analogue of the digest-based
golden suite: every number the paper's evaluation text quotes (Figure
9 suite averages, Figure 10 geomean, Figure 8b/8c summaries, Figure 3
hotspot regions, the section 7.3 chip estimate and the section 7.5
overhead table) is compared against the constants in
:mod:`repro.analysis.paper` under the per-group tolerance bands in
:data:`repro.analysis.paper.TOLERANCES`.  A regression in GATES or
Blackout logic that shifts Figure 9 savings by ten percent fails the
band even though every bit-identity digest (which pins *inputs*, not
science) would still pass.
"""

from __future__ import annotations

import json
import math
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import paper
from repro.analysis.paper import TOLERANCES, Tolerance
from repro.core.spec import as_spec, validate_names
from repro.core.techniques import PAPER_TECHNIQUES, Technique
from repro.harness import figures
from repro.harness.experiment import ExperimentRunner
from repro.harness.export import (
    rows_to_csv,
    rows_to_json,
    rows_to_markdown,
)
from repro.isa.optypes import ExecUnitKind
from repro.obs.ledger import new_run_id

Row = List[object]

#: Region labels of the Figure 3 triples, in row order.
FIG3_REGION_LABELS = ("wasted", "loss", "gain")

#: Section 7.5 metric labels, in the builder's column order (the
#: leading total-bits column is informational, not a paper headline).
SEC75_METRICS = ("area_um2", "area_pct", "dynamic_pct", "leakage_pct")


# ---------------------------------------------------------------------------
# Figure registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FigureSpec:
    """One regenerable paper figure: headers, builder, provenance."""

    name: str
    title: str
    headers: Tuple[str, ...]
    build: Callable[[ExperimentRunner], List[Row]]
    paper_ref: str
    #: Whether the builder simulates (False: closed-form, e.g. sec75).
    simulates: bool = True


def _fig9a_rows(runner: ExperimentRunner) -> List[Row]:
    return figures.fig9_rows(runner, ExecUnitKind.INT)


def _fig9b_rows(runner: ExperimentRunner) -> List[Row]:
    return figures.fig9_rows(runner, ExecUnitKind.FP)


def _sec75_rows(runner: ExperimentRunner) -> List[Row]:
    return figures.sec75_rows()


#: Every figure the artifact regenerates, in paper order.
FIGURES: Dict[str, FigureSpec] = {
    spec.name: spec for spec in (
        FigureSpec("fig1b", "Baseline vs conventional-PG energy "
                            "breakdown (suite average)",
                   figures.FIG1B_HEADERS, figures.fig1b_rows,
                   "Figure 1b"),
        FigureSpec("fig3", "Idle-period regions on hotspot "
                           "(wasted / loss / gain)",
                   figures.FIG3_HEADERS, figures.fig3_rows,
                   "Figure 3, sections 3.1/4.1/5"),
        FigureSpec("fig5a", "Instruction mix per benchmark",
                   figures.FIG5A_HEADERS, figures.fig5a_rows,
                   "Figure 5a"),
        FigureSpec("fig5b", "Active-warp population per benchmark",
                   figures.FIG5B_HEADERS, figures.fig5b_rows,
                   "Figure 5b"),
        FigureSpec("fig6", "Critical wakeups vs runtime correlation",
                   figures.FIG6_HEADERS, figures.fig6_rows,
                   "Figure 6"),
        FigureSpec("fig8a", "Idle fraction normalised to baseline",
                   figures.FIG8A_HEADERS, figures.fig8a_rows,
                   "Figure 8a, section 7.2"),
        FigureSpec("fig8b", "Compensated-state residency",
                   figures.FIG8B_HEADERS, figures.fig8b_rows,
                   "Figure 8b, section 7.2"),
        FigureSpec("fig8c", "Gating events normalised to conventional "
                            "gating",
                   figures.FIG8C_HEADERS, figures.fig8c_rows,
                   "Figure 8c, section 7.2"),
        FigureSpec("fig9a", "INT static energy savings",
                   figures.FIG9_HEADERS, _fig9a_rows,
                   "Figure 9a, section 7.3"),
        FigureSpec("fig9b", "FP static energy savings",
                   figures.FIG9_HEADERS, _fig9b_rows,
                   "Figure 9b, section 7.3"),
        FigureSpec("fig10", "Normalised performance",
                   figures.FIG10_HEADERS, figures.fig10_rows,
                   "Figure 10, section 7.4"),
        FigureSpec("sec75", "Hardware overhead summary",
                   figures.SEC75_HEADERS, _sec75_rows,
                   "Section 7.5", simulates=False),
    )
}


def figure_names() -> Tuple[str, ...]:
    """Registered figure names, in paper order."""
    return tuple(FIGURES)


# ---------------------------------------------------------------------------
# Headline references and tolerance verdicts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeadlineReference:
    """One paper-quoted number (or range) a measured headline checks
    against.  ``low == high`` for scalar references; the section 7.3
    chip estimates keep the paper's quoted range."""

    metric: str
    group: str
    low: float
    high: float
    source: str

    @property
    def tolerance(self) -> Tolerance:
        """The group's band from :data:`~repro.analysis.paper.TOLERANCES`."""
        return TOLERANCES[self.group]


def headline_references() -> List[HeadlineReference]:
    """Every headline metric, bound to its paper constant and band."""
    refs: List[HeadlineReference] = []
    for tech, value in paper.FIG9_INT_SAVINGS.items():
        refs.append(HeadlineReference(f"fig9_int/{tech}", "fig9_int",
                                      value, value, "Fig. 9a"))
    for tech, value in paper.FIG9_FP_SAVINGS.items():
        refs.append(HeadlineReference(f"fig9_fp/{tech}", "fig9_fp",
                                      value, value, "Fig. 9b"))
    for tech, value in paper.FIG10_PERFORMANCE.items():
        refs.append(HeadlineReference(f"fig10/{tech}", "fig10",
                                      value, value, "Fig. 10"))
    for tech, value in paper.FIG8B_COMPENSATED.items():
        refs.append(HeadlineReference(f"fig8b/{tech}", "fig8b",
                                      value, value, "Fig. 8b"))
    for tech, value in paper.FIG8C_WAKEUPS.items():
        refs.append(HeadlineReference(f"fig8c/{tech}", "fig8c",
                                      value, value, "Fig. 8c"))
    for config, regions in paper.FIG3_REGIONS.items():
        for label, value in zip(FIG3_REGION_LABELS, regions):
            refs.append(HeadlineReference(f"fig3/{config}/{label}",
                                          "fig3", value, value,
                                          "Fig. 3"))
    low, high = paper.CHIP_SAVINGS_AT_33PCT
    refs.append(HeadlineReference("sec73/chip_savings_at_33pct_leakage",
                                  "sec73", low, high, "Section 7.3"))
    low, high = paper.CHIP_SAVINGS_AT_50PCT
    refs.append(HeadlineReference("sec73/chip_savings_at_50pct_leakage",
                                  "sec73", low, high, "Section 7.3"))
    refs.append(HeadlineReference("sec75/area_um2", "sec75_area_um2",
                                  paper.OVERHEAD_AREA_UM2,
                                  paper.OVERHEAD_AREA_UM2,
                                  "Section 7.5"))
    for label, value in (("area_pct", paper.OVERHEAD_AREA_PCT),
                         ("dynamic_pct", paper.OVERHEAD_DYNAMIC_PCT),
                         ("leakage_pct", paper.OVERHEAD_LEAKAGE_PCT)):
        refs.append(HeadlineReference(f"sec75/{label}", "sec75_pct",
                                      value, value, "Section 7.5"))
    return refs


@dataclass(frozen=True)
class HeadlineCheck:
    """One measured headline's verdict against its paper band."""

    metric: str
    measured: float
    paper_low: float
    paper_high: float
    abs_error: float
    warn_tol: float
    fail_tol: float
    verdict: str
    source: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe record for ``headline.json`` (non-finite -> null)."""
        def safe(value: float) -> Optional[float]:
            return value if math.isfinite(value) else None
        return {
            "metric": self.metric,
            "measured": safe(self.measured),
            "paper_low": self.paper_low,
            "paper_high": self.paper_high,
            "abs_error": safe(self.abs_error),
            "warn_tol": self.warn_tol,
            "fail_tol": self.fail_tol,
            "verdict": self.verdict,
            "source": self.source,
        }


def _verdict(error: float, tolerance: Tolerance) -> str:
    if not math.isfinite(error):
        return "FAIL"
    if error <= tolerance.warn:
        return "PASS"
    if error <= tolerance.fail:
        return "WARN"
    return "FAIL"


def evaluate_headlines(measured: Dict[str, float],
                       references: Optional[
                           Sequence[HeadlineReference]] = None,
                       ) -> List[HeadlineCheck]:
    """Verdicts for every reference with a measured value.

    Pure — callers control both sides, so tests can prove the gate
    trips: feed the paper constants back in (all PASS), then perturb
    one value past its fail band (FAIL).  The error is the distance to
    the nearest edge of the paper band (zero inside it); a non-finite
    measured value can never be in band and always FAILs.
    """
    checks: List[HeadlineCheck] = []
    for ref in references if references is not None \
            else headline_references():
        if ref.metric not in measured:
            continue
        value = float(measured[ref.metric])
        if math.isfinite(value):
            if ref.low <= value <= ref.high:
                error = 0.0
            else:
                error = min(abs(value - ref.low), abs(value - ref.high))
        else:
            error = math.inf
        tolerance = ref.tolerance
        checks.append(HeadlineCheck(
            metric=ref.metric, measured=value,
            paper_low=ref.low, paper_high=ref.high,
            abs_error=error, warn_tol=tolerance.warn,
            fail_tol=tolerance.fail,
            verdict=_verdict(error, tolerance), source=ref.source))
    return checks


def overall_verdict(checks: Sequence[HeadlineCheck]) -> str:
    """FAIL dominates WARN dominates PASS; no checks is a FAIL too
    (an artifact that measured nothing cannot be in band)."""
    if not checks:
        return "FAIL"
    verdicts = {check.verdict for check in checks}
    if "FAIL" in verdicts:
        return "FAIL"
    if "WARN" in verdicts:
        return "WARN"
    return "PASS"


# ---------------------------------------------------------------------------
# Measured-headline collection from figure rows
# ---------------------------------------------------------------------------


def _summary_row(rows: Sequence[Row], label: str) -> Optional[Row]:
    for row in rows:
        if isinstance(row[0], str) and row[0].startswith(label):
            return row
    return None


def _columns(row: Row, names: Sequence[str],
             prefix: str) -> Dict[str, float]:
    return {f"{prefix}/{name}": float(value)
            for name, value in zip(names, row[1:])}


def collect_headlines(rows_by_figure: Dict[str, Sequence[Row]],
                      ) -> Dict[str, float]:
    """Extract every checkable headline from generated figure rows.

    Figures missing from ``rows_by_figure`` (a ``--figures`` subset)
    simply contribute no metrics; :func:`evaluate_headlines` skips
    references without a measurement.
    """
    from repro.power.energy import chip_level_savings

    measured: Dict[str, float] = {}
    fig9_names = [t.value for t in figures.FIG9_TECHNIQUES]
    row = _summary_row(rows_by_figure.get("fig9a", ()), "average")
    if row is not None:
        measured.update(_columns(row, fig9_names, "fig9_int"))
    row = _summary_row(rows_by_figure.get("fig9b", ()), "average")
    if row is not None:
        measured.update(_columns(row, fig9_names, "fig9_fp"))
    row = _summary_row(rows_by_figure.get("fig10", ()), "geomean")
    if row is not None:
        measured.update(_columns(row, fig9_names, "fig10"))
    row = _summary_row(rows_by_figure.get("fig8b", ()), "mean")
    if row is not None:
        measured.update(_columns(
            row, ("conv_pg", "gates", "warped_gates"), "fig8b"))
    row = _summary_row(rows_by_figure.get("fig8c", ()), "geomean")
    if row is not None:
        fig8_names = [t.value for t in figures.FIG8_TECHNIQUES]
        for key, value in _columns(row, fig8_names, "fig8c").items():
            if key.split("/", 1)[1] in paper.FIG8C_WAKEUPS:
                measured[key] = value
    for row in rows_by_figure.get("fig3", ()):
        for label, value in zip(FIG3_REGION_LABELS, row[1:4]):
            measured[f"fig3/{row[0]}/{label}"] = float(value)
    # Section 7.3 is arithmetic over the Figure 9 warped-gates averages.
    int_avg = measured.get("fig9_int/warped_gates")
    fp_avg = measured.get("fig9_fp/warped_gates")
    if int_avg is not None and fp_avg is not None:
        for share, key in ((0.33, "chip_savings_at_33pct_leakage"),
                           (0.50, "chip_savings_at_50pct_leakage")):
            measured[f"sec73/{key}"] = chip_level_savings(
                int_avg, fp_avg, leakage_share_of_chip=share)
    sec75 = rows_by_figure.get("sec75", ())
    if sec75:
        # Row layout: [total_bits, area_um2, area_pct, dynamic_pct,
        # leakage_pct]; the leading bit count is informational.
        measured.update(_columns(sec75[0], SEC75_METRICS, "sec75"))
    return measured


# ---------------------------------------------------------------------------
# Artifact generation
# ---------------------------------------------------------------------------

_PLOT_STUB = '''\
"""Regenerate the {name} chart from data.csv.

Standalone: run ``python plot.py`` next to data.csv.  Requires
matplotlib (not a dependency of the reproduction itself); the CSV/JSON
rows are the canonical artifact either way.
"""

import csv
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent


def load():
    with open(HERE / "data.csv", newline="", encoding="utf-8") as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def main():
    try:
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is not installed; see data.csv for the rows")
    headers, rows = load()
    labels = [row[0] for row in rows]
    series = list(range(1, len(headers)))
    width = 0.8 / max(len(series), 1)
    fig, ax = plt.subplots(figsize=(max(6, len(labels)), 4))
    for i, col in enumerate(series):
        values = []
        for row in rows:
            try:
                values.append(float(row[col]))
            except ValueError:
                values.append(float("nan"))
        ax.bar([x + i * width for x in range(len(labels))], values,
               width=width, label=headers[col])
    ax.set_xticks([x + 0.4 - width / 2 for x in range(len(labels))])
    ax.set_xticklabels(labels, rotation=60, ha="right", fontsize=8)
    ax.set_title({title!r})
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = HERE / "{name}.png"
    fig.savefig(out, dpi=150)
    print(f"wrote {{out}}")


if __name__ == "__main__":
    main()
'''


def _git_sha(root: Optional[Union[str, Path]] = None) -> str:
    """Current short commit sha, or "" outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=None if root is None else str(root),
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return ""
    return proc.stdout.strip() if proc.returncode == 0 else ""


def _technique_hashes(runner: ExperimentRunner) -> Dict[str, str]:
    """Spec hash per paper technique, resolved like the runner does
    (enum references inherit the campaign's gating parameters)."""
    from dataclasses import replace
    hashes: Dict[str, str] = {}
    for technique in (Technique.BASELINE,) + tuple(PAPER_TECHNIQUES):
        spec = replace(as_spec(technique),
                       gating=runner.settings.gating)
        hashes[spec.name] = spec.spec_hash()
    return hashes


@dataclass
class FigureArtifact:
    """One generated figure directory."""

    name: str
    directory: Path
    rows: List[Row]
    manifest: Dict[str, object]


@dataclass
class ArtifactReport:
    """Everything one ``repro figures`` invocation produced."""

    out_dir: Path
    run_id: str
    git_sha: str
    figures: List[FigureArtifact]
    checks: List[HeadlineCheck]
    verdict: Optional[str]
    elapsed_seconds: float

    @property
    def counts(self) -> Dict[str, int]:
        """Verdict tally over the headline checks."""
        counts = {"PASS": 0, "WARN": 0, "FAIL": 0}
        for check in self.checks:
            counts[check.verdict] += 1
        return counts


def _select_figures(names: Optional[Sequence[str]]) -> List[FigureSpec]:
    if names is None:
        return list(FIGURES.values())
    validated = validate_names(tuple(names), tuple(FIGURES), "figure")
    return [FIGURES[name] for name in validated]


def _prefetch_grid(runner: ExperimentRunner,
                   specs: Sequence[FigureSpec]) -> None:
    """Warm the engine cache with the shared benchmark x technique
    grid before any builder runs (figure 6's sweep prefetches its own
    idle-detect grid inside the builder)."""
    if not any(spec.simulates for spec in specs):
        return
    requests = [(name, Technique.BASELINE)
                for name in runner.settings.benchmarks]
    requests += [(name, technique)
                 for name in runner.settings.benchmarks
                 for technique in PAPER_TECHNIQUES]
    runner.prefetch(requests)


def generate_figure(runner: ExperimentRunner, spec: FigureSpec,
                    out_dir: Union[str, Path],
                    formats: Sequence[str] = ("csv", "json", "md"),
                    run_id: str = "", git_sha: str = "",
                    ) -> FigureArtifact:
    """Build one figure and write its artifact directory."""
    directory = Path(out_dir) / spec.name
    directory.mkdir(parents=True, exist_ok=True)
    rows = spec.build(runner)
    written: List[str] = []
    if "csv" in formats:
        rows_to_csv(spec.headers, rows, path=directory / "data.csv")
        written.append("data.csv")
    if "json" in formats:
        rows_to_json(spec.headers, rows, path=directory / "data.json",
                     figure=spec.name)
        written.append("data.json")
    if "md" in formats:
        summary = rows_to_markdown(
            spec.headers, rows,
            title=f"{spec.name}: {spec.title}")
        summary += (f"\nPaper reference: {spec.paper_ref}."
                    f"  Regenerate: `python -m repro --scale "
                    f"{runner.settings.scale} figures --figures "
                    f"{spec.name}`.\n")
        (directory / "summary.md").write_text(summary, encoding="utf-8")
        written.append("summary.md")
    (directory / "plot.py").write_text(
        _PLOT_STUB.format(name=spec.name, title=spec.title),
        encoding="utf-8")
    written.append("plot.py")
    manifest: Dict[str, object] = {
        "figure": spec.name,
        "title": spec.title,
        "paper_ref": spec.paper_ref,
        "headers": list(spec.headers),
        "n_rows": len(rows),
        "seed": runner.settings.seed,
        "scale": runner.settings.scale,
        "benchmarks": list(runner.settings.benchmarks),
        "techniques": (_technique_hashes(runner)
                       if spec.simulates else {}),
        "git_sha": git_sha,
        "run_id": run_id,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime()),
        "files": written,
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return FigureArtifact(name=spec.name, directory=directory,
                          rows=rows, manifest=manifest)


def _write_headline(report: ArtifactReport, runner: ExperimentRunner,
                    ) -> None:
    document = {
        "run_id": report.run_id,
        "git_sha": report.git_sha,
        "seed": runner.settings.seed,
        "scale": runner.settings.scale,
        "benchmarks": list(runner.settings.benchmarks),
        "verdict": report.verdict,
        "counts": report.counts,
        "checks": [check.to_dict() for check in report.checks],
    }
    (report.out_dir / "headline.json").write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8")


def _write_index(report: ArtifactReport, runner: ExperimentRunner,
                 ) -> None:
    lines = [
        "# Paper artifact",
        "",
        f"Run `{report.run_id}`"
        + (f" at `{report.git_sha}`" if report.git_sha else "")
        + f", seed {runner.settings.seed}, scale "
          f"{runner.settings.scale}, "
          f"{len(runner.settings.benchmarks)} benchmark(s), "
          f"generated in {report.elapsed_seconds:.1f}s.",
        "",
        "| figure | rows | paper reference |",
        "|---|---|---|",
    ]
    for artifact in report.figures:
        lines.append(f"| [{artifact.name}]({artifact.name}/summary.md) "
                     f"| {len(artifact.rows)} "
                     f"| {artifact.manifest['paper_ref']} |")
    if report.verdict is not None:
        counts = report.counts
        lines += [
            "",
            f"## Headline checks — {report.verdict}",
            "",
            f"{counts['PASS']} PASS / {counts['WARN']} WARN / "
            f"{counts['FAIL']} FAIL vs the tolerance bands in "
            f"`repro.analysis.paper.TOLERANCES` "
            f"(see `headline.json`).",
            "",
            "| metric | measured | paper | error | verdict |",
            "|---|---|---|---|---|",
        ]
        for check in report.checks:
            band = (f"{check.paper_low:.4g}"
                    if check.paper_low == check.paper_high
                    else f"{check.paper_low:.4g}–{check.paper_high:.4g}")
            measured = (f"{check.measured:.4g}"
                        if math.isfinite(check.measured) else "—")
            error = (f"{check.abs_error:.4g}"
                     if math.isfinite(check.abs_error) else "—")
            lines.append(f"| {check.metric} | {measured} | {band} "
                         f"| {error} | {check.verdict} |")
    (report.out_dir / "index.md").write_text(
        "\n".join(lines) + "\n", encoding="utf-8")


def generate_artifact(runner: ExperimentRunner,
                      out_dir: Union[str, Path],
                      figure_subset: Optional[Sequence[str]] = None,
                      formats: Sequence[str] = ("csv", "json", "md"),
                      check: bool = True) -> ArtifactReport:
    """Regenerate the paper artifact into ``out_dir``.

    The whole pipeline shares ``runner``'s memo cache (and its engine's
    persistent cache when one is attached), so the ~110-run grid is
    simulated once and every figure after the first is a lookup.  With
    ``check`` (the default) the measured headlines are evaluated
    against the paper's tolerance bands and ``headline.json`` written;
    ``verdict`` is then PASS/WARN/FAIL, else None.
    """
    t0 = time.perf_counter()
    specs = _select_figures(figure_subset)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    run_id = new_run_id()
    git_sha = _git_sha()
    _prefetch_grid(runner, specs)
    artifacts = [generate_figure(runner, spec, out_dir,
                                 formats=formats, run_id=run_id,
                                 git_sha=git_sha)
                 for spec in specs]
    checks: List[HeadlineCheck] = []
    verdict: Optional[str] = None
    if check:
        rows_by_figure = {a.name: a.rows for a in artifacts}
        checks = evaluate_headlines(collect_headlines(rows_by_figure))
        verdict = overall_verdict(checks)
    report = ArtifactReport(out_dir=out_dir, run_id=run_id,
                            git_sha=git_sha, figures=artifacts,
                            checks=checks, verdict=verdict,
                            elapsed_seconds=time.perf_counter() - t0)
    if check:
        _write_headline(report, runner)
    _write_index(report, runner)
    report.elapsed_seconds = time.perf_counter() - t0
    return report
