"""Experiment harness: benchmark x technique sweeps and figure builders.

* :mod:`repro.harness.experiment` -- the memoising runner plus the
  normalised metrics every figure consumes (savings, performance,
  wakeups, compensated residency).
* :mod:`repro.harness.figures` -- one builder per paper figure,
  returning printable rows/series (used by ``benchmarks/`` and the
  examples).
* :mod:`repro.harness.sweeps` -- parameter sweeps: idle-detect (Fig. 6),
  break-even time and wakeup delay (Fig. 11).
* :mod:`repro.harness.artifact` -- the one-command paper-artifact
  pipeline (``repro figures``): per-figure result directories with
  provenance manifests plus tolerance-gated headline checks.
* :mod:`repro.harness.export` -- CSV / standard-JSON / Markdown row
  serialisation shared by the CLI and the artifact pipeline.
"""

from repro.harness.experiment import (
    ExperimentSettings,
    ExperimentRunner,
    normalized_performance,
)
from repro.harness import figures, sweeps

__all__ = [
    "ExperimentSettings",
    "ExperimentRunner",
    "normalized_performance",
    "figures",
    "sweeps",
]
