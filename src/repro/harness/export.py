"""Result export: figure rows to CSV / JSON.

The figure builders return plain row lists; these helpers serialise them
so downstream plotting (outside this offline environment) can regenerate
the paper's actual charts.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

Row = Sequence[object]


def rows_to_csv(headers: Sequence[str], rows: Iterable[Row],
                path: Optional[Union[str, Path]] = None) -> str:
    """Serialise figure rows as CSV; optionally write to ``path``."""
    materialised = [list(row) for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(materialised)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def rows_to_json(headers: Sequence[str], rows: Iterable[Row],
                 path: Optional[Union[str, Path]] = None,
                 figure: Optional[str] = None) -> str:
    """Serialise figure rows as a JSON document of records."""
    materialised = [list(row) for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
    records: List[dict] = [dict(zip(headers, row)) for row in materialised]
    document = {"figure": figure, "headers": list(headers),
                "records": records}
    text = json.dumps(document, indent=2, sort_keys=False)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_json_rows(path: Union[str, Path]) -> List[dict]:
    """Read back records written by :func:`rows_to_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return document["records"]
