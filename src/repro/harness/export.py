"""Result export: figure rows to CSV / JSON / Markdown.

The figure builders return plain row lists; these helpers serialise them
so downstream plotting (outside this offline environment) can regenerate
the paper's actual charts.

NaN policy: figure rows mark undefined cells (a zero-baseline ratio, an
all-failed sweep point) with ``float("nan")``.  JSON has no standard
NaN literal — ``json.dumps`` would emit the non-interoperable ``NaN``
token — so :func:`rows_to_json` serialises non-finite floats as
``null`` (enforced with ``allow_nan=False``) and :func:`load_json_rows`
reads ``null`` back as NaN, making the round trip lossless for every
figure the pipeline writes.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

Row = Sequence[object]


def _materialise(headers: Sequence[str],
                 rows: Iterable[Row]) -> List[List[object]]:
    materialised = [list(row) for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
    return materialised


def _json_safe(value: object) -> object:
    """Map non-finite floats to None (JSON null); pass the rest through."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def rows_to_csv(headers: Sequence[str], rows: Iterable[Row],
                path: Optional[Union[str, Path]] = None) -> str:
    """Serialise figure rows as CSV; optionally write to ``path``.

    NaN cells render as the string ``nan`` — ``float("nan")`` reads it
    straight back, and spreadsheet imports show the hole rather than a
    fabricated zero.
    """
    materialised = _materialise(headers, rows)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(materialised)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def rows_to_json(headers: Sequence[str], rows: Iterable[Row],
                 path: Optional[Union[str, Path]] = None,
                 figure: Optional[str] = None) -> str:
    """Serialise figure rows as a JSON document of records.

    Non-finite floats become ``null`` so the document stays standard
    JSON (``allow_nan=False`` makes any leak a hard error, not a
    silently non-portable file).
    """
    materialised = _materialise(headers, rows)
    records: List[dict] = [
        dict(zip(headers, (_json_safe(cell) for cell in row)))
        for row in materialised]
    document = {"figure": figure, "headers": list(headers),
                "records": records}
    text = json.dumps(document, indent=2, sort_keys=False,
                      allow_nan=False)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def load_json_rows(path: Union[str, Path]) -> List[dict]:
    """Read back records written by :func:`rows_to_json`.

    ``null`` cells (the serialised form of NaN) come back as
    ``float("nan")``, completing the round trip.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return [{key: (math.nan if value is None else value)
             for key, value in record.items()}
            for record in document["records"]]


def _markdown_cell(value: object) -> str:
    if isinstance(value, float):
        if not math.isfinite(value):
            return "—"
        return f"{value:.4g}"
    return str(value).replace("|", "\\|")


def rows_to_markdown(headers: Sequence[str], rows: Iterable[Row],
                     path: Optional[Union[str, Path]] = None,
                     title: Optional[str] = None) -> str:
    """Render figure rows as a GitHub-flavoured Markdown table.

    Floats render with four significant digits; NaN renders as an em
    dash.  Used for the per-figure ``summary.md`` files the artifact
    pipeline writes.
    """
    materialised = _materialise(headers, rows)
    lines: List[str] = []
    if title:
        lines += [f"## {title}", ""]
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in materialised:
        lines.append("| " + " | ".join(_markdown_cell(cell)
                                       for cell in row) + " |")
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
