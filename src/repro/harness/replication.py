"""Multi-seed replication: mean and spread for the headline metrics.

The synthetic traces are random draws from each benchmark's statistical
model, so any single-seed number carries sampling noise.  This module
replays the headline experiment (static savings + normalised
performance per technique) across several seeds and reports mean ±
sample standard deviation — the honest way to quote the reproduction's
numbers, and the basis for EXPERIMENTS.md's stability claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.spec import technique_label
from repro.core.techniques import PAPER_TECHNIQUES, Technique
from repro.engine.faults import JobFailedError
from repro.harness.experiment import (
    ExperimentRunner,
    ExperimentSettings,
    geomean,
    normalized_performance,
)
from repro.isa.optypes import ExecUnitKind
from repro.obs.manifest import RunManifest
from repro.service.core import SimulationService


@dataclass(frozen=True)
class MetricEstimate:
    """Mean and spread of one metric over replicated seeds."""

    mean: float
    stdev: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} +/- {self.stdev:.3f} (n={self.n})"


@dataclass(frozen=True)
class ReplicatedResult:
    """Suite-level metrics of one technique across seeds.

    ``benchmarks`` records the population behind the means: one
    surviving-benchmark count per contributing seed, identical across
    techniques — a benchmark that fails *any* cell within a seed is
    dropped from that whole seed, so cross-technique comparisons always
    average over the same benchmarks.  A count below the configured
    suite size flags a partial (failure-reduced) population.
    """

    technique: Technique
    int_savings: MetricEstimate
    fp_savings: MetricEstimate
    performance: MetricEstimate
    benchmarks: Tuple[int, ...] = ()


def _estimate(samples: Sequence[float]) -> MetricEstimate:
    n = len(samples)
    if n == 0:
        return MetricEstimate(0.0, 0.0, 0)
    mean = sum(samples) / n
    if n == 1:
        return MetricEstimate(mean, 0.0, 1)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return MetricEstimate(mean, math.sqrt(var), n)


def replicate(settings: ExperimentSettings,
              seeds: Sequence[int] = (0, 1, 2),
              techniques: Sequence[Technique] = PAPER_TECHNIQUES,
              engine=None,
              failure_log: Optional[List[RunManifest]] = None,
              service: Optional[SimulationService] = None,
              ) -> List[ReplicatedResult]:
    """Run the headline experiment once per seed and aggregate.

    Each seed gets its own runner (fresh traces throughout) but all
    seeds share one :class:`SimulationService` — request keys carry the
    seed, so cells never alias, and the shared single-flight memo means
    re-running a seed costs nothing.  Within a seed the usual
    identical-trace comparison across techniques holds.  With an
    ``engine`` (or a ``service`` wrapping one), each seed's full
    (benchmark × technique) grid is prefetched over the worker pool
    before the serial metric loops read it back from memory.

    A benchmark that terminally fails *any* of its cells under the
    engine (baseline or any technique) is dropped from the whole seed —
    not just from the failing technique's averages — so every technique
    aggregates over the same surviving benchmarks and cross-technique
    comparisons stay population-equal.  Per-seed survivor counts land
    in :attr:`ReplicatedResult.benchmarks`; pass ``failure_log`` to
    collect the failed cells' manifests (empty afterwards means every
    cell succeeded).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if service is None:
        service = SimulationService(engine=engine)
    per_technique: Dict[Technique, Dict[str, List[float]]] = {
        t: {"int": [], "fp": [], "perf": []} for t in techniques}
    coverage: List[int] = []
    for seed in seeds:
        runner = ExperimentRunner(replace(settings, seed=seed),
                                  service=service)
        runner.prefetch(
            [(name, tech)
             for name in runner.settings.benchmarks
             for tech in (Technique.BASELINE, *techniques)])
        # One population per seed: collect every technique's metrics
        # for a benchmark together, so one failed cell drops the
        # benchmark from the seed entirely.
        surviving: Dict[str, Dict[Technique, Tuple]] = {}
        for name in runner.settings.benchmarks:
            try:
                base = runner.baseline(name)
                cells: Dict[Technique, Tuple] = {}
                for technique in techniques:
                    result = runner.run(name, technique)
                    int_val = runner.static_savings(
                        name, technique, ExecUnitKind.INT)
                    fp_val = runner.static_savings(
                        name, technique, ExecUnitKind.FP) \
                        if name in runner.fp_benchmarks() else None
                    perf_val = normalized_performance(base, result)
                    cells[technique] = (int_val, fp_val, perf_val)
            except JobFailedError:
                continue
            surviving[name] = cells
        if failure_log is not None:
            failure_log.extend(runner.failures)
        if not surviving:
            continue
        coverage.append(len(surviving))
        for technique in techniques:
            int_vals = [cells[technique][0]
                        for cells in surviving.values()]
            fp_vals = [cells[technique][1]
                       for cells in surviving.values()
                       if cells[technique][1] is not None]
            perf_vals = [cells[technique][2]
                         for cells in surviving.values()]
            bucket = per_technique[technique]
            bucket["int"].append(sum(int_vals) / len(int_vals))
            bucket["fp"].append(sum(fp_vals) / len(fp_vals)
                                if fp_vals else 0.0)
            bucket["perf"].append(geomean(perf_vals))
    return [
        ReplicatedResult(
            technique=technique,
            int_savings=_estimate(per_technique[technique]["int"]),
            fp_savings=_estimate(per_technique[technique]["fp"]),
            performance=_estimate(per_technique[technique]["perf"]),
            benchmarks=tuple(coverage))
        for technique in techniques
    ]


def replication_rows(results: Sequence[ReplicatedResult],
                     ) -> List[List[object]]:
    """Tabular form (one row per technique).

    ``benchmarks`` renders the per-seed survivor counts (e.g. ``3/3/2``
    for three seeds) so a partial population is visible right in the
    headline table.
    """
    rows: List[List[object]] = []
    for result in results:
        rows.append([
            technique_label(result.technique),
            result.int_savings.mean, result.int_savings.stdev,
            result.fp_savings.mean, result.fp_savings.stdev,
            result.performance.mean, result.performance.stdev,
            "/".join(str(n) for n in result.benchmarks),
        ])
    return rows


REPLICATION_HEADERS = ("technique", "int_mean", "int_sd", "fp_mean",
                       "fp_sd", "perf_mean", "perf_sd", "benchmarks")
