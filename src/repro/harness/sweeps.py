"""Parameter sweeps: Figure 6 (idle-detect) and Figure 11 (BET, wakeup).

* :func:`idle_detect_sweep` replays every benchmark under GATES +
  Blackout across static idle-detect values 0..10 and records runtime
  and critical wakeups — the raw data behind Figure 6's correlation
  scatter.
* :func:`bet_sweep` / :func:`wakeup_sweep` compare conventional power
  gating against Warped Gates across break-even times {9, 14, 19} and
  wakeup delays {3, 6, 9}, reporting suite-average INT/FP savings and
  geomean performance (Figure 11a / 11b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.correlation import (
    critical_wakeups_per_kilocycle,
    pearson_r,
)
from repro.core.spec import technique_label
from repro.core.techniques import Technique
from repro.engine.faults import JobFailedError
from repro.harness.experiment import (
    ExperimentRunner,
    geomean,
    normalized_performance,
)
from repro.isa.optypes import ExecUnitKind
from repro.power.params import GatingParams

#: Paper sweep points (section 7.6; BET values from Hu et al.).
BET_VALUES: Tuple[int, ...] = (9, 14, 19)
WAKEUP_VALUES: Tuple[int, ...] = (3, 6, 9)
IDLE_DETECT_VALUES: Tuple[int, ...] = tuple(range(0, 11))


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter value, technique) cell of a Figure 11 panel.

    ``benchmarks`` counts the surviving runs behind the averages; 0
    means every benchmark failed at this point, in which case the
    metrics are NaN — a failed point is never rendered as a measured
    zero.
    """

    value: int
    technique: Technique
    int_savings: float
    fp_savings: float
    performance: float
    benchmarks: int

    @property
    def failed(self) -> bool:
        """True when no benchmark survived at this sweep point."""
        return self.benchmarks == 0


@dataclass(frozen=True)
class CorrelationResult:
    """Figure 6 outcome for one benchmark."""

    benchmark: str
    pearson: float
    #: (critical wakeups per kilocycle, normalised runtime) per
    #: idle-detect value.
    points: Tuple[Tuple[float, float], ...]


def idle_detect_sweep(runner: ExperimentRunner,
                      values: Sequence[int] = IDLE_DETECT_VALUES,
                      technique: Technique = Technique.NAIVE_BLACKOUT,
                      ) -> List[CorrelationResult]:
    """Figure 6: correlate critical wakeups with runtime per benchmark.

    Runtime is normalised to the no-gating baseline (values above 1.0
    mean Blackout slowed the benchmark down), matching the paper's
    y-axis.  The returned Pearson r reproduces the per-benchmark legend
    annotations.
    """
    runner.prefetch(
        [(name, Technique.BASELINE) for name in runner.settings.benchmarks]
        + [(name, technique,
            replace(runner.settings.gating, idle_detect=v))
           for name in runner.settings.benchmarks for v in values])
    results: List[CorrelationResult] = []
    for name in runner.settings.benchmarks:
        try:
            base_cycles = runner.baseline(name).cycles
            xs: List[float] = []
            ys: List[float] = []
            for idle_detect in values:
                gating = replace(runner.settings.gating,
                                 idle_detect=idle_detect)
                result = runner.run(name, technique, gating=gating)
                critical = (result.gating_totals(ExecUnitKind.INT)
                            .critical_wakeups
                            + result.gating_totals(ExecUnitKind.FP)
                            .critical_wakeups)
                xs.append(critical_wakeups_per_kilocycle(critical,
                                                         result.cycles))
                ys.append(result.cycles / base_cycles)
        except JobFailedError:
            # Failed cell: drop this benchmark's scatter, keep the rest
            # of the figure.  The runner's manifests name the culprit.
            continue
        results.append(CorrelationResult(
            benchmark=name, pearson=pearson_r(xs, ys),
            points=tuple(zip(xs, ys))))
    results.sort(key=lambda r: -r.pearson)
    return results


def _suite_point(runner: ExperimentRunner, technique: Technique,
                 gating: GatingParams, value: int) -> SweepPoint:
    int_savings: List[float] = []
    fp_savings: List[float] = []
    perf: List[float] = []
    for name in runner.settings.benchmarks:
        try:
            base = runner.baseline(name)
            result = runner.run(name, technique, gating=gating)
            int_val = runner.static_savings(
                name, technique, ExecUnitKind.INT, gating=gating)
            fp_val = runner.static_savings(
                name, technique, ExecUnitKind.FP, gating=gating) \
                if name in runner.fp_benchmarks() else None
            perf_val = normalized_performance(base, result)
        except JobFailedError:
            # Failed cell: average over the surviving benchmarks.
            continue
        int_savings.append(int_val)
        if fp_val is not None:
            fp_savings.append(fp_val)
        perf.append(perf_val)
    if not int_savings:
        # Every benchmark failed at this point: keep the sweep's shape
        # but mark the point failed (NaN metrics, zero population)
        # instead of fabricating a measured-looking zero.
        nan = float("nan")
        return SweepPoint(value=value, technique=technique,
                          int_savings=nan, fp_savings=nan,
                          performance=nan, benchmarks=0)
    return SweepPoint(
        value=value, technique=technique,
        int_savings=sum(int_savings) / len(int_savings),
        fp_savings=sum(fp_savings) / len(fp_savings) if fp_savings else 0.0,
        performance=geomean(perf), benchmarks=len(int_savings))


def bet_sweep(runner: ExperimentRunner,
              values: Sequence[int] = BET_VALUES,
              techniques: Sequence[Technique] = (
                  Technique.CONV_PG, Technique.WARPED_GATES),
              ) -> List[SweepPoint]:
    """Figure 11a: sensitivity to the break-even time."""
    _prefetch_grid(runner, techniques,
                   [replace(runner.settings.gating, bet=v)
                    for v in values])
    points: List[SweepPoint] = []
    for bet in values:
        gating = replace(runner.settings.gating, bet=bet)
        for technique in techniques:
            points.append(_suite_point(runner, technique, gating, bet))
    return points


def _prefetch_grid(runner: ExperimentRunner,
                   techniques: Sequence[Technique],
                   gatings: Sequence[GatingParams]) -> None:
    """Fan a sweep's full run grid over the runner's engine (if any)."""
    runner.prefetch(
        [(name, Technique.BASELINE) for name in runner.settings.benchmarks]
        + [(name, technique, gating)
           for name in runner.settings.benchmarks
           for gating in gatings for technique in techniques])


def wakeup_sweep(runner: ExperimentRunner,
                 values: Sequence[int] = WAKEUP_VALUES,
                 techniques: Sequence[Technique] = (
                     Technique.CONV_PG, Technique.WARPED_GATES),
                 ) -> List[SweepPoint]:
    """Figure 11b: sensitivity to the wakeup delay."""
    _prefetch_grid(runner, techniques,
                   [replace(runner.settings.gating, wakeup_delay=v)
                    for v in values])
    points: List[SweepPoint] = []
    for wakeup in values:
        gating = replace(runner.settings.gating, wakeup_delay=wakeup)
        for technique in techniques:
            points.append(_suite_point(runner, technique, gating, wakeup))
    return points


def sweep_rows(points: Sequence[SweepPoint]) -> List[List[object]]:
    """Tabular form of a Figure 11 panel.

    A failed point's NaN metrics are emitted as ``None`` (empty CSV
    field, JSON ``null``) so exported tables cannot mistake a failed
    point for a measurement; the ``benchmarks`` column says how many
    runs are behind each row.
    """
    def cell(metric: float) -> Optional[float]:
        return None if math.isnan(metric) else metric

    return [[p.value, technique_label(p.technique), cell(p.int_savings),
             cell(p.fp_savings), cell(p.performance), p.benchmarks]
            for p in points]


SWEEP_HEADERS = ("value", "technique", "int_savings", "fp_savings",
                 "performance", "benchmarks")
