"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``          — benchmarks and techniques available.
* ``run``           — run one benchmark under one technique, print the
  headline metrics.
* ``figure``        — regenerate one of the paper's figures (prints the
  rows; ``--csv`` / ``--json`` export them).
* ``figures``       — regenerate the *whole* paper artifact into one
  directory per figure (data + summary + plot stub + provenance
  manifest) and, under ``--check``, compare every measured headline
  against the paper's tolerance bands (exit 3 when out of band).
* ``characterize``  — the Figure 5 workload-characterisation tables.
* ``sweep``         — Figure 11 parameter sweeps (``bet`` / ``wakeup``).
* ``runs``          — query past engine batches from the run ledger
  (``list`` / ``show <run>``).
* ``serve``         — run the simulation service as a JSON-over-HTTP
  daemon (submit/status/result/stream endpoints over one shared
  single-flight core).
* ``submit``        — client side of ``serve``: submit one job to a
  running service, optionally stream its event feed and wait for the
  settled result.
* ``spec``          — inspect (``show``) or check (``validate``)
  declarative technique specs.

Engine telemetry rides on global flags: ``--progress`` renders live
batch progress (TTY-aware), ``--engine-events`` / ``--engine-trace``
export the engine event stream as JSONL / a Chrome trace with one lane
per worker process, and ``run --profile`` aggregates per-worker
cProfile dumps into one report.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import sys
import tempfile
import time as _time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_fraction, format_table
from repro.core.spec import (
    TechniqueSpec,
    technique_names,
    technique_spec,
    techniques_by_group,
    unknown_name_error,
    validate_names,
)
from repro.core.techniques import Technique
from repro.engine.faults import JobFailedError, last_error_line
from repro.harness import figures
from repro.harness.experiment import (
    ExperimentRunner,
    ExperimentSettings,
    normalized_performance,
)
from repro.harness.export import rows_to_csv, rows_to_json
from repro.harness.sweeps import (
    SWEEP_HEADERS,
    bet_sweep,
    sweep_rows,
    wakeup_sweep,
)
from repro.harness.artifact import FIGURES, generate_artifact
from repro.isa.optypes import ExecUnitKind
from repro.workloads.specs import BENCHMARK_NAMES

#: figure name -> (headers, builder taking a runner).  Derived from the
#: artifact registry so ``repro figure`` and ``repro figures`` can never
#: disagree about what a figure's rows are.
FIGURE_BUILDERS: Dict[str, Tuple[Sequence[str], Callable]] = {
    name: (spec.headers, spec.build) for name, spec in FIGURES.items()
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Warped Gates (MICRO 2013) reproduction harness")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace-generation seed")
    parser.add_argument("--benchmarks", metavar="NAME[,NAME...]",
                        default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the experiment grid "
                             "(default 1 = in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent .repro-cache/ "
                             "result/trace cache")
    parser.add_argument("--no-fast-forward", action="store_true",
                        help="disable the idle-cycle fast-forward "
                             "(results are bit-identical either way)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first job failure (exit 2) "
                             "instead of completing the grid (exit 3)")
    parser.add_argument("--max-retries", type=int, default=0, metavar="N",
                        help="retry a failed/timed-out job up to N times "
                             "(default 0)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget; hung workers "
                             "are killed (needs --jobs > 1)")
    parser.add_argument("--cache-cap-mb", type=float, default=None,
                        metavar="MB",
                        help="cap the persistent cache size; "
                             "least-recently-used entries are evicted")
    parser.add_argument("--progress", action="store_true",
                        help="live engine-batch progress on stderr "
                             "(single redrawn line on a TTY, heartbeat "
                             "lines otherwise)")
    parser.add_argument("--engine-events", metavar="PATH", default=None,
                        help="write the engine event stream (jobs, "
                             "retries, cache, worker summaries) as "
                             "JSONL")
    parser.add_argument("--engine-trace", metavar="PATH", default=None,
                        help="write the whole batch as one Chrome "
                             "trace with a lane per worker process")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and techniques")

    run_cmd = sub.add_parser("run", help="run one benchmark/technique")
    run_cmd.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run_cmd.add_argument("technique", nargs="?", default=None,
                         type=_technique_name,
                         help="registered technique name (see "
                              "'repro list'); omit when using --spec")
    run_cmd.add_argument("--spec", metavar="PATH", default=None,
                         dest="spec_file",
                         help="run a technique defined by a JSON spec "
                              "file instead of a registered name")
    run_cmd.add_argument("--n-sms", type=int, default=1, metavar="N",
                         help="run at device scale on N SMs (kernel "
                              "warps split round-robin, shared "
                              "memory-side contention; 15 = the "
                              "gtx480 preset's chip)")
    run_cmd.add_argument("--emit-events", metavar="PATH", default=None,
                         help="write the run's event stream as JSONL")
    run_cmd.add_argument("--emit-chrome-trace", metavar="PATH",
                         default=None,
                         help="write a Chrome trace-event JSON of the "
                              "run (load in Perfetto / chrome://tracing)")
    run_cmd.add_argument("--profile", action="store_true",
                         help="print per-run provenance manifests and "
                              "cProfile the command — per-worker dumps "
                              "under --jobs are aggregated into one "
                              "pstats report")

    fig_cmd = sub.add_parser("figure", help="regenerate a paper figure")
    fig_cmd.add_argument("name", choices=sorted(FIGURE_BUILDERS))
    fig_cmd.add_argument("--csv", metavar="PATH",
                         help="also write the rows as CSV")
    fig_cmd.add_argument("--json", metavar="PATH",
                         help="also write the rows as JSON")

    figs_cmd = sub.add_parser(
        "figures",
        help="regenerate the full paper artifact (one directory per "
             "figure + tolerance-gated headline checks)")
    figs_cmd.add_argument("--out", metavar="DIR", default="results",
                          help="artifact output directory "
                               "(default results/)")
    figs_cmd.add_argument("--figures", metavar="NAME[,NAME...]",
                          default=None, dest="figure_subset",
                          help="comma-separated figure subset "
                               "(default: all)")
    figs_cmd.add_argument("--format", metavar="FMT[,FMT...]",
                          default="csv,json,md", dest="formats",
                          help="data formats per figure directory, "
                               "from csv,json,md (default all three)")
    figs_cmd.add_argument("--check", action="store_true",
                          help="compare measured headlines against the "
                               "paper's tolerance bands; exit 3 if any "
                               "metric is out of band (FAIL)")

    sub.add_parser("characterize", help="Figure 5 tables")

    sweep_cmd = sub.add_parser("sweep", help="Figure 11 sweeps")
    sweep_cmd.add_argument("axis", choices=["bet", "wakeup"])

    runs_cmd = sub.add_parser(
        "runs", help="query past engine batches from the run ledger")
    runs_sub = runs_cmd.add_subparsers(dest="runs_command",
                                       required=True)
    runs_list = runs_sub.add_parser(
        "list", help="list recorded engine batches, newest last")
    runs_list.add_argument("--limit", type=int, default=20, metavar="N",
                           help="show at most the N newest runs "
                                "(default 20)")
    runs_show = runs_sub.add_parser(
        "show", help="print one batch's per-job ledger records")
    runs_show.add_argument("run",
                           help="run id, or any unambiguous prefix")
    runs_show.add_argument("--json", action="store_true",
                           dest="as_json",
                           help="dump the raw ledger records as JSON")

    trace_cmd = sub.add_parser("trace",
                               help="export a benchmark's kernel trace")
    trace_cmd.add_argument("benchmark", choices=BENCHMARK_NAMES)
    trace_cmd.add_argument("path", help="output JSON path")

    energy_cmd = sub.add_parser(
        "energy", help="per-benchmark energy breakdown per technique")
    energy_cmd.add_argument("benchmark", choices=BENCHMARK_NAMES)

    replicate_cmd = sub.add_parser(
        "replicate", help="multi-seed replication of the headline table")
    replicate_cmd.add_argument("--seeds", type=int, default=3,
                               help="number of seeds (default 3)")

    serve_cmd = sub.add_parser(
        "serve", help="run the simulation service over HTTP "
                      "(submit/status/result/stream)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8352,
                           help="bind port; 0 picks a free one "
                                "(default 8352)")
    serve_cmd.add_argument("--max-pending", type=int, default=64,
                           metavar="N",
                           help="admission bound: submissions past N "
                                "unsettled jobs get 429 (default 64)")

    submit_cmd = sub.add_parser(
        "submit", help="submit one job to a running 'repro serve'")
    submit_cmd.add_argument("benchmark", choices=BENCHMARK_NAMES)
    submit_cmd.add_argument("technique", nargs="?", default=None,
                            type=_technique_name,
                            help="registered technique name; omit when "
                                 "using --spec")
    submit_cmd.add_argument("--spec", metavar="PATH", default=None,
                            dest="spec_file",
                            help="submit a technique defined by a JSON "
                                 "spec file instead of a registered name")
    submit_cmd.add_argument("--host", default="127.0.0.1",
                            help="service address (default 127.0.0.1)")
    submit_cmd.add_argument("--port", type=int, default=8352,
                            help="service port (default 8352)")
    submit_cmd.add_argument("--wait", type=float, default=600.0,
                            metavar="SECONDS",
                            help="how long to wait for the settled "
                                 "result (default 600)")
    submit_cmd.add_argument("--no-wait", action="store_true",
                            help="submit and exit without waiting")
    submit_cmd.add_argument("--stream", action="store_true",
                            help="print the job's event feed (JSONL) "
                                 "while it runs")

    spec_cmd = sub.add_parser(
        "spec", help="inspect or validate technique specs")
    spec_sub = spec_cmd.add_subparsers(dest="spec_command", required=True)
    show_cmd = spec_sub.add_parser(
        "show", help="print a registered technique's spec (or a device "
                     "preset, e.g. gtx480) as JSON")
    show_cmd.add_argument("name", type=_spec_or_preset_name)
    validate_cmd = spec_sub.add_parser(
        "validate", help="check a JSON spec file against the schema")
    validate_cmd.add_argument("path", help="spec JSON path")

    return parser


def _technique_name(name: str) -> str:
    """Argparse ``type`` hook: any registered technique name.

    Raising :class:`argparse.ArgumentTypeError` keeps the parse-time
    ``SystemExit`` contract while printing the difflib suggestion
    instead of argparse's raw choices dump.
    """
    if name not in technique_names():
        raise argparse.ArgumentTypeError(
            str(unknown_name_error("technique", name, technique_names())))
    return name


def _spec_or_preset_name(name: str) -> str:
    """Argparse ``type`` hook: a technique name or a device preset.

    ``repro spec show`` serves both registries; the did-you-mean
    suggestion draws from their union so ``gtx48`` points at
    ``gtx480`` and ``warped_gate`` at ``warped_gates``.
    """
    from repro.core.device import device_preset_names
    known = tuple(technique_names()) + device_preset_names()
    if name not in known:
        raise argparse.ArgumentTypeError(
            str(unknown_name_error("spec", name, known)))
    return name


def _parse_benchmarks(raw: Optional[str]) -> Tuple[str, ...]:
    if raw is None:
        return BENCHMARK_NAMES
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    try:
        return validate_names(names, BENCHMARK_NAMES, "benchmark")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _load_spec_file(path: str) -> TechniqueSpec:
    """Parse + schema-validate a technique-spec JSON file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise SystemExit(f"error: cannot read spec file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}") \
            from exc
    try:
        spec = TechniqueSpec.from_dict(document)
        spec.validate()
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"error: invalid spec {path}: {exc}") from exc
    return spec


class _ObsSession:
    """One command's telemetry surface, built from the global flags.

    Owns the :class:`~repro.obs.telemetry.EngineTelemetry` (when any of
    ``--progress`` / ``--engine-events`` / ``--engine-trace`` /
    ``run --profile`` asks for one), the subscribers those flags
    attach, and the parent-side cProfile under ``--profile``.
    :meth:`finish` closes everything and prints where files landed —
    with no flags set, the session is inert and the command runs
    exactly as before.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.telemetry = None
        self.progress = None
        self.event_log = None
        self.trace = None
        self.trace_path = getattr(args, "engine_trace", None)
        self.events_path = getattr(args, "engine_events", None)
        self.profiler: Optional[cProfile.Profile] = None
        self.profile_dir: Optional[str] = None
        self.profile_report: Optional[Path] = None
        self._engines: list = []

        want_bus = bool(getattr(args, "progress", False)
                        or self.trace_path or self.events_path)
        profiling = bool(getattr(args, "profile", False))
        if profiling and args.jobs > 1:
            # Workers dump per-job pstats here; finish() merges them.
            self.profile_dir = tempfile.mkdtemp(prefix="repro-profile-")
        if not want_bus and self.profile_dir is None \
                and not profiling:
            return

        if want_bus or self.profile_dir is not None:
            from repro.obs import (
                EngineTelemetry,
                EngineTraceExporter,
                JsonlEventLog,
                ProgressReporter,
            )
            self.telemetry = EngineTelemetry(
                enabled=want_bus, profile_dir=self.profile_dir)
            if getattr(args, "progress", False):
                self.progress = ProgressReporter() \
                    .attach(self.telemetry.bus)
            if self.events_path:
                self.event_log = JsonlEventLog(self.events_path) \
                    .attach(self.telemetry.bus)
            if self.trace_path:
                self.trace = EngineTraceExporter() \
                    .attach(self.telemetry.bus)
        if profiling:
            from repro.obs.ledger import new_run_id
            root = Path(tempfile.gettempdir()) if args.no_cache \
                else Path(".repro-cache")
            self.profile_report = (root / "profile"
                                   / f"profile-{new_run_id()}.pstats")
            self.profiler = cProfile.Profile()
            self.profiler.enable()

    def bind(self, engine) -> None:
        """Remember an engine so its ledger can note the report path."""
        self._engines.append(engine)
        if self.profile_report is not None:
            engine.ledger_meta["profile_report"] = \
                str(self.profile_report)

    def finish(self) -> None:
        """Stop profiling, flush the relay, close subscribers, report."""
        if self.profiler is not None:
            self.profiler.disable()
        if self.telemetry is not None:
            self.telemetry.flush()
        if self.progress is not None:
            self.progress.close()
        if self.event_log is not None:
            self.event_log.close()
            print(f"wrote {self.events_path} "
                  f"({self.event_log.events_written} events)")
        if self.trace is not None:
            self.trace.write(self.trace_path)
            print(f"wrote {self.trace_path} "
                  f"({len(self.trace.worker_lanes)} worker lane(s))")
        if self.profiler is not None:
            self._write_profile()
        if self.telemetry is not None:
            self.telemetry.close()

    def abort(self) -> None:
        """Tear down quietly (no file writes) after a hard error."""
        if self.profiler is not None:
            self.profiler.disable()
            self.profiler = None
        if self.progress is not None:
            self.progress.close()
            self.progress = None
        if self.event_log is not None:
            self.event_log.close()
            self.event_log = None
        if self.telemetry is not None:
            self.telemetry.close()
            self.telemetry = None

    def _write_profile(self) -> None:
        from repro.obs.profiling import (
            aggregate_profiles,
            profile_summary,
            write_profile_report,
        )
        stats, dumps = aggregate_profiles(self.profile_dir,
                                          parent=self.profiler)
        if stats is None or self.profile_report is None:
            return
        write_profile_report(stats, self.profile_report)
        print()
        print(profile_summary(stats))
        print(f"profile report: {self.profile_report} "
              f"(parent + {dumps} worker dump(s))")


def _obs(args: argparse.Namespace) -> _ObsSession:
    """The command's telemetry session (created by :func:`main`)."""
    session = getattr(args, "_obs_session", None)
    if session is None:
        session = _ObsSession(args)
        args._obs_session = session
    return session


def _engine(args: argparse.Namespace):
    """Build the parallel engine the global flags describe."""
    from repro.engine import FaultPolicy, ParallelEngine
    from repro.engine.cache import DEFAULT_CACHE_DIR

    session = _obs(args)
    engine = ParallelEngine(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else DEFAULT_CACHE_DIR,
        fast_forward=not args.no_fast_forward,
        policy=FaultPolicy(max_retries=args.max_retries,
                           job_timeout=args.job_timeout,
                           fail_fast=args.fail_fast),
        cache_max_bytes=(int(args.cache_cap_mb * 2 ** 20)
                         if args.cache_cap_mb is not None else None),
        telemetry=session.telemetry)
    session.bind(engine)
    return engine


def _failure_exit(manifests) -> int:
    """Report terminally failed jobs, if any; pick the exit code.

    Returns 0 when every manifest is ok, 3 when the command completed
    a partial grid around failures (the fail-fast abort path exits 2
    from :func:`main` instead).
    """
    failed = [m for m in manifests if not m.ok]
    if not failed:
        return 0
    print()
    print(format_table(
        ("benchmark", "technique", "status", "attempts", "error"),
        [[m.benchmark, m.technique, m.status, m.attempts,
          last_error_line(m.error)[:60]] for m in failed],
        title=f"{len(failed)} job(s) failed; metrics above cover the "
              f"surviving cells"), file=sys.stderr)
    return 3


def _runner(args: argparse.Namespace) -> ExperimentRunner:
    return ExperimentRunner(ExperimentSettings(
        seed=args.seed, scale=args.scale,
        benchmarks=_parse_benchmarks(args.benchmarks)),
        engine=_engine(args))


#: Display heading per technique registry group, in print order.
_GROUP_HEADINGS = (
    ("paper", "paper techniques"),
    ("ablation", "ablations"),
    ("user", "user-registered"),
)


def cmd_list(args: argparse.Namespace) -> int:
    """List benchmarks, techniques (grouped, described) and figures."""
    print("benchmarks:")
    for name in BENCHMARK_NAMES:
        print(f"  {name}")
    print("techniques:")
    grouped = techniques_by_group()
    width = max(len(spec.name)
                for specs in grouped.values() for spec in specs)
    for group, heading in _GROUP_HEADINGS:
        specs = grouped.get(group, [])
        if not specs:
            continue
        print(f"  {heading}:")
        for spec in specs:
            line = f"    {spec.name:<{width}}"
            if spec.description:
                line += f"  {spec.description}"
            print(line.rstrip())
    print("figures:")
    for name in sorted(FIGURE_BUILDERS):
        print(f"  {name}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one benchmark under one technique; print headline metrics.

    The technique is either a registered name or, via ``--spec``, a
    JSON spec file — any scheduler × gating-policy × adaptive
    composition runs through the exact same path as the paper's named
    techniques.  ``--emit-events`` / ``--emit-chrome-trace`` instrument
    *the requested run only* (the baseline/savings companion runs are
    simulated with the bus disabled); ``--profile`` prints the
    provenance manifest of every simulation the command performed.
    """
    from repro.obs import ChromeTraceExporter, EventBus, JsonlEventLog

    if (args.technique is None) == (args.spec_file is None):
        raise SystemExit(
            "error: give exactly one of a technique name or --spec FILE")
    spec = (_load_spec_file(args.spec_file) if args.spec_file
            else technique_spec(args.technique))
    if args.n_sms > 1:
        return _run_device(args, spec)

    instrument = bool(args.emit_events or args.emit_chrome_trace)
    bus = EventBus(enabled=instrument) if instrument else None
    event_log = chrome_trace = None
    if args.emit_events:
        event_log = JsonlEventLog(args.emit_events).attach(bus)
    if args.emit_chrome_trace:
        chrome_trace = ChromeTraceExporter().attach(bus)

    runner = ExperimentRunner(ExperimentSettings(
        seed=args.seed, scale=args.scale,
        benchmarks=_parse_benchmarks(args.benchmarks)), bus=bus,
        engine=None if instrument else _engine(args))
    result = runner.run(args.benchmark, spec)
    if bus is not None:
        bus.disable()  # companion runs below stay uninstrumented
    if event_log is not None:
        event_log.close()
        print(f"wrote {args.emit_events} "
              f"({event_log.events_written} events)")
    if chrome_trace is not None:
        chrome_trace.write(args.emit_chrome_trace,
                           end_cycle=result.cycles)
        print(f"wrote {args.emit_chrome_trace}")
    base = runner.baseline(args.benchmark)
    int_savings = runner.static_savings(args.benchmark, spec,
                                        ExecUnitKind.INT,
                                        gating=spec.gating)
    fp_savings = runner.static_savings(args.benchmark, spec,
                                       ExecUnitKind.FP,
                                       gating=spec.gating)
    rows = [
        ("cycles", result.cycles),
        ("ipc", round(result.stats.ipc, 3)),
        ("avg_active_warps", round(result.stats.avg_active_warps, 1)),
        ("normalized_performance",
         round(normalized_performance(base, result), 4)),
        ("int_static_savings", format_fraction(int_savings)),
        ("fp_static_savings", format_fraction(fp_savings)),
        ("l1_miss_rate", round(result.memory.miss_rate, 3)),
    ]
    print(format_table(("metric", "value"), rows,
                       title=f"{args.benchmark} / {spec.name}"))
    if args.profile:
        print()
        print(format_table(
            ("benchmark", "technique", "config", "cycles", "cache",
             "build_s", "simulate_s", "cycles/s"),
            [[m.benchmark, m.technique, m.config_hash, m.cycles,
              "hit" if m.cache_hit else "miss",
              round(m.wall_seconds.get("build_trace", 0.0), 3),
              round(m.wall_seconds.get("simulate", 0.0), 3),
              f"{m.cycles_per_sec:,.0f}"]
             for m in runner.manifests],
            title="Run manifests"))
    return 0


def _run_device(args: argparse.Namespace, spec) -> int:
    """``repro run --n-sms N``: one kernel at device scale.

    The kernel's warps are split round-robin over N SMs; the shared
    memory side inflates every SM's DRAM latency by the deterministic
    contention factor before the fan-out.  With ``--jobs > 1`` the
    independent SM parts execute on the parallel engine (results are
    bit-identical to the serial order).  The chip-level table reports
    the Figure 1b aggregation: per-domain static savings summed over
    every SM's gating domains.
    """
    from repro.core.device import MemorySideConfig
    from repro.engine.jobs import load_or_build_kernel
    from repro.sim.gpu import GPU
    from repro.workloads.specs import get_profile

    if args.emit_events or args.emit_chrome_trace:
        raise SystemExit("error: --emit-events/--emit-chrome-trace "
                         "instrument a single SM; drop --n-sms")
    kernel = load_or_build_kernel(args.benchmark, args.seed, args.scale)
    gpu = GPU(args.n_sms, config=spec,
              dram_latency=get_profile(args.benchmark).dram_latency,
              memory_side=MemorySideConfig(),
              fast_forward=not args.no_fast_forward)
    engine = _engine(args) if args.jobs > 1 else None
    result = gpu.run(kernel, engine=engine)
    breakdown = result.energy_breakdown(bet=spec.gating.bet)
    rows = [
        ("device_cycles", result.cycles),
        ("instructions", result.total_instructions),
        ("sms_used", len(result.sm_results)),
        ("int_static_savings",
         format_fraction(breakdown[ExecUnitKind.INT].static_savings)),
        ("fp_static_savings",
         format_fraction(breakdown[ExecUnitKind.FP].static_savings)),
    ]
    print(format_table(("metric", "value"), rows,
                       title=f"{args.benchmark} / {spec.name} "
                             f"@ {args.n_sms} SMs"))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Regenerate one paper figure; optionally export CSV/JSON."""
    headers, builder = FIGURE_BUILDERS[args.name]
    runner = _runner(args)
    rows = builder(runner)
    print(format_table(headers, rows, title=args.name))
    if args.csv:
        rows_to_csv(headers, rows, path=args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        rows_to_json(headers, rows, path=args.json, figure=args.name)
        print(f"wrote {args.json}")
    return _failure_exit(runner.manifests)


def _parse_comma_list(raw: Optional[str]) -> Optional[Tuple[str, ...]]:
    if raw is None:
        return None
    return tuple(part.strip() for part in raw.split(",")
                 if part.strip())


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate the paper artifact: every figure directory plus the
    tolerance-gated headline comparison.

    Exit codes follow the engine convention: 0 success (headlines in
    band or ``--check`` not requested), 3 when the artifact completed
    but is out of band — any headline FAILed its tolerance — or when
    the grid completed around failed jobs.
    """
    formats = _parse_comma_list(args.formats) or ()
    unknown = [fmt for fmt in formats if fmt not in ("csv", "json", "md")]
    if unknown:
        raise SystemExit(f"error: unknown format(s) "
                         f"{', '.join(sorted(unknown))}; "
                         f"choose from csv, json, md")
    runner = _runner(args)
    try:
        report = generate_artifact(
            runner, args.out,
            figure_subset=_parse_comma_list(args.figure_subset),
            formats=formats, check=args.check)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    for artifact in report.figures:
        print(f"wrote {artifact.directory}/ "
              f"({len(artifact.rows)} rows)")
    print(f"wrote {report.out_dir / 'index.md'}")
    if args.check:
        print(f"wrote {report.out_dir / 'headline.json'}")
        print()
        rows = [[c.metric,
                 c.measured,
                 (f"{c.paper_low:.4g}" if c.paper_low == c.paper_high
                  else f"{c.paper_low:.4g}-{c.paper_high:.4g}"),
                 c.abs_error, c.fail_tol, c.verdict]
                for c in report.checks]
        counts = report.counts
        print(format_table(
            ("metric", "measured", "paper", "error", "fail_tol",
             "verdict"), rows,
            title=f"Headline checks — {report.verdict} "
                  f"({counts['PASS']} pass, {counts['WARN']} warn, "
                  f"{counts['FAIL']} fail)"))
    code = _failure_exit(runner.manifests)
    if args.check and report.verdict == "FAIL":
        return 3
    return code


def cmd_characterize(args: argparse.Namespace) -> int:
    """Print the Figure 5 workload-characterisation tables."""
    runner = _runner(args)
    print(format_table(figures.FIG5A_HEADERS, figures.fig5a_rows(runner),
                       title="Figure 5a: instruction mix"))
    print()
    print(format_table(figures.FIG5B_HEADERS, figures.fig5b_rows(runner),
                       title="Figure 5b: active warps"))
    return _failure_exit(runner.manifests)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a Figure 11 parameter sweep (BET or wakeup delay)."""
    runner = _runner(args)
    sweep = bet_sweep if args.axis == "bet" else wakeup_sweep
    points = sweep(runner)
    title = ("Figure 11a: break-even time" if args.axis == "bet"
             else "Figure 11b: wakeup delay")
    print(format_table(SWEEP_HEADERS, sweep_rows(points), title=title))
    return _failure_exit(runner.manifests)


def cmd_trace(args: argparse.Namespace) -> int:
    """Export one benchmark's generated kernel trace as JSON."""
    from repro.isa.traceio import save_kernel
    from repro.workloads.registry import build_kernel

    kernel = build_kernel(args.benchmark, seed=args.seed,
                          scale=args.scale)
    save_kernel(kernel, args.path)
    print(f"wrote {args.path}: {kernel.n_warps} warps, "
          f"{kernel.total_instructions} instructions")
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    """Print a per-benchmark normalised energy breakdown table."""
    from repro.core.techniques import PAPER_TECHNIQUES

    runner = _runner(args)
    rows = []
    for technique in (Technique.BASELINE,) + tuple(PAPER_TECHNIQUES):
        for kind, label in ((ExecUnitKind.INT, "int"),
                            (ExecUnitKind.FP, "fp")):
            norm = runner.energy_breakdown(args.benchmark, technique,
                                           kind).normalized()
            rows.append([technique.value, label, norm.dynamic,
                         norm.overhead, norm.static,
                         norm.dynamic + norm.overhead + norm.static])
    print(format_table(
        ("technique", "unit", "dynamic", "overhead", "static", "total"),
        rows, title=f"Normalised energy breakdown: {args.benchmark} "
                    f"(1.0 = no-gating baseline)"))
    return _failure_exit(runner.manifests)


def cmd_replicate(args: argparse.Namespace) -> int:
    """Rerun the headline table over several seeds (mean +/- sd)."""
    from repro.harness.experiment import ExperimentSettings
    from repro.harness.replication import (
        REPLICATION_HEADERS,
        replicate,
        replication_rows,
    )

    settings = ExperimentSettings(
        scale=args.scale, benchmarks=_parse_benchmarks(args.benchmarks))
    failure_log: list = []
    results = replicate(settings, seeds=tuple(range(args.seeds)),
                        engine=_engine(args), failure_log=failure_log)
    print(format_table(REPLICATION_HEADERS, replication_rows(results),
                       title=f"Headline metrics over {args.seeds} seeds"))
    return _failure_exit(failure_log)


def _format_stamp(value: object) -> str:
    try:
        return _time.strftime("%Y-%m-%d %H:%M:%S",
                              _time.localtime(float(value)))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "?"


def _ledger_root(args: argparse.Namespace) -> Path:
    from repro.engine.cache import DEFAULT_CACHE_DIR
    from repro.obs.ledger import ledger_dir_for

    return ledger_dir_for(DEFAULT_CACHE_DIR)


def cmd_runs(args: argparse.Namespace) -> int:
    """Query the run ledger: ``runs list`` / ``runs show <run>``."""
    from repro.obs.ledger import list_runs, load_run, summarize_run

    root = _ledger_root(args)
    if args.runs_command == "list":
        # The limit is pushed into list_runs: only the newest N ledger
        # files are parsed, so listing stays O(limit) as runs pile up.
        summaries = list_runs(root, limit=args.limit)
        if not summaries:
            print(f"no recorded runs under {root}")
            return 0
        rows = []
        for summary in summaries:
            counts = summary.get("counts", {})
            bad = sum(n for status, n in counts.items()
                      if status != "ok")
            rows.append([
                summary.get("run_id", "?"),
                _format_stamp(summary.get("created_at")),
                summary.get("job_count", 0),
                counts.get("ok", 0), bad,
                summary.get("cache_hits", 0),
                "yes" if summary.get("finished") else "NO",
            ])
        print(format_table(
            ("run", "started", "jobs", "ok", "bad", "cache_hits",
             "finished"),
            rows, title=f"Run ledger: {root}"))
        return 0

    try:
        records = load_run(root, args.run)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.as_json:
        print(json.dumps(records, indent=2))
        return 0
    summary = summarize_run(records)
    print(f"run {summary.get('run_id', args.run)}  "
          f"started {_format_stamp(summary.get('created_at'))}  "
          f"workers={summary.get('engine_jobs', '?')}  "
          f"finished={'yes' if summary.get('finished') else 'NO'}")
    jobs = [r for r in records if r.get("record") == "job"]
    print(format_table(
        ("#", "benchmark", "technique", "spec_hash", "seed", "status",
         "attempts", "worker", "cache", "cycles", "wall_s", "error"),
        [[j.get("index"), j.get("benchmark"), j.get("technique"),
          j.get("spec_hash"), j.get("seed"), j.get("status"),
          j.get("attempts"),
          j.get("worker") or "-",
          "hit" if j.get("cache_hit") else "miss",
          j.get("cycles"), j.get("wall_seconds"),
          str(j.get("error", ""))[:40]] for j in jobs],
        title=f"{len(jobs)} job(s)"))
    footer = next((r for r in records if r.get("record") == "end"), None)
    if footer and footer.get("profile_report"):
        print(f"profile report: {footer['profile_report']}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service as an HTTP daemon.

    The daemon wraps the same engine the batch commands build from the
    global flags (``--jobs``, cache, fault policy, telemetry), so a
    served job and a local ``repro run`` of the same spec produce the
    same digest — and share the same persistent cache.  Ctrl-C drains
    gracefully: the listener closes first, then in-flight jobs finish.
    """
    import asyncio

    from repro.service.api import serve
    from repro.service.core import SimulationService

    service = SimulationService(engine=_engine(args))

    def ready(port: int) -> None:
        print(f"repro service listening on http://{args.host}:{port}",
              flush=True)

    try:
        asyncio.run(serve(service, host=args.host, port=args.port,
                          max_pending=args.max_pending, ready=ready))
    except KeyboardInterrupt:
        print("shutting down (drained in-flight jobs)", file=sys.stderr)
    finally:
        service.close()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running service; optionally stream + wait.

    Exit codes mirror ``repro run``: 0 when the job settled ok (or
    ``--no-wait`` was given), 2 when it terminally failed.
    """
    from repro.service.client import ServiceClient, ServiceError

    if (args.technique is None) == (args.spec_file is None):
        raise SystemExit(
            "error: give exactly one of a technique name or --spec FILE")
    request: dict = {"benchmark": args.benchmark,
                     "seed": args.seed, "scale": args.scale}
    if args.spec_file:
        request["spec"] = _load_spec_file(args.spec_file).to_dict()
    else:
        request["technique"] = args.technique
    if args.no_fast_forward:
        request["fast_forward"] = False

    client = ServiceClient(args.host, args.port)
    try:
        doc = client.submit(request)
    except (ServiceError, OSError) as exc:
        raise SystemExit(f"error: submit to {args.host}:{args.port} "
                         f"failed: {exc}") from exc
    job_id = str(doc["job_id"])
    dedup = " (deduped onto an existing job)" if doc.get("deduped") else ""
    print(f"job {job_id}  {doc.get('label')}  "
          f"state={doc.get('state')}{dedup}")
    if args.stream:
        for record in client.stream(job_id):
            print(json.dumps(record, default=str))
    if args.no_wait:
        return 0
    try:
        result = client.wait(job_id, timeout=args.wait)
    except (ServiceError, OSError, TimeoutError) as exc:
        raise SystemExit(f"error: waiting on job {job_id} failed: "
                         f"{exc}") from exc
    rows = [
        ("state", result.get("state")),
        ("digest", result.get("digest")),
        ("cycles", result.get("cycles")),
        ("attempts", result.get("attempts")),
    ]
    if result.get("error"):
        rows.append(("error", last_error_line(str(result["error"]))[:60]))
    print(format_table(("field", "value"), rows,
                       title=f"job {job_id}: {result.get('label')}"))
    return 0 if result.get("state") == "ok" else 2


def cmd_spec(args: argparse.Namespace) -> int:
    """Inspect (``show``) or check (``validate``) technique specs."""
    if args.spec_command == "show":
        if args.name in technique_names():
            spec = technique_spec(args.name)
            print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
            print(f"spec_hash: {spec.spec_hash()}", file=sys.stderr)
            return 0
        from repro.core.device import device_preset
        preset = device_preset(args.name)
        print(json.dumps(preset.to_dict(), indent=2, sort_keys=True))
        return 0
    spec = _load_spec_file(args.path)  # exits non-zero with the reason
    print(f"{args.path}: ok — technique {spec.name!r}, "
          f"spec_hash {spec.spec_hash()}")
    return 0


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "figure": cmd_figure,
    "figures": cmd_figures,
    "characterize": cmd_characterize,
    "sweep": cmd_sweep,
    "trace": cmd_trace,
    "energy": cmd_energy,
    "replicate": cmd_replicate,
    "runs": cmd_runs,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "spec": cmd_spec,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success; 2 a job failure aborted the command (the
    default strict ``run`` path, or any command under ``--fail-fast``);
    3 the command completed a partial grid around failed jobs.
    """
    args = build_parser().parse_args(argv)
    session = _obs(args)
    try:
        code = COMMANDS[args.command](args)
    except JobFailedError as exc:
        # Flush telemetry first: the partial trace/ledger is exactly
        # what a failure post-mortem wants.
        session.finish()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BaseException:
        session.abort()
        raise
    session.finish()
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
