"""Hardware-overhead bookkeeping (paper section 7.5).

The paper implements the added microarchitectural counters in Verilog,
synthesises them with the NCSU FreePDK 45 nm library, and reports the
totals against GPUWattch's SM area/power.  We reproduce the *inventory*
(which counters each technique adds, and their widths — sections 4.1,
5, 5.1 and 6) and the resulting overhead arithmetic, using the paper's
synthesis constants as the per-bit cost basis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CounterSpec:
    """One hardware counter/register added by a technique."""

    name: str
    bits: int
    count: int
    technique: str
    purpose: str

    @property
    def total_bits(self) -> int:
        """Storage bits this counter group adds per SM."""
        return self.bits * self.count


#: Counter inventory per SM, as described in the architecture-support
#: section (Figure 7):
#:
#: * GATES: 2-bit type field per active-warp entry (48 entries), two
#:   active-subset counters (INT_ACTV / FP_ACTV, 6 bits for up to 48),
#:   four 5-bit ready counters (INT/FP/LDST/SFU_RDY, <= 32 ready), and
#:   the 2-bit current-priority register.
#: * Blackout: one 5-bit BET count-down counter per gated cluster
#:   (2 INT + 2 FP) sized for BET <= 24.
#: * Adaptive idle-detect: a critical-wakeup counter and an idle-detect
#:   register per unit type, plus the epoch cycle counter.
SM_COUNTERS: Tuple[CounterSpec, ...] = (
    CounterSpec("instruction_type_bits", 2, 48, "GATES",
                "two-bit decoded type per active-warp entry"),
    CounterSpec("actv_counters", 6, 2, "GATES",
                "INT_ACTV / FP_ACTV active-subset occupancy"),
    CounterSpec("rdy_counters", 5, 4, "GATES",
                "ready-instruction count per type"),
    CounterSpec("priority_register", 2, 1, "GATES",
                "current highest-priority instruction type"),
    CounterSpec("blackout_bet_counters", 5, 4, "Blackout",
                "break-even countdown per SP cluster"),
    CounterSpec("critical_wakeup_counters", 4, 2, "Adaptive",
                "critical wakeups this epoch per unit type"),
    CounterSpec("idle_detect_registers", 4, 2, "Adaptive",
                "current idle-detect window per unit type"),
    CounterSpec("epoch_counter", 10, 1, "Adaptive",
                "1000-cycle epoch timer"),
)

#: Paper-reported synthesis results (NCSU FreePDK 45 nm):
TOTAL_COUNTER_AREA_UM2 = 1210.8
SM_AREA_MM2 = 48.1
COUNTER_DYNAMIC_W = 1.55e-3
COUNTER_LEAKAGE_W = 1.21e-5
SM_DYNAMIC_W = 1.92
SM_LEAKAGE_W = 1.61


@dataclass(frozen=True)
class OverheadReport:
    """Section 7.5 numbers derived from the inventory + constants."""

    total_bits: int
    area_um2: float
    area_fraction: float
    dynamic_fraction: float
    leakage_fraction: float

    def rows(self) -> List[Dict[str, float]]:
        """Tabular form for the benchmark harness."""
        return [{
            "total_bits": float(self.total_bits),
            "area_um2": self.area_um2,
            "area_pct": 100.0 * self.area_fraction,
            "dynamic_pct": 100.0 * self.dynamic_fraction,
            "leakage_pct": 100.0 * self.leakage_fraction,
        }]


def total_storage_bits() -> int:
    """All storage bits added per SM across the three techniques."""
    return sum(spec.total_bits for spec in SM_COUNTERS)


def bits_by_technique() -> Dict[str, int]:
    """Storage-bit inventory grouped by technique."""
    out: Dict[str, int] = {}
    for spec in SM_COUNTERS:
        out[spec.technique] = out.get(spec.technique, 0) + spec.total_bits
    return out


def overhead_report() -> OverheadReport:
    """Compute the section 7.5 overhead summary.

    The paper reports 0.003% area, 0.08% dynamic power and 0.0007%
    leakage power overhead per SM; this reproduces that arithmetic from
    the quoted synthesis constants.
    """
    return OverheadReport(
        total_bits=total_storage_bits(),
        area_um2=TOTAL_COUNTER_AREA_UM2,
        area_fraction=TOTAL_COUNTER_AREA_UM2 / (SM_AREA_MM2 * 1e6),
        dynamic_fraction=COUNTER_DYNAMIC_W / SM_DYNAMIC_W,
        leakage_fraction=COUNTER_LEAKAGE_W / SM_LEAKAGE_W)
