"""Power-gating and energy-model parameters.

Defaults reproduce the paper's evaluation setup:

* idle-detect window 5 cycles, break-even time (BET) 14 cycles, wakeup
  delay 3 cycles (section 2.2 / 7.1, following Hu et al. [13], who
  explored BET in {9, 14, 19, 24} and ~3-cycle wakeups);
* per-event gating overhead energy defined so that exactly BET gated
  cycles recoup it (that is the *definition* of break-even time);
* dynamic-vs-static energy proportions calibrated to Figure 1b (static
  is ~50% of INT-unit energy and >90% of FP-unit energy on GTX480 as
  measured with GPUWattch);
* the GTX480 chip-level constants quoted in section 7.3 for the total
  on-chip savings estimate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GatingParams:
    """Parameters of one power-gating domain's controller.

    Attributes:
        idle_detect: Consecutive idle cycles before the gate closes.
        bet: Break-even time — gated cycles needed to amortise one
            gating event's overhead energy.
        wakeup_delay: Cycles between the wakeup trigger and the unit
            being operational again.
    """

    idle_detect: int = 5
    bet: int = 14
    wakeup_delay: int = 3

    def __post_init__(self) -> None:
        if self.idle_detect < 0:
            raise ValueError("idle_detect must be >= 0")
        if self.bet < 1:
            raise ValueError("bet must be >= 1")
        if self.wakeup_delay < 0:
            raise ValueError("wakeup_delay must be >= 0")


@dataclass(frozen=True)
class EnergyParams:
    """Per-domain energy model in arbitrary consistent units.

    Attributes:
        leak_per_cycle: Static energy burnt per cycle while the domain is
            powered (idle-detect, wakeup and busy cycles all leak; gated
            cycles do not).
        dyn_per_issue: Dynamic energy per warp instruction executed.
        gate_overhead: Energy burnt by one gate-off/gate-on pair of the
            sleep transistor.  By the break-even definition this equals
            ``bet * leak_per_cycle`` unless overridden.

    The *normalised* results (Figures 1b, 9, 11) depend only on the
    ratio ``dyn_per_issue / leak_per_cycle`` and on ``gate_overhead``;
    absolute units cancel.
    """

    leak_per_cycle: float
    dyn_per_issue: float
    gate_overhead: float

    @classmethod
    def for_unit(cls, dyn_per_issue: float, bet: int,
                 leak_per_cycle: float = 1.0) -> "EnergyParams":
        """Build params with the canonical overhead = BET x leakage."""
        return cls(leak_per_cycle=leak_per_cycle,
                   dyn_per_issue=dyn_per_issue,
                   gate_overhead=bet * leak_per_cycle)


#: Dynamic energy per issued (divergence-weighted) instruction, in units
#: of one cycle of the same unit's leakage.  Calibrated so the
#: *suite-average* baseline breakdown lands on Figure 1b: static energy
#: is ~50% of total INT-unit energy and ~90% of FP-unit energy.  With
#: the measured suite-average lane-work rates (~0.13 full-warp INT
#: issues and ~0.12 FP issues per domain-cycle) that solves to ~7.5 and
#: ~0.9 leak-cycles per issue.  Integer ALUs are cheap to *leak* but
#: busy (GPUWattch gives GTX480's INT units a tiny leakage share), so
#: their per-issue dynamic cost towers over their leakage; FP units are
#: the opposite.  Note the Figure 9/11 savings metrics are independent
#: of these weights (leakage cancels); only the Figure 1b breakdown
#: uses them.
INT_DYN_PER_ISSUE = 7.5
FP_DYN_PER_ISSUE = 0.9


@dataclass(frozen=True)
class GTX480PowerModel:
    """Chip-level constants the paper quotes (section 1 and 7.3).

    Attributes:
        total_chip_leakage_w: Total on-chip leakage power (GPUWattch).
        int_units_leakage_w: Leakage of all integer units.
        fp_units_leakage_w: Leakage of all floating-point units.
        exec_unit_leakage_fraction: Execution units' share of on-chip
            leakage (the paper estimates 16.38%).
        exec_units_power_share: Execution units' share of total platform
            power (20.1% per Leng et al.).
        sfu_static_share: SFUs' share of execution-unit static power
            (2.5%, the reason the paper leaves SFUs to conventional PG).
    """

    total_chip_leakage_w: float = 26.87
    int_units_leakage_w: float = 0.00557
    fp_units_leakage_w: float = 4.40
    exec_unit_leakage_fraction: float = 0.1638
    exec_units_power_share: float = 0.201
    sfu_static_share: float = 0.025

    def chip_savings_fraction(self, exec_static_saving: float,
                              leakage_share_of_chip: float = 0.33) -> float:
        """Estimate total on-chip power saved (section 7.3 arithmetic).

        Args:
            exec_static_saving: Fraction of execution-unit static energy
                saved (e.g. 0.30-0.45 from Figure 9).
            leakage_share_of_chip: Leakage's share of total chip power
                (the paper uses 33% today, 50% for a scaled projection).
        """
        if not 0.0 <= leakage_share_of_chip <= 1.0:
            raise ValueError("leakage_share_of_chip must be in [0, 1]")
        return (exec_static_saving * self.exec_unit_leakage_fraction
                * leakage_share_of_chip)
