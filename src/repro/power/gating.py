"""Per-domain power-gating state machine.

Implements the controller of Figure 2c.  One :class:`GatingDomain`
manages one gating switch — on our Fermi-like SM that means one per SP
cluster pipeline (INT0, INT1, FP0, FP1), mirroring the paper's "all 16
integer units within a cluster are operated by a single power gating
switch".

States (derived lazily from timestamps, so no per-cycle bookkeeping of
state labels is needed):

* ``ON`` — powered; the idle-detect counter runs while the pipeline is
  idle.
* ``GATED`` — sleeping.  The window is *uncompensated* until the gated
  length reaches the break-even time (BET), *compensated* beyond it.
* ``WAKING`` — the sleep switch re-opened; ``wakeup_delay`` cycles of
  leakage with no useful work before the domain is ON again.

The *policy* object decides (a) when an idle domain may gate and (b)
whether a wakeup request may be honoured — that's the entire difference
between conventional power gating and the paper's Blackout variants, so
the Blackout/Coordinated controllers in :mod:`repro.core.blackout` are
just policies plugged into this machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.obs.bus import NULL_BUS, EventBus
from repro.obs.events import BlackoutBlocked, GateOff, GateOn, Wakeup
from repro.power.params import GatingParams


class DomainState(enum.Enum):
    """Observable power state of a gating domain."""

    ON = "on"
    GATED = "gated"
    WAKING = "waking"


@dataclass
class GatingStats:
    """Lifetime counters for one gating domain.

    ``compensated_cycles`` / ``uncompensated_cycles`` split every gated
    window at the BET boundary — the quantities behind Figure 8b.  A
    *critical wakeup* (Figure 6 / Adaptive idle-detect) is a wakeup
    granted at the exact cycle a blackout period expires, i.e. an
    instruction was already waiting when the BET countdown hit zero.
    """

    gating_events: int = 0
    wakeups: int = 0
    wakeups_uncompensated: int = 0
    critical_wakeups: int = 0
    gated_cycles: int = 0
    compensated_cycles: int = 0
    uncompensated_cycles: int = 0
    waking_cycles: int = 0
    on_cycles: int = 0
    denied_wakeups: int = 0

    #: Counter names as exported into the metrics registry, in field
    #: order; the registry view and this dataclass stay in lockstep.
    METRIC_NAMES = (
        "gating_events", "wakeups", "wakeups_uncompensated",
        "critical_wakeups", "gated_cycles", "compensated_cycles",
        "uncompensated_cycles", "waking_cycles", "on_cycles",
        "denied_wakeups",
    )

    def export_metrics(self, registry, domain: str) -> None:
        """Publish these counters into a metrics registry.

        Each field becomes ``<field>{domain="<name>"}``, making the
        registry the unified read side while this dataclass stays the
        hot-path storage.
        """
        for name in self.METRIC_NAMES:
            registry.counter(name, domain=domain).inc(getattr(self, name))


class GatingPolicy:
    """Decision hooks that differentiate gating schemes."""

    name = "none"

    def want_gate(self, domain: "GatingDomain", cycle: int) -> bool:
        """Should ``domain`` (idle this cycle) close its gate now?"""
        raise NotImplementedError

    def may_wake(self, domain: "GatingDomain", cycle: int) -> bool:
        """May a wakeup request on a gated ``domain`` be honoured now?"""
        raise NotImplementedError

    def idle_cycles_until_gate(self, domain: "GatingDomain",
                               cycle: int) -> Optional[float]:
        """Idle cycles from ``cycle`` until :meth:`want_gate` first fires.

        Contract for the idle fast-forward planner (see
        :mod:`repro.sim.fastforward`): assuming the pipeline stays idle
        and every other input of the decision stays frozen from
        ``cycle`` on, return the number of further idle cycles before
        the gate closes — 0 means "this very cycle", ``float("inf")``
        means "never while those conditions hold".  Return ``None`` when
        the policy cannot predict its own decision, which disables
        fast-forwarding for the domain's SM.
        """
        return None


class ConventionalPolicy(GatingPolicy):
    """Hu et al. [13]: gate after idle-detect, wake on demand.

    The wakeup may arrive before break-even, producing a net energy
    *loss* for that window — the weakness Blackout removes.
    """

    name = "conventional"

    def want_gate(self, domain: "GatingDomain", cycle: int) -> bool:
        return domain.idle_counter >= domain.idle_detect

    def may_wake(self, domain: "GatingDomain", cycle: int) -> bool:
        return True

    def idle_cycles_until_gate(self, domain: "GatingDomain",
                               cycle: int) -> Optional[float]:
        # ``observe`` increments the counter *before* consulting
        # want_gate, so the gate fires on the idle cycle that brings the
        # counter up to idle_detect: (idle_detect - idle_counter - 1)
        # further idle cycles from now.
        return max(0, domain.idle_detect - domain.idle_counter - 1)


class GatingDomain:
    """One power-gated unit cluster and its controller."""

    __slots__ = ("name", "params", "policy", "bus", "idle_detect", "bet",
                 "wakeup_delay", "idle_counter", "stats", "_gated_since",
                 "_wake_done", "_finalized")

    def __init__(self, name: str, params: GatingParams,
                 policy: GatingPolicy,
                 bus: Optional[EventBus] = None) -> None:
        self.name = name
        self.params = params
        self.policy = policy
        #: Observability bus; the SM rebinds this to its own bus when the
        #: domain is attached (``attach_domain``), so domains built
        #: standalone default to the shared disabled bus.
        self.bus = bus if bus is not None else NULL_BUS
        #: Current idle-detect window; Adaptive idle-detect mutates this
        #: at epoch boundaries (the paper's incrementable register).
        self.idle_detect = params.idle_detect
        self.bet = params.bet
        self.wakeup_delay = params.wakeup_delay
        self.idle_counter = 0
        self.stats = GatingStats()
        self._gated_since: Optional[int] = None
        self._wake_done = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------

    def state(self, cycle: int) -> DomainState:
        """Power state at ``cycle``."""
        if self._gated_since is not None and cycle >= self._gated_since:
            return DomainState.GATED
        if cycle < self._wake_done:
            return DomainState.WAKING
        return DomainState.ON

    def available_for_issue(self, cycle: int) -> bool:
        """True when an instruction could execute here this cycle."""
        return self.state(cycle) is DomainState.ON and self._gated_since is None

    def is_gated(self, cycle: int) -> bool:
        """True when the gate is closed (or closing this cycle)."""
        return self._gated_since is not None

    def gated_length(self, cycle: int) -> int:
        """Completed gated cycles of the current window (0 if not gated)."""
        if self._gated_since is None:
            return 0
        return max(0, cycle - self._gated_since)

    def in_blackout(self, cycle: int) -> bool:
        """Gated and not yet past break-even: un-wakeable under Blackout."""
        return (self._gated_since is not None
                and self.gated_length(cycle) < self.bet)

    def blackout_remaining(self, cycle: int) -> int:
        """Cycles left on the BET countdown (0 when wakeable or ON)."""
        if self._gated_since is None:
            return 0
        return max(0, self.bet - self.gated_length(cycle))

    # ------------------------------------------------------------------
    # fast-forward support
    # ------------------------------------------------------------------

    def next_idle_event(self, cycle: int):
        """Next cycle (>= ``cycle``) at which this domain's behaviour can
        change while its pipeline stays idle, for the fast-forward
        planner.  Returns ``None`` when the policy cannot predict its
        gate decision (fast-forwarding must then be disabled).

        The planner real-steps every returned cycle, so state
        transitions (gate taking effect, blackout expiring, wake
        completing, the gate-fire cycle itself) always happen inside an
        ordinary ``_step`` and never inside a skipped span.
        """
        if self._gated_since is not None:
            # The cycle the gate takes effect changes ``state()`` and
            # the blackout view; after that, the BET expiry flips
            # ``in_blackout`` / ``may_wake`` for the Blackout policies.
            if self._gated_since >= cycle:
                return self._gated_since
            expiry = self._gated_since + self.bet
            return expiry if expiry >= cycle else float("inf")
        if cycle < self._wake_done:
            return self._wake_done
        until = self.policy.idle_cycles_until_gate(self, cycle)
        if until is None:
            return None
        return cycle + until

    def skip_idle_cycles(self, cycle: int, span: int) -> None:
        """Account ``span`` provably-idle cycles starting at ``cycle``.

        Equivalent to ``span`` calls of ``observe(c, False)`` under the
        planner's guarantee that no state transition and no gate
        decision falls inside the span (those cycles are real-stepped).
        """
        state = self.state(cycle)
        if state is DomainState.GATED:
            return  # gated accounting happens at wake/finalize
        if state is DomainState.WAKING:
            self.stats.waking_cycles += span
            return
        self.stats.on_cycles += span
        self.idle_counter += span

    def next_busy_event(self, cycle: int):
        """Next state-changing cycle while the pipeline stays *busy*.

        Busy-span counterpart of :meth:`next_idle_event`: with work in
        flight the controller observes ``pipeline_busy=True`` every
        cycle, which pins the idle counter at zero and makes ON-state
        behaviour time-invariant — only a wake completing can change
        anything.  (The busy->idle edge itself is the caller's bound:
        the planner never lets a span cross the pipeline's
        ``busy_until`` watermark.)  Returns ``None`` when no event is
        possible, or ``cycle`` itself for the busy-while-gated state
        the serial ``observe`` treats as a hard error — forcing a real
        step reproduces that error at the exact serial cycle.
        """
        if self._gated_since is not None:
            return cycle
        if cycle < self._wake_done:
            return self._wake_done
        return None

    def skip_busy_cycles(self, cycle: int, span: int) -> None:
        """Account ``span`` provably-busy cycles starting at ``cycle``.

        Equivalent to ``span`` calls of ``observe(c, True)`` under the
        planner's guarantee that the pipeline stays busy and no wake
        completes inside the span: waking cycles accrue, or ON cycles
        accrue with the idle counter pinned at zero.
        """
        if self._gated_since is not None:
            raise RuntimeError(
                f"{self.name}: pipeline busy while gated at {cycle}")
        if cycle < self._wake_done:
            self.stats.waking_cycles += span
            return
        self.stats.on_cycles += span
        self.idle_counter = 0

    # ------------------------------------------------------------------
    # scheduler-facing actions
    # ------------------------------------------------------------------

    def request_wakeup(self, cycle: int) -> bool:
        """A ready instruction wants this unit.

        Returns True when the unit is usable *this* cycle.  When gated
        and the policy allows, the wake starts now and the unit becomes
        usable after ``wakeup_delay`` cycles.  During blackout the
        request is denied (and counted — denied requests landing on the
        expiry cycle are what make a wakeup *critical*).
        """
        state = self.state(cycle)
        if state is DomainState.ON and self._gated_since is None:
            return True
        if state is DomainState.WAKING:
            return False
        if not self.policy.may_wake(self, cycle):
            self.stats.denied_wakeups += 1
            if self.bus.enabled:
                self.bus.publish(BlackoutBlocked(
                    cycle, self.name, self.blackout_remaining(cycle)))
            return False
        self._wake(cycle)
        return False

    def _wake(self, cycle: int) -> None:
        assert self._gated_since is not None
        gated_len = self.gated_length(cycle)
        self.stats.wakeups += 1
        self.stats.gated_cycles += gated_len
        self.stats.uncompensated_cycles += min(gated_len, self.bet)
        self.stats.compensated_cycles += max(0, gated_len - self.bet)
        if gated_len < self.bet:
            self.stats.wakeups_uncompensated += 1
        if gated_len == self.bet:
            self.stats.critical_wakeups += 1
        self._gated_since = None
        self._wake_done = cycle + self.wakeup_delay
        self.idle_counter = 0
        if self.bus.enabled:
            self.bus.publish(GateOff(cycle, self.name, gated_len,
                                     compensated=gated_len >= self.bet))
            self.bus.publish(Wakeup(cycle, self.name,
                                    critical=gated_len == self.bet,
                                    delay=self.wakeup_delay))

    # ------------------------------------------------------------------
    # per-cycle update (after issue, once pipeline occupancy is known)
    # ------------------------------------------------------------------

    def observe(self, cycle: int, pipeline_busy: bool) -> None:
        """End-of-cycle controller update.

        ``pipeline_busy`` must be False whenever the domain is gated —
        the SM never lets work into a gated pipeline, and gating is only
        triggered from this method, which sees the pipeline idle.

        Hot path (called per gated pipeline per cycle): the state
        machine is decided from the raw timestamp fields directly, with
        the same ordering as :meth:`state` — GATED, then WAKING, then ON.
        """
        gated_since = self._gated_since
        if gated_since is not None and cycle >= gated_since:
            if pipeline_busy:
                raise RuntimeError(
                    f"{self.name}: pipeline busy while gated at {cycle}")
            return
        stats = self.stats
        if cycle < self._wake_done:
            stats.waking_cycles += 1
            return
        stats.on_cycles += 1
        if pipeline_busy:
            self.idle_counter = 0
            return
        self.idle_counter += 1
        if self.policy.want_gate(self, cycle):
            self._gate(cycle)

    def _gate(self, cycle: int) -> None:
        # The switch closes at the end of this cycle; savings accrue
        # from the next cycle on.
        self._gated_since = cycle + 1
        self.stats.gating_events += 1
        self.idle_counter = 0
        if self.bus.enabled:
            self.bus.publish(GateOn(cycle, self.name))

    # ------------------------------------------------------------------
    # end of run
    # ------------------------------------------------------------------

    def finalize(self, end_cycle: int) -> None:
        """Close the books on a window still gated when the run ends."""
        if self._finalized:
            return
        self._finalized = True
        if self._gated_since is None:
            return
        gated_len = max(0, end_cycle - self._gated_since)
        self.stats.gated_cycles += gated_len
        self.stats.uncompensated_cycles += min(gated_len, self.bet)
        self.stats.compensated_cycles += max(0, gated_len - self.bet)
        self._gated_since = None
        if self.bus.enabled:
            self.bus.publish(GateOff(end_cycle, self.name, gated_len,
                                     compensated=gated_len >= self.bet,
                                     final=True))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GatingDomain({self.name}, policy={self.policy.name}, "
                f"idle_detect={self.idle_detect})")
