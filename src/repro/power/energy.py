"""Energy accounting on top of simulator + gating-controller counters.

All of the paper's energy results are *normalised*, which makes the
accounting exact given three ingredients per domain:

* powered cycles leak (``leak_per_cycle`` each),
* issued instructions burn dynamic energy (``dyn_per_issue`` each),
* every gating event burns a fixed overhead (``gate_overhead``; by the
  break-even definition, BET leak-cycles).

From these we derive the Figure 1b breakdown (dynamic / overhead /
static), the Figure 9 static-energy savings

    savings = (gated_cycles * leak - events * overhead) / (cycles * leak)

(which reduces to ``(gated_cycles - events * BET) / cycles`` with the
canonical overhead — leakage magnitude cancels), and the section 7.3
chip-level estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.power.params import EnergyParams, GTX480PowerModel


@dataclass(frozen=True)
class DomainEnergy:
    """Raw activity of one (or several summed) gating domains.

    ``lane_work`` is the divergence-weighted issue count: each issued
    instruction contributes its active-lane fraction (1.0 for a fully
    converged warp).  Dynamic energy scales with lane work, not raw
    issue counts, which is how mask-gated lanes save dynamic power.  It
    defaults to ``issues`` (no divergence).
    """

    cycles: int            # domain-cycles observed (cycles x n_domains)
    gated_cycles: int      # cycles spent with the gate closed
    issues: int            # warp instructions executed
    gating_events: int     # sleep-switch off/on pairs
    lane_work: float = -1.0

    def __post_init__(self) -> None:
        if min(self.cycles, self.gated_cycles, self.issues,
               self.gating_events) < 0:
            raise ValueError("activity counters must be non-negative")
        if self.gated_cycles > self.cycles:
            raise ValueError("gated_cycles cannot exceed cycles")
        if self.lane_work < 0:
            object.__setattr__(self, "lane_work", float(self.issues))
        if self.lane_work > self.issues + 1e-9:
            raise ValueError("lane_work cannot exceed issue count")

    def __add__(self, other: "DomainEnergy") -> "DomainEnergy":
        return DomainEnergy(
            cycles=self.cycles + other.cycles,
            gated_cycles=self.gated_cycles + other.gated_cycles,
            issues=self.issues + other.issues,
            gating_events=self.gating_events + other.gating_events,
            lane_work=self.lane_work + other.lane_work)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Absolute energies for one domain under one technique."""

    dynamic: float
    static: float
    overhead: float
    baseline_static: float

    @property
    def total(self) -> float:
        """Total energy under the evaluated gating configuration."""
        return self.dynamic + self.static + self.overhead

    @property
    def baseline_total(self) -> float:
        """Energy with no power gating at all (overhead-free)."""
        return self.dynamic + self.baseline_static

    def normalized(self) -> "EnergyBreakdown":
        """Components as fractions of the no-gating baseline (Fig. 1b)."""
        base = self.baseline_total
        if base == 0:
            return EnergyBreakdown(0.0, 0.0, 0.0, 0.0)
        return EnergyBreakdown(dynamic=self.dynamic / base,
                               static=self.static / base,
                               overhead=self.overhead / base,
                               baseline_static=self.baseline_static / base)

    @property
    def static_savings(self) -> float:
        """Fraction of baseline static energy saved, net of overhead.

        This is the Figure 9 y-axis; negative when gating overhead
        exceeded the leakage saved (e.g. ``backprop`` under conventional
        power gating).
        """
        if self.baseline_static == 0:
            return 0.0
        saved = self.baseline_static - self.static - self.overhead
        return saved / self.baseline_static


def domain_energy(activity: DomainEnergy,
                  params: EnergyParams) -> EnergyBreakdown:
    """Evaluate the energy model for one domain's activity."""
    powered = activity.cycles - activity.gated_cycles
    return EnergyBreakdown(
        dynamic=activity.lane_work * params.dyn_per_issue,
        static=powered * params.leak_per_cycle,
        overhead=activity.gating_events * params.gate_overhead,
        baseline_static=activity.cycles * params.leak_per_cycle)


def static_energy_savings(activity: DomainEnergy,
                          params: EnergyParams) -> float:
    """Shortcut for :attr:`EnergyBreakdown.static_savings`."""
    return domain_energy(activity, params).static_savings


def combine_savings(per_benchmark: Sequence[float]) -> float:
    """Suite-level average savings, as the paper's Figure 9 reports."""
    values = list(per_benchmark)
    if not values:
        return 0.0
    return sum(values) / len(values)


def chip_level_savings(int_saving: float, fp_saving: float,
                       model: GTX480PowerModel = GTX480PowerModel(),
                       leakage_share_of_chip: float = 0.33) -> float:
    """Section 7.3: execution-unit savings -> total on-chip fraction.

    The INT and FP savings are weighted by each unit type's share of
    execution-unit leakage (GPUWattch: FP dwarfs INT on GTX480).
    """
    unit_total = model.int_units_leakage_w + model.fp_units_leakage_w
    if unit_total == 0:
        return 0.0
    blended = (int_saving * model.int_units_leakage_w
               + fp_saving * model.fp_units_leakage_w) / unit_total
    return model.chip_savings_fraction(blended, leakage_share_of_chip)
