"""Power modelling: gating state machines, energy accounting, overheads.

* :mod:`repro.power.params` -- gating parameters (idle-detect, break-even
  time, wakeup delay) and the GTX480 power constants the paper quotes
  from GPUWattch/McPAT.
* :mod:`repro.power.gating` -- the per-domain power-gating state machine
  (conventional policy of Hu et al. [13]; the Blackout variants extend
  it from :mod:`repro.core.blackout`).
* :mod:`repro.power.energy` -- converts simulator + controller counters
  into the energy breakdowns and savings the figures report.
* :mod:`repro.power.overhead` -- the section 7.5 hardware-overhead
  bookkeeping (counter area and power).
"""

from repro.power.params import GatingParams, GTX480PowerModel, EnergyParams
from repro.power.gating import (
    DomainState,
    GatingDomain,
    ConventionalPolicy,
    GatingStats,
)
from repro.power.energy import (
    DomainEnergy,
    EnergyBreakdown,
    domain_energy,
    static_energy_savings,
    chip_level_savings,
)

__all__ = [
    "GatingParams",
    "GTX480PowerModel",
    "EnergyParams",
    "DomainState",
    "GatingDomain",
    "ConventionalPolicy",
    "GatingStats",
    "DomainEnergy",
    "EnergyBreakdown",
    "domain_energy",
    "static_energy_savings",
    "chip_level_savings",
]
