"""Workload characterisation (Figure 5 of the paper).

Two kinds of characterisation feed the paper's motivation:

* **Static instruction mix** (Figure 5a) — measurable directly from the
  generated traces; :func:`static_mix_for` / :func:`instruction_mix_table`
  produce it.
* **Active-warp population** (Figure 5b) — a *runtime* property (how many
  warps sit in the active set each cycle) measured by the simulator's
  statistics; :func:`active_warp_rows` formats those measurements next to
  the paper's reference values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.isa.optypes import ALL_OP_CLASSES, OpClass
from repro.workloads.registry import build_kernel
from repro.workloads.specs import BENCHMARK_NAMES, get_profile


def static_mix_for(name: str, seed: int = 0,
                   scale: float = 1.0) -> Dict[OpClass, float]:
    """Measured instruction-type mix of one benchmark's generated trace."""
    return build_kernel(name, seed=seed, scale=scale).op_class_mix()


def instruction_mix_table(names: Optional[Sequence[str]] = None,
                          seed: int = 0, scale: float = 1.0,
                          ) -> List[Dict[str, float]]:
    """Figure 5a data: one row per benchmark with per-type fractions.

    Rows carry both the *measured* mix of the generated trace and the
    *specified* mix from the profile so calibration drift is visible.
    """
    selected = tuple(names) if names is not None else BENCHMARK_NAMES
    rows: List[Dict[str, float]] = []
    for name in selected:
        measured = static_mix_for(name, seed=seed, scale=scale)
        spec_mix = get_profile(name).spec.mix
        row: Dict[str, float] = {"benchmark": name}  # type: ignore[dict-item]
        for cls in ALL_OP_CLASSES:
            row[cls.short_name] = measured[cls]
            row[f"spec_{cls.short_name}"] = spec_mix.get(cls, 0.0)
        rows.append(row)
    return rows


def active_warp_rows(measured: Mapping[str, Tuple[float, float]],
                     ) -> List[Dict[str, float]]:
    """Figure 5b data rows from simulator measurements.

    Args:
        measured: benchmark name -> (average, maximum) active-warp count,
            as produced by ``SimResult.stats`` in the harness.

    Returns:
        Rows with measured and paper-reference average/maximum, sorted by
        descending measured average (the paper sorts Fig. 5b this way).
    """
    rows: List[Dict[str, float]] = []
    for name, (avg, peak) in measured.items():
        profile = get_profile(name)
        rows.append({
            "benchmark": name,  # type: ignore[dict-item]
            "avg_active_warps": avg,
            "max_active_warps": peak,
            "paper_avg": profile.paper_avg_active_warps,
            "paper_max": profile.paper_max_active_warps,
        })
    rows.sort(key=lambda r: -float(r["avg_active_warps"]))
    return rows


def count_low_occupancy(rows: Iterable[Mapping[str, float]],
                        threshold: float = 10.0) -> int:
    """How many benchmarks average fewer than ``threshold`` active warps.

    The paper reports this as "only 5 out of 18 benchmarks have fewer
    than ten active warps on average" (section 4).
    """
    return sum(1 for row in rows
               if float(row["avg_active_warps"]) < threshold)
