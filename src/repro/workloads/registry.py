"""Kernel-trace construction for the benchmark suite.

The registry turns :class:`repro.workloads.specs.BenchmarkProfile` entries
into concrete :class:`repro.isa.KernelTrace` objects.  A ``scale`` knob
shrinks workloads proportionally (fewer warps, shorter traces) so unit
tests and pytest-benchmark runs stay fast while full-fidelity experiments
use ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, Optional, Sequence

from repro.isa.trace import KernelTrace
from repro.isa.tracegen import TraceGenerator, TraceSpec
from repro.workloads.specs import BENCHMARK_NAMES, get_profile


def scaled_spec(spec: TraceSpec, scale: float) -> TraceSpec:
    """Shrink (or grow) a trace spec while preserving its character.

    Warp count and per-warp instruction count scale together; resident
    warp cap and memory footprint scale with the warp count so occupancy
    and hit-rate regimes stay comparable.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if scale == 1.0:
        return spec
    n_warps = max(2, round(spec.n_warps * scale))
    return replace(
        spec,
        n_warps=n_warps,
        instructions_per_warp=max(8, round(spec.instructions_per_warp * scale)),
        max_resident_warps=max(2, min(round(spec.max_resident_warps * scale),
                                      n_warps)),
        footprint_lines=max(64, round(spec.footprint_lines * scale)),
    )


@lru_cache(maxsize=64)
def _generate_cached(name: str, seed: int, scale: float) -> KernelTrace:
    profile = get_profile(name)
    return TraceGenerator(scaled_spec(profile.spec, scale), seed=seed).generate()


def build_kernel(name: str, seed: int = 0, scale: float = 1.0) -> KernelTrace:
    """Generate the kernel trace for one benchmark.

    Generation is deterministic and every trace object is frozen, so
    results are memoised per ``(name, seed, scale)``: an experiment grid
    that replays the same workload under several techniques builds the
    trace once instead of once per cell.  Callers share the returned
    object and must keep treating it as immutable.

    Args:
        name: Benchmark name (see ``BENCHMARK_NAMES``).
        seed: Trace-generation seed; experiments hold this fixed across
            techniques so every technique replays the identical trace.
        scale: Workload size multiplier (1.0 = full model).
    """
    return _generate_cached(name, int(seed), float(scale))


def build_all_kernels(seed: int = 0, scale: float = 1.0,
                      names: Optional[Sequence[str]] = None,
                      ) -> Dict[str, KernelTrace]:
    """Generate traces for several benchmarks (default: all 18)."""
    selected = tuple(names) if names is not None else BENCHMARK_NAMES
    return {name: build_kernel(name, seed=seed, scale=scale)
            for name in selected}
