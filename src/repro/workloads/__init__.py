"""Synthetic models of the paper's 18 GPGPU benchmarks.

The paper evaluates on Rodinia, Parboil and ISPASS workloads run inside
GPGPU-Sim.  We model each benchmark as a :class:`repro.isa.TraceSpec`
parameterised by the characteristics the paper reports:

* instruction mix (Figure 5a),
* active-warp population (Figure 5b),
* qualitative notes scattered through the text (e.g. ``lavaMD`` is
  integer-only; ``backprop`` and ``lavaMD`` keep their units busy).

See :mod:`repro.workloads.specs` for the table and the per-benchmark
rationale, and :mod:`repro.workloads.characterization` for the utilities
that regenerate Figure 5 from the models.
"""

from repro.workloads.specs import (
    BENCHMARK_NAMES,
    INTEGER_ONLY_BENCHMARKS,
    BenchmarkProfile,
    get_profile,
    iter_profiles,
)
from repro.workloads.registry import build_kernel, build_all_kernels
from repro.workloads.characterization import (
    instruction_mix_table,
    static_mix_for,
)

__all__ = [
    "BENCHMARK_NAMES",
    "INTEGER_ONLY_BENCHMARKS",
    "BenchmarkProfile",
    "get_profile",
    "iter_profiles",
    "build_kernel",
    "build_all_kernels",
    "instruction_mix_table",
    "static_mix_for",
]
