"""The 18 evaluated benchmarks as statistical workload profiles.

Every profile wraps a :class:`repro.isa.TraceSpec` (what the trace
generator needs) plus runtime-model parameters (DRAM latency regime) and
the paper-reported reference characteristics we calibrate against.

Calibration sources:

* ``mix`` follows Figure 5a's per-benchmark instruction-type breakdown.
  The figure orders benchmarks by growing FP share, from the integer-only
  ``lavaMD``/``nw`` up to the FP-dominated ``sgemm``/``cutcp``; we assign
  fractions along that gradient.
* ``paper_avg_active_warps`` / ``paper_max_active_warps`` follow
  Figure 5b, which sorts benchmarks from ``srad`` (large active set) down
  to ``nw`` (tiny active set) and notes that only 5 of 18 average fewer
  than ten active warps.
* Memory parameters (locality, footprint, LDST share) are chosen so the
  simulated active-warp population lands near the Figure 5b values: a
  benchmark with many cache misses keeps more warps in the pending set
  and so shows a smaller active set.

These are models, not measurements of the original binaries; DESIGN.md
section 2 documents the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.isa.optypes import OpClass
from repro.isa.tracegen import TraceSpec


@dataclass(frozen=True)
class BenchmarkProfile:
    """A benchmark model plus its paper-reported reference points.

    Attributes:
        spec: Trace-generation parameters for the benchmark.
        dram_latency: Round-trip latency (cycles) of an L1 miss.
        paper_avg_active_warps: Average active-set size read off Fig. 5b.
        paper_max_active_warps: Maximum active-set size read off Fig. 5b.
        suite: Originating benchmark suite (Rodinia / Parboil / ISPASS).
        notes: Why the parameters look the way they do.
    """

    spec: TraceSpec
    dram_latency: int
    paper_avg_active_warps: float
    paper_max_active_warps: float
    suite: str
    notes: str = ""

    @property
    def name(self) -> str:
        """Benchmark name (matches the trace spec)."""
        return self.spec.name

    @property
    def is_integer_only(self) -> bool:
        """True when the benchmark issues no FP instructions.

        Figure 9b (FP static energy) excludes these benchmarks because
        their FP units never wake up at all.
        """
        return self.spec.mix.get(OpClass.FP, 0.0) == 0.0


def _mix(int_f: float, fp_f: float, sfu_f: float,
         ldst_f: float, name: str = "") -> Dict[OpClass, float]:
    """Build a mix dict and normalise away rounding slack.

    Raises:
        ValueError: If all four fractions are zero (or sum to <= 0) —
            normalising would divide by zero, and an all-zero mix means
            the spec's row was mistyped, not that the benchmark issues
            nothing.
    """
    total = int_f + fp_f + sfu_f + ldst_f
    if total <= 0:
        label = f" for {name!r}" if name else ""
        raise ValueError(
            f"instruction mix{label}: all four fractions are zero "
            f"(int={int_f}, fp={fp_f}, sfu={sfu_f}, ldst={ldst_f})")
    return {
        OpClass.INT: int_f / total,
        OpClass.FP: fp_f / total,
        OpClass.SFU: sfu_f / total,
        OpClass.LDST: ldst_f / total,
    }


# ---------------------------------------------------------------------------
# The benchmark table.
#
# Column intuition:  mix(int, fp, sfu, ldst) | warps, insns/warp, resident |
# dep(prob, dist) | mem(load_frac, footprint, locality, shared) | dram |
# fig5b(avg, max)
# ---------------------------------------------------------------------------

def _profile(name: str, suite: str, *,
             mix: Dict[OpClass, float],
             n_warps: int,
             instructions_per_warp: int,
             max_resident_warps: int,
             dep_prob: float,
             dep_distance_mean: float,
             load_fraction: float,
             footprint_lines: int,
             locality: float,
             shared_fraction: float,
             dram_latency: int,
             fig5b_avg: float,
             fig5b_max: float,
             notes: str,
             branch_prob: float = 0.02) -> BenchmarkProfile:
    spec = TraceSpec(
        name=name,
        mix=mix,
        n_warps=n_warps,
        instructions_per_warp=instructions_per_warp,
        max_resident_warps=max_resident_warps,
        dep_prob=dep_prob,
        dep_distance_mean=dep_distance_mean,
        load_fraction=load_fraction,
        footprint_lines=footprint_lines,
        locality=locality,
        shared_fraction=shared_fraction,
        branch_prob=branch_prob,
    )
    return BenchmarkProfile(
        spec=spec, dram_latency=dram_latency,
        paper_avg_active_warps=fig5b_avg,
        paper_max_active_warps=fig5b_max,
        suite=suite, notes=notes)


_PROFILES: Tuple[BenchmarkProfile, ...] = (
    _profile(
        "backprop", "Rodinia",
        mix=_mix(0.44, 0.34, 0.02, 0.20),
        n_warps=96, instructions_per_warp=72, max_resident_warps=48,
        dep_prob=0.32, dep_distance_mean=5.0,
        load_fraction=0.70, footprint_lines=1024, locality=0.85,
        shared_fraction=0.40, dram_latency=360,
        fig5b_avg=24.0, fig5b_max=32.0,
        notes=("Neural-net training; FP-heavy with highly utilised units "
               "(Fig. 8b: very few idle cycles, so PG saves little).")),
    _profile(
        "bfs", "Rodinia",
        mix=_mix(0.55, 0.10, 0.01, 0.34),
        n_warps=96, instructions_per_warp=56, max_resident_warps=48,
        dep_prob=0.40, dep_distance_mean=4.0,
        load_fraction=0.80, footprint_lines=16384, locality=0.35,
        shared_fraction=0.05, dram_latency=420,
        fig5b_avg=18.0, fig5b_max=30.0,
        notes=("Graph traversal; irregular global-memory bound, mostly "
               "integer address arithmetic; branch-divergent frontier "
               "checks."),
        branch_prob=0.12),
    _profile(
        "btree", "Rodinia",
        mix=_mix(0.52, 0.16, 0.01, 0.31),
        n_warps=72, instructions_per_warp=60, max_resident_warps=32,
        dep_prob=0.45, dep_distance_mean=4.0,
        load_fraction=0.85, footprint_lines=8192, locality=0.45,
        shared_fraction=0.05, dram_latency=400,
        fig5b_avg=12.0, fig5b_max=24.0,
        notes=("Pointer-chasing index search; memory-latency bound with "
               "divergent comparisons."),
        branch_prob=0.08),
    _profile(
        "cutcp", "Parboil",
        mix=_mix(0.22, 0.54, 0.08, 0.16),
        n_warps=96, instructions_per_warp=80, max_resident_warps=32,
        dep_prob=0.50, dep_distance_mean=3.5,
        load_fraction=0.75, footprint_lines=768, locality=0.88,
        shared_fraction=0.45, dram_latency=340,
        fig5b_avg=14.0, fig5b_max=26.0,
        notes=("Coulomb potential; FP dominated with transcendental work, "
               "tight dependency chains (Fig. 8b: many uncompensated "
               "gating events under ConvPG).")),
    _profile(
        "gaussian", "Rodinia",
        mix=_mix(0.44, 0.26, 0.01, 0.29),
        n_warps=24, instructions_per_warp=48, max_resident_warps=8,
        dep_prob=0.45, dep_distance_mean=3.5,
        load_fraction=0.75, footprint_lines=2048, locality=0.65,
        shared_fraction=0.10, dram_latency=380,
        fig5b_avg=5.0, fig5b_max=12.0,
        notes=("Gaussian elimination; row-by-row kernels leave few "
               "resident warps (one of the 5 benchmarks under 10 active "
               "warps in Fig. 5b).")),
    _profile(
        "heartwall", "Rodinia",
        mix=_mix(0.58, 0.11, 0.03, 0.28),
        n_warps=64, instructions_per_warp=88, max_resident_warps=24,
        dep_prob=0.40, dep_distance_mean=4.0,
        load_fraction=0.72, footprint_lines=2048, locality=0.75,
        shared_fraction=0.25, dram_latency=360,
        fig5b_avg=11.0, fig5b_max=22.0,
        notes="Image tracking; integer-leaning with moderate parallelism."),
    _profile(
        "hotspot", "Rodinia",
        mix=_mix(0.42, 0.29, 0.02, 0.27),
        n_warps=96, instructions_per_warp=64, max_resident_warps=48,
        dep_prob=0.35, dep_distance_mean=5.0,
        load_fraction=0.70, footprint_lines=1024, locality=0.85,
        shared_fraction=0.50, dram_latency=360,
        fig5b_avg=17.0, fig5b_max=28.0,
        notes=("Thermal stencil; the paper's representative benchmark for "
               "the Figure 3 idle-period histograms.")),
    _profile(
        "kmeans", "Rodinia",
        mix=_mix(0.48, 0.20, 0.02, 0.30),
        n_warps=64, instructions_per_warp=64, max_resident_warps=24,
        dep_prob=0.40, dep_distance_mean=4.5,
        load_fraction=0.85, footprint_lines=8192, locality=0.50,
        shared_fraction=0.05, dram_latency=420,
        fig5b_avg=10.0, fig5b_max=20.0,
        notes="Clustering; streaming reads dominate, moderate FP."),
    _profile(
        "lavaMD", "Rodinia",
        mix=_mix(0.76, 0.00, 0.02, 0.22),
        n_warps=96, instructions_per_warp=96, max_resident_warps=48,
        dep_prob=0.35, dep_distance_mean=5.0,
        load_fraction=0.70, footprint_lines=1024, locality=0.85,
        shared_fraction=0.40, dram_latency=340,
        fig5b_avg=16.0, fig5b_max=28.0,
        notes=("Integer-only in Fig. 5a ('a couple of pure integer "
               "workloads such as lavaMD'); INT units highly utilised so "
               "INT power gating barely pays off.")),
    _profile(
        "lbm", "Parboil",
        mix=_mix(0.26, 0.38, 0.01, 0.35),
        n_warps=96, instructions_per_warp=72, max_resident_warps=48,
        dep_prob=0.35, dep_distance_mean=5.0,
        load_fraction=0.60, footprint_lines=16384, locality=0.40,
        shared_fraction=0.05, dram_latency=440,
        fig5b_avg=26.0, fig5b_max=34.0,
        notes="Lattice-Boltzmann; bandwidth bound, large FP share."),
    _profile(
        "LIB", "ISPASS",
        mix=_mix(0.30, 0.37, 0.04, 0.29),
        n_warps=48, instructions_per_warp=64, max_resident_warps=16,
        dep_prob=0.45, dep_distance_mean=3.5,
        load_fraction=0.80, footprint_lines=4096, locality=0.55,
        shared_fraction=0.10, dram_latency=400,
        fig5b_avg=8.0, fig5b_max=17.0,
        notes=("LIBOR Monte-Carlo; few resident warps (under-10 group in "
               "Fig. 5b), weak critical-wakeup correlation in Fig. 6.")),
    _profile(
        "mri", "Parboil",
        mix=_mix(0.26, 0.40, 0.07, 0.27),
        n_warps=96, instructions_per_warp=72, max_resident_warps=48,
        dep_prob=0.40, dep_distance_mean=4.5,
        load_fraction=0.85, footprint_lines=1536, locality=0.80,
        shared_fraction=0.25, dram_latency=360,
        fig5b_avg=22.0, fig5b_max=31.0,
        notes=("MRI reconstruction (mri-q); trig-heavy FP, spends long "
               "in uncompensated state under ConvPG per Fig. 8b.")),
    _profile(
        "MUM", "ISPASS",
        mix=_mix(0.60, 0.06, 0.01, 0.33),
        n_warps=96, instructions_per_warp=56, max_resident_warps=48,
        dep_prob=0.40, dep_distance_mean=4.0,
        load_fraction=0.85, footprint_lines=16384, locality=0.30,
        shared_fraction=0.02, dram_latency=460,
        fig5b_avg=20.0, fig5b_max=32.0,
        notes=("Sequence alignment; integer compare + irregular memory; "
               "suffix-tree walks diverge heavily."),
        branch_prob=0.15),
    _profile(
        "NN", "Rodinia",
        mix=_mix(0.47, 0.21, 0.02, 0.30),
        n_warps=24, instructions_per_warp=40, max_resident_warps=8,
        dep_prob=0.45, dep_distance_mean=3.5,
        load_fraction=0.85, footprint_lines=2048, locality=0.60,
        shared_fraction=0.05, dram_latency=380,
        fig5b_avg=6.0, fig5b_max=13.0,
        notes=("Nearest neighbour; tiny kernels, few warps (under-10 "
               "group), sensitive to Blackout in Fig. 10.")),
    _profile(
        "nw", "Rodinia",
        mix=_mix(0.68, 0.00, 0.01, 0.31),
        n_warps=16, instructions_per_warp=48, max_resident_warps=6,
        dep_prob=0.50, dep_distance_mean=3.0,
        load_fraction=0.75, footprint_lines=1024, locality=0.70,
        shared_fraction=0.40, dram_latency=380,
        fig5b_avg=4.0, fig5b_max=10.0,
        notes=("Needleman-Wunsch; wavefront parallelism leaves the "
               "smallest active set in Fig. 5b; integer-only.")),
    _profile(
        "sgemm", "Parboil",
        mix=_mix(0.20, 0.57, 0.01, 0.22),
        n_warps=96, instructions_per_warp=96, max_resident_warps=32,
        dep_prob=0.30, dep_distance_mean=6.0,
        load_fraction=0.80, footprint_lines=512, locality=0.90,
        shared_fraction=0.50, dram_latency=320,
        fig5b_avg=15.0, fig5b_max=27.0,
        notes=("Dense matrix multiply; FP-dominated, high ILP, weak "
               "critical-wakeup correlation (no Blackout loss).")),
    _profile(
        "srad", "Rodinia",
        mix=_mix(0.36, 0.33, 0.03, 0.28),
        n_warps=128, instructions_per_warp=64, max_resident_warps=48,
        dep_prob=0.38, dep_distance_mean=4.5,
        load_fraction=0.70, footprint_lines=1536, locality=0.80,
        shared_fraction=0.30, dram_latency=360,
        fig5b_avg=28.0, fig5b_max=36.0,
        notes="Speckle-reducing diffusion; largest active set in Fig. 5b."),
    _profile(
        "WP", "ISPASS",
        mix=_mix(0.33, 0.36, 0.05, 0.26),
        n_warps=48, instructions_per_warp=72, max_resident_warps=16,
        dep_prob=0.42, dep_distance_mean=4.0,
        load_fraction=0.75, footprint_lines=3072, locality=0.60,
        shared_fraction=0.15, dram_latency=400,
        fig5b_avg=9.0, fig5b_max=18.0,
        notes=("Weather prediction; balanced mix, under-10 active-warp "
               "group, no Blackout performance loss in Fig. 6.")),
)

#: Name -> profile lookup, in the paper's alphabetical figure order.
PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in _PROFILES}

#: Benchmark names in the order the paper's figures list them.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(p.name for p in _PROFILES)

#: Benchmarks with zero FP instructions, excluded from FP-unit results
#: (Figure 9b).
INTEGER_ONLY_BENCHMARKS: Tuple[str, ...] = tuple(
    p.name for p in _PROFILES if p.is_integer_only)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name.

    Raises:
        KeyError: with the list of known names when the benchmark is
            unknown (typo guard for harness configs).
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def iter_profiles() -> Iterator[BenchmarkProfile]:
    """Iterate profiles in the paper's figure order."""
    return iter(_PROFILES)
