"""Declarative, serializable technique specs and plugin registries.

The paper's contribution is a *composition* — GATES scheduling x
Blackout gating x Adaptive idle-detect — and this module makes that
composition first-class.  A :class:`TechniqueSpec` is a frozen,
validated value object naming

* a **scheduler** (a :class:`SchedulerSpec` resolved against the
  string-keyed :data:`SCHEDULERS` plugin registry),
* a **gating policy** (a :class:`GatingPolicySpec` resolved against
  :data:`GATING_POLICIES`),
* an optional **adaptive idle-detect** configuration, and
* the :class:`~repro.power.params.GatingParams` plus structural
  :class:`~repro.sim.config.SMConfig` overrides the run should use.

Every capability the wiring layer needs (is the spec power-gated? must
the scheduler be blackout-aware?) is *derived* from the registries —
there are no hidden membership sets to keep in sync.  Specs round-trip
losslessly through :meth:`TechniqueSpec.to_dict` /
:meth:`TechniqueSpec.from_dict` (the CLI's ``--spec file.json``), and
:meth:`TechniqueSpec.spec_hash` is a canonical-JSON digest that is
stable across process restarts — the identity the experiment runner's
memoisation, the persistent ``.repro-cache/`` keys and the provenance
manifests all share.

New schedulers and gating policies register with the decorators::

    @register_scheduler("my_sched", description="...",
                        params=("aggressiveness",))
    def _build_my_sched(n_slots, aggressiveness=1.0):
        return MyScheduler(n_slots=n_slots, aggressiveness=aggressiveness)

and any cross-product becomes runnable by name or by JSON file without
touching core code (see "Defining a custom technique" in DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.adaptive import AdaptiveConfig
from repro.core.blackout import (
    CoordinatedBlackoutPolicy,
    NaiveBlackoutPolicy,
)
from repro.power.gating import ConventionalPolicy
from repro.power.params import GatingParams
from repro.sim.config import MemoryConfig, SMConfig
from repro.sim.sched.ccws import CCWSScheduler, MonitorDecayHook
from repro.sim.sched.fetch_group import FetchGroupScheduler
from repro.sim.sched.two_level import (
    LooseRoundRobinScheduler,
    TwoLevelScheduler,
)

#: Number of hex chars of the sha256 digest a spec hash keeps.
SPEC_HASH_LEN = 16

#: JSON-scalar types allowed as plugin parameter values.
_SCALARS = (bool, int, float, str, type(None))

#: Characters allowed in technique names (they become cache-file name
#: prefixes and CLI arguments).
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-")


# ----------------------------------------------------------------------
# name validation with suggestions
# ----------------------------------------------------------------------

def closest_name(name: str, known: Iterable[str]) -> Optional[str]:
    """The best difflib match for ``name`` among ``known``, or None."""
    matches = difflib.get_close_matches(name, sorted(known), n=1)
    return matches[0] if matches else None


def unknown_name_error(kind: str, name: str,
                       known: Iterable[str]) -> ValueError:
    """A ValueError naming the offender and the closest known name."""
    known = sorted(known)
    message = f"unknown {kind} {name!r}"
    hint = closest_name(name, known)
    if hint is not None:
        message += f"; did you mean {hint!r}?"
    message += f" (known: {', '.join(known) or 'none registered'})"
    return ValueError(message)


def validate_names(names: Sequence[str], known: Iterable[str],
                   kind: str) -> Tuple[str, ...]:
    """Check a user-supplied name list for unknowns and duplicates.

    Raises ValueError naming the first offending entry (with a difflib
    suggestion for unknowns) — never a raw KeyError.  Returns the
    names as a tuple on success.
    """
    if not names:
        raise ValueError(f"need at least one {kind}")
    known = set(known)
    seen = set()
    for name in names:
        if name in seen:
            raise ValueError(f"duplicate {kind} {name!r}")
        seen.add(name)
        if name not in known:
            raise unknown_name_error(kind, name, known)
    return tuple(names)


# ----------------------------------------------------------------------
# frozen parameter maps
# ----------------------------------------------------------------------

def _freeze_params(params: Any, *, where: str,
                   nested: bool = False) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a mapping (or pair sequence) into a sorted tuple.

    Values must be JSON scalars; with ``nested`` a value may itself be
    a mapping of scalars (one level, for ``sm_overrides["memory"]``).
    Sorting by key makes equal parameter sets compare and hash equal
    regardless of construction order.
    """
    items = params.items() if isinstance(params, Mapping) else tuple(params)
    frozen: List[Tuple[str, Any]] = []
    for key, value in sorted(items):
        if not isinstance(key, str) or not key:
            raise ValueError(f"{where}: parameter names must be "
                             f"non-empty strings, got {key!r}")
        if isinstance(value, Mapping) or (nested and isinstance(value, tuple)
                                          and all(isinstance(v, tuple)
                                                  for v in value)):
            if not nested:
                raise ValueError(f"{where}: parameter {key!r} must be a "
                                 f"JSON scalar, got a mapping")
            value = _freeze_params(value, where=f"{where}.{key}")
        elif not isinstance(value, _SCALARS):
            raise ValueError(f"{where}: parameter {key!r} must be a JSON "
                             f"scalar (bool/int/float/str/null), got "
                             f"{type(value).__name__}")
        frozen.append((key, value))
    return tuple(frozen)


def _thaw_params(params: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    """Inverse of :func:`_freeze_params` (tuples back to dicts)."""
    return {key: (_thaw_params(value) if isinstance(value, tuple) else value)
            for key, value in params}


# ----------------------------------------------------------------------
# component specs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ComponentSpec:
    """A named, parameterised reference into one plugin registry."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    #: Registry kind, used in error messages ("scheduler", ...).
    kind = "component"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"{self.kind} name must be a non-empty string")
        object.__setattr__(
            self, "params",
            _freeze_params(self.params, where=f"{self.kind} {self.name!r}"))

    @classmethod
    def of(cls, name: str, **params: Any) -> "ComponentSpec":
        """Convenience constructor: ``SchedulerSpec.of("gates", ...)``."""
        return cls(name, tuple(params.items()))

    def param_dict(self) -> Dict[str, Any]:
        """The frozen parameter pairs as a plain dict."""
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form: ``{"name": ..., "params": {...}}``."""
        return {"name": self.name, "params": self.param_dict()}

    @classmethod
    def from_dict(cls, doc: Any) -> "ComponentSpec":
        """Parse the dict form; a bare name string is shorthand."""
        if isinstance(doc, str):  # shorthand: "gates" == {"name": "gates"}
            return cls(doc)
        if not isinstance(doc, Mapping):
            raise ValueError(f"{cls.kind} spec must be a JSON object or a "
                             f"bare name string, got {type(doc).__name__}")
        unknown = set(doc) - {"name", "params"}
        if unknown:
            raise ValueError(f"{cls.kind} spec has unknown key(s) "
                             f"{sorted(unknown)}; allowed: name, params")
        if "name" not in doc:
            raise ValueError(f"{cls.kind} spec is missing its 'name'")
        return cls(doc["name"], tuple(dict(doc.get("params") or {}).items()))


class SchedulerSpec(ComponentSpec):
    """Reference to a registered warp scheduler."""

    kind = "scheduler"


class GatingPolicySpec(ComponentSpec):
    """Reference to a registered power-gating policy."""

    kind = "gating policy"


# ----------------------------------------------------------------------
# plugin registries
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SchedulerPlugin:
    """One registered scheduler: factory plus declared capabilities."""

    name: str
    factory: Callable[..., object]
    description: str = ""
    #: Parameter names the factory accepts beyond ``n_slots``.
    params: FrozenSet[str] = frozenset()
    #: The factory accepts ``blackout_aware`` (GATES' extended priority
    #: switch); derived into :attr:`TechniqueSpec.blackout_aware`.
    supports_blackout_aware: bool = False
    #: Optional post-construction hook ``attach(sm, scheduler)`` for
    #: schedulers needing SM-side wiring (CCWS' locality feedback).
    attach: Optional[Callable[[object, object], None]] = None

    def build(self, n_slots: int, spec: SchedulerSpec,
              blackout_aware: bool = False):
        """Construct the scheduler from one reference's parameters."""
        kwargs = spec.param_dict()
        if self.supports_blackout_aware:
            kwargs["blackout_aware"] = blackout_aware
        return self.factory(n_slots=n_slots, **kwargs)


@dataclass(frozen=True)
class GatingPolicyPlugin:
    """One registered gating policy: factory plus capabilities.

    ``gates_units=False`` marks the null policy — no gating domains are
    attached at all.  ``coordinated=True`` marks cluster-coordinating
    policies; a blackout-capable scheduler paired with one becomes
    blackout-aware (the derived flag that replaced the old hidden
    ``_BLACKOUT_AWARE`` set).
    """

    name: str
    factory: Callable[..., object]
    description: str = ""
    params: FrozenSet[str] = frozenset()
    gates_units: bool = True
    coordinated: bool = False
    #: Optional hook ``wire(policy, domain)`` run per domain before it
    #: is attached (Coordinated Blackout enrols its cluster domains).
    wire: Optional[Callable[[object, object], None]] = None

    def build(self, context: "PolicyContext", spec: GatingPolicySpec):
        """Construct the policy from one reference's parameters."""
        return self.factory(context, **spec.param_dict())


@dataclass(frozen=True)
class PolicyContext:
    """What a gating-policy factory may read off the SM being built."""

    sm: object
    op_class: object

    def actv_count(self) -> Callable[[], int]:
        """Late-bound reader of the SM's per-type ACTV counter."""
        sm, cls = self.sm, self.op_class

        def read() -> int:
            return sm.actv_counts[cls]
        return read


#: String-keyed plugin registries (populated below and by user code).
SCHEDULERS: Dict[str, SchedulerPlugin] = {}
GATING_POLICIES: Dict[str, GatingPolicyPlugin] = {}


def register_scheduler(name: str, *, description: str = "",
                       params: Iterable[str] = (),
                       supports_blackout_aware: bool = False,
                       attach: Optional[Callable] = None,
                       allow_replace: bool = False):
    """Decorator registering a scheduler factory under ``name``."""
    def decorate(factory: Callable[..., object]) -> Callable[..., object]:
        if name in SCHEDULERS and not allow_replace:
            raise ValueError(f"scheduler {name!r} is already registered")
        SCHEDULERS[name] = SchedulerPlugin(
            name=name, factory=factory, description=description,
            params=frozenset(params),
            supports_blackout_aware=supports_blackout_aware, attach=attach)
        return factory
    return decorate


def register_gating_policy(name: str, *, description: str = "",
                           params: Iterable[str] = (),
                           gates_units: bool = True,
                           coordinated: bool = False,
                           wire: Optional[Callable] = None,
                           allow_replace: bool = False):
    """Decorator registering a gating-policy factory under ``name``."""
    def decorate(factory: Callable[..., object]) -> Callable[..., object]:
        if name in GATING_POLICIES and not allow_replace:
            raise ValueError(f"gating policy {name!r} is already registered")
        GATING_POLICIES[name] = GatingPolicyPlugin(
            name=name, factory=factory, description=description,
            params=frozenset(params), gates_units=gates_units,
            coordinated=coordinated, wire=wire)
        return factory
    return decorate


def scheduler_plugin(name: str) -> SchedulerPlugin:
    """Resolve a scheduler name (ValueError with suggestion if unknown)."""
    if name not in SCHEDULERS:
        raise unknown_name_error("scheduler", name, SCHEDULERS)
    return SCHEDULERS[name]


def gating_policy_plugin(name: str) -> GatingPolicyPlugin:
    """Resolve a gating-policy name (ValueError if unknown)."""
    if name not in GATING_POLICIES:
        raise unknown_name_error("gating policy", name, GATING_POLICIES)
    return GATING_POLICIES[name]


# ----------------------------------------------------------------------
# builtin scheduler plugins
# ----------------------------------------------------------------------

@register_scheduler(
    "two_level",
    description="two-level active/pending warp scheduler "
                "(the paper's baseline, Gebhart et al.)")
def _build_two_level(n_slots: int):
    return TwoLevelScheduler(n_slots=n_slots)


@register_scheduler(
    "lrr",
    description="single-level loose round-robin over all resident warps")
def _build_lrr(n_slots: int):
    return LooseRoundRobinScheduler(n_slots=n_slots)


@register_scheduler(
    "fetch_group", params=("group_size",),
    description="group-prioritised two-level scheduler "
                "(fetch-group / Narasiman-style)")
def _build_fetch_group(n_slots: int, group_size: int = 8):
    return FetchGroupScheduler(n_slots=n_slots, group_size=group_size)


def _attach_ccws(sm, scheduler) -> None:
    """Wire CCWS' lost-locality feedback loop onto the SM."""
    sm.memory.attach_locality_monitor(scheduler.monitor)
    sm.add_hook(MonitorDecayHook(scheduler.monitor))


@register_scheduler(
    "ccws", params=("score_per_excluded_warp", "min_active_warps"),
    attach=_attach_ccws,
    description="cache-conscious wavefront scheduling with lost-locality "
                "warp throttling (Rogers et al.)")
def _build_ccws(n_slots: int, score_per_excluded_warp: float = 64.0,
                min_active_warps: int = 2):
    return CCWSScheduler(n_slots=n_slots,
                         score_per_excluded_warp=score_per_excluded_warp,
                         min_active_warps=min_active_warps)


@register_scheduler(
    "gates", params=("max_priority_cycles",), supports_blackout_aware=True,
    description="GATES gating-aware two-level scheduler: per-type "
                "dynamic issue priority (paper section 4)")
def _build_gates(n_slots: int, blackout_aware: bool = False,
                 max_priority_cycles: Optional[int] = None):
    from repro.core.gates import GatesScheduler
    return GatesScheduler(n_slots=n_slots,
                          max_priority_cycles=max_priority_cycles,
                          blackout_aware=blackout_aware)


# ----------------------------------------------------------------------
# builtin gating-policy plugins
# ----------------------------------------------------------------------

@register_gating_policy(
    "none", gates_units=False,
    description="no power gating; execution units stay on")
def _build_no_policy(context: PolicyContext):  # pragma: no cover - never built
    return None


@register_gating_policy(
    "conventional",
    description="Hu et al.: gate after idle-detect, wake on demand "
                "(wakeups may arrive before break-even)")
def _build_conventional(context: PolicyContext):
    return ConventionalPolicy()


@register_gating_policy(
    "naive_blackout",
    description="per-cluster Blackout: once gated, wakeups are denied "
                "until break-even is reached (paper section 5)")
def _build_naive_blackout(context: PolicyContext):
    return NaiveBlackoutPolicy()


def _wire_coordinated(policy, domain) -> None:
    policy.register(domain)


@register_gating_policy(
    "coordinated_blackout", params=("max_domains",), coordinated=True,
    wire=_wire_coordinated,
    description="cluster-coordinated Blackout: keeps one cluster of a "
                "type awake while warps of the type wait (section 5)")
def _build_coordinated_blackout(context: PolicyContext,
                                max_domains: int = 8):
    return CoordinatedBlackoutPolicy(actv_count=context.actv_count(),
                                     max_domains=max_domains)


# ----------------------------------------------------------------------
# the technique spec
# ----------------------------------------------------------------------

#: to_dict/from_dict document keys, in canonical order.
_SPEC_KEYS = ("name", "description", "scheduler", "gating_policy",
              "gating", "adaptive", "gate_sfu", "sm_overrides")


@dataclass(frozen=True)
class TechniqueSpec:
    """One experimental configuration, declaratively.

    Attributes:
        name: Unique technique name (cache-key prefix, CLI argument,
            ``SimResult.technique`` label).
        scheduler: Warp-scheduler reference (:data:`SCHEDULERS`).
        gating_policy: Gating-policy reference (:data:`GATING_POLICIES`);
            ``"none"`` leaves the SM ungated.
        gating: Per-domain controller parameters (idle-detect / BET /
            wakeup).
        adaptive: Epoch-based adaptive idle-detect configuration, or
            None to disable adaptation.
        gate_sfu: Also gate the SFU group conventionally (off by
            default; the paper reports INT/FP only).
        sm_overrides: Structural :class:`SMConfig` field overrides
            applied on top of the run's SM configuration; the
            ``"memory"`` key takes a mapping of
            :class:`MemoryConfig` fields.
        description: One-line human summary (``repro list``); not part
            of the spec's identity hash.
    """

    name: str
    scheduler: SchedulerSpec = field(
        default_factory=lambda: SchedulerSpec("two_level"))
    gating_policy: GatingPolicySpec = field(
        default_factory=lambda: GatingPolicySpec("none"))
    gating: GatingParams = field(default_factory=GatingParams)
    adaptive: Optional[AdaptiveConfig] = None
    gate_sfu: bool = False
    sm_overrides: Tuple[Tuple[str, Any], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("technique name must be a non-empty string")
        if not set(self.name) <= _NAME_CHARS:
            raise ValueError(
                f"technique name {self.name!r} may only contain letters, "
                f"digits, '_', '.', and '-' (it names cache entries)")
        if not isinstance(self.scheduler, SchedulerSpec):
            object.__setattr__(self, "scheduler",
                               SchedulerSpec.from_dict(self.scheduler))
        if not isinstance(self.gating_policy, GatingPolicySpec):
            object.__setattr__(self, "gating_policy",
                               GatingPolicySpec.from_dict(self.gating_policy))
        object.__setattr__(
            self, "sm_overrides",
            _freeze_params(self.sm_overrides, nested=True,
                           where=f"technique {self.name!r} sm_overrides"))

    # -- derived capabilities (no hidden membership sets) --------------

    @property
    def gated(self) -> bool:
        """True when gating domains are attached at all."""
        return gating_policy_plugin(self.gating_policy.name).gates_units

    @property
    def blackout_aware(self) -> bool:
        """True when the scheduler should track blacked-out units."""
        return (gating_policy_plugin(self.gating_policy.name).coordinated
                and scheduler_plugin(self.scheduler.name)
                .supports_blackout_aware)

    @property
    def adaptive_enabled(self) -> bool:
        """True when adaptive idle-detect hooks will be installed."""
        return self.adaptive is not None and self.gated

    # -- validation ----------------------------------------------------

    def validate(self) -> "TechniqueSpec":
        """Resolve both plugins and sanity-check every parameter.

        Raises ValueError (never KeyError) with the offending name and
        a closest-match suggestion.  Returns self for chaining.
        """
        sched = scheduler_plugin(self.scheduler.name)
        unknown = set(self.scheduler.param_dict()) - set(sched.params)
        if unknown:
            raise ValueError(
                f"scheduler {self.scheduler.name!r} does not accept "
                f"parameter(s) {sorted(unknown)}; accepted: "
                f"{sorted(sched.params) or 'none'}")
        policy = gating_policy_plugin(self.gating_policy.name)
        unknown = set(self.gating_policy.param_dict()) - set(policy.params)
        if unknown:
            raise ValueError(
                f"gating policy {self.gating_policy.name!r} does not "
                f"accept parameter(s) {sorted(unknown)}; accepted: "
                f"{sorted(policy.params) or 'none'}")
        # A dry construction surfaces bad parameter values now, not
        # mid-experiment (factories validate their own arguments).
        sched.build(8, self.scheduler, self.blackout_aware)
        self.apply_sm_overrides(SMConfig())
        return self

    def apply_sm_overrides(self, sm_config: SMConfig) -> SMConfig:
        """The run's structural config with this spec's overrides folded
        in (``SMConfig.__post_init__`` guards re-fire on the result)."""
        if not self.sm_overrides:
            return sm_config
        valid = {f.name for f in dataclasses.fields(SMConfig)}
        kwargs: Dict[str, Any] = {}
        for key, value in self.sm_overrides:
            if key not in valid:
                raise unknown_name_error("SMConfig field", key, valid)
            if key == "memory":
                overrides = (_thaw_params(value)
                             if isinstance(value, tuple) else dict(value))
                mem_valid = {f.name
                             for f in dataclasses.fields(MemoryConfig)}
                for mem_key in overrides:
                    if mem_key not in mem_valid:
                        raise unknown_name_error("MemoryConfig field",
                                                 mem_key, mem_valid)
                kwargs["memory"] = replace(sm_config.memory, **overrides)
            else:
                kwargs[key] = value
        return replace(sm_config, **kwargs)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "scheduler": self.scheduler.to_dict(),
            "gating_policy": self.gating_policy.to_dict(),
            "gating": dataclasses.asdict(self.gating),
            "adaptive": (dataclasses.asdict(self.adaptive)
                         if self.adaptive is not None else None),
            "gate_sfu": self.gate_sfu,
            "sm_overrides": _thaw_params(self.sm_overrides),
        }

    @classmethod
    def from_dict(cls, doc: Any) -> "TechniqueSpec":
        """Build and fully validate a spec from its dict form.

        Every schema violation — unknown keys, wrong types, unknown
        plugin names, out-of-range parameters (the dataclasses'
        ``__post_init__`` guards) — raises ValueError.
        """
        if not isinstance(doc, Mapping):
            raise ValueError("technique spec must be a JSON object, got "
                             f"{type(doc).__name__}")
        unknown = set(doc) - set(_SPEC_KEYS)
        if unknown:
            offender = sorted(unknown)[0]
            raise unknown_name_error("spec key", offender, _SPEC_KEYS)
        if "name" not in doc:
            raise ValueError("technique spec is missing its 'name'")

        gating_doc = doc.get("gating") or {}
        if not isinstance(gating_doc, Mapping):
            raise ValueError("'gating' must be a JSON object of "
                             "GatingParams fields")
        gating = _dataclass_from_doc(GatingParams, gating_doc, "gating")

        adaptive_doc = doc.get("adaptive")
        if adaptive_doc is not None and not isinstance(adaptive_doc, Mapping):
            raise ValueError("'adaptive' must be null or a JSON object of "
                             "AdaptiveConfig fields")
        adaptive = (None if adaptive_doc is None else
                    _dataclass_from_doc(AdaptiveConfig, adaptive_doc,
                                        "adaptive"))

        gate_sfu = doc.get("gate_sfu", False)
        if not isinstance(gate_sfu, bool):
            raise ValueError("'gate_sfu' must be a boolean")
        description = doc.get("description", "")
        if not isinstance(description, str):
            raise ValueError("'description' must be a string")
        sm_overrides = doc.get("sm_overrides") or {}
        if not isinstance(sm_overrides, Mapping):
            raise ValueError("'sm_overrides' must be a JSON object of "
                             "SMConfig fields")

        spec = cls(
            name=doc["name"],
            description=description,
            scheduler=SchedulerSpec.from_dict(
                doc.get("scheduler", "two_level")),
            gating_policy=GatingPolicySpec.from_dict(
                doc.get("gating_policy", "none")),
            gating=gating,
            adaptive=adaptive,
            gate_sfu=gate_sfu,
            sm_overrides=tuple(dict(sm_overrides).items()),
        )
        return spec.validate()

    def canonical_json(self) -> str:
        """Deterministic JSON of the spec's identity (no description)."""
        payload = {key: value for key, value in self.to_dict().items()
                   if key != "description"}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Stable short digest of the spec's identity.

        Computed over canonical (sorted-key) JSON of scalars only, so it
        cannot depend on dict order, enum object identity, or anything
        else that varies across process restarts — which is what lets
        it key the persistent ``.repro-cache/`` and the experiment
        runner's memoisation.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:SPEC_HASH_LEN]


def _dataclass_from_doc(cls, doc: Mapping, where: str):
    """Construct a config dataclass from a JSON object, nicely erroring
    on unknown fields (the dataclass's own guards check the values)."""
    valid = {f.name for f in dataclasses.fields(cls)}
    for key in doc:
        if key not in valid:
            raise unknown_name_error(f"{where} field", key, valid)
    return cls(**doc)


# ----------------------------------------------------------------------
# the technique registry
# ----------------------------------------------------------------------

#: Registration groups, in ``repro list`` display order.
TECHNIQUE_GROUPS = ("paper", "ablation", "user")


@dataclass(frozen=True)
class RegisteredTechnique:
    """A named spec plus its display group."""

    spec: TechniqueSpec
    group: str = "user"


#: Name -> registered technique, in registration order.
TECHNIQUES: Dict[str, RegisteredTechnique] = {}


def register_technique(spec: TechniqueSpec, group: str = "user",
                       allow_replace: bool = False) -> TechniqueSpec:
    """Register (and validate) a spec so it is runnable by name."""
    if group not in TECHNIQUE_GROUPS:
        raise ValueError(f"group must be one of {TECHNIQUE_GROUPS}, "
                         f"got {group!r}")
    if spec.name in TECHNIQUES and not allow_replace:
        raise ValueError(f"technique {spec.name!r} is already registered")
    spec.validate()
    TECHNIQUES[spec.name] = RegisteredTechnique(spec=spec, group=group)
    return spec


def technique_spec(name: str) -> TechniqueSpec:
    """Look up a registered technique (ValueError with suggestion)."""
    if name not in TECHNIQUES:
        raise unknown_name_error("technique", name, TECHNIQUES)
    return TECHNIQUES[name].spec


def technique_names(group: Optional[str] = None) -> Tuple[str, ...]:
    """Registered technique names, optionally filtered by group."""
    return tuple(name for name, reg in TECHNIQUES.items()
                 if group is None or reg.group == group)


def techniques_by_group() -> Dict[str, List[TechniqueSpec]]:
    """Specs grouped for display, in registration order per group."""
    grouped: Dict[str, List[TechniqueSpec]] = {g: []
                                               for g in TECHNIQUE_GROUPS}
    for registered in TECHNIQUES.values():
        grouped[registered.group].append(registered.spec)
    return grouped


def as_spec(technique: Any) -> TechniqueSpec:
    """Resolve anything technique-shaped into a :class:`TechniqueSpec`.

    Accepts a spec (returned as-is), a registered name string, a
    ``Technique`` enum member (its ``.value`` is the registered name),
    or any object exposing ``to_spec()`` (``TechniqueConfig``).
    """
    if isinstance(technique, TechniqueSpec):
        return technique
    if isinstance(technique, str):
        return technique_spec(technique)
    to_spec = getattr(technique, "to_spec", None)
    if callable(to_spec):
        return to_spec()
    value = getattr(technique, "value", None)
    if isinstance(value, str):
        return technique_spec(value)
    raise TypeError(f"cannot resolve a technique spec from {technique!r}")


def technique_label(technique: Any) -> str:
    """Display name of a technique in any accepted form."""
    if isinstance(technique, TechniqueSpec):
        return technique.name
    if isinstance(technique, str):
        return technique
    value = getattr(technique, "value", None)
    return value if isinstance(value, str) else str(technique)


__all__ = [
    "ComponentSpec",
    "GATING_POLICIES",
    "GatingPolicyPlugin",
    "GatingPolicySpec",
    "PolicyContext",
    "RegisteredTechnique",
    "SCHEDULERS",
    "SPEC_HASH_LEN",
    "SchedulerPlugin",
    "SchedulerSpec",
    "TECHNIQUES",
    "TECHNIQUE_GROUPS",
    "TechniqueSpec",
    "as_spec",
    "closest_name",
    "gating_policy_plugin",
    "register_gating_policy",
    "register_scheduler",
    "register_technique",
    "scheduler_plugin",
    "technique_label",
    "technique_names",
    "technique_spec",
    "techniques_by_group",
    "unknown_name_error",
    "validate_names",
]
