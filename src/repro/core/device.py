"""Full-chip (device) configuration layer and named presets.

The paper evaluates a GTX480: 15 SMs sharing six GDDR5 memory
partitions (section 7.1).  Everything the per-SM model reproduces —
schedulers, gating domains, idle distributions — lives *inside* an SM,
but the chip-level numbers (Figure 1b's breakdown, the section 7.3
savings estimate) are aggregates over the full device, so the harness
needs a first-class notion of "the chip": how many SMs, what each SM
looks like, and what the shared memory side does when all of them are
live at once.

:class:`GPUConfig` is that notion.  It composes the existing
:class:`~repro.sim.config.SMConfig` (one entry per chip — SMs are
homogeneous) with a :class:`MemorySideConfig` capturing the only
cross-SM interaction the model carries: bandwidth contention inflating
DRAM latency.  Presets are registered by name in :data:`DEVICE_PRESETS`
and resolved through :func:`device_preset`, which reports unknown names
with the same difflib did-you-mean shape as the technique registry.

Design constraint: the memory-side model must be **neutral for a
single-SM device** (``effective_dram_latency(base, 1) == base``), so
every previously pinned single-SM golden digest survives the device
layer unchanged, and SMs stay mutually independent — contention is a
deterministic function of the *number of active SMs*, computed once
before the fan-out, never of runtime traffic.  That keeps per-SM parts
picklable and the parallel engine path bit-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict

from repro.core.spec import unknown_name_error
from repro.sim.config import SMConfig


@dataclass(frozen=True)
class MemorySideConfig:
    """Shared memory-side model: first-order bandwidth contention.

    A single SM never saturates the device's memory partitions, but 15
    of them do; queueing at the partitions shows up to each SM as
    longer effective miss latency.  We model that with a first-order
    M/D/1-flavoured inflation: each active SM beyond the first adds
    ``queue_alpha / n_partitions`` of the base latency.

    Attributes:
        n_partitions: Memory partitions (GDDR5 channels) shared by the
            SMs; GTX480 has six.
        queue_alpha: Queueing sensitivity — fraction of the base DRAM
            latency added per contending SM per partition.  0 disables
            contention entirely (every SM sees the base latency).
    """

    n_partitions: int = 6
    queue_alpha: float = 0.15

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if self.queue_alpha < 0:
            raise ValueError("queue_alpha must be >= 0")

    def effective_dram_latency(self, base: int, n_active_sms: int) -> int:
        """DRAM latency one SM observes with ``n_active_sms`` live.

        Deterministic, monotonic in ``n_active_sms``, and exactly
        ``base`` for a lone SM — the neutrality the single-SM golden
        digests rely on.  The result is floored to an integer cycle
        count (the memory model is integer-cycled throughout).

        Computed in exact integer arithmetic: ``queue_alpha`` is read
        as the decimal its repr spells (0.15 == 3/20, not the nearest
        binary double), the scaled numerator is built in integers and
        floor-divided once.  The float path this replaces truncated
        ``int(base * factor)`` through binary rounding — e.g. base 360
        at 2 active SMs is exactly 369, but ``360 * 1.025`` rounds to
        368.99999999999994 and truncated to 368, one cycle short and a
        hair platform-dependent.
        """
        if n_active_sms < 1:
            raise ValueError("n_active_sms must be >= 1")
        alpha = Fraction(str(self.queue_alpha))
        denominator = self.n_partitions * alpha.denominator
        numerator = base * (denominator
                            + alpha.numerator * (n_active_sms - 1))
        return numerator // denominator


@dataclass(frozen=True)
class GPUConfig:
    """One full chip: N homogeneous SMs plus the shared memory side.

    Attributes:
        name: Preset identity (appears in manifests and bench rows).
        n_sms: Streaming multiprocessors on the chip.
        sm: Structural parameters of every SM (homogeneous).
        memory_side: Cross-SM bandwidth-contention model.
    """

    name: str = "gtx480"
    n_sms: int = 15
    sm: SMConfig = field(default_factory=SMConfig)
    memory_side: MemorySideConfig = field(default_factory=MemorySideConfig)

    def __post_init__(self) -> None:
        if self.n_sms < 1:
            raise ValueError("n_sms must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-friendly form (``repro spec show <preset>``)."""
        sm = self.sm
        return {
            "kind": "device_preset",
            "name": self.name,
            "n_sms": self.n_sms,
            "sm": {
                "n_sp_clusters": sm.n_sp_clusters,
                "issue_width": sm.issue_width,
                "fetch_width": sm.fetch_width,
                "ibuffer_entries": sm.ibuffer_entries,
                "max_resident_warps": sm.max_resident_warps,
            },
            "memory_side": {
                "n_partitions": self.memory_side.n_partitions,
                "queue_alpha": self.memory_side.queue_alpha,
            },
        }


#: Registered full-chip presets.  ``gtx480`` is the paper's evaluation
#: platform (section 7.1): 15 Fermi SMs, 6 memory partitions.
DEVICE_PRESETS: Dict[str, GPUConfig] = {
    "gtx480": GPUConfig(name="gtx480", n_sms=15, sm=SMConfig(),
                        memory_side=MemorySideConfig()),
}


def device_preset_names() -> tuple:
    """Registered device-preset names, sorted."""
    return tuple(sorted(DEVICE_PRESETS))


def device_preset(name: str) -> GPUConfig:
    """Resolve a device preset by name.

    Raises ValueError with a difflib did-you-mean suggestion for
    unknown names — same contract as the technique registry's
    resolvers.
    """
    try:
        return DEVICE_PRESETS[name]
    except KeyError:
        raise unknown_name_error("device preset", name,
                                 DEVICE_PRESETS) from None
