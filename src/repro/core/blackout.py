"""Blackout power-gating policies (paper section 5).

Blackout removes the conventional state machine's transition from the
*uncompensated* state to *wakeup*: once a unit gates, it sleeps for at
least the break-even time even if ready instructions want it, which
makes every gating event energy-non-negative by construction.

* :class:`NaiveBlackoutPolicy` — per-cluster Blackout: gate after
  idle-detect, deny wakeups until the BET countdown expires.
* :class:`CoordinatedBlackoutPolicy` — cluster-aware Blackout for the
  clustered SP organisation (two INT and two FP clusters on Fermi;
  generalised to the N-cluster layouts of Kepler/GCN).  While any peer
  cluster is gated, a cluster stops trusting idle-detect and instead
  consults the type's active-warp subset occupancy (the INT_ACTV /
  FP_ACTV counter):

  - subset empty  -> gate **immediately**, even before idle-detect;
  - subset non-empty -> do **not** gate, even past idle-detect, so one
    cluster of the type stays awake for the warp that is about to be
    ready.

Both plug into :class:`repro.power.gating.GatingDomain` as policies; the
state machine itself is unchanged, matching the paper's "only the
transitions differ" framing.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.power.gating import GatingDomain, GatingPolicy


class NaiveBlackoutPolicy(GatingPolicy):
    """GATES + Naive Blackout: unconditional BET enforcement."""

    name = "naive_blackout"

    def want_gate(self, domain: GatingDomain, cycle: int) -> bool:
        return domain.idle_counter >= domain.idle_detect

    def may_wake(self, domain: GatingDomain, cycle: int) -> bool:
        return domain.gated_length(cycle) >= domain.bet

    def idle_cycles_until_gate(self, domain: GatingDomain,
                               cycle: int) -> Optional[float]:
        """Idle cycles until the gate fires (fast-forward planning).

        Same trigger as ConventionalPolicy (the difference is wake
        side only), and observe() increments before checking.
        """
        return max(0, domain.idle_detect - domain.idle_counter - 1)


class CoordinatedBlackoutPolicy(GatingPolicy):
    """Cluster-coordinated Blackout.

    One policy instance is shared by all clusters of a unit type; it
    needs a callable returning the type's current active-warp subset
    occupancy (wired to ``StreamingMultiprocessor.actv_counts`` by the
    technique factory).

    The paper describes the two-cluster (Fermi) case and motivates the
    generalisation — "the more recent Kepler architecture uses six
    clusters of INT and FP organised as six SPs; AMD's GCN has four
    clusters" — which this policy implements for any cluster count:
    while every cluster is awake, each gates by its own idle-detect
    window; once *any* cluster of the type is gated, the remaining ones
    stop trusting idle-detect and consult the subset occupancy instead
    (empty → gate immediately; non-empty → stay awake), so at least one
    cluster is ON whenever a warp of the type is waiting.
    """

    name = "coordinated_blackout"

    def __init__(self, actv_count: Callable[[], int],
                 max_domains: int = 8) -> None:
        if max_domains < 1:
            raise ValueError("max_domains must be >= 1")
        self._actv_count = actv_count
        self._max_domains = max_domains
        self._domains: List[GatingDomain] = []

    def register(self, domain: GatingDomain) -> None:
        """Enroll one of the type's cluster domains."""
        if domain in self._domains:
            raise ValueError(f"{domain.name} registered twice")
        if len(self._domains) >= self._max_domains:
            raise ValueError(
                f"coordinated blackout configured for at most "
                f"{self._max_domains} clusters; build one policy per type")
        self._domains.append(domain)

    def peer_of(self, domain: GatingDomain) -> Optional[GatingDomain]:
        """One other cluster of the group (None while partially wired)."""
        for other in self._domains:
            if other is not domain:
                return other
        return None

    def peers_of(self, domain: GatingDomain) -> List[GatingDomain]:
        """All other clusters of the group."""
        return [other for other in self._domains if other is not domain]

    def any_peer_gated(self, domain: GatingDomain, cycle: int) -> bool:
        """True when another cluster of this type has its gate closed."""
        return any(peer.is_gated(cycle)
                   for peer in self.peers_of(domain))

    def want_gate(self, domain: GatingDomain, cycle: int) -> bool:
        if self.any_peer_gated(domain, cycle):
            # A later cluster of the type: idle-detect is disabled; the
            # active-subset occupancy decides alone.
            return self._actv_count() == 0
        return domain.idle_counter >= domain.idle_detect

    def may_wake(self, domain: GatingDomain, cycle: int) -> bool:
        return domain.gated_length(cycle) >= domain.bet

    def idle_cycles_until_gate(self, domain: GatingDomain,
                               cycle: int) -> Optional[float]:
        """Idle cycles until the gate fires (fast-forward planning).

        Both inputs of want_gate (peer gating state, active-subset
        occupancy) are frozen over a fast-forward span: peer
        transitions are real-stepped via next_idle_event and the
        active counts cannot change while every warp is stalled.
        """
        if self.any_peer_gated(domain, cycle):
            return 0 if self._actv_count() == 0 else float("inf")
        return max(0, domain.idle_detect - domain.idle_counter - 1)
