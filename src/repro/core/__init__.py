"""The paper's contribution: GATES, Blackout and Warped Gates.

* :mod:`repro.core.gates` -- the Gating-Aware Two-level Scheduler
  (section 4): per-type active-warp subsets and dynamic priority-based
  issue.
* :mod:`repro.core.blackout` -- Naive and Coordinated Blackout gating
  policies (section 5) plugged into the generic state machine of
  :mod:`repro.power.gating`.
* :mod:`repro.core.adaptive` -- Adaptive idle-detect (section 5.1),
  the epoch-based critical-wakeup feedback controller.
* :mod:`repro.core.spec` -- declarative technique identity: frozen
  :class:`~repro.core.spec.TechniqueSpec` values, the scheduler /
  gating-policy plugin registries, JSON round-trip and ``spec_hash()``.
* :mod:`repro.core.techniques` -- the paper's named techniques
  registered as specs and the ``build_sm`` factory wiring scheduler +
  policies + hooks onto a simulator instance;
  ``Technique.WARPED_GATES`` is the full system.
"""

from repro.core.gates import GatesScheduler
from repro.core.blackout import NaiveBlackoutPolicy, CoordinatedBlackoutPolicy
from repro.core.adaptive import AdaptiveIdleDetect
from repro.core.spec import (
    GatingPolicySpec,
    SchedulerSpec,
    TechniqueSpec,
    as_spec,
    register_gating_policy,
    register_scheduler,
    register_technique,
    technique_names,
    technique_spec,
)
from repro.core.techniques import (
    Technique,
    TechniqueConfig,
    build_sm,
    run_benchmark,
)

__all__ = [
    "GatesScheduler",
    "NaiveBlackoutPolicy",
    "CoordinatedBlackoutPolicy",
    "AdaptiveIdleDetect",
    "GatingPolicySpec",
    "SchedulerSpec",
    "TechniqueSpec",
    "as_spec",
    "register_gating_policy",
    "register_scheduler",
    "register_technique",
    "technique_names",
    "technique_spec",
    "Technique",
    "TechniqueConfig",
    "build_sm",
    "run_benchmark",
]
