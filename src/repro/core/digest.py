"""Canonical serialization + sha256 digests of simulation results.

One digest algorithm, shared by every consumer that needs to say "these
two runs are the same run":

* the golden identity suite (``tests/sim/identity.py``) pins the
  simulator bit-identical across rewrites by recomputing these digests
  against ``tests/sim/golden/identity.json``;
* the simulation service (:mod:`repro.service`) stamps every completed
  job with its result digest, so a client can compare a served result
  against a local ``repro run`` without shipping the whole pickle;
* the CI service smoke test asserts served == direct digests.

The canonical form flattens a :class:`~repro.sim.sm.SimResult` (or a
multi-SM :class:`~repro.sim.gpu.GPUResult`) into JSON-stable primitives
— floats via ``repr`` (the shortest round-trip form, exact for
identical arithmetic, which is precisely what bit-identity means) —
then hashes the sorted-key JSON encoding.  Any observable drift in the
scheduler, scoreboard, stats or gating paths changes the digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json


def _canon(value):
    """Recursively convert a value into JSON-stable primitives."""
    if isinstance(value, dict):
        return {str(_canon(k)): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, float):
        # repr() is the shortest round-trip form — exact for identical
        # arithmetic, which is precisely what bit-identity means here.
        return repr(value)
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canon(dataclasses.asdict(value))
    if hasattr(value, "name"):  # enums (OpClass, ExecUnitKind, ...)
        return value.name
    return str(value)


def _digest(payload_obj) -> str:
    payload = json.dumps(payload_obj, sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_result(result) -> dict:
    """Everything observable about one run, in canonical form."""
    stats = result.stats
    return _canon({
        "kernel_name": result.kernel_name,
        "technique": result.technique,
        "cycles": result.cycles,
        "stats": {
            "cycles": stats.cycles,
            "instructions_issued": stats.instructions_issued,
            "instructions_retired": stats.instructions_retired,
            "fetched": stats.fetched,
            "issued_by_class": {cls.name: n
                                for cls, n in stats.issued_by_class.items()},
            "stalls": dataclasses.asdict(stats.stalls),
            "active_warp_sum": stats.active_warp_sum,
            "active_warp_max": stats.active_warp_max,
            "pending_warp_sum": stats.pending_warp_sum,
            "idle_trackers": {
                name: {"busy": t.busy_cycles, "idle": t.idle_cycles,
                       "histogram": {str(k): v
                                     for k, v in sorted(t.histogram.items())}}
                for name, t in sorted(stats.idle_trackers.items())},
        },
        "memory": result.memory,
        "domain_stats": {name: result.domain_stats[name]
                         for name in sorted(result.domain_stats)},
        "idle_detect_final": result.idle_detect_final,
        "pipeline_issues": result.pipeline_issues,
        "pipeline_lane_work": result.pipeline_lane_work,
        "warp_records": [dataclasses.asdict(r) for r in result.warp_records],
        "metrics": result.metrics,
    })


def result_digest(result) -> str:
    """sha256 over the canonical JSON of one run."""
    return _digest(canonical_result(result))


def canonical_events(events) -> list:
    """An instrumented run's event stream in canonical form, ordered."""
    return [[type(e).__name__, _canon(dataclasses.asdict(e))]
            for e in events]


def event_stream_digest(events) -> str:
    """sha256 over the ordered canonical event stream."""
    return _digest(canonical_events(events))


def canonical_device_result(result) -> dict:
    """Everything observable about one multi-SM run, in canonical form.

    Per-SM results are canonicalised in part order (the aggregation
    order both the serial and engine paths guarantee), so the digest
    pins the whole fan-out, not just the chip-level maxima.
    """
    return _canon({
        "kernel_name": result.kernel_name,
        "technique": result.technique,
        "cycles": result.cycles,
        "total_instructions": result.total_instructions,
        "sm_results": [canonical_result(r) for r in result.sm_results],
    })


def device_result_digest(result) -> str:
    """sha256 over the canonical JSON of one multi-SM run."""
    return _digest(canonical_device_result(result))


__all__ = [
    "canonical_device_result",
    "canonical_events",
    "canonical_result",
    "device_result_digest",
    "event_stream_digest",
    "result_digest",
]
