"""GATES: the Gating-Aware Two-level Scheduler (paper section 4).

GATES extends the baseline two-level scheduler with a *dynamic
priority-based issue scheme*: instructions are ordered

    [highest, LDST, SFU, lowest]      with {highest, lowest} = {INT, FP}

so that integer and floating-point instructions always sit at opposite
ends of the priority.  Issuing clusters of one type while the other
accumulates coalesces the other type's pipeline bubbles into long idle
windows — the raw material power gating needs.

Priority switching (section 4.1):

* INT starts as the highest priority.
* When the highest type's *active-warp subset* empties while the other
  type's subset is non-empty (the INT_ACTV / FP_ACTV counters), the two
  swap ends.
* With Coordinated Blackout, the priority also swaps when both clusters
  of the highest type are in un-wakeable blackout (section 5) — there is
  no point prioritising a type whose units cannot accept work.
* An optional ``max_priority_cycles`` bound forces a swap after a long
  hold, the designer-set anti-starvation threshold the paper mentions;
  the default (None) relies on INT/FP dependencies for liveness, as the
  paper's configuration does.

Within a type, warps issue in the same loose round-robin order as the
baseline, so GATES changes only *type* priority, not fairness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.isa.optypes import OpClass
from repro.obs.events import PriorityFlip
from repro.sim.sched.base import (IssueCandidate, SchedulerView,
                                  WarpScheduler, rotated_ready)

#: Issue-priority class order for each possible highest type — the
#: [highest, LDST, SFU, lowest] ladder of section 4, precomputed once so
#: the per-cycle ordering never rebuilds a rank dict.
_CLASS_ORDER = {
    OpClass.INT: (OpClass.INT, OpClass.LDST, OpClass.SFU, OpClass.FP),
    OpClass.FP: (OpClass.FP, OpClass.LDST, OpClass.SFU, OpClass.INT),
}


class GatesScheduler(WarpScheduler):
    """Gating-aware two-level warp scheduler."""

    name = "gates"
    # ``order`` filters on the ready bit immediately.
    needs_all_candidates = False
    # The dense kernel replicates the rank-bucket rotation natively
    # (and calls ``_update_priority`` every cycle, as ``order`` does).
    dense_order_mode = "gates"

    def __init__(self, n_slots: int = 48,
                 max_priority_cycles: Optional[int] = None,
                 blackout_aware: bool = False) -> None:
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if max_priority_cycles is not None and max_priority_cycles < 1:
            raise ValueError("max_priority_cycles must be >= 1 or None")
        self.n_slots = n_slots
        self.max_priority_cycles = max_priority_cycles
        #: When True, consult the view's per-type blackout status for the
        #: extended priority switch (enabled for Blackout techniques).
        self.blackout_aware = blackout_aware
        # Idle fast-forward: on no-ready cycles ``order`` only runs
        # ``_update_priority``, whose drained/blackout triggers are
        # exposed through ``idle_flip_pending`` (the planner real-steps
        # those cycles).  The timeout trigger depends on wall cycle
        # count, so a timeout-bounded GATES cannot be skipped.
        self.supports_idle_skip = max_priority_cycles is None
        self._highest = OpClass.INT
        self._last_slot = n_slots - 1
        self._priority_since = 0
        self.priority_switches = 0

    # ------------------------------------------------------------------

    @property
    def highest_priority(self) -> OpClass:
        """The CUDA-core type currently holding the top priority slot."""
        return self._highest

    def order(self, cycle: int, candidates: Sequence[IssueCandidate],
              view: SchedulerView) -> List[IssueCandidate]:
        self._update_priority(cycle, view)
        start = (self._last_slot + 1) % self.n_slots
        # Bucket by instruction type, then rotate each bucket.  The
        # buckets preserve input order, so this equals the old stable
        # composite-key sort on (type rank, rotated slot) — radix-style
        # — without per-comparison rank lookups on the hot path.
        by_class: Dict[OpClass, List[IssueCandidate]] = {}
        for cand in candidates:
            if cand.ready:
                cls = cand.inst.op_class
                bucket = by_class.get(cls)
                if bucket is None:
                    by_class[cls] = [cand]
                else:
                    bucket.append(cand)
        if not by_class:
            return []
        ordered: List[IssueCandidate] = []
        for cls in _CLASS_ORDER[self._highest]:
            bucket = by_class.get(cls)
            if bucket:
                ordered.extend(rotated_ready(bucket, start, self.n_slots))
        return ordered

    def on_issue(self, cycle: int, candidate: IssueCandidate) -> None:
        self._last_slot = candidate.slot

    def reset(self) -> None:
        self._highest = OpClass.INT
        self._last_slot = self.n_slots - 1
        self._priority_since = 0
        self.priority_switches = 0

    def idle_flip_pending(self, cycle: int, view: SchedulerView) -> bool:
        """Would ``_update_priority`` flip given ``view``, ignoring the
        timeout trigger?  (``supports_idle_skip`` is False whenever the
        timeout trigger is armed, so it never fires on a skipped span.)"""
        hi = self._highest
        lo = OpClass.FP if hi is OpClass.INT else OpClass.INT
        if view.actv_counts[hi] == 0 and view.actv_counts[lo] > 0:
            return True
        return (self.blackout_aware and view.type_in_blackout[hi]
                and not view.type_in_blackout[lo])

    # ------------------------------------------------------------------
    # priority logic
    # ------------------------------------------------------------------

    def _update_priority(self, cycle: int, view: SchedulerView) -> None:
        hi = self._highest
        lo = OpClass.FP if hi is OpClass.INT else OpClass.INT
        reason = None
        if view.actv_counts[hi] == 0 and view.actv_counts[lo] > 0:
            # The highest type's active subset drained: hand the top
            # slot to the other type (dynamic priority switching).
            reason = "drained"
        elif (self.blackout_aware and view.type_in_blackout[hi]
              and not view.type_in_blackout[lo]):
            # Coordinated Blackout extension: both clusters of the
            # highest type are asleep past waking, so let the other
            # type's warps drain meanwhile.
            reason = "blackout"
        elif (self.max_priority_cycles is not None
              and cycle - self._priority_since >= self.max_priority_cycles
              and view.actv_counts[lo] > 0):
            # Designer-set anti-starvation bound.
            reason = "timeout"
        if reason is not None:
            self._highest = lo
            self._priority_since = cycle
            self.priority_switches += 1
            if self.bus.enabled:
                self.bus.publish(PriorityFlip(cycle, lo.name, reason))
