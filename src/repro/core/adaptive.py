"""Adaptive idle-detect (paper section 5.1).

Blackout can hurt the rare workload whose ready instructions pile up
behind blacked-out units.  Adaptive idle-detect infers that situation
from *critical wakeups* — wakeups granted at the exact cycle a blackout
expires, meaning an instruction was already waiting — and regulates the
idle-detect window per unit type:

* time is split into epochs (1000 cycles);
* more than ``threshold`` (5) critical wakeups in an epoch -> increment
  the type's idle-detect window (gate more conservatively), reacting
  quickly to performance-critical phases;
* only after ``decay_epochs`` (4) consecutive quiet epochs -> decrement,
  decaying slowly back toward aggressive gating;
* the window is bounded to [5, 10] cycles, which the paper found to
  trade off better than unbounded adaptation.

INT and FP adapt independently, each driven by the summed critical
wakeups of its (two) cluster domains, and the adjusted window is written
into every cluster of the type (the shared idle-detect register of
Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.obs.bus import NULL_BUS, EventBus
from repro.obs.events import EpochAdapt
from repro.power.gating import GatingDomain


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning constants of the epoch controller (paper defaults)."""

    epoch_cycles: int = 1000
    threshold: int = 5
    decay_epochs: int = 4
    min_idle_detect: int = 5
    max_idle_detect: int = 10

    def __post_init__(self) -> None:
        if self.epoch_cycles < 1:
            raise ValueError("epoch_cycles must be >= 1")
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")
        if self.decay_epochs < 1:
            raise ValueError("decay_epochs must be >= 1")
        if not 0 <= self.min_idle_detect <= self.max_idle_detect:
            raise ValueError("need 0 <= min_idle_detect <= max_idle_detect")


class AdaptiveIdleDetect:
    """Epoch-based idle-detect regulator for one unit type.

    Plugs into the SM as a per-cycle hook; one instance per unit type
    (INT, FP), each owning that type's cluster domains.
    """

    def __init__(self, domains: Sequence[GatingDomain],
                 config: AdaptiveConfig = AdaptiveConfig(),
                 bus: Optional[EventBus] = None,
                 label: Optional[str] = None) -> None:
        if not domains:
            raise ValueError("adaptive control needs at least one domain")
        self.domains = list(domains)
        self.config = config
        #: Observability bus (the SM's, when wired by ``build_sm``).
        self.bus = bus if bus is not None else NULL_BUS
        #: Unit-type tag carried by EpochAdapt events ("INT", "FP", ...);
        #: defaults to the first domain's name stripped of cluster digits.
        self.label = label or self.domains[0].name.rstrip("0123456789")
        self._last_seen_critical = 0
        self._quiet_epochs = 0
        self._next_epoch_end = config.epoch_cycles
        #: (epoch index, critical wakeups, resulting idle-detect) log,
        #: used by the adaptive-dynamics example and tests.
        self.history: List[Tuple[int, int, int]] = []
        self._epoch_index = 0
        # Start inside the bounded range.
        start = min(max(self.domains[0].idle_detect,
                        config.min_idle_detect), config.max_idle_detect)
        self._apply(start)

    @property
    def idle_detect(self) -> int:
        """The type's current idle-detect window."""
        return self.domains[0].idle_detect

    def on_cycle(self, cycle: int) -> None:
        """SM hook: close the epoch when its last cycle has run."""
        if cycle + 1 < self._next_epoch_end:
            return
        self._next_epoch_end += self.config.epoch_cycles
        self._close_epoch(cycle)

    def idle_next_event(self, cycle: int) -> int:
        """Fast-forward bound: the epoch-closing cycle must be real-
        stepped so ``_close_epoch`` runs at exactly the serial cycle."""
        return self._next_epoch_end - 1

    # ------------------------------------------------------------------

    def _close_epoch(self, cycle: int) -> None:
        total_critical = sum(d.stats.critical_wakeups for d in self.domains)
        this_epoch = total_critical - self._last_seen_critical
        self._last_seen_critical = total_critical
        cfg = self.config
        value = self.idle_detect
        if this_epoch > cfg.threshold:
            value = min(value + 1, cfg.max_idle_detect)
            self._quiet_epochs = 0
        else:
            self._quiet_epochs += 1
            if self._quiet_epochs >= cfg.decay_epochs:
                value = max(value - 1, cfg.min_idle_detect)
                self._quiet_epochs = 0
        self._apply(value)
        self.history.append((self._epoch_index, this_epoch, value))
        if self.bus.enabled:
            self.bus.publish(EpochAdapt(
                cycle, self.label, self._epoch_index, this_epoch, value))
        self._epoch_index += 1

    def _apply(self, value: int) -> None:
        for domain in self.domains:
            domain.idle_detect = value
