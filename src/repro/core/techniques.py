"""Technique registry and simulator wiring.

Names follow the paper's evaluation nomenclature (section 7.2):

* ``BASELINE``          — two-level scheduler, no power gating.
* ``CONV_PG``           — two-level scheduler + conventional power gating.
* ``GATES``             — GATES scheduler + conventional power gating.
* ``NAIVE_BLACKOUT``    — GATES + Naive Blackout.
* ``COORD_BLACKOUT``    — GATES + Coordinated Blackout.
* ``WARPED_GATES``      — GATES + Coordinated Blackout + Adaptive
  idle-detect: the full system.

Plus ablations the paper's design discussion motivates but does not name:

* ``GATES_NO_PG``       — GATES scheduling alone (performance isolation).
* ``BLACKOUT_NO_GATES`` — Naive Blackout under the baseline scheduler
  (how much of Blackout's win needs GATES' coalescing?).
* ``LRR_CONV_PG``       — conventional gating under a single-level
  round-robin scheduler (pre-two-level reference point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.adaptive import AdaptiveConfig, AdaptiveIdleDetect
from repro.core.blackout import CoordinatedBlackoutPolicy, NaiveBlackoutPolicy
from repro.core.gates import GatesScheduler
from repro.isa.optypes import OpClass, UNIT_FOR_OP_CLASS
from repro.isa.trace import KernelTrace
from repro.obs.bus import EventBus
from repro.power.gating import ConventionalPolicy, GatingDomain, GatingPolicy
from repro.power.params import GatingParams
from repro.sim.config import SMConfig
from repro.sim.sched.ccws import CCWSScheduler, MonitorDecayHook
from repro.sim.sched.fetch_group import FetchGroupScheduler
from repro.sim.sched.two_level import (
    LooseRoundRobinScheduler,
    TwoLevelScheduler,
)
from repro.sim.sm import SimResult, StreamingMultiprocessor
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile


class Technique(enum.Enum):
    """Scheduling / power-gating configurations under evaluation."""

    BASELINE = "baseline"
    CONV_PG = "conv_pg"
    GATES = "gates"
    NAIVE_BLACKOUT = "naive_blackout"
    COORD_BLACKOUT = "coord_blackout"
    WARPED_GATES = "warped_gates"
    # ablations
    GATES_NO_PG = "gates_no_pg"
    BLACKOUT_NO_GATES = "blackout_no_gates"
    LRR_CONV_PG = "lrr_conv_pg"
    FETCH_GROUP_CONV_PG = "fetch_group_conv_pg"
    CCWS_CONV_PG = "ccws_conv_pg"


#: The five techniques of Figures 9 and 10, in the paper's legend order.
PAPER_TECHNIQUES = (
    Technique.CONV_PG,
    Technique.GATES,
    Technique.NAIVE_BLACKOUT,
    Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES,
)

_GATES_SCHEDULED = {
    Technique.GATES,
    Technique.NAIVE_BLACKOUT,
    Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES,
    Technique.GATES_NO_PG,
}

_GATED = {
    Technique.CONV_PG,
    Technique.GATES,
    Technique.NAIVE_BLACKOUT,
    Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES,
    Technique.BLACKOUT_NO_GATES,
    Technique.LRR_CONV_PG,
    Technique.FETCH_GROUP_CONV_PG,
    Technique.CCWS_CONV_PG,
}

_BLACKOUT_AWARE = {Technique.COORD_BLACKOUT, Technique.WARPED_GATES}


@dataclass(frozen=True)
class TechniqueConfig:
    """All knobs of one experimental configuration."""

    technique: Technique = Technique.WARPED_GATES
    gating: GatingParams = field(default_factory=GatingParams)
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    max_priority_cycles: Optional[int] = None
    #: Also gate the SFU group (conventionally).  Off by default: the
    #: paper leaves SFUs to conventional gating and reports INT/FP only.
    gate_sfu: bool = False

    @property
    def label(self) -> str:
        """Display name used in experiment records and reports."""
        return self.technique.value


def build_sm(kernel, config: TechniqueConfig,
             sm_config: Optional[SMConfig] = None,
             dram_latency: Optional[int] = None,
             kernel_gap_cycles: int = 0,
             bus: Optional["EventBus"] = None,
             fast_forward: bool = False) -> StreamingMultiprocessor:
    """Assemble an SM wired for one technique.

    ``kernel`` is a :class:`KernelTrace` or a sequence of them (run
    back to back with barriers and ``kernel_gap_cycles`` of idle gap).
    The wiring mirrors Figure 7: the scheduler choice, the per-cluster
    gating domains with their policies, and (for Warped Gates) the
    per-type adaptive idle-detect hooks.

    ``bus`` is an optional observability bus shared by the SM, its
    gating domains, the scheduler and the epoch hooks; omitted, the SM
    creates its own disabled one (reachable as ``sm.bus``).

    ``fast_forward`` enables the idle-cycle fast-forward
    (:mod:`repro.sim.fastforward`) — bit-identical results, skipping
    provably-quiet idle spans.  Off by default so direct ``build_sm``
    users (golden tests, examples) exercise the plain cycle loop; the
    parallel engine turns it on.
    """
    sm_config = sm_config or SMConfig()
    technique = config.technique

    kernels = [kernel] if isinstance(kernel, KernelTrace) else list(kernel)
    n_slots = min([sm_config.max_resident_warps]
                  + [k.max_resident_warps for k in kernels])
    if technique in _GATES_SCHEDULED:
        scheduler = GatesScheduler(
            n_slots=n_slots,
            max_priority_cycles=config.max_priority_cycles,
            blackout_aware=technique in _BLACKOUT_AWARE)
    elif technique is Technique.LRR_CONV_PG:
        scheduler = LooseRoundRobinScheduler(n_slots=n_slots)
    elif technique is Technique.FETCH_GROUP_CONV_PG:
        scheduler = FetchGroupScheduler(n_slots=n_slots)
    elif technique is Technique.CCWS_CONV_PG:
        scheduler = CCWSScheduler(n_slots=n_slots)
    else:
        scheduler = TwoLevelScheduler(n_slots=n_slots)

    sm = StreamingMultiprocessor(kernel, sm_config, scheduler,
                                 dram_latency=dram_latency,
                                 technique=technique.value,
                                 kernel_gap_cycles=kernel_gap_cycles,
                                 bus=bus, fast_forward=fast_forward)
    if isinstance(scheduler, CCWSScheduler):
        # Wire the lost-locality feedback loop: the memory path feeds
        # the monitor, a cycle hook decays its scores.
        sm.memory.attach_locality_monitor(scheduler.monitor)
        sm.add_hook(MonitorDecayHook(scheduler.monitor))
    if technique not in _GATED:
        return sm

    _attach_cuda_core_domains(sm, config)
    if config.gate_sfu:
        sfu_domain = GatingDomain("SFU", config.gating, ConventionalPolicy())
        sm.attach_domain("SFU", sfu_domain)
    return sm


def _attach_cuda_core_domains(sm: StreamingMultiprocessor,
                              config: TechniqueConfig) -> None:
    technique = config.technique
    for cls in (OpClass.INT, OpClass.FP):
        pipes = sm.pipelines_of(UNIT_FOR_OP_CLASS[cls])
        if technique in (Technique.COORD_BLACKOUT, Technique.WARPED_GATES):
            policy: GatingPolicy = CoordinatedBlackoutPolicy(
                actv_count=_actv_reader(sm, cls))
        elif technique in (Technique.NAIVE_BLACKOUT,
                           Technique.BLACKOUT_NO_GATES):
            policy = NaiveBlackoutPolicy()
        else:
            policy = ConventionalPolicy()

        domains: List[GatingDomain] = []
        for pipe in pipes:
            domain = GatingDomain(pipe.name, config.gating, policy)
            if isinstance(policy, CoordinatedBlackoutPolicy):
                policy.register(domain)
            sm.attach_domain(pipe.name, domain)
            domains.append(domain)

        if technique is Technique.WARPED_GATES:
            sm.add_hook(AdaptiveIdleDetect(domains, config.adaptive,
                                           bus=sm.bus, label=cls.name))


def _actv_reader(sm: StreamingMultiprocessor, cls: OpClass):
    """Late-bound reader of the SM's per-type ACTV counter."""
    def read() -> int:
        return sm.actv_counts[cls]
    return read


def run_benchmark(name: str, config: TechniqueConfig,
                  sm_config: Optional[SMConfig] = None,
                  seed: int = 0, scale: float = 1.0,
                  bus: Optional["EventBus"] = None,
                  fast_forward: bool = False) -> SimResult:
    """Build, wire and run one benchmark under one technique.

    Uses the benchmark profile's DRAM latency; the trace for a given
    ``(name, seed, scale)`` is identical across techniques, which is what
    makes the paper's normalised comparisons meaningful.
    """
    kernel = build_kernel(name, seed=seed, scale=scale)
    profile = get_profile(name)
    sm = build_sm(kernel, config, sm_config=sm_config,
                  dram_latency=profile.dram_latency, bus=bus,
                  fast_forward=fast_forward)
    return sm.run()
