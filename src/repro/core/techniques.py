"""Technique registry and simulator wiring.

Technique identity lives in :mod:`repro.core.spec`: a
:class:`~repro.core.spec.TechniqueSpec` names a registered scheduler, a
registered gating policy, an optional adaptive idle-detect config and
the gating/SM parameter overrides.  This module registers the paper's
named techniques (plus the design-discussion ablations) as specs and
keeps the original closed :class:`Technique` enum as *named aliases*
into that registry — every ``Technique.X`` / ``.value`` call site keeps
working, while arbitrary scheduler x gating x adaptive compositions run
through the same :func:`build_sm` without touching core code.

Names follow the paper's evaluation nomenclature (section 7.2):

* ``BASELINE``          — two-level scheduler, no power gating.
* ``CONV_PG``           — two-level scheduler + conventional power gating.
* ``GATES``             — GATES scheduler + conventional power gating.
* ``NAIVE_BLACKOUT``    — GATES + Naive Blackout.
* ``COORD_BLACKOUT``    — GATES + Coordinated Blackout.
* ``WARPED_GATES``      — GATES + Coordinated Blackout + Adaptive
  idle-detect: the full system.

Plus ablations the paper's design discussion motivates but does not name:

* ``GATES_NO_PG``       — GATES scheduling alone (performance isolation).
* ``BLACKOUT_NO_GATES`` — Naive Blackout under the baseline scheduler
  (how much of Blackout's win needs GATES' coalescing?).
* ``LRR_CONV_PG``       — conventional gating under a single-level
  round-robin scheduler (pre-two-level reference point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.adaptive import AdaptiveConfig, AdaptiveIdleDetect
from repro.core.spec import (
    GatingPolicySpec,
    PolicyContext,
    SchedulerSpec,
    TechniqueSpec,
    as_spec,
    gating_policy_plugin,
    register_technique,
    scheduler_plugin,
    technique_spec,
)
from repro.isa.optypes import OpClass, UNIT_FOR_OP_CLASS
from repro.isa.trace import KernelTrace
from repro.obs.bus import EventBus
from repro.power.gating import ConventionalPolicy, GatingDomain
from repro.power.params import GatingParams
from repro.sim.config import SMConfig
from repro.sim.sm import SimResult, StreamingMultiprocessor
from repro.workloads.registry import build_kernel
from repro.workloads.specs import get_profile


class Technique(enum.Enum):
    """Scheduling / power-gating configurations under evaluation.

    Each member's ``value`` is the name of a registered
    :class:`~repro.core.spec.TechniqueSpec`; ``Technique.X.spec``
    resolves it.
    """

    BASELINE = "baseline"
    CONV_PG = "conv_pg"
    GATES = "gates"
    NAIVE_BLACKOUT = "naive_blackout"
    COORD_BLACKOUT = "coord_blackout"
    WARPED_GATES = "warped_gates"
    # ablations
    GATES_NO_PG = "gates_no_pg"
    BLACKOUT_NO_GATES = "blackout_no_gates"
    LRR_CONV_PG = "lrr_conv_pg"
    FETCH_GROUP_CONV_PG = "fetch_group_conv_pg"
    CCWS_CONV_PG = "ccws_conv_pg"

    @property
    def spec(self) -> TechniqueSpec:
        """The registered spec this enum member aliases."""
        return technique_spec(self.value)


#: The five techniques of Figures 9 and 10, in the paper's legend order.
PAPER_TECHNIQUES = (
    Technique.CONV_PG,
    Technique.GATES,
    Technique.NAIVE_BLACKOUT,
    Technique.COORD_BLACKOUT,
    Technique.WARPED_GATES,
)


# ----------------------------------------------------------------------
# builtin technique registration (the enum's registry backing)
# ----------------------------------------------------------------------

_TWO_LEVEL = SchedulerSpec("two_level")
_GATES_SCHED = SchedulerSpec("gates")
_NO_PG = GatingPolicySpec("none")
_CONV = GatingPolicySpec("conventional")
_NAIVE = GatingPolicySpec("naive_blackout")
_COORD = GatingPolicySpec("coordinated_blackout")

for _spec, _group in (
    (TechniqueSpec(
        "baseline", scheduler=_TWO_LEVEL, gating_policy=_NO_PG,
        description="two-level scheduler, no power gating"), "paper"),
    (TechniqueSpec(
        "conv_pg", scheduler=_TWO_LEVEL, gating_policy=_CONV,
        description="two-level scheduler + conventional power gating"),
     "paper"),
    (TechniqueSpec(
        "gates", scheduler=_GATES_SCHED, gating_policy=_CONV,
        description="GATES scheduler + conventional power gating"),
     "paper"),
    (TechniqueSpec(
        "naive_blackout", scheduler=_GATES_SCHED, gating_policy=_NAIVE,
        description="GATES + Naive Blackout"), "paper"),
    (TechniqueSpec(
        "coord_blackout", scheduler=_GATES_SCHED, gating_policy=_COORD,
        description="GATES + Coordinated Blackout"), "paper"),
    (TechniqueSpec(
        "warped_gates", scheduler=_GATES_SCHED, gating_policy=_COORD,
        adaptive=AdaptiveConfig(),
        description="GATES + Coordinated Blackout + adaptive idle-detect "
                    "(the full system)"), "paper"),
    (TechniqueSpec(
        "gates_no_pg", scheduler=_GATES_SCHED, gating_policy=_NO_PG,
        description="GATES scheduling alone (performance isolation)"),
     "ablation"),
    (TechniqueSpec(
        "blackout_no_gates", scheduler=_TWO_LEVEL, gating_policy=_NAIVE,
        description="Naive Blackout under the baseline scheduler"),
     "ablation"),
    (TechniqueSpec(
        "lrr_conv_pg", scheduler=SchedulerSpec("lrr"), gating_policy=_CONV,
        description="conventional gating under single-level round-robin"),
     "ablation"),
    (TechniqueSpec(
        "fetch_group_conv_pg", scheduler=SchedulerSpec("fetch_group"),
        gating_policy=_CONV,
        description="conventional gating under fetch-group scheduling"),
     "ablation"),
    (TechniqueSpec(
        "ccws_conv_pg", scheduler=SchedulerSpec("ccws"), gating_policy=_CONV,
        description="conventional gating under CCWS locality throttling"),
     "ablation"),
):
    register_technique(_spec, group=_group, allow_replace=True)
del _spec, _group


@dataclass(frozen=True)
class TechniqueConfig:
    """All knobs of one experimental configuration (enum-flavoured).

    The historical construction path: an enum member plus overrides.
    :meth:`to_spec` lowers it onto the registered spec — new code can
    build :class:`~repro.core.spec.TechniqueSpec` values directly.
    """

    technique: Technique = Technique.WARPED_GATES
    gating: GatingParams = field(default_factory=GatingParams)
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    max_priority_cycles: Optional[int] = None
    #: Also gate the SFU group (conventionally).  Off by default: the
    #: paper leaves SFUs to conventional gating and reports INT/FP only.
    gate_sfu: bool = False

    @property
    def label(self) -> str:
        """Display name used in experiment records and reports."""
        return self.technique.value

    def to_spec(self) -> TechniqueSpec:
        """The registered spec with this config's overrides applied."""
        from dataclasses import replace

        spec = technique_spec(self.technique.value)
        scheduler = spec.scheduler
        if (self.max_priority_cycles is not None
                and "max_priority_cycles"
                in scheduler_plugin(scheduler.name).params):
            params = scheduler.param_dict()
            params["max_priority_cycles"] = self.max_priority_cycles
            scheduler = SchedulerSpec(scheduler.name, params)
        return replace(
            spec,
            scheduler=scheduler,
            gating=self.gating,
            # Techniques without adaptation ignore the adaptive field,
            # exactly as the pre-spec wiring did.
            adaptive=self.adaptive if spec.adaptive is not None else None,
            gate_sfu=self.gate_sfu)


def build_sm(kernel, config,
             sm_config: Optional[SMConfig] = None,
             dram_latency: Optional[int] = None,
             kernel_gap_cycles: int = 0,
             bus: Optional["EventBus"] = None,
             fast_forward: bool = False,
             dense_kernel: Optional[bool] = None) -> StreamingMultiprocessor:
    """Assemble an SM wired for one technique.

    ``config`` is anything :func:`repro.core.spec.as_spec` resolves: a
    :class:`TechniqueSpec`, a registered technique name, a
    :class:`Technique` member or a :class:`TechniqueConfig`.  ``kernel``
    is a :class:`KernelTrace` or a sequence of them (run back to back
    with barriers and ``kernel_gap_cycles`` of idle gap).  The wiring
    mirrors Figure 7: the scheduler plugin, the per-cluster gating
    domains with their policy, and — when the spec enables adaptation —
    the per-type adaptive idle-detect hooks.

    ``bus`` is an optional observability bus shared by the SM, its
    gating domains, the scheduler and the epoch hooks; omitted, the SM
    creates its own disabled one (reachable as ``sm.bus``).

    ``fast_forward`` enables the idle-cycle fast-forward
    (:mod:`repro.sim.fastforward`) — bit-identical results, skipping
    provably-quiet idle spans.  Off by default so direct ``build_sm``
    users (golden tests, examples) exercise the plain cycle loop; the
    parallel engine turns it on.

    ``dense_kernel`` selects the dense-step kernel policy
    (:mod:`repro.sim.kernel`): True forces the whole run through the
    SoA kernel (bit-identical; the kernel golden digests pin it), False
    forbids the fast-forward planner from handing over dense windows,
    None (default) leaves the hand-over adaptive.
    """
    spec = as_spec(config)
    sm_config = spec.apply_sm_overrides(sm_config or SMConfig())

    kernels = [kernel] if isinstance(kernel, KernelTrace) else list(kernel)
    n_slots = min([sm_config.max_resident_warps]
                  + [k.max_resident_warps for k in kernels])
    sched_plugin = scheduler_plugin(spec.scheduler.name)
    scheduler = sched_plugin.build(n_slots, spec.scheduler,
                                   blackout_aware=spec.blackout_aware)

    sm = StreamingMultiprocessor(kernel, sm_config, scheduler,
                                 dram_latency=dram_latency,
                                 technique=spec.name,
                                 kernel_gap_cycles=kernel_gap_cycles,
                                 bus=bus, fast_forward=fast_forward,
                                 dense_kernel=dense_kernel)
    if sched_plugin.attach is not None:
        sched_plugin.attach(sm, scheduler)
    if not spec.gated:
        return sm

    _attach_cuda_core_domains(sm, spec)
    if spec.gate_sfu:
        sfu_domain = GatingDomain("SFU", spec.gating, ConventionalPolicy())
        sm.attach_domain("SFU", sfu_domain)
    return sm


def _attach_cuda_core_domains(sm: StreamingMultiprocessor,
                              spec: TechniqueSpec) -> None:
    plugin = gating_policy_plugin(spec.gating_policy.name)
    for cls in (OpClass.INT, OpClass.FP):
        pipes = sm.pipelines_of(UNIT_FOR_OP_CLASS[cls])
        # One policy instance per unit type, shared by the type's
        # cluster domains (coordinated policies require it; stateless
        # ones don't care).
        policy = plugin.build(PolicyContext(sm=sm, op_class=cls),
                              spec.gating_policy)

        domains: List[GatingDomain] = []
        for pipe in pipes:
            domain = GatingDomain(pipe.name, spec.gating, policy)
            if plugin.wire is not None:
                plugin.wire(policy, domain)
            sm.attach_domain(pipe.name, domain)
            domains.append(domain)

        if spec.adaptive is not None:
            sm.add_hook(AdaptiveIdleDetect(domains, spec.adaptive,
                                           bus=sm.bus, label=cls.name))


def run_benchmark(name: str, config,
                  sm_config: Optional[SMConfig] = None,
                  seed: int = 0, scale: float = 1.0,
                  bus: Optional["EventBus"] = None,
                  fast_forward: bool = False,
                  dense_kernel: Optional[bool] = None) -> SimResult:
    """Build, wire and run one benchmark under one technique.

    Uses the benchmark profile's DRAM latency; the trace for a given
    ``(name, seed, scale)`` is identical across techniques, which is what
    makes the paper's normalised comparisons meaningful.
    """
    kernel = build_kernel(name, seed=seed, scale=scale)
    profile = get_profile(name)
    sm = build_sm(kernel, config, sm_config=sm_config,
                  dram_latency=profile.dram_latency, bus=bus,
                  fast_forward=fast_forward, dense_kernel=dense_kernel)
    return sm.run()
