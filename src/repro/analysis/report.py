"""Plain-text table rendering for harness and benchmark output.

Every figure-reproduction bench prints the same rows/series the paper's
figure reports; these helpers keep that output aligned and uniform
without pulling in a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_fraction(value: float, digits: int = 1) -> str:
    """Render a fraction as a signed percentage string (``-3.2%``)."""
    return f"{100.0 * value:+.{digits}f}%"


def _render_cell(value: Cell, width: int, numeric: bool) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width) if numeric else text.ljust(width)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned monospace table.

    Numeric columns (every value int/float) right-align; text columns
    left-align.  Floats render with three decimals.
    """
    materialised: List[List[Cell]] = [list(row) for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
    n_cols = len(headers)
    numeric = [all(isinstance(row[c], (int, float)) for row in materialised)
               if materialised else False
               for c in range(n_cols)]
    widths = []
    for c in range(n_cols):
        cells = [_render_cell(row[c], 0, numeric[c]).strip()
                 for row in materialised]
        widths.append(max([len(headers[c])] + [len(x) for x in cells]))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.rjust(widths[c]) if numeric[c]
                            else h.ljust(widths[c])
                            for c, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(_render_cell(row[c], widths[c], numeric[c])
                               for c in range(n_cols)))
    return "\n".join(lines)


def format_mapping_table(title: str, mapping: Mapping[str, Cell]) -> str:
    """Two-column key/value table (for scalar summaries)."""
    return format_table(["metric", "value"],
                        [(k, v) for k, v in mapping.items()],
                        title=title)
