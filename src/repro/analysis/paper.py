"""Paper-reported reference values, in one place.

Every number the paper states in its evaluation text (the figures
themselves are bar charts; the text quotes these summaries) lives here
so benches, tests and EXPERIMENTS.md all compare against the same
constants instead of scattering magic numbers.

Sources are the section references in the comments; all values are from
Abdel-Majeed, Wong, Annavaram, "Warped Gates", MICRO-46 (2013).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Figure 9 (section 7.3): suite-average static energy savings.
# ---------------------------------------------------------------------------

#: technique -> fraction of INT-unit static energy saved.
FIG9_INT_SAVINGS: Dict[str, float] = {
    "conv_pg": 0.201,
    "gates": 0.215,
    "naive_blackout": 0.278,
    "coord_blackout": 0.315,
    "warped_gates": 0.316,
}

#: technique -> fraction of FP-unit static energy saved (integer-only
#: benchmarks excluded).
FIG9_FP_SAVINGS: Dict[str, float] = {
    "conv_pg": 0.314,
    "gates": 0.352,
    "naive_blackout": 0.411,
    "coord_blackout": 0.456,
    "warped_gates": 0.465,
}

# ---------------------------------------------------------------------------
# Figure 10 (section 7.4): normalised performance (geomean).
# ---------------------------------------------------------------------------

FIG10_PERFORMANCE: Dict[str, float] = {
    "conv_pg": 0.99,
    "gates": 0.99,
    "naive_blackout": 0.95,
    "coord_blackout": 0.98,
    "warped_gates": 0.99,
}

# ---------------------------------------------------------------------------
# Figure 3 (sections 3.1 / 4.1 / 5): hotspot idle-period regions
# (< idle-detect, idle-detect..idle-detect+BET, beyond).
# ---------------------------------------------------------------------------

FIG3_REGIONS: Dict[str, Tuple[float, float, float]] = {
    "conv_pg": (0.834, 0.101, 0.065),
    "gates": (0.590, 0.221, 0.189),
    "blackout": (0.543, 0.000, 0.457),
}

# ---------------------------------------------------------------------------
# Figure 8 (section 7.2).
# ---------------------------------------------------------------------------

#: Geomean compensated-state residency (%/100) per technique (Fig. 8b).
FIG8B_COMPENSATED: Dict[str, float] = {
    "conv_pg": 0.209,
    "gates": 0.226,
    "warped_gates": 0.335,
}

#: Wakeups relative to conventional gating (Fig. 8c text).
FIG8C_WAKEUPS: Dict[str, float] = {
    "coord_blackout": 0.74,   # "decreases the number of wakeups by 26%"
    "warped_gates": 0.54,     # "further brings down ... by 46%"
}

# ---------------------------------------------------------------------------
# Section 7.6 sensitivity quotes.
# ---------------------------------------------------------------------------

#: At BET 19: (conv INT savings, warped INT savings) — "nearly 2x".
SENSITIVITY_BET19: Tuple[float, float] = (0.17, 0.33)

#: At wakeup 9: conv saves 6%/10% INT/FP with ~10% perf loss; warped
#: sustains 33%/48% with ~3% loss.
SENSITIVITY_WAKEUP9 = {
    "conv_pg": {"int": 0.06, "fp": 0.10, "perf": 0.90},
    "warped_gates": {"int": 0.33, "fp": 0.48, "perf": 0.97},
}

# ---------------------------------------------------------------------------
# Section 7.3 chip-level estimate and section 7.5 overhead.
# ---------------------------------------------------------------------------

#: (low, high) fraction of total on-chip power saved at 33% leakage.
CHIP_SAVINGS_AT_33PCT: Tuple[float, float] = (0.0162, 0.0243)
#: Same at a projected 50% leakage share.
CHIP_SAVINGS_AT_50PCT: Tuple[float, float] = (0.0246, 0.0369)

#: Section 7.5 synthesis results.
OVERHEAD_AREA_UM2 = 1210.8
OVERHEAD_AREA_PCT = 0.003
OVERHEAD_DYNAMIC_PCT = 0.08
OVERHEAD_LEAKAGE_PCT = 0.0007

# ---------------------------------------------------------------------------
# Evaluation setup (section 7.1) and background constants (section 2.2).
# ---------------------------------------------------------------------------

N_BENCHMARKS = 18
N_SMS = 15
CORE_CLOCK_MHZ = 700
WARPS_PER_SM = 48
DEFAULT_IDLE_DETECT = 5
DEFAULT_BET = 14
DEFAULT_WAKEUP = 3
BET_RANGE_EXPLORED = (9, 14, 19, 24)   # from Hu et al. [13]
ADAPTIVE_EPOCH_CYCLES = 1000
ADAPTIVE_THRESHOLD = 5
ADAPTIVE_BOUNDS = (5, 10)

#: Figure 6: benchmarks with strong critical-wakeup correlation.
FIG6_STRONG_CORRELATION_COUNT = 11


# ---------------------------------------------------------------------------
# Tolerance bands for the artifact pipeline's headline checks.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Tolerance:
    """Absolute tolerance band around a paper-reported headline.

    ``warn`` and ``fail`` are absolute deviations in the metric's own
    units (savings fractions, normalised performance, percent points
    for the section 7.5 rows).  ``|measured - paper| <= warn`` is PASS,
    ``<= fail`` is WARN, beyond is FAIL — the verdict ``repro figures
    --check`` reports per metric and gates CI on.
    """

    warn: float
    fail: float

    def __post_init__(self) -> None:
        if self.warn < 0 or self.fail < 0:
            raise ValueError("tolerances must be >= 0")
        if self.warn > self.fail:
            raise ValueError("warn tolerance must not exceed fail")


#: Tolerance band per headline-metric group.  The bands are set from
#: the full-scale deviations EXPERIMENTS.md documents: the warn band
#: covers the known, explained model gap (synthetic traces vs the
#: authors' GPGPU-Sim testbed); the fail band is the regression gate —
#: a change pushing a metric past it has moved our *measured* science,
#: not just re-exposed the documented calibration gap.
TOLERANCES: Dict[str, Tolerance] = {
    # Figure 9 suite averages: largest known gap 5.6pp INT (naive
    # blackout), 7.1pp FP (warped gates).
    "fig9_int": Tolerance(warn=0.06, fail=0.10),
    "fig9_fp": Tolerance(warn=0.08, fail=0.12),
    # Figure 10 geomeans track the paper within 2pp.
    "fig10": Tolerance(warn=0.03, fail=0.06),
    # Figure 8b is the one direction-deviating metric (EXPERIMENTS.md
    # deviation 2): warped gates measures 13.9% vs the paper's 33.5%.
    "fig8b": Tolerance(warn=0.10, fail=0.25),
    # Figure 8c wakeup ratios: coord 1.02 vs 0.74, warped 0.93 vs 0.54.
    "fig8c": Tolerance(warn=0.30, fail=0.50),
    # Figure 3 hotspot region fractions: largest gap 14.6pp (GATES
    # wasted region).
    "fig3": Tolerance(warn=0.16, fail=0.30),
    # Section 7.3 chip estimate: the paper states ranges; the band is
    # the allowed distance *outside* the quoted range.
    "sec73": Tolerance(warn=0.005, fail=0.015),
    # Section 7.5 synthesis table: the area is reproduced from the
    # paper's own constants (exact); the percent rows differ only by
    # the paper's rounding.
    "sec75_area_um2": Tolerance(warn=5.0, fail=50.0),
    "sec75_pct": Tolerance(warn=0.01, fail=0.05),
}


@dataclass(frozen=True)
class HeadlineClaim:
    """The abstract's headline, as a checkable record."""

    int_savings: float = 0.316
    fp_savings: float = 0.465
    performance_overhead: float = 0.01
    area_overhead: float = 0.01
    savings_ratio_vs_conventional: float = 1.5  # "~1.5x more"


HEADLINE = HeadlineClaim()
