"""Correlation analysis for Figure 6.

The Adaptive idle-detect mechanism rests on one empirical claim: the
number of *critical wakeups* per 1000 cycles is a good proxy for the
performance lost to Blackout.  Figure 6 backs the claim with a Pearson
correlation per benchmark, computed across a sweep of static idle-detect
values (0-10): eleven benchmarks correlate above r = 0.9, while the
benchmarks that never lose performance show weak correlation (there is
nothing to correlate against).

We implement Pearson's r directly (no scipy dependency in the library
proper; the test suite cross-checks against scipy).
"""

from __future__ import annotations

import math
from typing import Sequence


def pearson_r(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Returns 0.0 for degenerate inputs (fewer than two points or zero
    variance on either axis) instead of raising: in the Figure 6 sweep a
    benchmark whose runtime never changes has no defined correlation,
    and the paper plots those as near-zero.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sxx = syy = 0.0
    for x, y in zip(xs, ys):
        dx = x - mean_x
        dy = y - mean_y
        cov += dx * dy
        sxx += dx * dx
        syy += dy * dy
    if sxx == 0.0 or syy == 0.0:
        return 0.0
    return cov / math.sqrt(sxx * syy)


def critical_wakeups_per_kilocycle(critical_wakeups: int,
                                   cycles: int) -> float:
    """Figure 6's x-axis metric."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return 1000.0 * critical_wakeups / cycles
