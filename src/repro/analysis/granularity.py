"""Gating-granularity analysis: per-unit vs whole-SM power gating.

Prior GPU power-gating work (Wang et al., cited as [22]) gates at the
granularity of whole SMs, which only pays when an *entire* SM idles —
typically between kernels or under unbalanced work distribution.  The
paper's motivating claim is that execution units inside a busy SM offer
plenty of additional gating opportunity.

This module quantifies that claim from idle-period histograms: given any
histogram (one unit's, or the SM-wide "every pipeline idle" histogram
collected under ``StreamingMultiprocessor.SM_WIDE_TRACKER``), it applies
the conventional gating state machine analytically and reports the best
savings that granularity could achieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.power.params import GatingParams


@dataclass(frozen=True)
class GatingOpportunity:
    """Analytic outcome of conventional gating over an idle histogram."""

    total_cycles: int          # observation window (denominator)
    idle_cycles: int           # total idle cycles in the histogram
    gated_cycles: int          # cycles the gate would be closed
    gating_events: int         # windows long enough to gate
    net_saved_cycles: float    # gated minus amortised overhead

    @property
    def savings_fraction(self) -> float:
        """Net leakage-cycles saved over the observation window."""
        if self.total_cycles == 0:
            return 0.0
        return self.net_saved_cycles / self.total_cycles

    @property
    def idle_fraction(self) -> float:
        """Idle cycles over the observation window."""
        if self.total_cycles == 0:
            return 0.0
        return self.idle_cycles / self.total_cycles


def gating_opportunity(histogram: Mapping[int, int], total_cycles: int,
                       params: GatingParams = GatingParams(),
                       ) -> GatingOpportunity:
    """Evaluate conventional gating analytically over ``histogram``.

    For every idle period of length ``L >= idle_detect`` the controller
    gates after the detect window, sleeps ``L - idle_detect`` cycles and
    pays one break-even time of overhead — the same arithmetic the
    cycle-level controller performs, applied in closed form.  Periods in
    the loss region therefore contribute *negative* net savings, exactly
    as in Figure 3's middle band.
    """
    if total_cycles < 0:
        raise ValueError("total_cycles must be non-negative")
    idle = gated = events = 0
    net = 0.0
    for length, count in histogram.items():
        if length < 1 or count < 0:
            raise ValueError(f"malformed histogram entry {length}:{count}")
        idle += length * count
        if length < params.idle_detect:
            continue
        gated_len = length - params.idle_detect
        if gated_len <= 0:
            continue
        events += count
        gated += gated_len * count
        net += (gated_len - params.bet) * count
    return GatingOpportunity(total_cycles=total_cycles, idle_cycles=idle,
                             gated_cycles=gated, gating_events=events,
                             net_saved_cycles=net)


def granularity_comparison(sm_wide_histogram: Mapping[int, int],
                           unit_histogram: Mapping[int, int],
                           total_cycles: int,
                           n_unit_domains: int,
                           params: GatingParams = GatingParams(),
                           ) -> Mapping[str, float]:
    """Compare SM-granular vs unit-granular gating opportunity.

    Returns savings fractions normalised to the *same* leakage base
    (one unit-domain leakage unit per cycle), so the two granularities
    are directly comparable:

    * ``sm_level`` — what gating the whole SM's execution units together
      could save (every domain sleeps only when all are idle).
    * ``unit_level`` — what per-unit gating of the measured domain type
      could save, scaled over its domains.
    """
    if n_unit_domains < 1:
        raise ValueError("n_unit_domains must be >= 1")
    sm = gating_opportunity(sm_wide_histogram, total_cycles, params)
    unit = gating_opportunity(unit_histogram,
                              total_cycles * n_unit_domains, params)
    return {
        "sm_level_savings": sm.savings_fraction,
        "unit_level_savings": unit.savings_fraction,
        "sm_level_idle_fraction": sm.idle_fraction,
        "unit_level_idle_fraction": unit.idle_fraction,
    }
