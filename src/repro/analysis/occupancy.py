"""Per-cycle pipeline occupancy recording.

:class:`OccupancyRecorder` attaches to a simulator as a cycle hook and
records a busy/idle strip per pipeline — the raw material of the
paper's Figure 4 illustration and a handy debugging view for scheduler
behaviour ("why is FP1 never busy?").

Usage::

    sm = build_sm(kernel, TechniqueConfig(Technique.GATES_NO_PG))
    recorder = OccupancyRecorder(sm)       # self-registers as a hook
    sm.run()
    print(recorder.to_text())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Glyphs for the strip chart.
BUSY, IDLE = "#", "."


class OccupancyRecorder:
    """Cycle-by-cycle busy/idle strips for selected pipelines."""

    def __init__(self, sm, names: Optional[Sequence[str]] = None,
                 max_cycles: int = 10_000) -> None:
        """Attach to ``sm`` (a :class:`StreamingMultiprocessor`).

        Args:
            sm: The simulator to observe; the recorder registers itself
                as a cycle hook immediately.
            names: Pipelines to record (default: all of them).
            max_cycles: Recording cap — strips are for humans; a
                million-cycle strip is not (recording silently stops at
                the cap, the run itself is unaffected).
        """
        if max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")
        available = {pipe.name: pipe for pipe in sm.pipelines}
        selected = tuple(names) if names is not None else tuple(available)
        unknown = [n for n in selected if n not in available]
        if unknown:
            raise KeyError(f"unknown pipelines {unknown}; "
                           f"available: {sorted(available)}")
        self._pipes = [available[n] for n in selected]
        self._strips: Dict[str, List[str]] = {n: [] for n in selected}
        self.max_cycles = max_cycles
        self._recorded = 0
        self.truncated = False
        sm.add_hook(self)

    def on_cycle(self, cycle: int) -> None:
        """Cycle hook: sample every selected pipeline's busy state."""
        if self._recorded >= self.max_cycles:
            self.truncated = True
            return
        for pipe in self._pipes:
            self._strips[pipe.name].append(
                BUSY if pipe.is_busy(cycle) else IDLE)
        self._recorded += 1

    # ------------------------------------------------------------------

    def strip(self, name: str) -> str:
        """The busy/idle strip of one pipeline."""
        return "".join(self._strips[name])

    def strips(self) -> Dict[str, str]:
        """All recorded strips, keyed by pipeline name."""
        return {name: "".join(chars)
                for name, chars in self._strips.items()}

    def longest_idle_run(self, name: str) -> int:
        """Length of the longest contiguous idle window recorded."""
        return max((len(run) for run in self.strip(name).split(BUSY)),
                   default=0)

    def busy_cycles(self, name: str) -> int:
        """Busy cycles recorded for one pipeline."""
        return self._strips[name].count(BUSY)

    def to_text(self, ruler: bool = True) -> str:
        """Render all strips as an aligned chart."""
        lines: List[str] = []
        width = max((len(n) for n in self._strips), default=0)
        if ruler and self._recorded:
            digits = "".join(str((i + 1) % 10)
                             for i in range(self._recorded))
            lines.append(f"{'cycle'.ljust(width)}  {digits}")
        for name in self._strips:
            lines.append(f"{name.ljust(width)}  {self.strip(name)}")
        if self.truncated:
            lines.append(f"(recording capped at {self.max_cycles} cycles)")
        return "\n".join(lines)
