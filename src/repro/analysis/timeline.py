"""Power timeline: epoch-sampled activity of every gating domain.

An **event-bus subscriber** that bins the run into fixed-length epochs
and records, per gating domain, how many cycles it spent busy,
idle-but-powered, gated and waking, plus the instructions issued — i.e.
a power trace.  Useful for phase analysis ("when does the FP cluster
actually sleep?"), for visualising the adaptive controller's effect over
time, and for estimating instantaneous power draw from the energy model.

Power-state residency is derived from the simulator's event stream
(:class:`~repro.obs.events.GateOn` / :class:`~repro.obs.events.Wakeup` /
:class:`~repro.obs.events.GateOff` on the SM's bus) rather than by
polling each domain's state machine — the timeline is a consumer of the
observability layer, exactly like the JSONL and Chrome-trace exporters.
A light per-cycle hook still samples pipeline busy/idle occupancy, which
is deliberately not evented (it would mean one event per pipeline per
cycle).

Constructing a timeline enables the SM's bus.

Usage::

    sm = build_sm(kernel, TechniqueConfig(Technique.WARPED_GATES))
    timeline = PowerTimeline(sm, epoch_cycles=500)
    sm.run()
    for sample in timeline.samples("FP0"):
        print(sample.epoch, sample.gated, sample.busy)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.events import GateOff, GateOn, Wakeup


@dataclass
class EpochSample:
    """Activity of one domain during one epoch."""

    epoch: int
    busy: int = 0          # pipeline held work
    idle_powered: int = 0  # powered but empty (leaking uselessly)
    gated: int = 0         # gate closed (leakage saved)
    waking: int = 0        # powering back up
    issues: int = 0

    @property
    def cycles(self) -> int:
        """Cycles accounted in this epoch (full epochs: the bin size)."""
        return self.busy + self.idle_powered + self.gated + self.waking

    def leakage_fraction(self) -> float:
        """Fraction of the epoch spent burning leakage (not gated)."""
        total = self.cycles
        return (total - self.gated) / total if total else 0.0


class PowerTimeline:
    """Epoch-binned activity recorder fed by the SM's event bus.

    Pipelines without a gating domain (e.g. LDST under the paper's
    configuration) are recorded too — they never appear in gating
    events, so their ``gated`` count simply stays zero.
    """

    def __init__(self, sm, epoch_cycles: int = 500,
                 names: Optional[Sequence[str]] = None) -> None:
        if epoch_cycles < 1:
            raise ValueError("epoch_cycles must be >= 1")
        available = {pipe.name: pipe for pipe in sm.pipelines}
        selected = tuple(names) if names is not None else tuple(available)
        unknown = [n for n in selected if n not in available]
        if unknown:
            raise KeyError(f"unknown pipelines {unknown}")
        self._pipes = [available[n] for n in selected]
        self.epoch_cycles = epoch_cycles
        self._samples: Dict[str, List[EpochSample]] = {
            name: [] for name in selected}
        self._issue_seen: Dict[str, int] = {name: 0 for name in selected}
        # Event-derived power state per tracked domain: the first cycle
        # of the current gated window (None while ungated) and the first
        # cycle the domain will be ON again after a wakeup.
        self._gated_from: Dict[str, int] = {}
        self._wake_until: Dict[str, int] = {}
        self.bus = sm.bus
        self.bus.enable()
        self.bus.subscribe(self._on_gate_on, GateOn)
        self.bus.subscribe(self._on_wakeup, Wakeup)
        self.bus.subscribe(self._on_gate_off, GateOff)
        sm.add_hook(self)

    # ------------------------------------------------------------------
    # bus subscriptions: track each domain's power state
    # ------------------------------------------------------------------

    def _on_gate_on(self, event: GateOn) -> None:
        if event.domain in self._samples:
            # The switch closes at the end of the event's cycle; the
            # domain is gated from the next cycle on.
            self._gated_from[event.domain] = event.cycle + 1

    def _on_wakeup(self, event: Wakeup) -> None:
        if event.domain in self._samples:
            self._wake_until[event.domain] = event.cycle + event.delay

    def _on_gate_off(self, event: GateOff) -> None:
        # Covers both the wakeup path (arrives just before Wakeup) and
        # the end-of-run finalisation, which has no Wakeup.
        self._gated_from.pop(event.domain, None)

    # ------------------------------------------------------------------
    # per-cycle sampling hook
    # ------------------------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Cycle hook: bin this cycle's state per domain."""
        epoch = cycle // self.epoch_cycles
        for pipe in self._pipes:
            series = self._samples[pipe.name]
            if not series or series[-1].epoch != epoch:
                series.append(EpochSample(epoch=epoch))
            sample = series[-1]
            gated_from = self._gated_from.get(pipe.name)
            if gated_from is not None and cycle >= gated_from:
                sample.gated += 1
            elif cycle < self._wake_until.get(pipe.name, 0):
                sample.waking += 1
            elif pipe.is_busy(cycle):
                sample.busy += 1
            else:
                sample.idle_powered += 1
            issued_total = pipe.issued_count
            sample.issues += issued_total - self._issue_seen[pipe.name]
            self._issue_seen[pipe.name] = issued_total

    # ------------------------------------------------------------------

    def samples(self, name: str) -> List[EpochSample]:
        """The epoch series of one domain."""
        return list(self._samples[name])

    def domains(self) -> Sequence[str]:
        """Recorded domain names."""
        return tuple(self._samples)

    def gated_fraction_series(self, name: str) -> List[float]:
        """Per-epoch gated fraction — the 'sleep trace' of a domain."""
        return [s.gated / s.cycles if s.cycles else 0.0
                for s in self._samples[name]]

    def to_rows(self, name: str) -> List[List[object]]:
        """Tabular form for reports/export."""
        return [[s.epoch, s.busy, s.idle_powered, s.gated, s.waking,
                 s.issues] for s in self._samples[name]]


TIMELINE_HEADERS = ("epoch", "busy", "idle_powered", "gated", "waking",
                    "issues")
