"""Analysis utilities that turn simulator output into the paper's figures.

* :mod:`repro.analysis.idle_periods` -- idle-period histogram regions
  (Figure 3) and summary statistics.
* :mod:`repro.analysis.correlation` -- Pearson correlation between
  critical wakeups and runtime (Figure 6).
* :mod:`repro.analysis.granularity` -- per-unit vs whole-SM gating
  opportunity (the related-work positioning of section 8).
* :mod:`repro.analysis.occupancy` -- per-cycle busy/idle strip charts
  (Figure 4's view, as an attachable recorder).
* :mod:`repro.analysis.timeline` -- epoch-binned power traces per
  gating domain.
* :mod:`repro.analysis.paper` -- the paper-reported reference values.
* :mod:`repro.analysis.report` -- plain-text table rendering for the
  benchmark harness output.
"""

from repro.analysis.idle_periods import (
    IdleRegions,
    region_fractions,
    histogram_series,
)
from repro.analysis.correlation import pearson_r
from repro.analysis.granularity import gating_opportunity
from repro.analysis.occupancy import OccupancyRecorder
from repro.analysis.timeline import PowerTimeline
from repro.analysis.stalls import stall_profile, stalls_per_kilocycle
from repro.analysis.warps import summarize_warps
from repro.analysis.report import format_table, format_fraction

__all__ = [
    "IdleRegions",
    "region_fractions",
    "histogram_series",
    "pearson_r",
    "gating_opportunity",
    "OccupancyRecorder",
    "PowerTimeline",
    "stall_profile",
    "stalls_per_kilocycle",
    "summarize_warps",
    "format_table",
    "format_fraction",
]
