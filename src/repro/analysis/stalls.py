"""Issue-stall breakdown analysis.

The SM counts why issue opportunities went unused
(:class:`repro.sim.stats.IssueStalls`): nothing ready, structural port
conflicts, blackout denials, wakeups in progress, MSHR back-pressure.
These are event counters (several can fire per cycle while the issue
walk scans candidates), so the useful view is *relative*: which hazard
dominates, and how a technique shifts the profile — e.g. Blackout
converts ``unit_waking`` stalls into ``unit_gated`` denials, and GATES
trades ``no_ready_warp`` for structural pressure on the prioritised
unit.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.sm import SimResult

#: Stall categories in display order.
STALL_FIELDS = ("no_ready_warp", "structural", "unit_gated",
                "unit_waking", "mshr_full")


def stall_counts(result: SimResult) -> Dict[str, int]:
    """Raw stall-event counters of one run."""
    stalls = result.stats.stalls
    return {field: getattr(stalls, field) for field in STALL_FIELDS}


def stall_profile(result: SimResult) -> Dict[str, float]:
    """Stall events normalised to the run's total (sums to 1)."""
    counts = stall_counts(result)
    total = sum(counts.values())
    if total == 0:
        return {field: 0.0 for field in STALL_FIELDS}
    return {field: count / total for field, count in counts.items()}


def stalls_per_kilocycle(result: SimResult) -> Dict[str, float]:
    """Stall events per 1000 cycles (comparable across run lengths)."""
    if result.cycles == 0:
        raise ValueError("degenerate run with zero cycles")
    return {field: 1000.0 * count / result.cycles
            for field, count in stall_counts(result).items()}


def stall_rows(results: Dict[str, SimResult]) -> List[List[object]]:
    """One row per labelled run: label + per-category events/kcycle."""
    rows: List[List[object]] = []
    for label, result in results.items():
        per_kcyc = stalls_per_kilocycle(result)
        rows.append([label] + [per_kcyc[f] for f in STALL_FIELDS])
    return rows


STALL_HEADERS = ("run",) + STALL_FIELDS
