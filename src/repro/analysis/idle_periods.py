"""Idle-period histogram analysis (Figure 3 of the paper).

Figure 3 partitions every idle-period length into three regions:

* **wasted** — shorter than the idle-detect window; too short to ever
  gate;
* **loss** — between idle-detect and idle-detect + BET; conventional
  gating fires here but wakes up before break-even, a net energy loss
  (Blackout empties this region by construction);
* **gain** — beyond idle-detect + BET; gating pays off.

For hotspot the paper reports (83.4%, 10.1%, 6.5%) under the baseline
two-level scheduler, (59.0%, 22.1%, 18.9%) under GATES, and
(54.3%, 0.0%, 45.7%) under GATES + Blackout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple


@dataclass(frozen=True)
class IdleRegions:
    """Fractions of idle periods per Figure 3 region (sum to 1)."""

    wasted: float      # length < idle_detect
    loss: float        # idle_detect <= length < idle_detect + bet
    gain: float        # length >= idle_detect + bet
    total_periods: int

    def as_tuple(self) -> Tuple[float, float, float]:
        """(wasted, loss, gain) fractions, in Figure 3's order."""
        return (self.wasted, self.loss, self.gain)


def region_fractions(histogram: Mapping[int, int], idle_detect: int = 5,
                     bet: int = 14) -> IdleRegions:
    """Partition an idle-period length histogram into the three regions.

    Args:
        histogram: idle-period length -> occurrence count (as produced
            by :meth:`repro.sim.sm.SimResult.idle_histogram`).
        idle_detect: Idle-detect window used for the partition.
        bet: Break-even time used for the partition.
    """
    if idle_detect < 0 or bet < 1:
        raise ValueError("need idle_detect >= 0 and bet >= 1")
    wasted = loss = gain = 0
    for length, count in histogram.items():
        if count < 0 or length < 1:
            raise ValueError(f"malformed histogram entry {length}:{count}")
        if length < idle_detect:
            wasted += count
        elif length < idle_detect + bet:
            loss += count
        else:
            gain += count
    total = wasted + loss + gain
    if total == 0:
        return IdleRegions(0.0, 0.0, 0.0, 0)
    return IdleRegions(wasted / total, loss / total, gain / total, total)


def histogram_series(histogram: Mapping[int, int], max_length: int = 25,
                     ) -> List[Tuple[int, float]]:
    """Frequency series for plotting Figure 3's x-axis (1..max_length).

    Lengths beyond ``max_length`` are folded into the last bucket, the
    way the paper's plots truncate the tail.
    """
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    total = sum(histogram.values())
    if total == 0:
        return [(length, 0.0) for length in range(1, max_length + 1)]
    series = []
    for length in range(1, max_length):
        series.append((length, histogram.get(length, 0) / total))
    tail = sum(count for length, count in histogram.items()
               if length >= max_length)
    series.append((max_length, tail / total))
    return series


def mean_idle_length(histogram: Mapping[int, int]) -> float:
    """Average idle-period length in cycles."""
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    return sum(length * count for length, count in histogram.items()) / total
