"""Warp-level lifetime and load-imbalance analysis.

The SM records every launched warp's launch/finish cycle
(:class:`repro.sim.sm.WarpRecord`).  From those, this module derives the
occupancy-tail picture: how uneven warp lifetimes are, how long the
end-of-kernel drain tail runs with only a few resident warps, and how
much of the run had full occupancy — the phases where execution units
idle for *structural* rather than scheduling reasons, which bounds what
any warp scheduler (GATES included) can coalesce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.sm import SimResult, WarpRecord


@dataclass(frozen=True)
class WarpSummary:
    """Aggregate lifetime statistics of one run's warps."""

    n_warps: int
    mean_lifetime: float
    max_lifetime: int
    min_lifetime: int
    last_launch: int
    first_finish: int
    drain_tail: int      # cycles after the last *other* warp finished
    imbalance: float     # max/mean lifetime (1.0 = perfectly even)


def summarize_warps(result: SimResult) -> WarpSummary:
    """Aggregate a run's warp records."""
    records = result.warp_records
    if not records:
        raise ValueError(f"{result.kernel_name}: run recorded no warps")
    lifetimes = [r.lifetime for r in records]
    mean = sum(lifetimes) / len(lifetimes)
    finishes = sorted(r.finish_cycle for r in records)
    drain_tail = finishes[-1] - (finishes[-2] if len(finishes) > 1
                                 else finishes[-1])
    return WarpSummary(
        n_warps=len(records),
        mean_lifetime=mean,
        max_lifetime=max(lifetimes),
        min_lifetime=min(lifetimes),
        last_launch=max(r.launch_cycle for r in records),
        first_finish=finishes[0],
        drain_tail=drain_tail,
        imbalance=max(lifetimes) / mean if mean else 0.0)


def lifetime_histogram(records: Sequence[WarpRecord],
                       bucket: int = 100) -> List[List[object]]:
    """Warp lifetimes bucketed for a quick distribution view."""
    if bucket < 1:
        raise ValueError("bucket must be >= 1")
    counts: dict = {}
    for record in records:
        key = (record.lifetime // bucket) * bucket
        counts[key] = counts.get(key, 0) + 1
    return [[low, f"{low}-{low + bucket - 1}", counts[low]]
            for low in sorted(counts)]


def occupancy_tail_fraction(result: SimResult,
                            low_watermark: int = 4) -> float:
    """Fraction of the run spent with few warps still unfinished.

    Computed from finish cycles: the last ``low_watermark`` warps'
    finishing window over the total runtime.  Large values mean a long
    drain tail, where idle windows are structural and any gating scheme
    can sleep.
    """
    records = result.warp_records
    if not records or result.cycles == 0:
        return 0.0
    finishes = sorted(r.finish_cycle for r in records)
    if len(finishes) <= low_watermark:
        return 1.0
    tail_start = finishes[-(low_watermark + 1)]
    return (result.cycles - tail_start) / result.cycles
