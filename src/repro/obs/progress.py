"""Live batch progress, driven purely by bus subscription.

:class:`ProgressReporter` is one more subscriber on an
:class:`~repro.obs.telemetry.EngineTelemetry` bus — it holds no engine
references and the engine knows nothing about it, so it can never
perturb scheduling or results.  On a TTY it redraws a single status
line in place::

    [7/24] ok=6 failed=1 running=4 retries=2 cache=67% eta=41s

off a TTY (CI logs, redirected output) it degrades to a plain
heartbeat: the same line, printed whole at most once per ``interval``
seconds (plus a final summary from :meth:`close`), so logs stay
readable and bounded no matter how large the batch.

Counts come from the authoritative parent-side events (``JobQueued`` /
``JobFinished``); ``running`` derives from worker-originated
``JobStarted`` minus settled jobs, and the cache ratio from the
streamed hit/miss events.  The ETA is the classic remaining × average
seconds-per-settled-job estimate.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO, Optional

from repro.obs.bus import EventBus
from repro.obs.events import Event
from repro.obs.telemetry import (
    CacheHit,
    CacheMiss,
    JobFinished,
    JobQueued,
    JobRetry,
    JobStarted,
)

#: Minimum seconds between TTY redraws (events can burst far faster
#: than a terminal repaints usefully).
_TTY_REDRAW = 0.1


class ProgressReporter:
    """Renders engine-batch progress from the event stream.

    Args:
        stream: Output stream (default ``sys.stderr`` — progress must
            not contaminate parseable stdout).
        interval: Heartbeat period in seconds when not on a TTY.
        tty: Force TTY (in-place redraw) or non-TTY (heartbeat lines)
            rendering; None autodetects via ``stream.isatty()``.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 interval: float = 5.0,
                 tty: Optional[bool] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        if tty is None:
            isatty = getattr(self.stream, "isatty", None)
            tty = bool(isatty()) if callable(isatty) else False
        self.tty = tty
        self.total = 0
        self.started = 0
        self.ok = 0
        self.failed = 0
        self.timed_out = 0
        self.cancelled = 0
        self.retries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._lock = threading.Lock()
        self._t0: Optional[float] = None
        self._last_render: Optional[float] = None
        self._drew_line = False
        self._bus: Optional[EventBus] = None

    # ------------------------------------------------------------------

    def attach(self, bus: EventBus) -> "ProgressReporter":
        """Subscribe to the engine events on ``bus``."""
        bus.subscribe(self._on_event, JobQueued, JobStarted, JobRetry,
                      JobFinished, CacheHit, CacheMiss)
        self._bus = bus
        return self

    def close(self) -> None:
        """Detach and print the final summary line."""
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None
        with self._lock:
            line = self._line()
            if self.tty and self._drew_line:
                self.stream.write("\r" + line + "\n")
            else:
                self.stream.write(line + "\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def done(self) -> int:
        """Jobs that reached a terminal state."""
        return self.ok + self.failed + self.timed_out + self.cancelled

    @property
    def running(self) -> int:
        """Jobs observed started but not yet settled (best effort)."""
        return max(self.started - self.done, 0)

    def _on_event(self, event: Event) -> None:
        now = time.monotonic()
        with self._lock:
            if self._t0 is None:
                self._t0 = now
            terminal = False
            if isinstance(event, JobQueued):
                self.total += 1
            elif isinstance(event, JobStarted):
                self.started += 1
            elif isinstance(event, JobRetry):
                self.retries += 1
            elif isinstance(event, JobFinished):
                terminal = True
                if event.status == "ok":
                    self.ok += 1
                elif event.status == "failed":
                    self.failed += 1
                elif event.status == "timed_out":
                    self.timed_out += 1
                else:
                    self.cancelled += 1
            elif isinstance(event, CacheHit):
                self.cache_hits += 1
            elif isinstance(event, CacheMiss):
                self.cache_misses += 1
            self._maybe_render(now, terminal)

    # ------------------------------------------------------------------
    # rendering (lock held)
    # ------------------------------------------------------------------

    def _maybe_render(self, now: float, terminal: bool) -> None:
        # TTY: redraw on a short throttle, and always on a settled job
        # (in-place updates are cheap).  Non-TTY: strictly one
        # heartbeat line per interval; close() prints the summary.
        # The very first event always renders.
        period = _TTY_REDRAW if self.tty else self.interval
        if self._last_render is not None \
                and now - self._last_render < period \
                and not (self.tty and terminal):
            return
        self._last_render = now
        line = self._line()
        if self.tty:
            self.stream.write("\r\x1b[K" + line)
            self._drew_line = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _line(self) -> str:
        parts = [f"[{self.done}/{self.total}]", f"ok={self.ok}"]
        if self.failed:
            parts.append(f"failed={self.failed}")
        if self.timed_out:
            parts.append(f"timed_out={self.timed_out}")
        if self.cancelled:
            parts.append(f"cancelled={self.cancelled}")
        parts.append(f"running={self.running}")
        if self.retries:
            parts.append(f"retries={self.retries}")
        requests = self.cache_hits + self.cache_misses
        if requests:
            ratio = 100.0 * self.cache_hits / requests
            parts.append(f"cache={ratio:.0f}%")
        eta = self._eta()
        if eta is not None:
            parts.append(f"eta={eta:.0f}s")
        return " ".join(parts)

    def _eta(self) -> Optional[float]:
        if self._t0 is None or not self.done or self.done >= self.total:
            return None
        elapsed = time.monotonic() - self._t0
        return elapsed / self.done * (self.total - self.done)


__all__ = ["ProgressReporter"]
