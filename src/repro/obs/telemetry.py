"""Cross-process engine telemetry: the event relay and its vocabulary.

PR 1's :class:`~repro.obs.bus.EventBus` stops at the process boundary:
every event published inside a :class:`~repro.engine.pool.ParallelEngine`
worker dies with the worker.  This module is the missing spine — it
makes a full parallel run observable end to end while preserving the
bus's zero-cost-when-disabled contract:

* **Engine events** (:class:`JobQueued`, :class:`JobStarted`,
  :class:`JobRetry`, :class:`JobFinished`, :class:`PoolRebuilt`, the
  ``Cache*`` family, :class:`WorkerEventSummary`) are wall-clock-stamped
  :class:`~repro.obs.events.Event` subclasses, so every existing
  subscriber — the JSONL log, progress renderers, test sinks — consumes
  them unchanged.
* **Workers digest, the parent streams.**  Forwarding every simulator
  event over a pipe would cost more than the simulation; instead each
  worker runs a bounded, sampling :class:`EventDigest` on its job's sim
  bus and ships one compact :class:`WorkerEventSummary` (per-type counts
  plus the first few sampled records) when the job ends.  Engine-level
  events (job started, cache hit/miss) forward immediately.
* **The relay is a ``multiprocessing`` queue.**  The parent's
  :class:`EngineTelemetry` owns a ``SimpleQueue`` handed to workers via
  the pool initializer (``initargs`` travel through process creation,
  so the queue is inherited, never pickled through the call pipe) and a
  drain thread that republishes arriving records onto the parent bus.
  ``SimpleQueue.put`` writes synchronously, so once a worker's function
  has returned — i.e. once the parent holds its future's result — the
  worker's records are in the pipe and :meth:`EngineTelemetry.flush`
  can drain them deterministically.

Zero cost when disabled
-----------------------

An engine without telemetry (the default) takes exactly one
``is None`` check per would-be hook; workers are started without the
initializer, the sim bus inside :func:`~repro.engine.jobs.execute_job`
stays disabled, and no queue or thread exists.
"""

from __future__ import annotations

import cProfile
import multiprocessing
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.obs.bus import EventBus
from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry


def _process_name() -> str:
    return multiprocessing.current_process().name


# ----------------------------------------------------------------------
# engine events
# ----------------------------------------------------------------------

@dataclass(slots=True)
class EngineEvent(Event):
    """Base class for engine/cache events.

    Engine events happen in wall-clock time, not simulated time, so
    ``cycle`` is always 0 and ``ts`` carries ``time.time()`` seconds.
    Build them with :meth:`now` rather than spelling the base fields.
    """

    ts: float = 0.0

    @classmethod
    def now(cls, **fields: object) -> "EngineEvent":
        """Construct the event stamped with the current wall clock."""
        return cls(cycle=0, ts=time.time(), **fields)


@dataclass(slots=True)
class JobQueued(EngineEvent):
    """The parent accepted one job into a batch."""

    label: str = ""
    index: int = -1
    spec_hash: str = ""


@dataclass(slots=True)
class JobStarted(EngineEvent):
    """A worker began executing a job (worker-originated)."""

    label: str = ""
    worker: str = ""


@dataclass(slots=True)
class JobRetry(EngineEvent):
    """A job attempt was charged (or a pool break forced a resubmit).

    ``reason`` is ``"failed"``, ``"timed_out"`` or ``"pool_broken"``
    (the last one is an *uncharged* resubmission after a crash that
    could not be attributed; ``attempt`` then repeats the prior count).
    """

    label: str = ""
    index: int = -1
    attempt: int = 0
    reason: str = ""


@dataclass(slots=True)
class JobFinished(EngineEvent):
    """A job settled terminally (parent-originated, authoritative)."""

    label: str = ""
    index: int = -1
    status: str = "ok"
    attempts: int = 1
    seconds: float = 0.0
    cache_hit: bool = False
    worker: str = ""


@dataclass(slots=True)
class PoolRebuilt(EngineEvent):
    """The worker pool was torn down and will be rebuilt.

    ``reason`` is ``"timeout"`` (a hung worker was killed) or
    ``"crash"`` (a worker died and broke the pool).
    """

    reason: str = ""


@dataclass(slots=True)
class CacheHit(EngineEvent):
    """A persistent-cache lookup was served from disk."""

    group: str = ""
    key: str = ""
    worker: str = ""


@dataclass(slots=True)
class CacheMiss(EngineEvent):
    """A persistent-cache lookup found nothing usable.

    ``corrupt`` distinguishes a damaged/legacy entry (present on disk
    but failing checksum or decode) from a plain absence.
    """

    group: str = ""
    key: str = ""
    worker: str = ""
    corrupt: bool = False


@dataclass(slots=True)
class CacheEvicted(EngineEvent):
    """One LRU-cap eviction pass completed (was previously silent)."""

    entries: int = 0
    bytes: int = 0


@dataclass(slots=True)
class CacheSwept(EngineEvent):
    """The janitor removed orphaned ``.tmp`` files (previously silent)."""

    removed: int = 0


@dataclass(slots=True)
class WorkerEventSummary(EngineEvent):
    """One job's digested sim-event stream, shipped by its worker.

    ``counts`` maps event type names to publication counts;
    ``sampled`` carries the first few records of each type (bounded by
    :attr:`TelemetrySettings.sample_limit`), enough to interrogate
    gating behaviour without shipping the full stream.
    """

    label: str = ""
    worker: str = ""
    started_at: float = 0.0
    finished_at: float = 0.0
    cycles: int = 0
    cache_hit: bool = False
    counts: Dict[str, int] = field(default_factory=dict)
    sampled: Tuple = ()


@dataclass(slots=True)
class ServiceJobAccepted(EngineEvent):
    """The simulation service accepted one submission.

    ``deduped`` marks a submission that single-flighted onto an
    existing in-flight (or memoised) execution instead of creating a
    new one — the N-responses half of "one engine execution, N
    responses".
    """

    job_id: str = ""
    label: str = ""
    spec_hash: str = ""
    deduped: bool = False


@dataclass(slots=True)
class ServiceJobStateChanged(EngineEvent):
    """One service job moved through its lifecycle.

    ``state`` is a :class:`~repro.service.core.JobState` value
    (``queued`` → ``running`` → ``ok`` / ``failed`` / ``timed_out`` /
    ``cancelled``).
    """

    job_id: str = ""
    label: str = ""
    state: str = ""


#: Every engine/cache event type, in a stable order (exporters, docs).
ENGINE_EVENT_TYPES: Tuple[type, ...] = (
    JobQueued, JobStarted, JobRetry, JobFinished, PoolRebuilt,
    CacheHit, CacheMiss, CacheEvicted, CacheSwept, WorkerEventSummary,
    ServiceJobAccepted, ServiceJobStateChanged,
)


def job_label(item: object, index: Optional[int] = None) -> str:
    """Human-readable identity of one batch item.

    :class:`~repro.engine.jobs.SimJob`-shaped items label as
    ``benchmark/technique/sSEED`` (matching the test-suite's plan
    keys); anything else falls back to its position or type name.
    """
    benchmark = getattr(item, "benchmark", None)
    if benchmark is not None:
        try:
            name = item.spec.name  # type: ignore[attr-defined]
        except Exception:
            name = str(getattr(item, "config", "?"))
        return f"{benchmark}/{name}/s{getattr(item, 'seed', 0)}"
    if index is not None:
        return f"item{index}"
    return type(item).__name__


# ----------------------------------------------------------------------
# settings
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetrySettings:
    """Relay knobs (all bounded — the relay must never grow unbounded).

    Attributes:
        sample_limit: Sim-event records kept per event type per job in a
            :class:`WorkerEventSummary` (counts are always complete).
        drain_poll: Seconds the parent drain thread sleeps when the
            relay queue is empty.
    """

    sample_limit: int = 8
    drain_poll: float = 0.005

    def __post_init__(self) -> None:
        if self.sample_limit < 0:
            raise ValueError("sample_limit must be >= 0")
        if self.drain_poll <= 0:
            raise ValueError("drain_poll must be positive")


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

class EventDigest:
    """Bounded, sampling subscriber for one job's sim-event stream.

    Counts every publication per event type and keeps the first
    ``sample_limit`` records of each — O(1) per event, O(types) memory,
    no matter how long the simulation runs.
    """

    __slots__ = ("counts", "sample_limit", "_samples")

    def __init__(self, sample_limit: int = 8) -> None:
        self.counts: Dict[str, int] = {}
        self.sample_limit = sample_limit
        self._samples: Dict[str, list] = {}

    def __call__(self, event: Event) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        bucket = self._samples.get(name)
        if bucket is None:
            bucket = self._samples[name] = []
        if len(bucket) < self.sample_limit:
            bucket.append(event.to_record())

    @property
    def total(self) -> int:
        """Total sim events digested."""
        return sum(self.counts.values())

    def sampled_records(self) -> Tuple[dict, ...]:
        """The kept sample records, grouped by type in name order."""
        out = []
        for name in sorted(self._samples):
            out.extend(self._samples[name])
        return tuple(out)


class JobTelemetry:
    """One job's worker-side session: sim bus, cache events, summary.

    Created by :meth:`WorkerTelemetry.job_session`; emits
    :class:`JobStarted` on construction and a
    :class:`WorkerEventSummary` from :meth:`finish`.
    """

    __slots__ = ("label", "digest", "started_at", "_send", "_worker",
                 "_finished")

    def __init__(self, send: Callable[[Event], None], label: str,
                 sample_limit: int) -> None:
        self.label = label
        self.digest = EventDigest(sample_limit)
        self.started_at = time.time()
        self._send = send
        self._worker = _process_name()
        self._finished = False
        send(JobStarted.now(label=label, worker=self._worker))

    def emit(self, event: Event) -> None:
        """Forward one engine/cache event to the parent immediately."""
        self._send(event)

    def sim_bus(self) -> EventBus:
        """An enabled bus wired to this session's digest (for build_sm)."""
        bus = EventBus(enabled=True)
        bus.subscribe(self.digest)
        return bus

    def finish(self, cycles: int = 0, cache_hit: bool = False) -> None:
        """Ship the job's summary (idempotent; crash-safe by omission:
        a killed worker simply never sends one)."""
        if self._finished:
            return
        self._finished = True
        self._send(WorkerEventSummary.now(
            label=self.label, worker=self._worker,
            started_at=self.started_at, finished_at=time.time(),
            cycles=cycles, cache_hit=cache_hit,
            counts=dict(self.digest.counts),
            sampled=self.digest.sampled_records()))


class _JobProfile:
    """Context manager: cProfile one job, dump stats to the profile dir.

    Tolerates an already-active profiler (e.g. the parent's inline path
    under ``--profile``) by degrading to a no-op.
    """

    __slots__ = ("_dir", "_profile")

    def __init__(self, profile_dir: str) -> None:
        self._dir = profile_dir
        self._profile: Optional[cProfile.Profile] = None

    def __enter__(self) -> "_JobProfile":
        profile = cProfile.Profile()
        try:
            profile.enable()
        except ValueError:  # another profiler is active; stand down
            return self
        self._profile = profile
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._profile is None:
            return
        self._profile.disable()
        os.makedirs(self._dir, exist_ok=True)
        stamp = f"{os.getpid()}-{time.monotonic_ns():x}"
        self._profile.dump_stats(
            os.path.join(self._dir, f"worker-{stamp}.pstats"))


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class WorkerTelemetry:
    """Per-process worker state: where to send records, how to sample.

    One instance lives in each worker process (installed by the pool
    initializer) or in the parent for the inline ``jobs == 1`` path.
    ``send`` is ``queue.put`` in a worker, a direct locked bus publish
    inline, or None when only profiling is wanted.
    """

    __slots__ = ("send", "settings", "profile_dir")

    def __init__(self, send: Optional[Callable[[Event], None]],
                 settings: TelemetrySettings,
                 profile_dir: Optional[str] = None) -> None:
        self.send = send
        self.settings = settings
        self.profile_dir = profile_dir

    def job_session(self, label: str) -> Optional[JobTelemetry]:
        """A telemetry session for one job (None when events are off)."""
        if self.send is None:
            return None
        return JobTelemetry(self.send, label, self.settings.sample_limit)

    def profile_job(self):
        """Context manager profiling one job (no-op without a dir)."""
        if self.profile_dir is None:
            return _NULL_CONTEXT
        return _JobProfile(self.profile_dir)


#: The process-wide worker telemetry (None in uninstrumented processes).
_WORKER: Optional[WorkerTelemetry] = None


def init_worker_telemetry(queue, settings: TelemetrySettings,
                          profile_dir: Optional[str] = None) -> None:
    """``ProcessPoolExecutor`` initializer: install worker telemetry.

    Top-level (hence picklable); ``queue`` travels through process
    creation, where ``multiprocessing`` queues are legal.
    """
    global _WORKER
    send = queue.put if queue is not None else None
    _WORKER = WorkerTelemetry(send, settings, profile_dir)


def current_worker() -> Optional[WorkerTelemetry]:
    """This process's worker telemetry, if any was installed."""
    return _WORKER


@contextmanager
def inline_worker(telemetry: "EngineTelemetry") -> Iterator[None]:
    """Activate worker telemetry in-process for the inline engine path.

    Events publish straight onto the parent bus (no queue); worker
    profiling stays off — the parent's own profiler already covers
    inline execution.
    """
    global _WORKER
    previous = _WORKER
    send = telemetry.emit if telemetry.enabled else None
    _WORKER = WorkerTelemetry(send, telemetry.settings, None)
    try:
        yield
    finally:
        _WORKER = previous


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

class EngineTelemetry:
    """The parent-side facade: bus, metrics, relay and profiling glue.

    Create one, hand it to a :class:`~repro.engine.pool.ParallelEngine`
    (``telemetry=``), and attach any bus subscriber — progress
    renderers, :class:`~repro.obs.exporters.JsonlEventLog`,
    :class:`~repro.obs.exporters.EngineTraceExporter` — to
    :attr:`bus`.  Publication is serialised by an internal lock (the
    relay thread and the engine's main thread both publish), so
    subscribers never need their own.

    ``metrics`` aggregates the stream into the labelled registry:
    ``engine_jobs_total{status=...}``, ``engine_retries_total{reason=
    ...}``, ``engine_cache_requests_total{disposition=...}``,
    ``engine_pool_rebuilds_total{reason=...}``, plus queue-wait and
    exec-time histograms in integer milliseconds.
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 settings: Optional[TelemetrySettings] = None,
                 profile_dir: Optional[str] = None,
                 enabled: bool = True) -> None:
        self.bus = bus if bus is not None else EventBus(enabled=enabled)
        self.settings = settings if settings is not None \
            else TelemetrySettings()
        self.profile_dir = profile_dir
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._queue = None
        self._thread: Optional[threading.Thread] = None
        self._stop = False
        self._busy = False
        self._queued_ts: Dict[str, list] = {}
        self.bus.subscribe(self._observe)

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Mirrors the bus flag; engine hooks check this once."""
        return self.bus.enabled

    def emit(self, event: Event) -> None:
        """Publish one event onto the parent bus (thread-safe)."""
        if not self.bus.enabled:
            return
        with self._lock:
            self.bus.publish(event)

    # ------------------------------------------------------------------
    # relay lifecycle
    # ------------------------------------------------------------------

    def ensure_relay(self):
        """The worker->parent queue, creating queue + drain thread."""
        if self._queue is None:
            self._queue = multiprocessing.SimpleQueue()
            self._stop = False
            self._thread = threading.Thread(
                target=self._drain_loop, name="repro-telemetry-relay",
                daemon=True)
            self._thread.start()
        return self._queue

    def pool_init(self) -> Optional[Tuple[Callable, Tuple]]:
        """(initializer, initargs) for the engine's pool, or None.

        Returns None when neither events nor worker profiling are
        wanted — the pool is then built exactly as before.
        """
        if not self.enabled and self.profile_dir is None:
            return None
        queue = self.ensure_relay() if self.enabled else None
        return (init_worker_telemetry,
                (queue, self.settings, self.profile_dir))

    def _drain_loop(self) -> None:
        while True:
            if self._queue.empty():
                if self._stop:
                    return
                time.sleep(self.settings.drain_poll)
                continue
            with self._lock:
                self._busy = True
            try:
                record = self._queue.get()
                with self._lock:
                    self.bus.publish(record)
            finally:
                with self._lock:
                    self._busy = False

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until every queued worker record has been published.

        Deterministic after a batch: workers write records *before*
        returning, so once the parent holds every result the records
        are in the pipe and this drains them.  Returns False only on
        timeout (a wedged relay), never raises.
        """
        if self._queue is None:
            return True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._queue.empty() and not self._busy:
                    return True
            time.sleep(self.settings.drain_poll)
        return False

    def close(self) -> None:
        """Drain, stop the relay thread and drop the queue (idempotent).

        Call after the engine is closed — live workers must not hold
        the queue when it goes away.
        """
        if self._thread is not None:
            self.flush()
            self._stop = True
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._queue is not None:
            self._queue.close()
            self._queue = None

    def __enter__(self) -> "EngineTelemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # metrics aggregation (a plain bus subscriber)
    # ------------------------------------------------------------------

    def _observe(self, event: Event) -> None:
        metrics = self.metrics
        if isinstance(event, JobQueued):
            metrics.counter("engine_jobs_queued").inc()
            self._queued_ts.setdefault(event.label, []).append(event.ts)
        elif isinstance(event, JobStarted):
            metrics.counter("engine_jobs_started").inc()
            pending = self._queued_ts.get(event.label)
            if pending:
                wait_ms = int((event.ts - pending.pop(0)) * 1000)
                metrics.histogram("engine_queue_wait_ms") \
                    .observe(max(wait_ms, 0))
        elif isinstance(event, JobFinished):
            metrics.counter("engine_jobs_total",
                            status=event.status).inc()
            if event.seconds:
                metrics.histogram("engine_exec_time_ms") \
                    .observe(max(int(event.seconds * 1000), 0))
        elif isinstance(event, JobRetry):
            metrics.counter("engine_retries_total",
                            reason=event.reason).inc()
        elif isinstance(event, PoolRebuilt):
            metrics.counter("engine_pool_rebuilds_total",
                            reason=event.reason).inc()
        elif isinstance(event, CacheHit):
            metrics.counter("engine_cache_requests_total",
                            disposition="hit").inc()
        elif isinstance(event, CacheMiss):
            disposition = "corrupt" if event.corrupt else "miss"
            metrics.counter("engine_cache_requests_total",
                            disposition=disposition).inc()
        elif isinstance(event, CacheEvicted):
            metrics.counter("engine_cache_evictions_total") \
                .inc(event.entries)
        elif isinstance(event, CacheSwept):
            metrics.counter("engine_cache_tmp_swept_total") \
                .inc(event.removed)
        elif isinstance(event, WorkerEventSummary):
            metrics.counter("engine_worker_events_total") \
                .inc(sum(event.counts.values()))
            span_ms = int((event.finished_at - event.started_at) * 1000)
            metrics.histogram("engine_worker_span_ms",
                              worker=event.worker) \
                .observe(max(span_ms, 0))

    def cache_hit_ratio(self) -> Optional[float]:
        """Hits / (hits + misses) over the stream, or None if no I/O."""
        hits = self.metrics.counter("engine_cache_requests_total",
                                    disposition="hit").value
        total = self.metrics.total("engine_cache_requests_total")
        return hits / total if total else None


__all__ = [
    "ENGINE_EVENT_TYPES",
    "CacheEvicted",
    "CacheHit",
    "CacheMiss",
    "CacheSwept",
    "EngineEvent",
    "EngineTelemetry",
    "EventDigest",
    "JobFinished",
    "JobQueued",
    "JobRetry",
    "JobStarted",
    "JobTelemetry",
    "PoolRebuilt",
    "ServiceJobAccepted",
    "ServiceJobStateChanged",
    "TelemetrySettings",
    "WorkerEventSummary",
    "WorkerTelemetry",
    "current_worker",
    "init_worker_telemetry",
    "inline_worker",
    "job_label",
]
